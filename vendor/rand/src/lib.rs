//! Offline stand-in for the `rand` crate.
//!
//! The build container has no registry access, so the workspace vendors the
//! small slice of the `rand` API it actually uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over half-open integer
//! ranges, and `Rng::gen_bool`. The generator is xoshiro256** seeded via
//! SplitMix64 — deterministic in the seed, which is all the workload
//! generators require (they assert same-seed reproducibility, not any
//! particular stream).

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Range types that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Bernoulli sample: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        // 53 uniform mantissa bits, the same resolution rand itself uses.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-100i64..100);
            assert!((-100..100).contains(&v));
            let u = rng.gen_range(18u8..95);
            assert!((18..95).contains(&u));
            let w = rng.gen_range(0i64..=10);
            assert!((0..=10).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
