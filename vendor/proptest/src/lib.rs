//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no registry access, so the workspace vendors the
//! slice of the proptest API its property tests use: the [`Strategy`] trait
//! (`prop_map`, `prop_recursive`, `boxed`), primitive/range/tuple/collection
//! strategies, a small regex-subset string strategy, and the `proptest!`,
//! `prop_oneof!`, and `prop_assert*!` macros. Generation is random and
//! deterministic per test name; there is **no shrinking** — a failing case
//! panics with the rendered assertion message and the case's seed so it can
//! be replayed by rerunning the test binary.

#![forbid(unsafe_code)]

pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a property test normally imports.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}", ::core::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} — {}", ::core::stringify!($cond), ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                ::core::stringify!($left), ::core::stringify!($right), left, right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
                ::core::stringify!($left), ::core::stringify!($right), left, right,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                ::core::stringify!($left), ::core::stringify!($right), left
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}\n  {}",
                ::core::stringify!($left), ::core::stringify!($right), left,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Skips the current case when an assumption does not hold. The stub simply
/// treats a failed assumption as a (silently) passing case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Uniform choice between strategies (all arms must yield the same type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests. Supports the
/// `#![proptest_config(ProptestConfig::with_cases(n))]` header and any number
/// of `fn name(arg in strategy, ...) { body }` items, each of which becomes a
/// `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (@body ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::from_name(::core::stringify!($name));
                for case in 0..cfg.cases {
                    let case_seed = $crate::test_runner::TestRng::snapshot(&rng);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::new_value(&$strat, &mut rng);
                    )+
                    let outcome: ::core::result::Result<(), ::std::string::String> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(msg) = outcome {
                        ::core::panic!(
                            "property `{}` failed at case {}/{} (seed {:#x}):\n{}",
                            ::core::stringify!($name), case + 1, cfg.cases, case_seed, msg
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@body ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
