//! Strategies for `Option<T>`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Output of [`of`].
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        // Some three times out of four: exercises both variants while keeping
        // generated structures mostly populated.
        if rng.ratio(3, 4) {
            Some(self.inner.new_value(rng))
        } else {
            None
        }
    }
}

/// `None` or `Some` of a value drawn from `inner`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
