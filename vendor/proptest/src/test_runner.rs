//! Test configuration and the deterministic RNG behind case generation.

/// Per-`proptest!` block configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic xoshiro256** RNG used for value generation. Seeded from the
/// test's name, so every run of a given test sees the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix_stream(seed: u64) -> impl FnMut() -> u64 {
    let mut x = seed;
    move || {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl TestRng {
    /// RNG seeded from an explicit value.
    pub fn from_seed(seed: u64) -> Self {
        let mut next = splitmix_stream(seed);
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// RNG seeded from a test name (FNV-1a of the name's bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::from_seed(h)
    }

    /// A digest of the current state, reported on failure for replay context.
    pub fn snapshot(rng: &TestRng) -> u64 {
        rng.s[0] ^ rng.s[1].rotate_left(17) ^ rng.s[2].rotate_left(31) ^ rng.s[3].rotate_left(47)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform `usize` in `0..bound` (`bound > 0`).
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// `true` with probability `num / den`.
    pub fn ratio(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_seeding_is_stable() {
        let mut a = TestRng::from_name("some_property");
        let mut b = TestRng::from_name("some_property");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("other_property");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
