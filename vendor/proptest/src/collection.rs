//! Strategies for collections with controlled sizes.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;

/// A collection size specification: exact, half-open, or inclusive.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.index(self.max - self.min + 1)
    }
}

/// Output of [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

/// A `Vec` whose length is drawn from `size` and whose elements are drawn
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Output of [`btree_set`].
#[derive(Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        let mut set = BTreeSet::new();
        // Duplicates shrink the set below the requested size; retry a bounded
        // number of times, then accept a smaller set (as real proptest may).
        let mut attempts = 0;
        while set.len() < n && attempts < n * 10 + 16 {
            set.insert(self.element.new_value(rng));
            attempts += 1;
        }
        set
    }
}

/// A `BTreeSet` with a size drawn from `size` (best effort when the element
/// domain is too small) and elements drawn from `element`.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    #[test]
    fn vec_respects_size_forms() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..100 {
            assert_eq!(vec(0u8..10, 3).new_value(&mut rng).len(), 3);
            let v = vec(0u8..10, 1..4).new_value(&mut rng);
            assert!((1..4).contains(&v.len()));
            let w = vec(0u8..10, 0..=2).new_value(&mut rng);
            assert!(w.len() <= 2);
        }
    }

    #[test]
    fn btree_set_elements_in_domain() {
        let mut rng = TestRng::from_seed(12);
        for _ in 0..100 {
            let s = btree_set(0usize..6, 0..6).new_value(&mut rng);
            assert!(s.len() < 6 || s.iter().all(|v| *v < 6));
        }
    }
}
