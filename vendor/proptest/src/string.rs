//! `&str` regex patterns as string strategies.
//!
//! Real proptest compiles the full regex language; this stub supports the
//! subset the workspace's tests use — a sequence of atoms, where an atom is a
//! character class `[...]` (literal chars and `a-z` ranges, `-` literal when
//! first or last), `.` (printable ASCII), or a literal character, optionally
//! followed by a `{m}` or `{m,n}` repetition. Unsupported syntax panics at
//! generation time with the offending pattern, so a typo fails loudly rather
//! than silently generating garbage.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_class(chars: &[char], start: usize, pattern: &str) -> (Vec<char>, usize) {
    // `start` points just past `[`. Returns (choices, index past `]`).
    let mut choices = Vec::new();
    let mut i = start;
    while i < chars.len() && chars[i] != ']' {
        let c = chars[i];
        if c == '-' && i > start && i + 1 < chars.len() && chars[i + 1] != ']' {
            panic!("unsupported regex class (interior '-') in pattern {pattern:?}");
        }
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let (lo, hi) = (c, chars[i + 2]);
            assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
            choices.extend((lo..=hi).filter(|ch| ch.is_ascii()));
            i += 3;
        } else {
            choices.push(c);
            i += 1;
        }
    }
    assert!(i < chars.len(), "unterminated character class in pattern {pattern:?}");
    assert!(!choices.is_empty(), "empty character class in pattern {pattern:?}");
    (choices, i + 1)
}

fn parse_repeat(chars: &[char], start: usize, pattern: &str) -> (usize, usize, usize) {
    // `start` points at the character after an atom. Returns (min, max, next).
    if start >= chars.len() || chars[start] != '{' {
        return (1, 1, start);
    }
    let close = chars[start..]
        .iter()
        .position(|c| *c == '}')
        .unwrap_or_else(|| panic!("unterminated repetition in pattern {pattern:?}"))
        + start;
    let body: String = chars[start + 1..close].iter().collect();
    let (min, max) = match body.split_once(',') {
        Some((lo, hi)) => (
            lo.parse().unwrap_or_else(|_| panic!("bad repetition in pattern {pattern:?}")),
            hi.parse().unwrap_or_else(|_| panic!("bad repetition in pattern {pattern:?}")),
        ),
        None => {
            let n =
                body.parse().unwrap_or_else(|_| panic!("bad repetition in pattern {pattern:?}"));
            (n, n)
        }
    };
    assert!(min <= max, "inverted repetition in pattern {pattern:?}");
    (min, max, close + 1)
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let (choices, next) = match chars[i] {
            '[' => parse_class(&chars, i + 1, pattern),
            '.' => ((' '..='~').collect(), i + 1),
            '\\' | '(' | ')' | '|' | '*' | '+' | '?' | '^' | '$' => {
                panic!("unsupported regex syntax {:?} in pattern {pattern:?}", chars[i])
            }
            c => (vec![c], i + 1),
        };
        let (min, max, next) = parse_repeat(&chars, next, pattern);
        atoms.push(Atom { choices, min, max });
        i = next;
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let n = atom.min + rng.index(atom.max - atom.min + 1);
            for _ in 0..n {
                out.push(atom.choices[rng.index(atom.choices.len())]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_many(pattern: &'static str, n: usize) -> Vec<String> {
        let mut rng = TestRng::from_seed(21);
        (0..n).map(|_| pattern.new_value(&mut rng)).collect()
    }

    #[test]
    fn class_with_counts() {
        for s in gen_many("[a-z][a-z0-9_]{0,8}", 200) {
            assert!((1..=9).contains(&s.chars().count()), "{s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn literal_chars_and_trailing_dash() {
        for s in gen_many("[A-Z][a-z]{1,4}-[A-Z][a-z]{1,6}", 100) {
            assert!(s.contains('-'), "{s:?}");
        }
        for s in gen_many("[a-zA-Z0-9_-]{1,8}", 200) {
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'));
        }
    }

    #[test]
    fn dot_is_printable_ascii() {
        for s in gen_many(".{0,200}", 50) {
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn space_and_quote_literals() {
        for s in gen_many("[a-zA-Z0-9 ']{0,12}", 200) {
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == ' ' || c == '\''));
        }
    }
}
