//! The [`Strategy`] trait and the primitive strategy combinators.

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, map: f }
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.new_value(rng)))
    }

    /// Builds recursive structures: `recurse` receives a strategy for the
    /// substructure and returns a strategy for one more level. `depth` bounds
    /// nesting; the size hints are accepted for API compatibility.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            current = Union::weighted(vec![(1, leaf.clone()), (2, deeper)]).boxed();
        }
        current
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.map)(self.source.new_value(rng))
    }
}

/// A type-erased, cheaply clonable strategy handle.
pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Chooses between several strategies of one value type (see `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone(), total_weight: self.total_weight }
    }
}

impl<T> Union<T> {
    /// Uniform choice over `arms`. Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Self::weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    /// Weighted choice over `arms`. Panics if `arms` is empty.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! requires positive total weight");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, arm) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return arm.new_value(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for any value of `T` (see [`any`]).
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(core::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// A `Vec` of strategies acts as a strategy for a `Vec` of values, one per
/// element (used for "one strategy per slot" constructions).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.new_value(rng)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
    (A, B, C, D, E, F, G, H, I, J, K)
    (A, B, C, D, E, F, G, H, I, J, K, L)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..500 {
            let v = (10i64..20).new_value(&mut rng);
            assert!((10..20).contains(&v));
            let w = (0u8..=255).new_value(&mut rng);
            let _ = w; // full range must not overflow
            let x = (-5i32..=5).new_value(&mut rng);
            assert!((-5..=5).contains(&x));
        }
    }

    #[test]
    fn union_uses_every_arm() {
        let mut rng = TestRng::from_seed(4);
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed(), Just(3u8).boxed()]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.new_value(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn recursion_is_depth_bounded() {
        #[derive(Debug)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = Just(()).prop_map(|_| Tree::Leaf).prop_recursive(3, 16, 2, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        let mut rng = TestRng::from_seed(5);
        for _ in 0..200 {
            assert!(depth(&strat.new_value(&mut rng)) <= 3 + 1);
        }
    }
}
