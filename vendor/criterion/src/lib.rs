//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no registry access, so the workspace vendors the
//! slice of the criterion API its benches use. Timing is a plain
//! `std::time::Instant` loop with mean/min reporting — no statistics, plots,
//! or baselines — but every bench compiles and produces a readable number,
//! which keeps `cargo bench` meaningful offline and keeps the bench sources
//! honest (they still have to compile against real signatures).

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a measured value scales, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]; ignored by the stub.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier: function name plus an optional parameter string.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier with both a function name and a parameter component.
    pub fn new<S: fmt::Display, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to bench closures; runs and times the measured routine.
pub struct Bencher {
    samples: u64,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.total += start.elapsed();
        self.iters += self.samples;
    }

    /// Times `routine` over inputs produced by `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (the stub uses it as the iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u64;
        self
    }

    /// Target measurement time; ignored by the stub.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Warm-up time; ignored by the stub.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declares the throughput of subsequent benches; recorded but unused.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnOnce(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: self.samples, total: Duration::ZERO, iters: 0 };
        f(&mut b, input);
        report(&self.name, &id.id, &b);
        self
    }

    /// Runs a benchmark with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<IdOrStr>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut b = Bencher { samples: self.samples, total: Duration::ZERO, iters: 0 };
        f(&mut b);
        report(&self.name, &id.into().0, &b);
        self
    }

    /// Finishes the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Accepts both `&str` and [`BenchmarkId`] where criterion does.
pub struct IdOrStr(String);

impl From<&str> for IdOrStr {
    fn from(s: &str) -> Self {
        IdOrStr(s.to_string())
    }
}

impl From<String> for IdOrStr {
    fn from(s: String) -> Self {
        IdOrStr(s)
    }
}

impl From<BenchmarkId> for IdOrStr {
    fn from(id: BenchmarkId) -> Self {
        IdOrStr(id.id)
    }
}

fn report(group: &str, id: &str, b: &Bencher) {
    if b.iters == 0 {
        println!("{group}/{id}: no iterations");
    } else {
        let mean = b.total / b.iters as u32;
        println!("{group}/{id}: mean {mean:?} over {} iters", b.iters);
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_samples: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_samples: 10 }
    }
}

impl Criterion {
    /// Applies command-line configuration (no-op in the stub).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.default_samples;
        BenchmarkGroup { name: name.into(), samples, _parent: self }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut b = Bencher { samples: self.default_samples, total: Duration::ZERO, iters: 0 };
        f(&mut b);
        report("bench", id, &b);
        self
    }

    /// Final reporting hook (no-op in the stub).
    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
