//! Session files: a small text format for driving `audex` from the command
//! line — a timestamped SQL script that builds a versioned database, and a
//! timestamped, annotated query log.
//!
//! # Database script
//!
//! SQL statements separated by `;`. A line starting with `@<timestamp>`
//! sets the clock for the statements that follow; each executed statement
//! then advances the clock by one second (so versions stay distinct and
//! `DURING` windows are meaningful). The timestamp accepts the paper's
//! `D/M/YYYY[:HH-MM-SS]` form or quoted ISO.
//!
//! ```text
//! @1/1/2008
//! CREATE TABLE Patients (pid TEXT, zipcode TEXT, disease TEXT);
//! INSERT INTO Patients VALUES ('p1', '120016', 'cancer');
//! @2/1/2008:10-00-00
//! UPDATE Patients SET zipcode = '145568' WHERE pid = 'p1';
//! ```
//!
//! # Log script
//!
//! Each entry is a header line
//! `@<timestamp> user=<id> role=<id> purpose=<id>` followed by one SELECT
//! query (possibly spanning lines, optional trailing `;`).
//!
//! ```text
//! @1/1/2008:09-30-00 user=u-4 role=nurse purpose=treatment
//! SELECT zipcode FROM Patients WHERE disease = 'cancer';
//! ```
//!
//! Lines starting with `--` (outside statements) and blank lines are
//! ignored in both formats.

use audex_log::{AccessContext, QueryLog};
use audex_sql::{ParseError, Timestamp};
use audex_storage::{Database, StorageError};
use std::fmt;

/// Errors from loading session files.
#[derive(Debug)]
pub enum SessionError {
    /// A malformed `@` header or annotation.
    Header {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// SQL inside the file failed to parse.
    Parse(ParseError),
    /// A statement failed to execute.
    Storage(StorageError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Header { line, message } => write!(f, "line {line}: {message}"),
            SessionError::Parse(e) => write!(f, "SQL parse error: {e}"),
            SessionError::Storage(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ParseError> for SessionError {
    fn from(e: ParseError) -> Self {
        SessionError::Parse(e)
    }
}

impl From<StorageError> for SessionError {
    fn from(e: StorageError) -> Self {
        SessionError::Storage(e)
    }
}

/// Splits a session file into lines, tolerating the endings real editors
/// produce: `\n`, `\r\n`, *and* lone `\r` (classic-Mac or mixed files —
/// `str::lines` leaves those whole, so an `@` header would swallow the
/// statement after it and fail with a confusing "invalid timestamp"). A
/// UTF-8 BOM on the first line is stripped for the same reason: it is
/// invisible in an editor but makes the header line not start with `@`.
fn script_lines(text: &str) -> impl Iterator<Item = &str> {
    let mut rest = text.strip_prefix('\u{feff}').unwrap_or(text);
    std::iter::from_fn(move || {
        if rest.is_empty() {
            return None;
        }
        match rest.find(['\n', '\r']) {
            None => Some(std::mem::take(&mut rest)),
            Some(i) => {
                let line = &rest[..i];
                let sep = if rest[i..].starts_with("\r\n") { 2 } else { 1 };
                rest = &rest[i + sep..];
                Some(line)
            }
        }
    })
}

fn parse_ts(text: &str, line: usize) -> Result<Timestamp, SessionError> {
    let trimmed = text.trim().trim_matches('\'');
    Timestamp::parse(trimmed)
        .ok_or(SessionError::Header { line, message: format!("invalid timestamp {trimmed:?}") })
}

/// Loads a database script (see module docs). Statements execute in order;
/// the clock starts at `1/1/2000` unless the script sets it.
pub fn load_database_script(text: &str) -> Result<Database, SessionError> {
    let mut db = Database::new();
    let mut clock = Timestamp::from_ymd(2000, 1, 1).expect("valid epoch");
    let mut pending = String::new();
    let mut pending_line = 1usize;

    let flush = |pending: &mut String,
                 line: usize,
                 clock: &mut Timestamp,
                 db: &mut Database|
     -> Result<(), SessionError> {
        let sql = pending.trim();
        if sql.is_empty() {
            pending.clear();
            return Ok(());
        }
        let stmts = audex_sql::parse_script(sql).map_err(|e| {
            // Re-anchor the error to the file for a useful message.
            SessionError::Header { line, message: format!("in statement block starting here: {e}") }
        })?;
        for stmt in stmts {
            db.execute(&stmt, *clock)?;
            *clock = clock.plus_seconds(1);
        }
        pending.clear();
        Ok(())
    };

    // The latest `@` header seen, for rejecting rewinds at the header line
    // (the default epoch is only a fallback and may be overridden downward).
    let mut last_header: Option<Timestamp> = None;

    for (i, raw) in script_lines(text).enumerate() {
        let line = i + 1;
        let trimmed = raw.trim();
        if pending.trim().is_empty() && (trimmed.is_empty() || trimmed.starts_with("--")) {
            continue;
        }
        if let Some(ts_text) = trimmed.strip_prefix('@') {
            flush(&mut pending, pending_line, &mut clock, &mut db)?;
            let ts = parse_ts(ts_text, line)?;
            let floor = last_header.unwrap_or(Timestamp(0)).max(db.last_ts());
            if ts < floor {
                return Err(SessionError::Header {
                    line,
                    message: format!(
                        "out-of-order timestamp @{ts}: the script clock is already at {floor} \
                         (timestamps must be non-decreasing)"
                    ),
                });
            }
            clock = ts;
            last_header = Some(ts);
            pending_line = line + 1;
            continue;
        }
        if pending.is_empty() {
            pending_line = line;
        }
        pending.push_str(raw);
        pending.push('\n');
    }
    flush(&mut pending, pending_line, &mut clock, &mut db)?;
    Ok(db)
}

fn parse_log_header(rest: &str, line: usize) -> Result<(Timestamp, AccessContext), SessionError> {
    let mut parts = rest.split_whitespace();
    let ts_text = parts.next().ok_or(SessionError::Header {
        line,
        message: "expected '@<timestamp> user=<id> role=<id> purpose=<id>'".into(),
    })?;
    let ts = parse_ts(ts_text, line)?;
    let (mut user, mut role, mut purpose) = (None, None, None);
    for kv in parts {
        let Some((k, v)) = kv.split_once('=') else {
            return Err(SessionError::Header {
                line,
                message: format!("expected key=value, found {kv:?}"),
            });
        };
        match k {
            "user" => user = Some(v.to_string()),
            "role" => role = Some(v.to_string()),
            "purpose" => purpose = Some(v.to_string()),
            other => {
                return Err(SessionError::Header {
                    line,
                    message: format!("unknown annotation {other:?} (expected user/role/purpose)"),
                })
            }
        }
    }
    let missing =
        |what: &str| SessionError::Header { line, message: format!("missing {what}= annotation") };
    Ok((
        ts,
        AccessContext::new(
            user.ok_or_else(|| missing("user"))?,
            role.ok_or_else(|| missing("role"))?,
            purpose.ok_or_else(|| missing("purpose"))?,
        ),
    ))
}

/// Loads a log script (see module docs) into a fresh [`QueryLog`].
pub fn load_log_script(text: &str) -> Result<QueryLog, SessionError> {
    let log = QueryLog::new();
    let mut header: Option<(Timestamp, AccessContext, usize)> = None;
    let mut pending = String::new();

    let flush = |header: &mut Option<(Timestamp, AccessContext, usize)>,
                 pending: &mut String|
     -> Result<(), SessionError> {
        let sql = pending.trim().trim_end_matches(';').trim();
        match (header.take(), sql.is_empty()) {
            (None, true) => Ok(()),
            (None, false) => Err(SessionError::Header {
                line: 1,
                message: "query text before any '@' header".into(),
            }),
            (Some((_, _, line)), true) => {
                Err(SessionError::Header { line, message: "header with no query".into() })
            }
            (Some((ts, ctx, _)), false) => {
                log.record_text(sql, ts, ctx)?;
                pending.clear();
                Ok(())
            }
        }
    };

    for (i, raw) in script_lines(text).enumerate() {
        let line = i + 1;
        let trimmed = raw.trim();
        if pending.trim().is_empty() && (trimmed.is_empty() || trimmed.starts_with("--")) {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('@') {
            flush(&mut header, &mut pending)?;
            header = Some({
                let (ts, ctx) = parse_log_header(rest, line)?;
                (ts, ctx, line)
            });
            continue;
        }
        if header.is_none() {
            return Err(SessionError::Header {
                line,
                message: "query text before any '@' header".into(),
            });
        }
        pending.push_str(raw);
        pending.push('\n');
    }
    flush(&mut header, &mut pending)?;
    Ok(log)
}

/// Renders a database's full history back into a loadable script (the
/// inverse of [`load_database_script`] up to timestamp granularity): table
/// creations first, then every backlog change in global timestamp order as
/// `INSERT` / `UPDATE` / `DELETE` statements under `@` headers.
pub fn render_database_script(db: &Database) -> String {
    use audex_storage::backlog::ChangeOp;
    use std::fmt::Write as _;

    let mut out = String::from("-- audex database export\n");

    // Gather (ts, table, statement) for every change; creations first.
    let mut events: Vec<(Timestamp, u32, String)> = Vec::new();
    for name in db.table_names() {
        let schema = db.table(&name).expect("table for every name").schema().clone();
        let created_at = db.table_created_at(&name).expect("creation instant for every table");
        let cols: Vec<String> = schema.iter().map(|(n, ty)| format!("{} {}", n, ty)).collect();
        events.push((created_at, 0, format!("CREATE TABLE {} ({});", name, cols.join(", "))));
        for rec in &db.table_changes(&name).expect("change log for every table") {
            let stmt = match (&rec.op, &rec.after) {
                (ChangeOp::Insert, Some(row)) | (ChangeOp::Update, Some(row)) => {
                    // Updates and inserts both re-state the full image; on
                    // reload an update becomes delete+insert of the image,
                    // which preserves per-instant *contents* (tids may be
                    // renumbered — documented).
                    let values: Vec<String> = row.iter().map(render_value).collect();
                    if rec.op == ChangeOp::Insert {
                        format!("INSERT INTO {} VALUES ({});", name, values.join(", "))
                    } else {
                        let sets: Vec<String> = schema
                            .iter()
                            .zip(row)
                            .map(|((n, _), v)| format!("{} = {}", n, render_value(v)))
                            .collect();
                        let keys = key_predicate(&schema, rec, db, &name);
                        format!("UPDATE {} SET {}{};", name, sets.join(", "), keys)
                    }
                }
                (ChangeOp::Delete, _) => {
                    let keys = key_predicate(&schema, rec, db, &name);
                    format!("DELETE FROM {}{};", name, keys)
                }
                _ => continue,
            };
            events.push((rec.ts, 1, stmt));
        }
    }
    events.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));

    let mut last_ts: Option<Timestamp> = None;
    for (ts, _, stmt) in events {
        if last_ts != Some(ts) {
            let _ = writeln!(out, "@{ts}");
            last_ts = Some(ts);
        }
        let _ = writeln!(out, "{stmt}");
    }
    out
}

/// Predicate identifying the changed tuple by its *pre-change* image (the
/// exporter has no tid syntax), using the state just before `rec.ts`.
fn key_predicate(
    schema: &audex_storage::Schema,
    rec: &audex_storage::backlog::ChangeRecord,
    db: &Database,
    table: &audex_sql::Ident,
) -> String {
    let before = db.row_as_of(table, rec.tid, Timestamp(rec.ts.0 - 1));
    match before {
        Some(row) => {
            let conds: Vec<String> = schema
                .iter()
                .zip(&row)
                .map(|((n, _), v)| match v {
                    audex_storage::Value::Null => format!("{n} IS NULL"),
                    other => format!("{n} = {}", render_value(other)),
                })
                .collect();
            format!(" WHERE {}", conds.join(" AND "))
        }
        None => String::new(),
    }
}

fn render_value(v: &audex_storage::Value) -> String {
    match v {
        audex_storage::Value::Null => "NULL".into(),
        audex_storage::Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.into(),
        audex_storage::Value::Int(i) => i.to_string(),
        audex_storage::Value::Float(f) => format!("{f:?}"),
        audex_storage::Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        audex_storage::Value::Ts(t) => format!("{}", t.0),
    }
}

/// Renders a query log back into a loadable script (the inverse of
/// [`load_log_script`]).
pub fn render_log_script(log: &QueryLog) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("-- audex query-log export\n");
    for e in log.snapshot() {
        let _ = writeln!(
            out,
            "@{} user={} role={} purpose={}",
            e.executed_at, e.context.user.value, e.context.role.value, e.context.purpose.value
        );
        let _ = writeln!(out, "{};", e.query());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use audex_sql::{parse_query, Ident};

    const DB: &str = "\
-- the paper's tiny scenario
@1/1/2008
CREATE TABLE Patients (pid TEXT, zipcode TEXT, disease TEXT);
INSERT INTO Patients VALUES ('p1', '120016', 'cancer'),
                            ('p2', '145568', 'flu');
@2/1/2008:10-00-00
UPDATE Patients SET zipcode = '145568' WHERE pid = 'p1';
";

    const LOG: &str = "\
-- two annotated accesses
@1/1/2008:09-30-00 user=u-4 role=nurse purpose=treatment
SELECT zipcode FROM Patients
WHERE disease = 'cancer';

@3/1/2008:11-00-00 user=u-9 role=clerk purpose=billing
SELECT pid FROM Patients
";

    #[test]
    fn database_script_builds_versions() {
        let db = load_database_script(DB).unwrap();
        let t_early = Timestamp::from_ymd(2008, 1, 1).unwrap().plus_seconds(10);
        let t_late = Timestamp::from_ymd(2008, 1, 3).unwrap();
        let q = parse_query("SELECT zipcode FROM Patients WHERE pid = 'p1'").unwrap();
        assert_eq!(db.at(t_early).query(&q).unwrap().rows[0][0].to_string(), "120016");
        assert_eq!(db.at(t_late).query(&q).unwrap().rows[0][0].to_string(), "145568");
    }

    #[test]
    fn log_script_parses_annotations() {
        let log = load_log_script(LOG).unwrap();
        assert_eq!(log.len(), 2);
        let e1 = log.get(audex_log::QueryId(1)).unwrap();
        assert_eq!(e1.context.user, Ident::new("u-4"));
        assert_eq!(e1.context.role, Ident::new("nurse"));
        assert_eq!(e1.executed_at, Timestamp::from_ymd_hms(2008, 1, 1, 9, 30, 0).unwrap());
        assert!(e1.text.contains("disease = 'cancer'"));
        let e2 = log.get(audex_log::QueryId(2)).unwrap();
        assert_eq!(e2.context.purpose, Ident::new("billing"));
    }

    #[test]
    fn end_to_end_session_audit() {
        let db = load_database_script(DB).unwrap();
        let log = load_log_script(LOG).unwrap();
        let engine = audex_core::AuditEngine::new(&db, &log);
        let expr = audex_sql::parse_audit(
            "DURING 1/1/2008 TO now() AUDIT disease FROM Patients WHERE zipcode = '120016' \
             DATA-INTERVAL 1/1/2008 TO now()",
        );
        // clause order free — rewrite in canonical order if the above fails
        let expr = match expr {
            Ok(e) => e,
            Err(_) => audex_sql::parse_audit(
                "DURING 1/1/2008 TO now() DATA-INTERVAL 1/1/2008 TO now() \
                 AUDIT disease FROM Patients WHERE zipcode = '120016'",
            )
            .unwrap(),
        };
        let r = engine.audit_at(&expr, Timestamp::from_ymd(2008, 2, 1).unwrap()).unwrap();
        assert!(r.verdict.suspicious);
        assert_eq!(r.verdict.contributing, vec![audex_log::QueryId(1)]);
    }

    #[test]
    fn editor_line_endings_are_tolerated() {
        // CRLF endings plus trailing whitespace on `@` header lines, as a
        // Windows editor would save them.
        let db_src =
            "-- c\r\n@1/1/2008 \t\r\nCREATE TABLE t (a INT);\r\nINSERT INTO t VALUES (1);\r\n";
        let db = load_database_script(db_src).unwrap();
        assert_eq!(db.table(&Ident::new("t")).unwrap().len(), 1);

        // Lone-\r endings (classic Mac / mixed files).
        let db =
            load_database_script("@1/1/2008\rCREATE TABLE t (a INT);\rINSERT INTO t VALUES (2);")
                .unwrap();
        assert_eq!(db.table(&Ident::new("t")).unwrap().len(), 1);

        // A UTF-8 BOM before the first header.
        let db = load_database_script("\u{feff}@1/1/2008\nCREATE TABLE t (a INT);").unwrap();
        assert_eq!(db.table_names().len(), 1);

        // The log loader gets the same treatment, annotations intact.
        let log_src =
            "@1/1/2008:09-30-00 user=u-4 role=nurse purpose=treatment \t\r\nSELECT zipcode FROM t;\r\n";
        let log = load_log_script(log_src).unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log.get(audex_log::QueryId(1)).unwrap().context.role, Ident::new("nurse"));
        let log = load_log_script("@1/1/2008 user=u role=r purpose=p\rSELECT a FROM t\r").unwrap();
        assert_eq!(log.len(), 1);

        // Line numbers in errors still count every physical line.
        let err = load_database_script("-- c\r\n@nope\r\n").unwrap_err();
        assert!(matches!(err, SessionError::Header { line: 2, .. }), "{err}");
    }

    #[test]
    fn bad_headers_are_rejected_with_line_numbers() {
        let err = load_database_script("@not-a-date\nCREATE TABLE t (a INT);").unwrap_err();
        assert!(matches!(err, SessionError::Header { line: 1, .. }), "{err}");

        let err = load_log_script("SELECT a FROM t;").unwrap_err();
        assert!(err.to_string().contains("before any"), "{err}");

        let err = load_log_script("@1/1/2008 user=u role=r\nSELECT a FROM t").unwrap_err();
        assert!(err.to_string().contains("purpose"), "{err}");

        let err = load_log_script(
            "@1/1/2008 user=u role=r purpose=p\n@1/1/2008 user=v role=r purpose=p\nSELECT a FROM t",
        )
        .unwrap_err();
        assert!(err.to_string().contains("no query"), "{err}");
    }

    #[test]
    fn bad_sql_is_anchored_to_block() {
        let err = load_database_script("@1/1/2008\nCREATE TABLE t (a INT);\nSELEC x;").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("statement block"), "{msg}");
    }

    #[test]
    fn out_of_order_script_clock_is_rejected_at_the_header() {
        let script = "@2/1/2008\nCREATE TABLE t (a INT);\n@1/1/2008\nINSERT INTO t VALUES (1);";
        let err = load_database_script(script).unwrap_err();
        assert!(matches!(err, SessionError::Header { line: 3, .. }), "{err}");
        assert!(err.to_string().contains("out-of-order"), "{err}");
        assert!(err.to_string().contains("line 3"), "{err}");

        // Header-to-header rewinds are caught even with no statements between.
        let script = "@2/1/2008\n@1/1/2008\nCREATE TABLE t (a INT);";
        let err = load_database_script(script).unwrap_err();
        assert!(matches!(err, SessionError::Header { line: 2, .. }), "{err}");

        // But a first header before the default epoch is fine — the default
        // clock is a fallback, not a floor.
        let db = load_database_script("@1/1/1999\nCREATE TABLE t (a INT);").unwrap();
        assert_eq!(db.table_names().len(), 1);
    }

    #[test]
    fn log_export_round_trips() {
        let log = load_log_script(LOG).unwrap();
        let script = render_log_script(&log);
        let log2 = load_log_script(&script).unwrap();
        assert_eq!(log.len(), log2.len());
        for (a, b) in log.snapshot().iter().zip(log2.snapshot()) {
            assert_eq!(a.executed_at, b.executed_at);
            assert_eq!(a.context, b.context);
            assert_eq!(a.query(), b.query());
        }
    }

    #[test]
    fn database_export_round_trips_contents() {
        let db = load_database_script(DB).unwrap();
        let script = render_database_script(&db);
        let db2 = load_database_script(&script).unwrap();
        // Contents agree at the end state (tids may be renumbered).
        let q = parse_query("SELECT pid, zipcode FROM Patients ORDER BY pid").unwrap();
        let now = Timestamp::from_ymd(2100, 1, 1).unwrap();
        assert_eq!(db.at(now).query(&q).unwrap().rows, db2.at(now).query(&q).unwrap().rows);
        // And at the intermediate version, before the zipcode update.
        let mid = Timestamp::from_ymd(2008, 1, 1).unwrap().plus_seconds(30);
        assert_eq!(db.at(mid).query(&q).unwrap().rows, db2.at(mid).query(&q).unwrap().rows);
    }

    #[test]
    fn export_handles_deletes_and_nulls() {
        let db = load_database_script(
            "@1/1/2008\nCREATE TABLE t (a INT, b TEXT);\nINSERT INTO t VALUES (1, NULL), (2, 'x');\n@2/1/2008\nDELETE FROM t WHERE a = 1;",
        )
        .unwrap();
        let script = render_database_script(&db);
        let db2 = load_database_script(&script).unwrap();
        let q = parse_query("SELECT a FROM t ORDER BY a").unwrap();
        let now = Timestamp::from_ymd(2100, 1, 1).unwrap();
        assert_eq!(db.at(now).query(&q).unwrap().rows, db2.at(now).query(&q).unwrap().rows);
        let early = Timestamp::from_ymd(2008, 1, 1).unwrap().plus_seconds(10);
        assert_eq!(db.at(early).query(&q).unwrap().rows.len(), 2);
        assert_eq!(db2.at(early).query(&q).unwrap().rows.len(), 2);
    }

    #[test]
    fn comments_inside_statements_survive() {
        let db = load_database_script(
            "@1/1/2008\nCREATE TABLE t (a INT); -- trailing comment\nINSERT INTO t VALUES (1);",
        )
        .unwrap();
        assert_eq!(db.table(&Ident::new("t")).unwrap().len(), 1);
    }
}
