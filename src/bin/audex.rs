//! The `audex` command-line auditor.
//!
//! ```text
//! audex audit --db db.sql --log log.txt --expr "AUDIT disease FROM Patients WHERE zipcode='120016'"
//! audex audit --db db.sql --log log.txt --expr-file audit.txt --now 1/4/2008 --csv --stats
//! audex serve --stdio --db db.sql              # audexd over stdin/stdout
//! audex serve --listen 127.0.0.1:7007          # audexd over TCP
//! audex send --addr 127.0.0.1:7007 '{"cmd":"stats"}'
//! audex send --addr 127.0.0.1:7007 '{"cmd":"create-tenant","name":"acme"}'
//! audex send --addr 127.0.0.1:7007 --tenant acme '{"cmd":"stats"}'
//! audex paper        # regenerate the paper's granule sets
//! audex demo         # synthetic hospital + planted snooping, end to end
//! audex help
//! ```
//!
//! File formats are documented in [`audex::session`]; the `serve`/`send`
//! wire protocol in [`audex::service::proto`].

use audex::core::{AuditEngine, AuditMode, EngineObs, EngineOptions, Governor};
use audex::obs::{Registry, Tracer};
use audex::persist::{FsyncPolicy, Journal, Recovered, WalOptions};
use audex::service::{
    FleetConfig, FleetRecovery, FrontDoorConfig, ServiceConfig, ServiceCore, ShardMap,
};
use audex::session::{load_database_script, load_log_script};
use audex::Timestamp;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

/// SIGTERM/SIGINT → graceful drain, for the TCP serve path. The workspace
/// stays dependency-free, so instead of a signal crate this declares libc's
/// `signal(2)` directly — the one `unsafe` in the binary, confined here.
/// Installed only for `serve --listen`: in `--stdio` mode the default
/// terminate action is correct (the child is driven over pipes and drains
/// on EOF).
#[cfg(unix)]
mod sig {
    use std::sync::atomic::AtomicBool;

    /// Set by the handler; `Server::run_watching` polls it.
    pub static DRAIN: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: a store on a static atomic.
        DRAIN.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    use std::sync::atomic::AtomicBool;

    pub static DRAIN: AtomicBool = AtomicBool::new(false);

    pub fn install() {}
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("audit") => cmd_audit(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("send") => cmd_send(&args[1..]),
        Some("recover") => cmd_recover(&args[1..]),
        Some("compact") => cmd_compact(&args[1..]),
        Some("triage") => cmd_triage(&args[1..]),
        Some("paper") => cmd_paper(),
        Some("demo") => cmd_demo(),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{}", USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}; see `audex help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
audex — audit SQL query logs for privacy violations
       (Goyal, Gupta & Gupta, ICDE 2008, implemented in Rust)

USAGE:
  audex audit (--db <FILE> --log <FILE> | --data-dir <DIR>)
              (--expr <TEXT> | --expr-file <FILE>)
              [--now <TIMESTAMP>] [--csv] [--per-query] [--no-static-filter]
              [--granules <LIMIT>] [--stats] [--deadline-ms <MS>]
              [--max-steps <N>] [--max-granules <N>] [--threads <N>]
              [--trace-out <FILE>]
  audex serve (--stdio | --listen <ADDR>) [--db <FILE>] [--log <FILE>]
              [--data-dir <DIR>] [--default-tenant <NAME>]
              [--fsync always|batch|never]
              [--checkpoint-every <N>] [--deadline-ms <MS>] [--max-steps <N>]
              [--max-granules <N>] [--threads <N>] [--metrics-every <N>]
              [--trace-out <FILE>] [--max-conns <N>] [--sub-queue <N>]
              [--conn-idle-ms <MS>] [--max-line-bytes <N>] [--drain-ms <MS>]
              [--net-fault <SPEC>]... [--scan-all-audits]
              [--redact-log] [--review-budget <N>]
              [--storage mvcc|replay]
  audex send  --addr <ADDR> [--tenant <NAME>] [--connect-retries <N>]
              [REQUEST...]
  audex triage --data-dir <DIR> [--tenant <NAME>] [--top <N>] [--offset <N>]
                                   offline review queue from a store
  audex recover --data-dir <DIR>   repair a crashed store (all tenants)
  audex compact --data-dir <DIR>   checkpoint + prune a store offline
                                   (all tenants)
  audex paper     regenerate the paper's worked artifacts (Figs. 4-6)
  audex demo      synthetic hospital with planted snooping, audited end to end
  audex help      this text

FILES:
  --db    a timestamped SQL script ('@<ts>' lines set the clock)
  --log   a query log ('@<ts> user=<id> role=<id> purpose=<id>' headers)
  See the audex::session module docs for the exact formats.

DURABILITY (--data-dir, the durable audit store):
  `audex serve --data-dir DIR` journals every committed DML change, log
  append, and audit (un)registration to a segmented write-ahead log in DIR,
  recovering any existing state first (checkpoint + WAL tail, torn tails
  truncated). --fsync picks the flush discipline: `always` (acknowledged =>
  durable), `batch` (group fsync, bounded loss window; default), `never`.
  --checkpoint-every N snapshots derived state every N records so recovery
  and the WAL stay short. `audex recover` repairs and summarizes a store
  without serving. `audex compact` forces a checkpoint and prunes covered
  segments. `audex audit --data-dir` audits recovered state read-only; with
  --stats it also reports the store's journal counters.

OPTIONS:
  --now          reference time for now() and clause defaults
                 (default: latest database change)
  --csv          emit contributing queries as CSV instead of text
  --per-query    also evaluate each query in isolation (Definition 3)
  --no-static-filter   skip the static candidate analysis
  --granules N   also print the granule set G when it has at most N granules
  --stats        after the audit, print resource-governor progress (work
                 steps), the snapshot-cache hit statistics, and (with
                 --data-dir) the dispatch-index counters from replay
  --threads N    worker threads for the evaluation phases (default: available
                 cores; 1 = sequential). Reports are identical at any setting.

TELEMETRY:
  --trace-out FILE   record every pipeline phase (parse, recovery replay,
                     target-view, candidate filter, batch suspicion,
                     refinement; for serve also WAL appends/fsyncs and
                     checkpoints) as a Chrome-trace-event JSON file —
                     open it at chrome://tracing or in Perfetto. Written
                     on error paths too, with interrupted spans marked.
  --metrics-every N  (serve) broadcast a `metrics` event carrying the
                     Prometheus text exposition to subscribers every N
                     ingested queries. Any client can also poll with a
                     {\"cmd\":\"metrics\"} request at any time.

RESOURCE LIMITS (the audit stops with a structured error instead of hanging;
for `serve`, the same limits act per request as admission control):
  --deadline-ms MS   wall-clock budget for the whole audit
  --max-steps N      cap on governed work steps (versions scanned, rows
                     folded, queries and facts evaluated)
  --max-granules N   refuse audits whose granule set exceeds N granules

SERVE / SEND (audexd, the streaming audit service):
  audex serve speaks a line-delimited JSON protocol: one request object per
  line, one response line back, plus event lines after `subscribe`. Commands:
  dml, log, register, unregister, audit, subscribe, stats, metrics,
  triage, queue, ack, dismiss, weight,
  create-tenant, drop-tenant, list-tenants, shutdown — see
  the audex::service::proto module docs for the wire format. `--db`/`--log`
  preload a session-script database and query log (the log is folded into
  the incremental touch index exactly as if streamed). `audex send` posts
  request lines (arguments, or stdin when none) to a serving address and
  prints the responses; with a `subscribe` request it follows the event
  stream until the connection closes. --connect-retries N (default 5)
  retries the initial connect every 100 ms while the server is starting.
  Registered (standing) audits are scored through a dispatch index that
  prunes audits which provably cannot match an incoming query;
  --scan-all-audits disables it (every audit evaluated on every query) as
  the differential oracle for the indexed path.

STORAGE (--storage, the version-history representation):
  mvcc (default)  every tuple carries a [xmin, xmax) validity interval, so
                  reconstructing the state at an audit instant is a
                  visibility filter — flat in history length. `audex audit
                  --stats`, serve `stats` and the Prometheus exposition
                  report live/dead version counts, visibility-probe
                  counters and retained bytes; `audex compact` reports the
                  dead-version occupancy per tenant (versions are retained,
                  not reclaimed: the backlog relation b-T needs them).
  replay          rebuild states by replaying the change prefix — the
                  original representation, retained as the differential
                  oracle for the MVCC path.

TENANCY (multi-tenant audexd; org-scoped shards):
  One daemon serves many isolated tenants. Each tenant owns an independent
  database, query log, standing audits, governor and (with --data-dir)
  journal under DIR/tenants/<NAME>/, so tenants ingest, audit and
  checkpoint in parallel with no shared lock on the hot path. Requests
  address a tenant with a \"tenant\" field; without one they go to the
  default tenant, which keeps the pre-tenancy layout (DIR root) and wire
  behaviour — existing clients and stores work unchanged.
  --default-tenant NAME  (serve) rename the default tenant (default:
                         \"default\")
  --tenant NAME          (send) stamp \"tenant\":NAME into every request
                         line that doesn't already address one
  {\"cmd\":\"create-tenant\",\"name\":N}  make a tenant (and its store)
  {\"cmd\":\"drop-tenant\",\"name\":N}    detach it; its store directory is
                                      retired by rename, never deleted
  {\"cmd\":\"list-tenants\"}             per-tenant summary rows (rendered
                                      as a table on a terminal)
  stats/metrics/audit take \"all_tenants\":true for fleet-wide fan-outs:
  stats and metrics snapshot one shard at a time (a stuck tenant shows as
  busy instead of blocking the rest); audit evaluates one standing audit
  on every tenant that registered it, in parallel. A tenant whose store
  fails recovery is reported as degraded and skipped, never fatal.

TRIAGE (evidence-backed review of flagged queries):
  Every suspicious verdict carries evidence (indispensable-tuple counts, the
  sensitive columns covered, the audits triggered) and enters a ranked
  review queue: priority = suspicion x sensitivity, where per-table and
  per-column sensitivity weights are set with {\"cmd\":\"weight\",
  \"table\":T,\"column\":C,\"weight\":W} (journaled, so they survive
  restarts). Recurring patterns are mined into templates so one auditor
  decision covers many similar queries.
  {\"cmd\":\"triage\"}                   queue counts, templates, compression
  {\"cmd\":\"queue\",\"top\":K,\"offset\":O} one page of the ranked queue
                                      (rendered as a table on a terminal;
                                      top defaults to --review-budget)
  {\"cmd\":\"ack\",\"query\":N}           mark reviewed (journaled)
  {\"cmd\":\"dismiss\",\"query\":N}       mark a false positive (journaled)
  --review-budget N  (serve) default page size for `queue`, i.e. how many
                     reviews the auditor can afford per sitting
  --redact-log       (serve) never write raw query SQL to the durable
                     store: the journal keeps structural metadata (tables,
                     columns, hash, scores) instead. Tuple-level suspicion
                     scoring, the review queue, and templates survive
                     redaction and recovery unchanged; batch re-audits of
                     the redacted span are honestly reported as skipped.
  `audex triage --data-dir DIR` prints the same report offline.

FRONT DOOR (TCP serve only; overload-safety knobs):
  --max-conns N      concurrent connection cap (default 1024). Accepts over
                     the cap are shed with {\"ok\":false,\"error\":\"overloaded\"}
                     instead of queueing.
  --sub-queue N      bounded per-subscriber event queue depth (default 256).
                     A subscriber that falls a full queue behind is evicted
                     (audex_service_subscribers_evicted_total) so ingest
                     never waits on the slowest client.
  --conn-idle-ms MS  read-idle deadline for non-subscriber connections
                     (default: none). Idle connections are answered with a
                     structured error and closed.
  --max-line-bytes N longest accepted request line (default 1 MiB); longer
                     frames are rejected and the stream resynchronised at
                     the next newline.
  --drain-ms MS      graceful-drain deadline (default 2000). On `shutdown`
                     or SIGTERM/SIGINT the server stops accepting, flushes
                     subscriber queues within this budget, fsyncs the
                     journal, and exits 0.
  --net-fault SPEC   deterministic fault injection for testing, repeatable.
                     SPEC is kind:conn:arg with conn the 1-based accept
                     ordinal (0 = every connection): torn:C:CHUNK (reads
                     fragmented to CHUNK bytes), eof:C:BYTES (EOF after
                     BYTES read), stall:C:BYTES (writes absorb BYTES then
                     time out), slow:C:MS (each read pauses MS ms).
";

fn take_value(args: &[String], i: &mut usize, flag: &str) -> Result<String, String> {
    *i += 1;
    args.get(*i).cloned().ok_or_else(|| format!("{flag} requires a value"))
}

fn cmd_audit(args: &[String]) -> Result<(), String> {
    let mut db_path = None;
    let mut log_path = None;
    let mut data_dir: Option<String> = None;
    let mut expr_text: Option<String> = None;
    let mut now: Option<Timestamp> = None;
    let mut csv = false;
    let mut per_query = false;
    let mut static_filter = true;
    let mut granules: Option<u64> = None;
    let mut stats = false;
    let mut limits = audex::core::ResourceLimits::unlimited();
    let mut threads: Option<usize> = None;
    let mut trace_out: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--db" => db_path = Some(take_value(args, &mut i, "--db")?),
            "--log" => log_path = Some(take_value(args, &mut i, "--log")?),
            "--data-dir" => data_dir = Some(take_value(args, &mut i, "--data-dir")?),
            "--trace-out" => trace_out = Some(take_value(args, &mut i, "--trace-out")?),
            "--expr" => expr_text = Some(take_value(args, &mut i, "--expr")?),
            "--expr-file" => {
                let path = take_value(args, &mut i, "--expr-file")?;
                expr_text =
                    Some(std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?);
            }
            "--now" => {
                let text = take_value(args, &mut i, "--now")?;
                now = Some(
                    Timestamp::parse(&text)
                        .ok_or_else(|| format!("invalid --now timestamp {text:?}"))?,
                );
            }
            "--csv" => csv = true,
            "--per-query" => per_query = true,
            "--no-static-filter" => static_filter = false,
            "--stats" => stats = true,
            "--granules" => {
                let text = take_value(args, &mut i, "--granules")?;
                granules =
                    Some(text.parse().map_err(|_| format!("invalid --granules limit {text:?}"))?);
            }
            "--deadline-ms" => {
                let text = take_value(args, &mut i, "--deadline-ms")?;
                let ms: u64 =
                    text.parse().map_err(|_| format!("invalid --deadline-ms value {text:?}"))?;
                limits.deadline = Some(std::time::Duration::from_millis(ms));
            }
            "--max-steps" => {
                let text = take_value(args, &mut i, "--max-steps")?;
                limits.max_steps =
                    Some(text.parse().map_err(|_| format!("invalid --max-steps value {text:?}"))?);
            }
            "--max-granules" => {
                let text = take_value(args, &mut i, "--max-granules")?;
                limits.granule_limit = Some(
                    text.parse().map_err(|_| format!("invalid --max-granules value {text:?}"))?,
                );
            }
            "--threads" => {
                let text = take_value(args, &mut i, "--threads")?;
                let n: usize =
                    text.parse().map_err(|_| format!("invalid --threads value {text:?}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                threads = Some(n);
            }
            other => return Err(format!("unknown option {other:?}")),
        }
        i += 1;
    }

    let expr_text = expr_text.ok_or("--expr or --expr-file is required")?;

    // Telemetry is armed only when asked for: with no --trace-out both
    // handles are disabled and every span/histogram below is a no-op.
    let tracer = if trace_out.is_some() { Tracer::new() } else { Tracer::disabled() };
    let registry = if trace_out.is_some() { Registry::new() } else { Registry::disabled() };

    // A durable store captures the database *and* the log, so --data-dir
    // replaces both file flags; mixing them would be ambiguous about which
    // source wins.
    let (db, log, store, dispatch) = if let Some(dir) = data_dir {
        if db_path.is_some() || log_path.is_some() {
            return Err("--data-dir is mutually exclusive with --db/--log".into());
        }
        let mut recovered =
            audex::persist::read_store(Path::new(&dir)).map_err(|e| format!("{dir}: {e}"))?;
        report_recovery(&dir, &recovered);
        let core = {
            let _span = tracer.span("recovery-replay");
            ServiceCore::recovered(&mut recovered, ServiceConfig::default())
                .map_err(|e| format!("replaying {dir}: {e}"))?
        };
        // Capture before the core is dismantled: replaying a store with
        // standing audits routes every journaled query through the
        // dispatch index, and --stats reports that work.
        let dispatch = core.dispatch_stats();
        let (db, log) = core.into_parts();
        (db, log, Some(recovered), Some(dispatch))
    } else {
        let db_path = db_path.ok_or("--db is required (or --data-dir)")?;
        let log_path = log_path.ok_or("--log is required (or --data-dir)")?;
        let db_text = std::fs::read_to_string(&db_path).map_err(|e| format!("{db_path}: {e}"))?;
        let log_text =
            std::fs::read_to_string(&log_path).map_err(|e| format!("{log_path}: {e}"))?;
        let db = load_database_script(&db_text).map_err(|e| format!("{db_path}: {e}"))?;
        let log = load_log_script(&log_text).map_err(|e| format!("{log_path}: {e}"))?;
        (db, log, None, None)
    };
    let expr = {
        let _span = tracer.span("parse");
        audex::parse_audit(&expr_text).map_err(|e| format!("audit expression: {e}"))?
    };
    let now = now.unwrap_or_else(|| db.last_ts());

    let engine = AuditEngine::with_options(
        &db,
        &log,
        EngineOptions {
            static_filter,
            mode: if per_query { AuditMode::PerQuery } else { AuditMode::Batch },
            limits,
            parallelism: threads.unwrap_or_else(audex::core::default_parallelism),
            ..Default::default()
        },
    )
    .with_obs(EngineObs::new(Arc::clone(&registry), Arc::clone(&tracer)));
    // Arm the governor here (rather than letting the engine arm its own per
    // call) so --stats can report how much governed work the run consumed.
    let governor = Governor::arm(&limits);
    let run = {
        // One enclosing span so the exported trace nests the engine's
        // phase spans (target-view, candidate-filter, batch-suspicion,
        // refinement) under a single "audit" parent.
        let span = tracer.span("audit");
        let run = engine
            .prepare_governed(&expr, now, &governor)
            .and_then(|prepared| engine.run_governed(&prepared, &governor).map(|r| (prepared, r)));
        if run.is_err() {
            span.mark_truncated();
        }
        run
    };
    // A governor trip or evaluation error still leaves a useful trace of
    // the phases that did run; flush it before surfacing the error.
    if let (Some(path), Err(e)) = (&trace_out, &run) {
        std::fs::write(path, tracer.export_chrome_json()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("audex: wrote phase trace to {path}");
        return Err(e.to_string());
    }
    let (prepared, report) = run.map_err(|e| e.to_string())?;

    {
        let _span = tracer.span("report");
        if csv {
            print!("{}", report.render_csv(&log));
        } else {
            print!("{}", report.render_text(&log));
            if let Some(limit) = granules {
                match prepared.render_granules(limit) {
                    Ok(g) => println!("granule set G = {g}"),
                    Err(e) => println!("granule set not printed: {e}"),
                }
            }
        }
    }
    if let Some(path) = &trace_out {
        std::fs::write(path, tracer.export_chrome_json()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("audex: wrote phase trace to {path}");
    }
    if stats {
        let snap = db.snapshot_stats();
        let reads = snap.hits + snap.misses;
        let rate = if reads == 0 { 0.0 } else { 100.0 * snap.hits as f64 / reads as f64 };
        println!("governor: {} work steps", governor.steps());
        match limits.max_steps {
            Some(cap) => println!(
                "governor: step budget {cap} ({} unused)",
                cap.saturating_sub(governor.steps())
            ),
            None => println!("governor: no step budget configured"),
        }
        println!(
            "snapshot cache: {} hits, {} misses ({rate:.1}% hit rate), {} snapshots retained",
            snap.hits,
            snap.misses,
            db.snapshot_cache_len()
        );
        if let Some(m) = db.mvcc_stats() {
            let scan = db.mvcc_scan_stats();
            println!(
                "mvcc store: {} live / {} dead version(s), ~{} byte(s); \
                 {} visibility probe(s), {} chain entr{} examined",
                m.live_versions,
                m.dead_versions,
                m.approx_bytes,
                scan.probes,
                scan.versions_examined,
                if scan.versions_examined == 1 { "y" } else { "ies" },
            );
        }
        if let Some(d) = &dispatch {
            println!(
                "dispatch index (recovery replay): {} probes, {} audits pruned, \
                 {} shortlisted, {} rebuild(s)",
                d.probes, d.pruned, d.shortlisted, d.rebuilds
            );
        }
        if let Some(recovered) = &store {
            // Read-only open: no Journal counters exist, so report the
            // store's shape from the recovery scan instead.
            let covers = recovered.checkpoint.as_ref().map_or(0, |c| c.covers_seq);
            println!(
                "durable store: {} record(s) ({covers} via checkpoint, lag {}), torn tail: {}",
                recovered.total_records(),
                recovered.next_seq.saturating_sub(covers),
                match &recovered.torn {
                    Some(t) => format!("{} byte(s) at {}", t.dropped_bytes, t.path.display()),
                    None => "none".into(),
                },
            );
        }
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut stdio = false;
    let mut listen: Option<String> = None;
    let mut db_path: Option<String> = None;
    let mut log_path: Option<String> = None;
    let mut data_dir: Option<String> = None;
    let mut default_tenant: Option<String> = None;
    let mut fsync = FsyncPolicy::Batch;
    let mut checkpoint_every: Option<u64> = None;
    let mut metrics_every: Option<u64> = None;
    let mut trace_out: Option<String> = None;
    let mut limits = audex::core::ResourceLimits::unlimited();
    let mut threads: Option<usize> = None;
    let mut scan_all_audits = false;
    let mut redact_log = false;
    let mut review_budget: Option<u64> = None;
    let mut storage = audex::storage::StorageMode::default();
    let mut front = FrontDoorConfig::default();
    let mut front_tuned = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--stdio" => stdio = true,
            "--listen" => listen = Some(take_value(args, &mut i, "--listen")?),
            "--max-conns" => {
                let text = take_value(args, &mut i, "--max-conns")?;
                let n: usize =
                    text.parse().map_err(|_| format!("invalid --max-conns value {text:?}"))?;
                if n == 0 {
                    return Err("--max-conns must be at least 1".into());
                }
                front.max_conns = n;
                front_tuned = true;
            }
            "--sub-queue" => {
                let text = take_value(args, &mut i, "--sub-queue")?;
                let n: usize =
                    text.parse().map_err(|_| format!("invalid --sub-queue value {text:?}"))?;
                if n == 0 {
                    return Err("--sub-queue must be at least 1".into());
                }
                front.sub_queue = n;
                front_tuned = true;
            }
            "--conn-idle-ms" => {
                let text = take_value(args, &mut i, "--conn-idle-ms")?;
                let ms: u64 =
                    text.parse().map_err(|_| format!("invalid --conn-idle-ms value {text:?}"))?;
                if ms == 0 {
                    return Err("--conn-idle-ms must be at least 1".into());
                }
                front.conn_idle = Some(std::time::Duration::from_millis(ms));
                front_tuned = true;
            }
            "--max-line-bytes" => {
                let text = take_value(args, &mut i, "--max-line-bytes")?;
                let n: usize =
                    text.parse().map_err(|_| format!("invalid --max-line-bytes value {text:?}"))?;
                if n < 2 {
                    return Err("--max-line-bytes must be at least 2".into());
                }
                front.max_line_bytes = n;
                front_tuned = true;
            }
            "--drain-ms" => {
                let text = take_value(args, &mut i, "--drain-ms")?;
                let ms: u64 =
                    text.parse().map_err(|_| format!("invalid --drain-ms value {text:?}"))?;
                front.drain = std::time::Duration::from_millis(ms);
                front_tuned = true;
            }
            "--net-fault" => {
                let spec = take_value(args, &mut i, "--net-fault")?;
                front.faults = std::mem::take(&mut front.faults).with_spec(&spec)?;
                front_tuned = true;
            }
            "--db" => db_path = Some(take_value(args, &mut i, "--db")?),
            "--log" => log_path = Some(take_value(args, &mut i, "--log")?),
            "--data-dir" => data_dir = Some(take_value(args, &mut i, "--data-dir")?),
            "--default-tenant" => {
                default_tenant = Some(take_value(args, &mut i, "--default-tenant")?)
            }
            "--fsync" => {
                let text = take_value(args, &mut i, "--fsync")?;
                fsync = text.parse()?;
            }
            "--checkpoint-every" => {
                let text = take_value(args, &mut i, "--checkpoint-every")?;
                let n: u64 = text
                    .parse()
                    .map_err(|_| format!("invalid --checkpoint-every value {text:?}"))?;
                if n == 0 {
                    return Err("--checkpoint-every must be at least 1".into());
                }
                checkpoint_every = Some(n);
            }
            "--metrics-every" => {
                let text = take_value(args, &mut i, "--metrics-every")?;
                let n: u64 =
                    text.parse().map_err(|_| format!("invalid --metrics-every value {text:?}"))?;
                if n == 0 {
                    return Err("--metrics-every must be at least 1".into());
                }
                metrics_every = Some(n);
            }
            "--trace-out" => trace_out = Some(take_value(args, &mut i, "--trace-out")?),
            "--deadline-ms" => {
                let text = take_value(args, &mut i, "--deadline-ms")?;
                let ms: u64 =
                    text.parse().map_err(|_| format!("invalid --deadline-ms value {text:?}"))?;
                limits.deadline = Some(std::time::Duration::from_millis(ms));
            }
            "--max-steps" => {
                let text = take_value(args, &mut i, "--max-steps")?;
                limits.max_steps =
                    Some(text.parse().map_err(|_| format!("invalid --max-steps value {text:?}"))?);
            }
            "--max-granules" => {
                let text = take_value(args, &mut i, "--max-granules")?;
                limits.granule_limit = Some(
                    text.parse().map_err(|_| format!("invalid --max-granules value {text:?}"))?,
                );
            }
            "--threads" => {
                let text = take_value(args, &mut i, "--threads")?;
                let n: usize =
                    text.parse().map_err(|_| format!("invalid --threads value {text:?}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                threads = Some(n);
            }
            "--scan-all-audits" => scan_all_audits = true,
            "--storage" => {
                let text = take_value(args, &mut i, "--storage")?;
                storage = match text.as_str() {
                    "mvcc" => audex::storage::StorageMode::Mvcc,
                    "replay" => audex::storage::StorageMode::Replay,
                    other => return Err(format!("invalid --storage mode {other:?}")),
                };
            }
            "--redact-log" => redact_log = true,
            "--review-budget" => {
                let text = take_value(args, &mut i, "--review-budget")?;
                let n: u64 =
                    text.parse().map_err(|_| format!("invalid --review-budget value {text:?}"))?;
                if n == 0 {
                    return Err("--review-budget must be at least 1".into());
                }
                review_budget = Some(n);
            }
            other => return Err(format!("unknown option {other:?}")),
        }
        i += 1;
    }
    if stdio && listen.is_some() {
        return Err("--stdio and --listen are mutually exclusive".into());
    }
    if front_tuned && listen.is_none() {
        return Err("--max-conns/--sub-queue/--conn-idle-ms/--max-line-bytes/--drain-ms/\
                    --net-fault tune the TCP front door and require --listen"
            .into());
    }
    if data_dir.is_some() && (db_path.is_some() || log_path.is_some()) {
        return Err("--data-dir recovers its own state; it is mutually exclusive with \
                    --db/--log preloading"
            .into());
    }
    if data_dir.is_none() && checkpoint_every.is_some() {
        return Err("--checkpoint-every requires --data-dir".into());
    }

    let config = ServiceConfig {
        limits,
        parallelism: threads.unwrap_or_else(audex::core::default_parallelism),
        checkpoint_every,
        metrics_every,
        scan_all_audits,
        redact_log,
        review_budget,
        storage,
        ..Default::default()
    };

    let default_tenant =
        default_tenant.unwrap_or_else(|| audex::service::DEFAULT_TENANT.to_string());
    let fleet = if let Some(dir) = data_dir {
        // A durable fleet: the default tenant recovers from the data-dir
        // root (exactly the pre-tenancy layout), every `tenants/<name>/`
        // store is reopened alongside it, and a corrupt named tenant is
        // reported as degraded instead of failing the fleet.
        let (fleet, recovery) = ShardMap::open(&FleetConfig {
            service: config,
            default_tenant,
            data_dir: PathBuf::from(&dir),
            wal: WalOptions { fsync, ..Default::default() },
        })?;
        // Stderr, like the listening banner: protocol output stays clean.
        report_fleet_recovery(&dir, &recovery);
        fleet
    } else {
        let db = match db_path {
            Some(path) => {
                let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
                let db = load_database_script(&text).map_err(|e| format!("{path}: {e}"))?;
                if db.storage_mode() == storage {
                    db
                } else {
                    db.converted(storage).map_err(|e| format!("{path}: {e}"))?
                }
            }
            None => audex::Database::new(),
        };
        let core = match log_path {
            Some(path) => {
                let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
                let log = load_log_script(&text).map_err(|e| format!("{path}: {e}"))?;
                ServiceCore::preloaded(db, log, config)
                    .map_err(|e| format!("preloading the index from {path}: {e}"))?
            }
            None => ServiceCore::new(db, config),
        };
        ShardMap::with_default(core, &default_tenant)?
    };

    // The tracer outlives the fleet (which serve consumes): holding our own
    // Arc lets the trace be exported after the serve loop returns.
    let tracer = match &trace_out {
        Some(_) => {
            let tracer = Tracer::new();
            fleet.with_default_core(|core| core.set_tracer(Arc::clone(&tracer)));
            tracer
        }
        None => Tracer::disabled(),
    };

    let run = match listen {
        None => audex::service::serve_fleet_stdio(&fleet).map_err(|e| e.to_string()),
        Some(addr) => {
            let tenants = fleet.tenant_count();
            let default = fleet.default_tenant().to_string();
            let server = audex::service::Server::bind_fleet(fleet, &addr, front)
                .map_err(|e| format!("cannot listen on {addr}: {e}"))?;
            // Stderr, so scripts scraping protocol output are not confused.
            eprintln!("audexd listening on {}", server.local_addr().map_err(|e| e.to_string())?);
            eprintln!("audexd serving {tenants} tenant(s), default {default:?}");
            // From here SIGTERM/SIGINT means drain (flush subscribers,
            // fsync every tenant's journal) and exit 0 instead of dying
            // mid-write.
            sig::install();
            server.run_watching(&sig::DRAIN).map_err(|e| e.to_string())
        }
    };
    // Written even when the serve loop failed: the spans up to the failure
    // are exactly what a post-mortem wants.
    if let Some(path) = &trace_out {
        std::fs::write(path, tracer.export_chrome_json()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("audex: wrote phase trace to {path}");
    }
    run
}

/// One-line-per-fact recovery summary on stderr.
fn report_recovery(dir: &str, recovered: &Recovered) {
    match &recovered.checkpoint {
        Some(c) => eprintln!(
            "audex: {dir}: checkpoint covers {} record(s), WAL tail has {}",
            c.covers_seq,
            recovered.tail.len()
        ),
        None => {
            eprintln!("audex: {dir}: no checkpoint, WAL has {} record(s)", recovered.tail.len())
        }
    }
    for note in &recovered.notes {
        eprintln!("audex: {dir}: {note}");
    }
}

/// Per-tenant recovery summary on stderr. The default tenant (first row)
/// keeps the single-store wording; named tenants and degraded ones get
/// one line each.
fn report_fleet_recovery(dir: &str, recovery: &FleetRecovery) {
    for (idx, t) in recovery.tenants.iter().enumerate() {
        if let Some(why) = &t.error {
            eprintln!("audex: {dir}: tenant {}: DEGRADED (not serving): {why}", t.tenant);
            continue;
        }
        if idx == 0 {
            match t.via_checkpoint {
                0 => eprintln!("audex: {dir}: no checkpoint, WAL has {} record(s)", t.tail),
                covers => eprintln!(
                    "audex: {dir}: checkpoint covers {covers} record(s), WAL tail has {}",
                    t.tail
                ),
            }
        } else {
            eprintln!(
                "audex: {dir}: tenant {}: {} record(s) ({} via checkpoint, tail {})",
                t.tenant, t.records, t.via_checkpoint, t.tail
            );
        }
        for note in &t.notes {
            if idx == 0 {
                eprintln!("audex: {dir}: {note}");
            } else {
                eprintln!("audex: {dir}: tenant {}: {note}", t.tenant);
            }
        }
    }
}

fn take_data_dir(args: &[String]) -> Result<String, String> {
    let mut data_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--data-dir" => data_dir = Some(take_value(args, &mut i, "--data-dir")?),
            other => return Err(format!("unknown option {other:?}")),
        }
        i += 1;
    }
    data_dir.ok_or_else(|| "--data-dir is required".into())
}

fn cmd_recover(args: &[String]) -> Result<(), String> {
    let dir = take_data_dir(args)?;
    // Opening for append repairs the torn tail and reconciles checkpoint vs
    // WAL; recovering the service proves the records replay cleanly.
    let (_journal, mut recovered) =
        Journal::open(Path::new(&dir), WalOptions::default()).map_err(|e| format!("{dir}: {e}"))?;
    report_recovery(&dir, &recovered);
    let core = ServiceCore::recovered(&mut recovered, ServiceConfig::default())
        .map_err(|e| format!("replaying {dir}: {e}"))?;
    println!(
        "recovered: {} record(s) ({} via checkpoint), {} logged quer{}, backlog at ts {}",
        recovered.total_records(),
        recovered.checkpoint.as_ref().map_or(0, |c| c.covers_seq),
        core.log().len(),
        if core.log().len() == 1 { "y" } else { "ies" },
        core.db().last_ts().0,
    );
    match &recovered.torn {
        Some(t) => println!(
            "repaired: torn tail in {} ({} byte(s) dropped)",
            t.path.display(),
            t.dropped_bytes
        ),
        None => println!("clean: no torn tail"),
    }
    // Named tenant stores are repaired the same way, one by one; a corrupt
    // tenant is reported and the rest keep going, exactly like fleet
    // recovery in `serve`.
    let mut failed = Vec::new();
    for (name, tdir) in audex::persist::tenants::discover(Path::new(&dir))
        .map_err(|e| format!("{dir}/tenants: {e}"))?
    {
        match recover_tenant_store(&tdir) {
            Ok(line) => println!("tenant {name}: {line}"),
            Err(e) => {
                println!("tenant {name}: FAILED: {e}");
                failed.push(name);
            }
        }
    }
    if failed.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} tenant store(s) could not be recovered: {}",
            failed.len(),
            failed.join(", ")
        ))
    }
}

/// Repairs and replays one named tenant's store; returns its summary line.
fn recover_tenant_store(dir: &Path) -> Result<String, String> {
    let (_journal, mut recovered) =
        Journal::open(dir, WalOptions::default()).map_err(|e| e.to_string())?;
    let core = ServiceCore::recovered(&mut recovered, ServiceConfig::default())
        .map_err(|e| format!("replay: {e}"))?;
    Ok(format!(
        "{} record(s) ({} via checkpoint), {} logged quer{}, {}",
        recovered.total_records(),
        recovered.checkpoint.as_ref().map_or(0, |c| c.covers_seq),
        core.log().len(),
        if core.log().len() == 1 { "y" } else { "ies" },
        match &recovered.torn {
            Some(t) => format!("torn tail repaired ({} byte(s) dropped)", t.dropped_bytes),
            None => "clean".to_string(),
        },
    ))
}

fn cmd_compact(args: &[String]) -> Result<(), String> {
    let dir = take_data_dir(args)?;
    let (journal, mut recovered) =
        Journal::open(Path::new(&dir), WalOptions::default()).map_err(|e| format!("{dir}: {e}"))?;
    report_recovery(&dir, &recovered);
    let mut core = ServiceCore::recovered(&mut recovered, ServiceConfig::default())
        .map_err(|e| format!("replaying {dir}: {e}"))?;
    core.attach_journal(journal);
    let path = core.checkpoint().map_err(|e| format!("checkpointing {dir}: {e}"))?;
    let jc = core.journal().map(|j| j.counters()).unwrap_or_default();
    println!(
        "compacted: checkpoint {} covers {} record(s); {} live segment(s), {} byte(s)",
        path.display(),
        jc.last_checkpoint_seq,
        jc.segments,
        jc.segment_bytes,
    );
    if let Some(line) = mvcc_gc_report(core.db()) {
        println!("{line}");
    }
    // Compact every named tenant store too; failures are reported but do
    // not abort the remaining tenants.
    let mut failed = Vec::new();
    for (name, tdir) in audex::persist::tenants::discover(Path::new(&dir))
        .map_err(|e| format!("{dir}/tenants: {e}"))?
    {
        match compact_tenant_store(&tdir) {
            Ok(line) => println!("tenant {name}: {line}"),
            Err(e) => {
                println!("tenant {name}: FAILED: {e}");
                failed.push(name);
            }
        }
    }
    if failed.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} tenant store(s) could not be compacted: {}",
            failed.len(),
            failed.join(", ")
        ))
    }
}

/// Checkpoints and prunes one named tenant's store; returns its summary.
fn compact_tenant_store(dir: &Path) -> Result<String, String> {
    let (journal, mut recovered) =
        Journal::open(dir, WalOptions::default()).map_err(|e| e.to_string())?;
    let mut core = ServiceCore::recovered(&mut recovered, ServiceConfig::default())
        .map_err(|e| format!("replay: {e}"))?;
    core.attach_journal(journal);
    core.checkpoint().map_err(|e| format!("checkpoint: {e}"))?;
    let jc = core.journal().map(|j| j.counters()).unwrap_or_default();
    let mut line = format!(
        "checkpoint covers {} record(s); {} live segment(s), {} byte(s)",
        jc.last_checkpoint_seq, jc.segments, jc.segment_bytes,
    );
    if let Some(mvcc) = mvcc_gc_report(core.db()) {
        line.push_str("; ");
        line.push_str(&mvcc);
    }
    Ok(line)
}

/// Dead-version occupancy of an MVCC store (`None` in replay mode). Dead
/// versions are *reported*, never dropped: reclaiming them would truncate
/// the backlog relations (`b-T`) audits depend on, so compaction's GC story
/// for tuple versions is visibility, not deletion.
fn mvcc_gc_report(db: &audex::storage::Database) -> Option<String> {
    let stats = db.mvcc_stats()?;
    let mut line = format!(
        "mvcc: {} live / {} dead version(s), ~{} byte(s) retained for time travel",
        stats.live_versions, stats.dead_versions, stats.approx_bytes,
    );
    let per_table: Vec<String> = db
        .mvcc_table_stats()
        .into_iter()
        .filter(|(_, s)| s.dead_versions > 0)
        .map(|(name, s)| format!("{name}={}", s.dead_versions))
        .collect();
    if !per_table.is_empty() {
        line.push_str(&format!(" (dead by table: {})", per_table.join(", ")));
    }
    Some(line)
}

/// Offline triage report: recover a store read-only and print the review
/// queue the daemon would serve, ranked and paged the same way (the
/// rendering and ranking code paths are shared with `serve`).
fn cmd_triage(args: &[String]) -> Result<(), String> {
    use std::io::IsTerminal;

    let mut data_dir: Option<String> = None;
    let mut tenant: Option<String> = None;
    let mut top: Option<u64> = None;
    let mut offset: u64 = 0;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--data-dir" => data_dir = Some(take_value(args, &mut i, "--data-dir")?),
            "--tenant" => tenant = Some(take_value(args, &mut i, "--tenant")?),
            "--top" => {
                let text = take_value(args, &mut i, "--top")?;
                top = Some(text.parse().map_err(|_| format!("invalid --top value {text:?}"))?);
            }
            "--offset" => {
                let text = take_value(args, &mut i, "--offset")?;
                offset = text.parse().map_err(|_| format!("invalid --offset value {text:?}"))?;
            }
            other => return Err(format!("unknown option {other:?}")),
        }
        i += 1;
    }
    let dir = data_dir.ok_or("--data-dir is required")?;
    let mut path = PathBuf::from(&dir);
    if let Some(t) = &tenant {
        path = path.join("tenants").join(t);
    }
    let mut recovered =
        audex::persist::read_store(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut core = ServiceCore::recovered(&mut recovered, ServiceConfig::default())
        .map_err(|e| format!("replaying {}: {e}", path.display()))?;
    let triage = core.handle(audex::service::Request::Triage).response;
    let queue = core.handle(audex::service::Request::Queue { top, offset }).response;
    if std::io::stdout().is_terminal() {
        let count = |key: &str| triage.get(key).and_then(audex::service::Json::as_int).unwrap_or(0);
        println!(
            "review queue: {} open, {} acked, {} dismissed",
            count("open"),
            count("acked"),
            count("dismissed"),
        );
        let templates = triage
            .get("templates")
            .and_then(audex::service::Json::as_arr)
            .map_or(0, <[audex::service::Json]>::len);
        let compression =
            triage.get("compression").and_then(audex::service::Json::as_f64).unwrap_or(0.0);
        println!("templates: {templates} recurring pattern(s), compression {compression:.2}");
        print!("{}", audex::service::render_queue_table(&queue));
    } else {
        println!("{triage}");
        println!("{queue}");
    }
    Ok(())
}

/// Stamps `"tenant":NAME` into a request line for `send --tenant`. Lines
/// that don't parse as a JSON object, or that already address a tenant,
/// go through verbatim (the server answers with its own structured error
/// if they're bad).
fn stamp_tenant(line: &str, tenant: &str) -> String {
    match audex::service::Json::parse(line) {
        Ok(audex::service::Json::Obj(mut fields)) => {
            if fields.iter().any(|(k, _)| k == "tenant") {
                return line.to_string();
            }
            fields.push(("tenant".to_string(), audex::service::Json::from(tenant)));
            audex::service::Json::Obj(fields).to_string()
        }
        _ => line.to_string(),
    }
}

fn cmd_send(args: &[String]) -> Result<(), String> {
    use std::io::{BufRead, BufReader, IsTerminal, Read, Write};

    let mut addr: Option<String> = None;
    let mut connect_retries: u32 = 5;
    let mut tenant: Option<String> = None;
    let mut requests: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = Some(take_value(args, &mut i, "--addr")?),
            "--tenant" => tenant = Some(take_value(args, &mut i, "--tenant")?),
            "--connect-retries" => {
                let text = take_value(args, &mut i, "--connect-retries")?;
                connect_retries = text
                    .parse()
                    .map_err(|_| format!("invalid --connect-retries value {text:?}"))?;
            }
            other if other.starts_with("--") => return Err(format!("unknown option {other:?}")),
            req => requests.push(req.to_string()),
        }
        i += 1;
    }
    let addr = addr.ok_or("--addr is required")?;
    if requests.is_empty() {
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .map_err(|e| format!("reading requests from stdin: {e}"))?;
        requests.extend(text.lines().filter(|l| !l.trim().is_empty()).map(String::from));
    }
    if let Some(tenant) = &tenant {
        requests = requests.iter().map(|r| stamp_tenant(r, tenant)).collect();
    }

    // The server may still be binding (tests race `serve` startup; so do
    // process supervisors): retry the connect a bounded number of times
    // with a fixed backoff before giving up.
    let stream = {
        let mut attempt = 0;
        loop {
            match std::net::TcpStream::connect(&addr) {
                Ok(stream) => break stream,
                Err(_) if attempt < connect_retries => {
                    attempt += 1;
                    std::thread::sleep(std::time::Duration::from_millis(100));
                }
                Err(e) => {
                    return Err(format!(
                        "cannot connect to {addr} after {} attempt(s): {e}",
                        attempt + 1
                    ))
                }
            }
        }
    };
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut follow = false;
    for req in &requests {
        // Known-bad requests still go to the server (it answers with a
        // structured error); parsing here only detects `subscribe` (to
        // follow the event stream) and `list-tenants` (pretty-printed on
        // a terminal).
        let parsed = audex::service::parse_request(req);
        follow |= matches!(parsed, Ok(audex::service::Request::Subscribe));
        let tenant_listing = matches!(parsed, Ok(audex::service::Request::ListTenants));
        let queue_listing = matches!(parsed, Ok(audex::service::Request::Queue { .. }));
        let bulk_ack = matches!(parsed, Ok(audex::service::Request::AckTemplate { .. }));
        writeln!(writer, "{req}").map_err(|e| format!("sending to {addr}: {e}"))?;
        writer.flush().map_err(|e| e.to_string())?;
        let mut line = String::new();
        if reader.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
            return Err(format!("{addr} closed the connection early"));
        }
        if (tenant_listing || queue_listing || bulk_ack) && std::io::stdout().is_terminal() {
            match audex::service::Json::parse(line.trim()) {
                Ok(resp) if resp.get("ok") == Some(&audex::service::Json::Bool(true)) => {
                    if tenant_listing {
                        print!("{}", audex::service::render_tenant_table(&resp));
                    } else if queue_listing {
                        print!("{}", audex::service::render_queue_table(&resp));
                    } else {
                        // Bulk ack: one human-readable confirmation line so a
                        // terminal operator sees how far the template reached.
                        let acked = match resp.get("acked") {
                            Some(audex::service::Json::Int(n)) => *n,
                            _ => 0,
                        };
                        let template = match resp.get("template") {
                            Some(audex::service::Json::Int(n)) => *n,
                            _ => -1,
                        };
                        println!(
                            "acked {acked} quer{} matching template {template}",
                            if acked == 1 { "y" } else { "ies" }
                        );
                    }
                    continue;
                }
                _ => {}
            }
        }
        print!("{line}");
    }
    // After `subscribe`, keep printing event lines until the server goes
    // away (shutdown or ^C on our side). The follower is a tap, not a
    // filter: every event line is forwarded verbatim whatever its "event"
    // tag, so kinds added after this client was built (`metrics`, say)
    // flow through instead of being silently dropped.
    if follow {
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
                break;
            }
            print!("{line}");
        }
    }
    Ok(())
}

fn cmd_paper() -> Result<(), String> {
    use audex::workload::paper::*;
    let db = paper_database();
    let log = audex::QueryLog::new();
    let engine = AuditEngine::new(&db, &log);
    for (name, text) in [
        ("Fig. 4 (perfect privacy)", FIG4_PERFECT_PRIVACY),
        ("Fig. 5 (weak syntactic)", FIG5_WEAK_SYNTACTIC),
        ("Fig. 6 (semantic)", FIG6_SEMANTIC),
    ] {
        let mut expr = audex::parse_audit(text).map_err(|e| e.to_string())?;
        expr.data_interval = Some(audex::sql::ast::TimeInterval {
            start: audex::sql::ast::TsSpec::At(paper_epoch()),
            end: audex::sql::ast::TsSpec::At(paper_now()),
        });
        let prepared = engine.prepare(&expr, paper_now()).map_err(|e| e.to_string())?;
        println!("{name}:");
        println!("  G = {}", prepared.render_granules(10_000).map_err(|e| e.to_string())?);
    }
    println!("(run `cargo run --example paper_artifacts` for the full table/figure set)");
    Ok(())
}

fn cmd_demo() -> Result<(), String> {
    use audex::workload::*;
    let hospital = HospitalConfig { patients: 300, zip_zones: 10, diseases: 8, seed: 1 };
    let db = generate_hospital(&hospital, Timestamp(0));
    let mix =
        QueryMixConfig { queries: 200, suspicious_rate: 0.06, start: Timestamp(1_000), seed: 2 };
    let (log, planted) = load_log(&generate_queries(&hospital, &mix));
    println!(
        "demo: {} patients, {} logged queries, {} planted violations",
        hospital.patients,
        log.len(),
        planted.len()
    );
    let engine = AuditEngine::new(&db, &log);
    let mut expr = audex::parse_audit(&standard_audit_text()).map_err(|e| e.to_string())?;
    let iv = audex::sql::ast::TimeInterval {
        start: audex::sql::ast::TsSpec::At(Timestamp(0)),
        end: audex::sql::ast::TsSpec::Now,
    };
    expr.during = Some(iv);
    expr.data_interval = Some(iv);
    let report = engine.audit_at(&expr, Timestamp(1_000_000)).map_err(|e| e.to_string())?;
    print!("{}", report.render_text(&log));
    Ok(())
}
