//! `audex` — a from-scratch Rust implementation of *A Unified Audit
//! Expression Model for Auditing SQL Queries* (Goyal, Gupta & Gupta,
//! ICDE 2008) together with the full Hippocratic-database substrate the
//! paper assumes.
//!
//! This facade re-exports the workspace crates:
//!
//! | crate | contents |
//! |---|---|
//! | [`sql`] | SQL + audit-expression lexer/parser/printer |
//! | [`storage`] | versioned in-memory relational engine with backlog time travel and lineage-tracking SPJ executor |
//! | [`log`] | annotated query log and limiting-parameter filters |
//! | [`policy`] | purposes, roles, column-level authorizations |
//! | [`core`] | the paper: target views, granule model, suspicion notions, audit engine, online ranking |
//! | [`workload`] | the paper's running example + seeded generators |
//! | [`service`] | `audexd`: the streaming audit service (`audex serve`) with incremental index maintenance |
//! | [`triage`] | evidence-backed explanations, the ranked review queue, recurring-pattern templates |
//! | [`obs`] | telemetry: lock-sharded metrics registry, phase tracer, Prometheus exposition |
//!
//! See `examples/quickstart.rs` for a five-minute tour and
//! `examples/paper_artifacts.rs` for a regeneration of every table and
//! figure in the paper.

#![forbid(unsafe_code)]

pub use audex_core as core;
pub use audex_log as log;
pub use audex_obs as obs;
pub use audex_persist as persist;
pub use audex_policy as policy;
pub use audex_service as service;
pub use audex_sql as sql;
pub use audex_storage as storage;
pub use audex_triage as triage;
pub use audex_workload as workload;

pub mod session;

pub use audex_core::{AuditEngine, AuditError, AuditReport, BatchVerdict, OnlineAuditor};
pub use audex_log::{AccessContext, QueryLog};
pub use audex_sql::{parse_audit, parse_query, parse_script, parse_statement, Timestamp};
pub use audex_storage::{Database, Value};
