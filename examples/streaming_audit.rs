//! The streaming audit service (`audexd`) driven in-process: the same
//! state machine `audex serve` exposes over stdin/stdout or TCP, here fed
//! raw protocol lines so the whole wire conversation is visible.
//!
//! The scenario is the paper's running example: Tables 1–3 arrive as
//! timestamped DML, the Fig. 7 full-grammar expression stands guard, the
//! §5 query log streams in one entry at a time (each scored on arrival and
//! folded into the incremental touch index), and a final `audit` request is
//! answered straight from the index — no log re-run.
//!
//! Run with: `cargo run --example streaming_audit`

use audex::service::{parse_request, ServiceConfig, ServiceCore};
use audex::workload::paper::{paper_epoch, paper_now, FIG7_FULL_GRAMMAR};
use audex::Database;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut core = ServiceCore::new(Database::new(), ServiceConfig::default());
    let mut send = |line: &str| {
        println!("->  {line}");
        let outcome = core.handle(parse_request(line).expect("request parses"));
        println!("<-  {}", outcome.response);
        for event in &outcome.events {
            println!("<~  {event}");
        }
        println!();
    };

    // Tables 1–3 as DML against the versioned backlog (each statement
    // advances the clock one second, like a session-script block).
    let t_load = paper_epoch().0;
    send(&format!(
        r#"{{"cmd":"dml","ts":{t_load},"sql":"CREATE TABLE P-Personal (pid TEXT, name TEXT, age INT, sex TEXT, zipcode TEXT, address TEXT); CREATE TABLE P-Health (pid TEXT, ward TEXT, doc-name TEXT, disease TEXT, pres-drugs TEXT); INSERT INTO P-Personal VALUES ('p1','Jane',25,'F','177893','A1'), ('p2','Reku',35,'M','145568','A2'), ('p13','Robert',29,'M','188888','A3'), ('p28','Lucy',20,'F','145568','A4'); INSERT INTO P-Health VALUES ('p1','W11','Hassan','flu','drug2'), ('p2','W12','Nicholas','diabetic','drug1'), ('p13','W14','Ramesh','Malaria','drug3'), ('p28','W14','King U','diabetic','drug1');"}}"#
    ));

    // The Fig. 7 expression becomes a standing audit, pinned to the backlog
    // as of registration (re-register to pick up later DML).
    let now = paper_now().0;
    send(&format!(
        r#"{{"cmd":"register","name":"fig7","expr":"{}","now":{now}}}"#,
        FIG7_FULL_GRAMMAR.replace('"', "\\\"")
    ));

    // The §5 query log, streamed. The doctor's W14 query trips Fig. 7 (a
    // score event and an updated running verdict); the nurse is negated by
    // user id and the clerk by purpose, so neither is even scored.
    let t0 = paper_epoch().plus_seconds(3600).0;
    for (dt, user, role, purpose, sql) in [
        (0, "u-7", "doctor", "treatment",
         "SELECT name, disease FROM P-Personal, P-Health WHERE P-Personal.pid = P-Health.pid AND ward = 'W14'"),
        (600, "u-13", "nurse", "treatment",
         "SELECT name, address FROM P-Personal WHERE zipcode = '145568'"),
        (1800, "u-21", "clerk", "marketing",
         "SELECT name FROM P-Personal WHERE age > 30"),
    ] {
        send(&format!(
            r#"{{"cmd":"log","ts":{},"user":"{user}","role":"{role}","purpose":"{purpose}","sql":"{sql}"}}"#,
            t0 + dt
        ));
    }

    // The full audit answers from the incrementally maintained index.
    send(r#"{"cmd":"audit","name":"fig7"}"#);
    send(r#"{"cmd":"stats"}"#);
    Ok(())
}
