//! Online suspicion ranking (the paper's §4 future work): a stream of
//! queries scored live against a set of standing audit expressions, with a
//! running suspicion degree per audit and an alert when a batch crosses
//! into suspiciousness.
//!
//! Run with: `cargo run --example online_ranking`

use audex::core::{AuditEngine, AuditId, OnlineAuditor};
use audex::sql::ast::{TimeInterval, TsSpec};
use audex::sql::parse_audit;
use audex::workload::paper::{paper_database, paper_now};
use audex::{AccessContext, QueryLog, Timestamp};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = paper_database();
    let t0 = db.last_ts();

    // Two standing audits: the diabetics of 145568 (the paper's protected
    // view) and everything about young patients.
    let audits = [
        "AUDIT (name, disease) FROM P-Personal, P-Health \
         WHERE P-Personal.pid = P-Health.pid AND zipcode = '145568' AND disease = 'diabetic'",
        "AUDIT [name, age, address] FROM P-Personal WHERE age < 30",
    ];

    let log = QueryLog::new();
    let engine = AuditEngine::new(&db, &log);
    let prepared = audits
        .iter()
        .map(|text| {
            let mut expr = parse_audit(text).expect("audit parses");
            let iv = TimeInterval { start: TsSpec::At(Timestamp(0)), end: TsSpec::Now };
            expr.during = Some(iv);
            expr.data_interval = Some(iv);
            engine.prepare(&expr, paper_now()).expect("audit prepares")
        })
        .collect();
    let mut online = OnlineAuditor::new(prepared);
    println!("watching {} standing audit expressions\n", online.audit_count());

    // The incoming stream: a slow-burn reconstruction of audit 0 by one
    // analyst, interleaved with unrelated traffic.
    let stream = [
        ("u-2", "SELECT employer FROM P-Employ WHERE salary < 10000"),
        ("u-8", "SELECT name FROM P-Personal WHERE zipcode = '145568'"),
        ("u-2", "SELECT address FROM P-Personal WHERE age < 30"),
        (
            "u-8",
            "SELECT disease FROM P-Personal, P-Health \
                 WHERE P-Personal.pid = P-Health.pid AND zipcode = '145568'",
        ),
    ];

    for (i, (user, sql)) in stream.iter().enumerate() {
        let q = Arc::new(audex::log::LoggedQuery::new(
            audex::log::QueryId(i as u64 + 1),
            audex::parse_query(sql)?,
            sql.to_string(),
            t0.plus_seconds(60 * (i as i64 + 1)),
            AccessContext::new(*user, "analyst", "research"),
        ));
        let scores = online.observe(&db, &q)?;
        println!("q{} by {user}: {sql}", i + 1);
        if scores.is_empty() {
            println!("   no audit contribution");
        }
        for s in &scores {
            println!(
                "   audit#{}: fact coverage {:.2}, column coverage {:.2}, closeness {:.2}",
                s.audit, s.fact_coverage, s.column_coverage, s.closeness
            );
        }
        for a in online.ids() {
            if online.is_suspicious(a) {
                println!(
                    "   !! audit#{a} batch degree now {:.2} — SUSPICIOUS (contributors {:?})",
                    online.degree(a),
                    online.contributing(a)
                );
            }
        }
        println!();
    }

    // The second audit tripped as soon as one optional attribute of a young
    // patient surfaced; the first needed the two complementary queries by
    // u-8 (q3 merely *witnessed* Lucy's tuple for audit 0 — it accessed no
    // audited column, so it is not listed as a contributor).
    assert!(online.is_suspicious(AuditId(0)));
    assert!(online.is_suspicious(AuditId(1)));
    assert_eq!(online.contributing(AuditId(0)).len(), 2);
    println!("both audits converged to suspicious as expected.");
    Ok(())
}
