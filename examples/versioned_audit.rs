//! Data versions and the `DATA-INTERVAL` clause (paper §3.1, experiment E10).
//!
//! The paper's motivating version scenario (§2.1): "two identical queries
//! issued at different times might have accessed different information",
//! and the same audit expression over the *current* instance, a *specific
//! past* instance, or *all versions in an interval* (equivalently, the
//! backlog table `b-T` of [12]) yields different target views.
//!
//! Run with: `cargo run --example versioned_audit`

use audex::core::AuditEngine;
use audex::sql::ast::{TimeInterval, TsSpec};
use audex::sql::parse_audit;
use audex::{AccessContext, Database, QueryLog, Timestamp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Timeline (seconds): a patient moves and is re-diagnosed over time.
    //   t=0    create table
    //   t=100  Asha lives in 120016 with flu
    //   t=200  logged query Q1: diseases in 120016       (sees flu)
    //   t=300  Asha re-diagnosed: cancer
    //   t=400  logged query Q2: diseases in 120016       (sees cancer)
    //   t=500  Asha moves to 145568
    //   t=600  logged query Q3: diseases in 120016       (sees nothing)
    let mut db = Database::new();
    db.execute(
        &audex::parse_statement("CREATE TABLE Patients (pid TEXT, zipcode TEXT, disease TEXT)")?,
        Timestamp(0),
    )?;
    db.execute(
        &audex::parse_statement("INSERT INTO Patients VALUES ('asha', '120016', 'flu')")?,
        Timestamp(100),
    )?;
    db.execute(
        &audex::parse_statement("UPDATE Patients SET disease = 'cancer' WHERE pid = 'asha'")?,
        Timestamp(300),
    )?;
    db.execute(
        &audex::parse_statement("UPDATE Patients SET zipcode = '145568' WHERE pid = 'asha'")?,
        Timestamp(500),
    )?;

    let log = QueryLog::new();
    let same_query = "SELECT disease FROM Patients WHERE zipcode = '120016'";
    for t in [200i64, 400, 600] {
        log.record_text(same_query, Timestamp(t), AccessContext::new("u-1", "nurse", "treatment"))?;
    }
    println!("three identical logged queries at t=200, 400, 600:\n  {same_query}\n");

    let engine = AuditEngine::new(&db, &log);
    let now = Timestamp(1_000);

    // One audit body; three DATA-INTERVAL choices.
    let base = "DURING 1/1/1970 TO now() AUDIT disease FROM Patients WHERE zipcode = '120016'";
    let scenarios: &[(&str, TsSpec, TsSpec)] = &[
        // A specific past version: start == end (paper §3.1 rule).
        ("specific version t=200", TsSpec::At(Timestamp(200)), TsSpec::At(Timestamp(200))),
        // The current instance: now() to now().
        ("current version", TsSpec::Now, TsSpec::Now),
        // All versions in the interval — the b-table interpretation of [12].
        ("all versions 0..now", TsSpec::At(Timestamp(0)), TsSpec::Now),
    ];

    for (label, start, end) in scenarios {
        let mut expr = parse_audit(base)?;
        expr.data_interval = Some(TimeInterval { start: *start, end: *end });
        let r = engine.audit_at(&expr, now)?;
        println!(
            "DATA-INTERVAL {label:<24} |U| = {} over {} version(s); suspicious queries: {:?}",
            r.target_size,
            r.versions.len(),
            r.suspicious_queries()
        );
    }

    // With the full interval all three queries are implicated: each of them
    // had Asha's tuple indispensable at *its own* execution time for some
    // version of her record in U — except Q3, which ran after she moved.
    let mut expr = parse_audit(base)?;
    expr.data_interval = Some(TimeInterval { start: TsSpec::At(Timestamp(0)), end: TsSpec::Now });
    let r = engine.audit_at(&expr, now)?;
    assert_eq!(r.suspicious_queries().len(), 2, "Q1 and Q2 touched her record; Q3 ran too late");

    // A specific early version only implicates the query that saw it.
    let mut expr = parse_audit(base)?;
    expr.data_interval =
        Some(TimeInterval { start: TsSpec::At(Timestamp(200)), end: TsSpec::At(Timestamp(200)) });
    let r = engine.audit_at(&expr, now)?;
    assert_eq!(r.suspicious_queries().len(), 2, "the flu-era tuple was also touched by Q2's run");

    // The current instance has nobody in 120016 — nothing to disclose.
    let mut expr = parse_audit(base)?;
    expr.data_interval = Some(TimeInterval { start: TsSpec::Now, end: TsSpec::Now });
    let r = engine.audit_at(&expr, now)?;
    assert!(!r.verdict.suspicious);
    assert_eq!(r.target_size, 0);

    // The explicit backlog form of [12]: audit over b-Patients sees every
    // version that ever existed, regardless of DATA-INTERVAL.
    let mut expr = parse_audit(
        "DURING 1/1/1970 TO now() AUDIT disease FROM b-Patients WHERE zipcode = '120016'",
    )?;
    expr.data_interval = Some(TimeInterval { start: TsSpec::Now, end: TsSpec::Now });
    let r = engine.audit_at(&expr, now)?;
    println!(
        "\nbacklog audit over b-Patients: |U| = {} (every historical version of the zone's records)",
        r.target_size
    );
    assert_eq!(r.target_size, 2, "flu-era and cancer-era images of Asha's tuple");
    assert_eq!(r.suspicious_queries().len(), 2);

    println!("\nversion semantics behave as specified in §3.1.");
    Ok(())
}
