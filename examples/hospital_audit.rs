//! A realistic end-to-end scenario: a synthetic hospital, a Hippocratic
//! privacy policy, a mixed query log with planted snooping, and an audit
//! driven by a leak report — including the limiting parameters an auditor
//! would derive from the policy (paper §3.3).
//!
//! Run with: `cargo run --example hospital_audit`

use audex::core::{assess, AccessClass, AuditEngine, AuditMode, EngineOptions};
use audex::policy::{ColumnScope, PrivacyPolicy};
use audex::sql::{parse_audit, Ident};
use audex::workload::{
    generate_hospital, generate_queries, load_log, HospitalConfig, QueryMixConfig,
};
use audex::Timestamp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- The hospital ------------------------------------------------------
    let hospital = HospitalConfig { patients: 500, zip_zones: 10, diseases: 8, seed: 2024 };
    let db = generate_hospital(&hospital, Timestamp(0));
    println!("hospital: {} patients across {} zip zones", hospital.patients, hospital.zip_zones);

    // --- The privacy policy ------------------------------------------------
    let mut policy = PrivacyPolicy::new();
    policy.purposes.declare("healthcare");
    policy.purposes.declare_under("treatment", "healthcare");
    policy.purposes.declare("research");
    policy.allow("doctor", "healthcare", "Health", ColumnScope::All);
    policy.allow("doctor", "healthcare", "Patients", ColumnScope::All);
    policy.allow("researcher", "research", "Health", ColumnScope::only(["disease", "drug"]));

    // Which (role, purpose) channels could legitimately reach the leaked
    // data? The auditor plugs these into Pos-Role-Purpose.
    let channels = policy.channels_to(&[
        (Ident::new("Health"), Ident::new("disease")),
        (Ident::new("Patients"), Ident::new("zipcode")),
    ]);
    let channel_list: Vec<String> = channels.iter().map(|(r, p)| format!("({r}, {p})")).collect();
    println!("policy channels to (disease, zipcode): {}", channel_list.join(", "));

    // --- The query log (with planted snooping) -----------------------------
    let mix =
        QueryMixConfig { queries: 400, suspicious_rate: 0.05, start: Timestamp(1_000), seed: 9 };
    let generated = generate_queries(&hospital, &mix);
    let (log, planted) = load_log(&generated);
    println!("log: {} queries, {} planted violations", log.len(), planted.len());

    // --- The audit ----------------------------------------------------------
    // A patient from zone 0 complained their diagnosis leaked. The auditor
    // audits disease access for that zone, over the whole log, excluding
    // the marketing purpose (nobody is authorized for it anyway).
    let audit_text = "Neg-Role-Purpose (-, marketing) \
         DURING 1/1/1970 TO now() DATA-INTERVAL 1/1/1970 TO now() \
         AUDIT disease FROM Patients, Health \
         WHERE Patients.pid = Health.pid AND Patients.zipcode = '100000'"
        .to_string();
    let engine = AuditEngine::with_options(
        &db,
        &log,
        EngineOptions { mode: AuditMode::PerQuery, ..Default::default() },
    );
    let report = engine.audit_at(&parse_audit(&audit_text)?, Timestamp(1_000_000))?;

    println!("\naudit: {}", report.expr_text);
    println!(
        "pipeline: {} logged -> {} admitted -> {} candidates ({} pruned statically)",
        log.len(),
        report.admitted.len(),
        report.candidates.len(),
        report.pruned.len()
    );
    println!(
        "verdict: {} — {}/{} granules accessed (degree {:.3})",
        if report.verdict.suspicious { "SUSPICIOUS" } else { "clean" },
        report.verdict.accessed_granules,
        report.verdict.total_granules,
        report.verdict.degree
    );

    // --- Precision/recall against the planted ground truth ------------------
    let flagged: std::collections::BTreeSet<_> =
        report.verdict.contributing.iter().copied().collect();
    let truth: std::collections::BTreeSet<_> = planted.iter().copied().collect();
    // Note: the generator plants violations against zone 0; queries excluded
    // by the limiting parameters (marketing purpose) are intentionally not
    // audited, so recall is measured on admitted entries only.
    let admitted: std::collections::BTreeSet<_> = report.admitted.iter().copied().collect();
    let truth_admitted: std::collections::BTreeSet<_> =
        truth.intersection(&admitted).copied().collect();
    let tp = flagged.intersection(&truth_admitted).count();
    println!(
        "\nground truth: {} planted in admitted set; auditor flagged {} (true positives {})",
        truth_admitted.len(),
        flagged.len(),
        tp
    );
    assert_eq!(tp, truth_admitted.len(), "every admitted planted violation must be caught");
    println!("\nfirst few flagged queries:");
    for id in report.verdict.contributing.iter().take(5) {
        let e = log.get(*id).expect("logged");
        println!(
            "  {id} [{} as {} for {}]: {}",
            e.context.user.value, e.context.role.value, e.context.purpose.value, e.text
        );
    }

    // --- Policy-aware triage -------------------------------------------------
    // Register the generator's user/role/purpose universe so the policy can
    // judge the flagged accesses; only doctors acting for healthcare may read
    // disease data, so every other flagged access is a policy violation.
    for u in 0..50 {
        policy.users.register(
            format!("u{u}"),
            ["doctor", "nurse", "clerk", "researcher"].map(audex::sql::Ident::new).to_vec(),
        );
    }
    // "treatment" is already declared under healthcare; add the rest flat.
    policy.purposes.declare("billing");
    policy.purposes.declare("marketing");
    let assessments = assess(&report, &db, &log, &policy);
    let violations =
        assessments.iter().filter(|a| matches!(a.class, AccessClass::PolicyViolation(_))).count();
    let authorized =
        assessments.iter().filter(|a| a.class == AccessClass::AuthorizedDisclosure).count();
    println!(
        "\npolicy triage: {} flagged accesses -> {} policy violations, {} authorized disclosures (policy loopholes)",
        assessments.len(),
        violations,
        authorized
    );
    assert_eq!(assessments.len(), violations + authorized);
    Ok(())
}
