//! Quickstart: build a tiny Hippocratic database, log a few queries, and
//! audit them with one expression — the five-minute tour of the public API.
//!
//! Run with: `cargo run --example quickstart`

use audex::{AccessContext, AuditEngine, Database, QueryLog, Timestamp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A versioned database: every mutation is timestamped and recorded
    //    in backlog history, so audits can look at past states.
    let mut db = Database::new();
    let t = |s| Timestamp(s);
    db.execute(
        &audex::parse_statement(
            "CREATE TABLE Patients (pid TEXT, name TEXT, zipcode TEXT, disease TEXT)",
        )?,
        t(0),
    )?;
    db.execute(
        &audex::parse_statement(
            "INSERT INTO Patients VALUES \
             ('p1', 'Jane',   '120016', 'cancer'), \
             ('p2', 'Reku',   '145568', 'diabetic'), \
             ('p3', 'Lucy',   '120016', 'flu')",
        )?,
        t(10),
    )?;

    // 2. A query log with Hippocratic annotations: user, role, purpose.
    let log = QueryLog::new();
    log.record_text(
        "SELECT zipcode FROM Patients WHERE disease = 'cancer'",
        t(100),
        AccessContext::new("u-4", "nurse", "treatment"),
    )?;
    log.record_text(
        "SELECT name FROM Patients WHERE zipcode = '145568'",
        t(200),
        AccessContext::new("u-9", "clerk", "billing"),
    )?;

    // 3. An audit expression: who saw disease information of anyone living
    //    in zip code 120016? (This is the paper's running example.)
    let engine = AuditEngine::new(&db, &log);
    let audit = audex::parse_audit(
        "DURING 1/1/1970 TO now() \
         AUDIT disease FROM Patients WHERE zipcode = '120016'",
    )?;
    let report = engine.audit_at(&audit, t(1_000))?;

    // 4. The verdict.
    println!("audit expression : {}", report.expr_text);
    println!(
        "log entries      : {} admitted, {} pruned statically",
        report.admitted.len(),
        report.pruned.len()
    );
    println!(
        "target view |U|  : {} facts over {} data version(s)",
        report.target_size,
        report.versions.len()
    );
    println!(
        "verdict          : {} ({}/{} granules accessed)",
        if report.verdict.suspicious { "SUSPICIOUS" } else { "clean" },
        report.verdict.accessed_granules,
        report.verdict.total_granules
    );
    for id in report.suspicious_queries() {
        let entry = log.get(*id).expect("logged");
        println!(
            "  -> {id}: {} [user={}, role={}, purpose={}]",
            entry.text,
            entry.context.user.value,
            entry.context.role.value,
            entry.context.purpose.value
        );
    }

    // The first query is flagged: Jane has cancer AND lives in 120016, so
    // `WHERE disease='cancer'` made her tuple indispensable. The second
    // query only touched the other zip code.
    assert!(report.verdict.suspicious);
    assert_eq!(report.suspicious_queries().len(), 1);
    Ok(())
}
