//! Static decidability (the paper's §4 first future-work question): decide
//! weak-syntactic batch suspiciousness *without data*, producing a witness
//! instance when suspicious — and the sound static bound for the semantic
//! notion. Also shows policy-aware assessment of findings.
//!
//! Run with: `cargo run --example static_analysis`

use audex::core::{static_semantic_bound, static_weak_syntactic, AuditEngine, StaticVerdict};
use audex::log::{AccessContext, LoggedQuery, QueryId};
use audex::sql::{parse_audit, parse_query};
use audex::{Database, QueryLog, Timestamp};
use std::sync::Arc;

fn q(id: u64, sql: &str) -> Arc<LoggedQuery> {
    Arc::new(LoggedQuery::new(
        QueryId(id),
        parse_query(sql).expect("example query parses"),
        sql.to_string(),
        Timestamp(5),
        AccessContext::new("u-1", "analyst", "research"),
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Only the CATALOG matters for static analysis — the table is empty.
    let mut db = Database::new();
    db.execute(
        &audex::parse_statement(
            "CREATE TABLE Patients (pid TEXT, zipcode TEXT, disease TEXT, age INT)",
        )?,
        Timestamp(0),
    )?;

    let audit = parse_audit("AUDIT disease FROM Patients WHERE zipcode = '120016' AND age < 65")?;
    println!("audit: {audit}\n");

    let batches: &[(&str, Vec<Arc<LoggedQuery>>)] = &[
        (
            "consistent access",
            vec![q(1, "SELECT disease FROM Patients WHERE age BETWEEN 30 AND 40")],
        ),
        ("contradictory ages", vec![q(2, "SELECT disease FROM Patients WHERE age > 70")]),
        // Note: a WHERE on `age` would count — age is in the audit's own
        // predicate, hence in the weak-syntactic scheme set.
        ("irrelevant columns", vec![q(3, "SELECT pid FROM Patients")]),
        (
            "out-of-fragment (OR)",
            vec![q(4, "SELECT disease FROM Patients WHERE age > 70 OR pid = 'p1'")],
        ),
    ];

    for (label, batch) in batches {
        let verdict = static_weak_syntactic(&db, batch, &audit)?;
        match &verdict {
            StaticVerdict::Suspicious { query, witness } => {
                println!("{label:<22} -> SUSPICIOUS on some instance (query {query})");
                // Show the constructed witness and PROVE it dynamically.
                let rs = witness
                    .at(Timestamp(1))
                    .query(&parse_query("SELECT pid, zipcode, disease, age FROM Patients")?)?;
                for row in &rs.rows {
                    let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                    println!("{:24}witness row: ({})", "", cells.join(", "));
                }
                let log = QueryLog::new();
                log.record_text(&batch[0].text, Timestamp(1), batch[0].context.clone())?;
                let engine = AuditEngine::new(witness, &log);
                let mut proved = audit.clone();
                proved.during = Some(audex::sql::ast::TimeInterval {
                    start: audex::sql::ast::TsSpec::At(Timestamp(0)),
                    end: audex::sql::ast::TsSpec::Now,
                });
                let weak = audex::core::notions::weak_syntactic(proved)?;
                let report = engine.audit_at(&weak, Timestamp(100))?;
                println!(
                    "{:24}dynamic check on witness: {}",
                    "",
                    if report.verdict.suspicious { "suspicious ✓" } else { "NOT suspicious ✗" }
                );
                assert!(report.verdict.suspicious);
            }
            StaticVerdict::NotSuspicious => {
                println!("{label:<22} -> provably not suspicious on ANY instance");
            }
            StaticVerdict::Unknown => {
                println!(
                    "{label:<22} -> outside the decidable fragment (run the engine on real data)"
                );
            }
        }

        // The semantic notion can only be bounded statically.
        let bound = static_semantic_bound(&db, batch, &audit)?;
        println!(
            "{:24}semantic bound: {}",
            "",
            match bound {
                StaticVerdict::NotSuspicious => "provably clean (no candidate)",
                _ => "data-dependent (candidates exist)",
            }
        );
        println!();
    }

    println!(
        "Summary: weak-syntactic suspicion is decidable for conjunctive SPJ\n\
         predicates (with certificates); semantic suspicion needs the data —\n\
         exactly the landscape the paper's related work describes."
    );
    Ok(())
}
