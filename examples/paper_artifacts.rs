//! Regenerates every table and figure of the paper (experiments E1–E10 in
//! DESIGN.md / EXPERIMENTS.md): Tables 1–6, the audit expressions of
//! Figures 1–7, and the granule sets of Figures 4–6.
//!
//! Run with: `cargo run --example paper_artifacts`

use audex::core::{normalize_with, AuditEngine, AuditScope};
use audex::sql::ast::{TableRef, TimeInterval, TsSpec};
use audex::sql::{parse_audit, Ident};
use audex::workload::paper::*;
use audex::{AccessContext, Database, QueryLog, Timestamp};

fn heading(s: &str) {
    println!("\n=== {s} ===");
}

fn print_table(db: &Database, name: &str) {
    let table = db.table(&Ident::new(name)).expect("paper table exists");
    let mut header = vec!["tid".to_string()];
    header.extend(table.schema().iter().map(|(n, _)| n.value.clone()));
    let rows: Vec<Vec<String>> = table
        .iter()
        .map(|(tid, row)| {
            let mut r = vec![tid.to_string()];
            r.extend(row.iter().map(|v| v.to_string()));
            r
        })
        .collect();
    print!("{}", audex::core::target::render_table(&header, &rows));
}

fn prepared<'a>(engine: &AuditEngine<'a>, text: &str) -> audex::core::PreparedAudit {
    let mut expr = parse_audit(text).expect("figure parses");
    if expr.data_interval.is_none() {
        expr.data_interval =
            Some(TimeInterval { start: TsSpec::At(paper_epoch()), end: TsSpec::At(paper_now()) });
    }
    engine.prepare(&expr, paper_now()).expect("figure prepares")
}

fn main() {
    let db = paper_database();
    let log = QueryLog::new();
    let engine = AuditEngine::new(&db, &log);

    heading("E2 / Tables 1-3: the paper's relations");
    for t in ["P-Personal", "P-Health", "P-Employ"] {
        println!("\nTable {t}:");
        print_table(&db, t);
    }

    heading("E1 / Fig. 1: Agrawal et al. audit expression syntax");
    let fig1 = parse_audit(FIG1_AGRAWAL).unwrap();
    println!("parsed OK; printed back:\n  {fig1}");

    heading("E3 / Table 4: target data facts U for Audit Expression-1 (Fig. 2)");
    let p2 = prepared(&engine, FIG2_AUDIT_EXPRESSION_1);
    print!("{}", p2.view.render(&p2.scope));

    heading("E4 / Table 5: target data facts U for Audit Expression-2 (Fig. 3)");
    let p3 = prepared(&engine, FIG3_AUDIT_EXPRESSION_2);
    print!("{}", p3.view.render(&p3.scope));

    heading("E5 / Table 6: audit-attribute structural rules");
    let scope = AuditScope::resolve(&db, &[TableRef::named("P-Personal")]).unwrap();
    let norm = |list: &str| {
        let a = parse_audit(&format!("AUDIT {list} FROM P-Personal")).unwrap();
        normalize_with(&a.audit, &scope).unwrap()
    };
    let rules: &[(&str, &str, &str)] = &[
        ("1", "[name]", "(name)"),
        ("2", "(name)(age)", "(name, age)"),
        ("3", "(name, age)", "(age, name)"),
        ("4", "[name][age]", "(name, age)"),
        ("5", "[name, age][sex, address]", "[sex, address][name, age]"),
        ("6", "[(name, age)]", "(name, age)"),
        ("6'", "([name, age])", "[name, age]"),
        ("7", "(name, age)[sex]", "(name, age, sex)"),
    ];
    for (no, lhs, rhs) in rules {
        let (l, r) = (norm(lhs), norm(rhs));
        println!(
            "rule {no:>2}: {lhs:<28} = {rhs:<28} -> {} (schemes: {l})",
            if l == r { "HOLDS" } else { "FAILS" }
        );
        assert_eq!(l, r, "Table 6 rule {no} must hold");
    }

    heading("E6 / Fig. 4: perfect-privacy granule set");
    let p4 = prepared(&engine, FIG4_PERFECT_PRIVACY);
    println!("G = {}", p4.render_granules(10_000).unwrap());
    println!(
        "(paper lists {} cells; the faithful [*] expansion adds the age cell {FIG4_IMPLIED_EXTRA} the paper omits)",
        FIG4_EXPECTED_PAPER.len()
    );

    heading("E7 / Fig. 5: weak-syntactic granule set");
    let p5 = prepared(&engine, FIG5_WEAK_SYNTACTIC);
    println!("G = {}", p5.render_granules(10_000).unwrap());
    println!("(the paper's bare \"(t32)\" entry is a typographical artifact; 8 schemes x 2 facts = 16 granules)");

    heading("E8 / Fig. 6: semantic-suspiciousness granule set");
    let p6 = prepared(&engine, FIG6_SEMANTIC);
    println!("G = {}", p6.render_granules(10_000).unwrap());

    heading("E9 / Fig. 7: the full grammar");
    let fig7 = parse_audit(FIG7_FULL_GRAMMAR).unwrap();
    println!("parsed; all clauses present; printed back:\n  {fig7}");
    assert_eq!(parse_audit(&fig7.to_string()).unwrap(), fig7);

    heading("E1 / Sec. 2.1: the Agrawal worked example");
    let mut db21 = paper_database();
    with_section21_patients(&mut db21);
    let log21 = QueryLog::new();
    log21
        .record_text(
            SEC21_QUERY,
            db21.last_ts().plus_seconds(5),
            AccessContext::new("u-4", "nurse", "treatment"),
        )
        .unwrap();
    let engine21 = AuditEngine::new(&db21, &log21);
    for (audit_text, expect) in [(SEC21_AUDIT_DISEASE, true), (SEC21_AUDIT_ZIPCODE, false)] {
        let mut a = parse_audit(audit_text).unwrap();
        a.during = Some(TimeInterval { start: TsSpec::At(Timestamp(0)), end: TsSpec::Now });
        let r = engine21.audit_at(&a, paper_now()).unwrap();
        println!(
            "  {:<55} -> query {} suspicious (paper says {})",
            audit_text,
            if r.verdict.suspicious { "IS" } else { "is NOT" },
            if expect { "suspicious" } else { "not suspicious" },
        );
        assert_eq!(r.verdict.suspicious, expect);
    }

    println!("\nAll paper artifacts regenerated successfully.");
}
