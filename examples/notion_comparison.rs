//! The unified suspicion model expressing the prior notions (paper §3.2):
//! the same query log audited under perfect privacy [17], weak syntactic
//! suspicion [13], semantic / indispensable-tuple suspicion [12, 13],
//! value-based access (INDISPENSABLE false), and a THRESHOLD variant —
//! showing how detection strictness varies with the notion, and that each
//! granule encoding agrees with a direct implementation of its original
//! definition.
//!
//! Run with: `cargo run --example notion_comparison`

use audex::core::notions::{
    direct_perfect_privacy, direct_semantic_batch, direct_weak_syntactic, perfect_privacy,
    semantic_indispensable, weak_syntactic,
};
use audex::core::AuditEngine;
use audex::sql::ast::{AuditExpr, Threshold, TimeInterval, TsSpec};
use audex::sql::parse_audit;
use audex::workload::paper::{paper_database, paper_now};
use audex::{AccessContext, QueryLog, Timestamp};

fn all_time(mut expr: AuditExpr) -> AuditExpr {
    let iv = TimeInterval { start: TsSpec::At(Timestamp(0)), end: TsSpec::Now };
    expr.during = Some(iv);
    expr.data_interval = Some(iv);
    expr
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = paper_database();
    let t0 = db.last_ts();

    // Three batches of increasing aggressiveness, all aimed at the paper's
    // protected view: (name, disease, address) of wealthy diabetics in
    // zip 145568 (Fig. 3 / Fig. 6).
    let batches: &[(&str, &[&str])] = &[
        // Touches the protected tuples but none of the audited columns'
        // values beyond the predicate columns.
        ("benign-adjacent", &["SELECT salary FROM P-Employ WHERE salary > 10000"]),
        // Accesses one audited column of a protected tuple.
        ("partial", &["SELECT name FROM P-Personal WHERE zipcode = '145568'"]),
        // Jointly reconstructs the full protected view.
        (
            "full reconstruction",
            &[
                "SELECT name, address FROM P-Personal WHERE zipcode = '145568'",
                "SELECT disease FROM P-Personal, P-Health \
                 WHERE P-Personal.pid = P-Health.pid AND zipcode = '145568'",
            ],
        ),
    ];

    let base = parse_audit(
        "AUDIT name, disease, address FROM P-Personal, P-Health, P-Employ \
         WHERE P-Personal.pid=P-Health.pid AND P-Health.pid=P-Employ.pid AND \
               P-Personal.zipcode='145568' AND P-Employ.salary > 10000 AND \
               P-Health.disease='diabetic'",
    )?;

    let notions: Vec<(&str, AuditExpr)> = vec![
        ("perfect privacy [17]", all_time(perfect_privacy(base.clone()))),
        ("weak syntactic [13]", all_time(weak_syntactic(base.clone())?)),
        ("semantic (indispensable) [12,13]", all_time(semantic_indispensable(base.clone()))),
        ("value-based (INDISPENSABLE false)", {
            let mut e = all_time(semantic_indispensable(base.clone()));
            e.indispensable = false;
            e
        }),
        ("semantic with THRESHOLD 2", {
            let mut e = all_time(semantic_indispensable(base.clone()));
            e.threshold = Threshold::Count(2);
            e
        }),
    ];

    println!("{:<36} {:>18} {:>10} {:>22}", "notion", "batch", "verdict", "granules (hit/total)");
    println!("{}", "-".repeat(92));

    for (batch_name, sqls) in batches {
        let log = QueryLog::new();
        for (i, sql) in sqls.iter().enumerate() {
            log.record_text(
                sql,
                t0.plus_seconds(10 + i as i64),
                AccessContext::new("u", "r", "p"),
            )?;
        }
        let engine = AuditEngine::new(&db, &log);
        for (name, expr) in &notions {
            let r = engine.audit_at(expr, paper_now())?;
            println!(
                "{:<36} {:>18} {:>10} {:>15}/{}",
                name,
                batch_name,
                if r.verdict.suspicious { "SUSPICIOUS" } else { "clean" },
                r.verdict.accessed_granules,
                r.verdict.total_granules
            );
        }

        // Cross-check the granule encodings against the direct definitions.
        let batch = log.snapshot();
        let base_all = all_time(base.clone());
        let engine_pp = engine.audit_at(&notions[0].1, paper_now())?;
        assert_eq!(
            engine_pp.verdict.suspicious,
            direct_perfect_privacy(&db, &batch, &base_all, paper_now())?,
            "perfect-privacy encoding vs direct definition ({batch_name})"
        );
        let engine_ws = engine.audit_at(&notions[1].1, paper_now())?;
        assert_eq!(
            engine_ws.verdict.suspicious,
            direct_weak_syntactic(&db, &batch, &base_all, paper_now())?,
            "weak-syntactic encoding vs direct definition ({batch_name})"
        );
        let engine_sem = engine.audit_at(&notions[2].1, paper_now())?;
        assert_eq!(
            engine_sem.verdict.suspicious,
            direct_semantic_batch(&db, &batch, &base_all, paper_now())?,
            "semantic encoding vs direct definition ({batch_name})"
        );
        println!("{}", "-".repeat(92));
    }

    println!(
        "\nEach row pair confirms the §3.2 claim: the granule model expresses every\n\
         prior notion, and strictness orders as perfect privacy ≥ weak syntactic ≥ semantic."
    );
    Ok(())
}
