//! End-to-end telemetry: the `metrics` wire request answers Prometheus
//! text with the full series set (phase histograms, ingest latency,
//! snapshot-cache and WAL counters, governor rejections), `--metrics-every`
//! broadcasts periodic `metrics` events to subscribers, `audex send`
//! follow-mode forwards event kinds it was never taught, `--trace-out`
//! produces a Chrome-trace file matching the pipeline phases, and the
//! registry snapshot is deterministic under `par_map` concurrency.

use audex::service::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("audex-metrics-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Sends every request line to a fresh `audex serve --stdio [extra]` child;
/// returns (responses-in-request-order, events-in-emission-order).
fn drive(extra: &[&str], requests: &[String]) -> (Vec<Json>, Vec<Json>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_audex"))
        .args(["serve", "--stdio"])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn audex serve --stdio");
    {
        let mut stdin = child.stdin.take().expect("child stdin");
        for req in requests {
            writeln!(stdin, "{req}").expect("write request");
        }
    }
    let stdout = child.stdout.take().expect("child stdout");
    let mut responses = Vec::new();
    let mut events = Vec::new();
    for line in BufReader::new(stdout).lines() {
        let line = line.expect("read response line");
        let v = Json::parse(&line).unwrap_or_else(|e| panic!("bad JSON {line:?}: {e}"));
        if v.get("event").is_some() {
            events.push(v);
        } else {
            responses.push(v);
        }
    }
    assert!(child.wait().expect("child exits").success());
    assert_eq!(responses.len(), requests.len(), "one response line per request");
    (responses, events)
}

const SCHEMA_DML: &str = r#"{"cmd":"dml","ts":100,"sql":"CREATE TABLE p (name CHAR, zipcode CHAR, disease CHAR); INSERT INTO p VALUES ('jane','145568','flu'), ('reku','145568','diabetic'), ('lucy','188888','malaria');"}"#;

fn log_entry(ts: i64, sql: &str) -> String {
    format!(
        r#"{{"cmd":"log","ts":{ts},"user":"u-7","role":"doctor","purpose":"treatment","sql":"{sql}"}}"#
    )
}

/// The exposition text out of a `metrics` response.
fn metrics_text(response: &Json) -> &str {
    response.get("metrics").and_then(Json::as_str).unwrap_or_else(|| panic!("{response}"))
}

/// The value of the first sample line starting with `prefix` (series name
/// plus any label block), parsed as f64.
fn series_value(text: &str, prefix: &str) -> f64 {
    let line = text
        .lines()
        .find(|l| l.starts_with(prefix) && !l.starts_with("# "))
        .unwrap_or_else(|| panic!("no sample line starts with {prefix:?}"));
    let value = line.rsplit(' ').next().unwrap_or_else(|| panic!("bare line {line:?}"));
    value.parse().unwrap_or_else(|e| panic!("{line:?}: {e}"))
}

#[test]
fn metrics_request_covers_every_required_series() {
    let dir = temp_dir("series");
    let requests = vec![
        SCHEMA_DML.to_string(),
        r#"{"cmd":"register","name":"snoop","expr":"AUDIT disease FROM p WHERE zipcode='145568'","now":10000}"#.to_string(),
        log_entry(200, "SELECT disease FROM p WHERE zipcode = '145568'"),
        log_entry(300, "SELECT name FROM p WHERE zipcode = '188888'"),
        r#"{"cmd":"audit","name":"snoop"}"#.to_string(),
        r#"{"cmd":"metrics"}"#.to_string(),
        r#"{"cmd":"shutdown"}"#.to_string(),
    ];
    let (responses, _) =
        drive(&["--data-dir", dir.to_str().unwrap(), "--fsync", "always"], &requests);
    for (req, resp) in requests.iter().zip(&responses) {
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "request {req} failed: {resp}");
    }
    let text = metrics_text(&responses[5]);

    // The acceptance set: per-phase audit histograms, ingest latency,
    // snapshot cache, WAL, governor rejections — all on one page.
    assert!(
        text.contains(r#"audex_audit_phase_seconds_bucket{phase="target-view",le="#),
        "phase histogram missing:\n{text}"
    );
    assert!(
        text.contains(r#"audex_audit_phase_seconds_bucket{phase="index-audit",le="#),
        "index-audit phase missing:\n{text}"
    );
    assert_eq!(series_value(text, "audex_ingest_seconds_count"), 2.0, "{text}");
    assert_eq!(series_value(text, "audex_queries_ingested_total"), 2.0, "{text}");
    assert!(series_value(text, "audex_snapshot_cache_misses_total") >= 1.0, "{text}");
    assert!(text.contains("audex_snapshot_cache_hits_total"), "{text}");
    assert!(series_value(text, "audex_wal_appends_total") >= 4.0, "{text}");
    assert!(series_value(text, "audex_wal_fsyncs_total") >= 1.0, "{text}");
    assert_eq!(series_value(text, "audex_governor_rejections_total"), 0.0, "{text}");
    // Per-request latency carries the wire command as a label.
    assert!(text.contains(r#"audex_request_seconds_bucket{cmd="log",le="#), "{text}");
    // Every family documents itself.
    assert!(text.contains("# HELP audex_wal_fsyncs_total"), "{text}");
    assert!(text.contains("# TYPE audex_audit_phase_seconds histogram"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn governor_rejections_land_on_the_registry() {
    let requests = vec![
        SCHEMA_DML.to_string(),
        // A 1-step budget cannot even prepare the target view: the
        // register request is refused whole with busy backpressure.
        r#"{"cmd":"register","name":"snoop","expr":"AUDIT disease FROM p WHERE zipcode='145568'","now":10000}"#.to_string(),
        r#"{"cmd":"metrics"}"#.to_string(),
    ];
    let (responses, _) = drive(&["--max-steps", "1"], &requests);
    assert_eq!(responses[1].get("ok"), Some(&Json::Bool(false)), "{}", responses[1]);
    assert_eq!(responses[1].get("busy"), Some(&Json::Bool(true)), "{}", responses[1]);
    let text = metrics_text(&responses[2]);
    assert!(series_value(text, "audex_governor_rejections_total") >= 1.0, "{text}");
}

#[test]
fn metrics_events_broadcast_every_n_ingests() {
    let requests = vec![
        SCHEMA_DML.to_string(),
        r#"{"cmd":"subscribe"}"#.to_string(),
        log_entry(200, "SELECT disease FROM p WHERE zipcode = '145568'"),
        log_entry(300, "SELECT name FROM p WHERE zipcode = '188888'"),
        log_entry(400, "SELECT name FROM p"),
        log_entry(500, "SELECT zipcode FROM p"),
        r#"{"cmd":"shutdown"}"#.to_string(),
    ];
    let (responses, events) = drive(&["--metrics-every", "2"], &requests);
    for resp in &responses {
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");
    }
    // No audits are registered, so the only events are the periodic
    // metrics broadcasts: after the 2nd and 4th ingest.
    assert_eq!(events.len(), 2, "{events:?}");
    for (event, ingested) in events.iter().zip([2, 4]) {
        assert_eq!(event.get("event").and_then(Json::as_str), Some("metrics"), "{event}");
        assert_eq!(event.get("queries_ingested").and_then(Json::as_int), Some(ingested));
        let prom = event.get("prometheus").and_then(Json::as_str).expect("prometheus payload");
        assert_eq!(series_value(prom, "audex_queries_ingested_total"), ingested as f64);
    }
}

/// Regression: `audex send` follow-mode is a tap, not a filter — event
/// kinds the client predates (here `metrics`) must be forwarded, not
/// silently dropped.
#[test]
fn send_follow_forwards_new_event_kinds() {
    let mut server = Command::new(env!("CARGO_BIN_EXE_audex"))
        .args(["serve", "--listen", "127.0.0.1:0", "--metrics-every", "1"])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn audex serve --listen");
    // The listening banner on stderr carries the bound address.
    let mut banner = String::new();
    let mut server_err = BufReader::new(server.stderr.take().expect("server stderr"));
    server_err.read_line(&mut banner).expect("read banner");
    let addr = banner.trim().rsplit(' ').next().expect("address in banner").to_string();

    let mut follower = Command::new(env!("CARGO_BIN_EXE_audex"))
        .args(["send", "--addr", &addr, r#"{"cmd":"subscribe"}"#])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn audex send");
    let mut follower_out = BufReader::new(follower.stdout.take().expect("follower stdout"));
    let mut line = String::new();
    follower_out.read_line(&mut line).expect("subscribe response");
    assert!(line.contains(r#""ok":true"#), "{line}");

    // A second connection ingests one query, which triggers a `metrics`
    // broadcast to the subscribed follower.
    let mut driver = TcpStream::connect(&addr).expect("connect driver");
    let mut driver_in = BufReader::new(driver.try_clone().expect("clone driver"));
    for req in [SCHEMA_DML, &log_entry(200, "SELECT disease FROM p WHERE zipcode = '145568'")] {
        writeln!(driver, "{req}").expect("send request");
        let mut resp = String::new();
        driver_in.read_line(&mut resp).expect("read response");
        assert!(resp.contains(r#""ok":true"#), "{resp}");
    }

    line.clear();
    follower_out.read_line(&mut line).expect("follow line");
    let event = Json::parse(&line).unwrap_or_else(|e| panic!("bad event {line:?}: {e}"));
    assert_eq!(event.get("event").and_then(Json::as_str), Some("metrics"), "{event}");
    assert!(
        event
            .get("prometheus")
            .and_then(Json::as_str)
            .is_some_and(|p| p.contains("audex_queries_ingested_total 1")),
        "{event}"
    );

    writeln!(driver, r#"{{"cmd":"shutdown"}}"#).expect("send shutdown");
    assert!(server.wait().expect("server exits").success());
    assert!(follower.wait().expect("follower exits").success());
}

/// `audex audit --trace-out` writes Chrome-trace JSON whose span names are
/// the pipeline phases.
#[test]
fn audit_trace_out_matches_pipeline_phases() {
    let dir = temp_dir("trace");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let db = dir.join("db.sql");
    let log = dir.join("log.txt");
    let trace = dir.join("trace.json");
    std::fs::write(
        &db,
        "@1/1/2008\nCREATE TABLE p (name CHAR, zipcode CHAR, disease CHAR);\n\
         INSERT INTO p VALUES ('jane','145568','flu');\n\
         INSERT INTO p VALUES ('reku','145568','diabetic');\n",
    )
    .expect("write db");
    std::fs::write(
        &log,
        "@2/1/2008 user=u-7 role=doctor purpose=treatment\n\
         SELECT disease FROM p WHERE zipcode = '145568'\n",
    )
    .expect("write log");
    let status = Command::new(env!("CARGO_BIN_EXE_audex"))
        .args(["audit", "--db"])
        .arg(&db)
        .arg("--log")
        .arg(&log)
        .args(["--expr", "AUDIT disease FROM p WHERE zipcode='145568'", "--trace-out"])
        .arg(&trace)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run audex audit");
    assert!(status.success());

    let text = std::fs::read_to_string(&trace).expect("trace file written");
    let v = Json::parse(&text).unwrap_or_else(|e| panic!("trace is not JSON: {e}\n{text}"));
    assert_eq!(v.get("displayTimeUnit").and_then(Json::as_str), Some("ms"));
    let events = v.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
    assert!(!events.is_empty(), "{text}");
    let names: Vec<&str> =
        events.iter().filter_map(|e| e.get("name").and_then(Json::as_str)).collect();
    for phase in ["parse", "audit", "target-view", "candidate-filter", "batch-suspicion", "report"]
    {
        assert!(names.contains(&phase), "phase {phase} missing from {names:?}");
    }
    for e in events {
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"), "{e}");
        assert!(e.get("ts").and_then(Json::as_int).is_some(), "{e}");
        assert!(e.get("dur").and_then(Json::as_int).is_some(), "{e}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `audex serve --trace-out` additionally records the durability spans.
#[test]
fn serve_trace_out_records_wal_spans() {
    let dir = temp_dir("serve-trace");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let store = dir.join("store");
    let trace = dir.join("trace.json");
    let requests = vec![
        SCHEMA_DML.to_string(),
        log_entry(200, "SELECT disease FROM p WHERE zipcode = '145568'"),
        r#"{"cmd":"shutdown"}"#.to_string(),
    ];
    let (responses, _) = drive(
        &[
            "--data-dir",
            store.to_str().unwrap(),
            "--fsync",
            "always",
            "--trace-out",
            trace.to_str().unwrap(),
        ],
        &requests,
    );
    for resp in &responses {
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");
    }
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    let v = Json::parse(&text).unwrap_or_else(|e| panic!("trace is not JSON: {e}\n{text}"));
    let events = v.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
    let names: Vec<&str> =
        events.iter().filter_map(|e| e.get("name").and_then(Json::as_str)).collect();
    assert!(names.contains(&"wal-append"), "{names:?}");
    assert!(names.contains(&"wal-fsync"), "{names:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The registry answer is identical whether updates arrive from 1 worker
/// or 4: `par_map` instrumentation cannot make telemetry nondeterministic.
#[test]
fn registry_snapshot_is_deterministic_across_par_map_widths() {
    let run = |parallelism: usize| {
        let registry = audex::obs::Registry::new();
        let items: Vec<u64> = (0..97).collect();
        audex::core::par_map(parallelism, &items, |_, &i| {
            let shard = format!("{}", i % 5);
            registry.counter("pm_total", "Items processed.", &[("shard", &shard)]).inc();
            // Dyadic values keep float sums exact under any add order.
            registry
                .latency_histogram("pm_seconds", "Per-item latency.", &[])
                .observe(i as f64 * 0.0078125);
        });
        (registry.snapshot(), registry.render_prometheus())
    };
    let (snap1, text1) = run(1);
    let (snap4, text4) = run(4);
    assert_eq!(snap1, snap4);
    assert_eq!(text1, text4);
    assert!(text1.contains(r#"pm_total{shard="3"} 19"#), "{text1}");
}
