//! Full-pipeline integration: synthetic hospitals at scale, planted ground
//! truth, limiting parameters, policy interplay, and engine invariants.

use audex::core::{AuditEngine, AuditMode, EngineOptions};
use audex::sql::ast::{AuditExpr, RolePurposePattern, TimeInterval, TsSpec};
use audex::sql::{parse_audit, Ident};
use audex::storage::JoinStrategy;
use audex::workload::{
    generate_hospital, generate_queries, load_log, standard_audit_text, HospitalConfig,
    QueryMixConfig,
};
use audex::{QueryLog, Timestamp};
use std::collections::BTreeSet;

fn all_time(mut e: AuditExpr) -> AuditExpr {
    let iv = TimeInterval { start: TsSpec::At(Timestamp(0)), end: TsSpec::Now };
    e.during = Some(iv);
    e.data_interval = Some(iv);
    e
}

struct World {
    db: audex::Database,
    log: QueryLog,
    planted: Vec<audex::log::QueryId>,
    now: Timestamp,
}

fn world(seed: u64, queries: usize, rate: f64) -> World {
    let hospital = HospitalConfig { patients: 300, zip_zones: 15, diseases: 10, seed };
    let db = generate_hospital(&hospital, Timestamp(0));
    let mix =
        QueryMixConfig { queries, suspicious_rate: rate, start: Timestamp(1_000), seed: seed * 31 };
    let (log, planted) = load_log(&generate_queries(&hospital, &mix));
    World { db, log, planted, now: Timestamp(1_000_000) }
}

#[test]
fn perfect_recall_on_planted_violations() {
    // Every planted violation must be flagged (the audit is exactly the
    // notion the generator violates); zero planted → clean verdict.
    for seed in [100u64, 200, 300] {
        let w = world(seed, 300, 0.08);
        let audit = all_time(parse_audit(&standard_audit_text()).unwrap());
        let engine = AuditEngine::new(&w.db, &w.log);
        let r = engine.audit_at(&audit, w.now).unwrap();
        let flagged: BTreeSet<_> = r.verdict.contributing.iter().copied().collect();
        for id in &w.planted {
            assert!(flagged.contains(id), "planted {id} missed (seed {seed})");
        }
    }
}

#[test]
fn zero_rate_log_is_clean() {
    let w = world(42, 200, 0.0);
    let audit = all_time(parse_audit(&standard_audit_text()).unwrap());
    let engine = AuditEngine::new(&w.db, &w.log);
    let r = engine.audit_at(&audit, w.now).unwrap();
    // Innocent queries may incidentally touch zone 0 via LIKE-free broad
    // predicates (age BETWEEN), but they never access zone-0 disease data
    // *with* consistent predicates in this mix except the 'other zone'
    // disease queries, which are zone-disjoint. Precision here is exact:
    assert!(!r.verdict.suspicious, "flagged: {:?}", r.verdict.contributing);
}

#[test]
fn limiting_parameters_shrink_scope_monotonically() {
    let w = world(7, 250, 0.1);
    let base = all_time(parse_audit(&standard_audit_text()).unwrap());
    let engine = AuditEngine::new(&w.db, &w.log);
    let full = engine.audit_at(&base, w.now).unwrap();

    // Excluding a role can only shrink the admitted and contributing sets.
    let mut neg = base.clone();
    neg.neg_role_purpose =
        vec![RolePurposePattern { role: Some(Ident::new("nurse")), purpose: None }];
    let filtered = engine.audit_at(&neg, w.now).unwrap();
    assert!(filtered.admitted.len() <= full.admitted.len());
    let full_set: BTreeSet<_> = full.verdict.contributing.iter().collect();
    for id in &filtered.verdict.contributing {
        assert!(full_set.contains(id));
    }

    // Positive user list restricted to one user admits only that user.
    let mut pos = base.clone();
    pos.pos_users = vec![Ident::new("u1")];
    let restricted = engine.audit_at(&pos, w.now).unwrap();
    for id in &restricted.admitted {
        assert_eq!(w.log.get(*id).unwrap().context.user, Ident::new("u1"));
    }
}

#[test]
fn join_strategy_never_changes_reports() {
    let w = world(13, 150, 0.1);
    let audit = all_time(parse_audit(&standard_audit_text()).unwrap());
    let hash = AuditEngine::with_options(
        &w.db,
        &w.log,
        EngineOptions { strategy: JoinStrategy::Auto, ..Default::default() },
    )
    .audit_at(&audit, w.now)
    .unwrap();
    let nested = AuditEngine::with_options(
        &w.db,
        &w.log,
        EngineOptions { strategy: JoinStrategy::NestedLoop, ..Default::default() },
    )
    .audit_at(&audit, w.now)
    .unwrap();
    assert_eq!(hash.verdict.suspicious, nested.verdict.suspicious);
    assert_eq!(hash.verdict.accessed_granules, nested.verdict.accessed_granules);
    assert_eq!(hash.verdict.contributing, nested.verdict.contributing);
    assert_eq!(hash.target_size, nested.target_size);
}

#[test]
fn per_query_flags_subset_of_batch_contributors() {
    let w = world(17, 200, 0.1);
    let audit = all_time(parse_audit(&standard_audit_text()).unwrap());
    let engine = AuditEngine::with_options(
        &w.db,
        &w.log,
        EngineOptions { mode: AuditMode::PerQuery, ..Default::default() },
    );
    let r = engine.audit_at(&audit, w.now).unwrap();
    let contributors: BTreeSet<_> = r.verdict.contributing.iter().collect();
    for id in &r.per_query_suspicious {
        assert!(
            contributors.contains(id),
            "individually suspicious {id} must also contribute to the batch"
        );
    }
}

#[test]
fn report_partitions_admitted_entries() {
    let w = world(23, 180, 0.1);
    let audit = all_time(parse_audit(&standard_audit_text()).unwrap());
    let engine = AuditEngine::new(&w.db, &w.log);
    let r = engine.audit_at(&audit, w.now).unwrap();
    // candidates ∪ pruned == admitted, disjointly.
    let mut together: Vec<_> = r.candidates.iter().chain(&r.pruned).copied().collect();
    together.sort();
    let mut admitted = r.admitted.clone();
    admitted.sort();
    assert_eq!(together, admitted);
    // contributing ⊆ candidates.
    let cand: BTreeSet<_> = r.candidates.iter().collect();
    for id in &r.verdict.contributing {
        assert!(cand.contains(id));
    }
    // degree consistent with counts.
    if r.verdict.total_granules > 0 {
        let expect = r.verdict.accessed_granules as f64 / r.verdict.total_granules as f64;
        assert!((r.verdict.degree - expect).abs() < 1e-12);
    }
}

#[test]
fn audits_over_different_zones_are_independent() {
    // An audit over a zone nobody attacked stays clean even with a dirty log.
    let w = world(29, 200, 0.15);
    let text = "DURING 1/1/1970 TO now() DATA-INTERVAL 1/1/1970 TO now() \
                AUDIT disease FROM Patients, Health \
                WHERE Patients.pid = Health.pid AND Patients.zipcode = '100013'";
    let engine = AuditEngine::new(&w.db, &w.log);
    let r = engine.audit_at(&parse_audit(text).unwrap(), w.now).unwrap();
    // Queries that *only* constrain zone 0 (the pure planted attackers,
    // without the disjunctive phrasing) contradict zone 13 and can never be
    // tied to this audit. Broader queries (age ranges, zone-13 traffic,
    // zone-0-OR-other disjunctions) may legitimately witness zone-13 tuples
    // under batch semantics.
    for id in &r.verdict.contributing {
        let text = w.log.get(*id).unwrap().text.clone();
        let pure_zone0 = text.contains("'100000'") && !text.contains(" OR ");
        assert!(!pure_zone0, "pure zone-0 attacker {id} wrongly tied to zone 13: {text}");
    }
}

#[test]
fn engine_handles_mixed_log_with_unknown_tables() {
    // Queries over tables this database does not have are pruned, not fatal.
    let w = world(31, 50, 0.1);
    w.log
        .record_text(
            "SELECT x FROM NotATable WHERE x = 1",
            Timestamp(5_000),
            audex::AccessContext::new("u", "r", "p"),
        )
        .unwrap();
    let audit = all_time(parse_audit(&standard_audit_text()).unwrap());
    let engine = AuditEngine::new(&w.db, &w.log);
    let r = engine.audit_at(&audit, w.now).unwrap();
    assert!(r.pruned.contains(&audex::log::QueryId(51)));
}
