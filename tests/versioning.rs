//! E10: DATA-INTERVAL / data-version semantics (paper §3.1), including the
//! §2.1 interpretation conflict between [12] (all backlog versions) and
//! [13] (current instance only) that the unified model resolves.

use audex::core::AuditEngine;
use audex::sql::ast::{TimeInterval, TsSpec};
use audex::sql::parse_audit;
use audex::{AccessContext, Database, QueryLog, Timestamp};

/// The paper §2.1 scenario: "AUDIT zipcode … WHERE disease='diabetes'" has
/// different results under the two prior interpretations when a patient's
/// zipcode and disease changed over time.
fn changing_patient() -> Database {
    let mut db = Database::new();
    db.execute(
        &audex::parse_statement("CREATE TABLE Patients (pid TEXT, zipcode TEXT, disease TEXT)")
            .unwrap(),
        Timestamp(0),
    )
    .unwrap();
    // At t=10 Mira has diabetes in 120016.
    db.execute(
        &audex::parse_statement("INSERT INTO Patients VALUES ('mira', '120016', 'diabetes')")
            .unwrap(),
        Timestamp(10),
    )
    .unwrap();
    // At t=50 she is cured (disease changes) and at t=60 she moves.
    db.execute(
        &audex::parse_statement("UPDATE Patients SET disease = 'none' WHERE pid = 'mira'").unwrap(),
        Timestamp(50),
    )
    .unwrap();
    db.execute(
        &audex::parse_statement("UPDATE Patients SET zipcode = '145568' WHERE pid = 'mira'")
            .unwrap(),
        Timestamp(60),
    )
    .unwrap();
    db
}

fn audit_with_interval(
    db: &Database,
    log: &QueryLog,
    start: TsSpec,
    end: TsSpec,
) -> audex::core::AuditReport {
    let engine = AuditEngine::new(db, log);
    let mut expr = parse_audit("AUDIT zipcode FROM Patients WHERE disease = 'diabetes'").unwrap();
    expr.during = Some(TimeInterval { start: TsSpec::At(Timestamp(0)), end: TsSpec::Now });
    expr.data_interval = Some(TimeInterval { start, end });
    engine.audit_at(&expr, Timestamp(1_000)).unwrap()
}

#[test]
fn current_version_interpretation_motwani() {
    // [13]: current instance only — Mira no longer has diabetes, U empty.
    let db = changing_patient();
    let log = QueryLog::new();
    log.record_text(
        "SELECT zipcode FROM Patients WHERE disease = 'diabetes'",
        Timestamp(20),
        AccessContext::new("u", "r", "p"),
    )
    .unwrap();
    let r = audit_with_interval(&db, &log, TsSpec::Now, TsSpec::Now);
    assert_eq!(r.target_size, 0);
    assert!(!r.verdict.suspicious);
}

#[test]
fn all_versions_interpretation_agrawal() {
    // [12]: all versions — the diabetic-era tuple is in U, and the query
    // that ran during that era is caught.
    let db = changing_patient();
    let log = QueryLog::new();
    log.record_text(
        "SELECT zipcode FROM Patients WHERE disease = 'diabetes'",
        Timestamp(20),
        AccessContext::new("u", "r", "p"),
    )
    .unwrap();
    let r = audit_with_interval(&db, &log, TsSpec::At(Timestamp(0)), TsSpec::Now);
    assert_eq!(r.target_size, 1);
    assert!(r.verdict.suspicious);
}

#[test]
fn specific_version_pinpoints_one_instant() {
    let db = changing_patient();
    let log = QueryLog::new();
    log.record_text(
        "SELECT zipcode FROM Patients WHERE disease = 'diabetes'",
        Timestamp(20),
        AccessContext::new("u", "r", "p"),
    )
    .unwrap();
    // At t=55 the disease is already 'none'.
    let r = audit_with_interval(&db, &log, TsSpec::At(Timestamp(55)), TsSpec::At(Timestamp(55)));
    assert_eq!(r.target_size, 0);
    // At t=20 she was diabetic.
    let r = audit_with_interval(&db, &log, TsSpec::At(Timestamp(20)), TsSpec::At(Timestamp(20)));
    assert_eq!(r.target_size, 1);
    assert!(r.verdict.suspicious);
}

#[test]
fn version_boundaries_are_inclusive() {
    let db = changing_patient();
    let log = QueryLog::new();
    // Interval ending exactly at the change instant includes it.
    let r = audit_with_interval(&db, &log, TsSpec::At(Timestamp(0)), TsSpec::At(Timestamp(50)));
    assert_eq!(r.versions, vec![Timestamp(0), Timestamp(10), Timestamp(50)]);
}

#[test]
fn during_and_data_interval_are_independent() {
    // DURING filters queries; DATA-INTERVAL picks versions. A query outside
    // DURING is never audited even when U is non-empty.
    let db = changing_patient();
    let log = QueryLog::new();
    log.record_text(
        "SELECT zipcode FROM Patients WHERE disease = 'diabetes'",
        Timestamp(20),
        AccessContext::new("u", "r", "p"),
    )
    .unwrap();
    let engine = AuditEngine::new(&db, &log);
    let mut expr = parse_audit("AUDIT zipcode FROM Patients WHERE disease = 'diabetes'").unwrap();
    expr.during = Some(TimeInterval { start: TsSpec::At(Timestamp(30)), end: TsSpec::Now });
    expr.data_interval = Some(TimeInterval { start: TsSpec::At(Timestamp(0)), end: TsSpec::Now });
    let r = engine.audit_at(&expr, Timestamp(1_000)).unwrap();
    assert_eq!(r.target_size, 1, "the diabetic-era version is in U");
    assert!(r.admitted.is_empty(), "but the query ran before DURING started");
    assert!(!r.verdict.suspicious);
}

#[test]
fn deleted_tuples_still_auditable_via_interval() {
    // Deletion does not erase audit trail: the pre-delete version stays in
    // interval-based target views.
    let mut db = changing_patient();
    db.execute(
        &audex::parse_statement("DELETE FROM Patients WHERE pid = 'mira'").unwrap(),
        Timestamp(100),
    )
    .unwrap();
    let log = QueryLog::new();
    log.record_text(
        "SELECT zipcode FROM Patients WHERE disease = 'diabetes'",
        Timestamp(20),
        AccessContext::new("u", "r", "p"),
    )
    .unwrap();
    let r = audit_with_interval(&db, &log, TsSpec::At(Timestamp(0)), TsSpec::Now);
    assert_eq!(r.target_size, 1);
    assert!(r.verdict.suspicious);
}

#[test]
fn two_identical_queries_different_times_different_verdicts() {
    // The paper's §3.1 motivation, end to end: identical SQL, different
    // execution times, only the one that ran while the data matched is
    // flagged.
    let db = changing_patient();
    let log = QueryLog::new();
    let sql = "SELECT zipcode FROM Patients WHERE disease = 'diabetes'";
    log.record_text(sql, Timestamp(20), AccessContext::new("u", "r", "p")).unwrap(); // diabetic era
    log.record_text(sql, Timestamp(70), AccessContext::new("u", "r", "p")).unwrap(); // cured era
    let r = audit_with_interval(&db, &log, TsSpec::At(Timestamp(0)), TsSpec::Now);
    assert!(r.verdict.suspicious);
    assert_eq!(r.verdict.contributing.len(), 1);
    assert_eq!(r.verdict.contributing[0], audex::log::QueryId(1));
}

#[test]
fn empty_data_interval_is_error() {
    let db = changing_patient();
    let log = QueryLog::new();
    let engine = AuditEngine::new(&db, &log);
    let mut expr = parse_audit("AUDIT zipcode FROM Patients").unwrap();
    expr.data_interval =
        Some(TimeInterval { start: TsSpec::At(Timestamp(100)), end: TsSpec::At(Timestamp(50)) });
    assert!(matches!(
        engine.audit_at(&expr, Timestamp(1_000)),
        Err(audex::AuditError::EmptyInterval { .. })
    ));
}
