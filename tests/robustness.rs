//! Robustness: every failure mode of the audit pipeline must surface as a
//! structured, well-worded error — never a panic, never a hang, never a
//! half-applied statement — and one bad expression must not take down a
//! batch.

use audex::core::{AuditEngine, AuditError, EngineOptions, ResourceLimits};
use audex::sql::ast::{AuditExpr, TimeInterval, TsSpec};
use audex::sql::parse_audit;
use audex::storage::{FaultPlan, StorageError};
use audex::workload::{
    generate_hospital, generate_queries, load_log, standard_audit_text, HospitalConfig,
    QueryMixConfig,
};
use audex::Timestamp;
use std::time::{Duration, Instant};

fn all_time(mut e: AuditExpr) -> AuditExpr {
    let iv = TimeInterval { start: TsSpec::At(Timestamp(0)), end: TsSpec::Now };
    e.during = Some(iv);
    e.data_interval = Some(iv);
    e
}

fn hospital() -> (audex::storage::Database, audex::QueryLog) {
    let hospital = HospitalConfig { patients: 60, zip_zones: 4, diseases: 4, seed: 11 };
    let db = generate_hospital(&hospital, Timestamp(0));
    let mix =
        QueryMixConfig { queries: 30, suspicious_rate: 0.2, start: Timestamp(1_000), seed: 12 };
    let (log, _) = load_log(&generate_queries(&hospital, &mix));
    (db, log)
}

#[test]
fn unknown_table_is_a_structured_error() {
    let (db, log) = hospital();
    let engine = AuditEngine::new(&db, &log);
    let expr = all_time(parse_audit("AUDIT x FROM NoSuchTable").unwrap());
    let err = engine.audit_at(&expr, Timestamp(1_000_000)).unwrap_err();
    assert!(matches!(err, AuditError::UnknownTable(_)), "{err:?}");
    assert!(err.to_string().contains("unknown table NoSuchTable"), "{err}");
}

#[test]
fn empty_interval_is_a_structured_error() {
    let (db, log) = hospital();
    let engine = AuditEngine::new(&db, &log);
    let mut expr = parse_audit("AUDIT zipcode FROM Patients").unwrap();
    let iv = TimeInterval { start: TsSpec::At(Timestamp(100)), end: TsSpec::At(Timestamp(10)) };
    expr.during = Some(iv);
    expr.data_interval = Some(iv);
    let err = engine.audit_at(&expr, Timestamp(1_000_000)).unwrap_err();
    assert!(matches!(err, AuditError::EmptyInterval { .. }), "{err:?}");
    assert!(err.to_string().contains("start"), "{err}");
}

#[test]
fn granule_cap_refuses_oversized_audits() {
    let (db, log) = hospital();
    let engine = AuditEngine::with_options(
        &db,
        &log,
        EngineOptions {
            limits: ResourceLimits { granule_limit: Some(1), ..ResourceLimits::unlimited() },
            ..Default::default()
        },
    );
    let expr = all_time(parse_audit(&standard_audit_text()).unwrap());
    let err = engine.audit_at(&expr, Timestamp(1_000_000)).unwrap_err();
    match err {
        AuditError::GranuleSetTooLarge { count, limit } => {
            assert!(count > 1);
            assert_eq!(limit, 1);
        }
        other => panic!("expected GranuleSetTooLarge, got {other:?}"),
    }
}

#[test]
fn step_budget_trips_with_phase_and_progress() {
    let (db, log) = hospital();
    let engine = AuditEngine::with_options(
        &db,
        &log,
        EngineOptions {
            limits: ResourceLimits { max_steps: Some(5), ..ResourceLimits::unlimited() },
            ..Default::default()
        },
    );
    let expr = all_time(parse_audit(&standard_audit_text()).unwrap());
    let err = engine.audit_at(&expr, Timestamp(1_000_000)).unwrap_err();
    match &err {
        AuditError::BudgetExhausted { steps, limit, .. } => {
            assert_eq!(*limit, 5);
            assert!(*steps > 5, "progress is reported: {steps}");
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("step budget of 5"), "{msg}");
    assert!(msg.contains("steps completed"), "{msg}");
}

#[test]
fn cancellation_stops_the_audit() {
    let (db, log) = hospital();
    let engine = AuditEngine::new(&db, &log);
    engine.cancel_handle().store(true, std::sync::atomic::Ordering::Relaxed);
    let expr = all_time(parse_audit(&standard_audit_text()).unwrap());
    let err = engine.audit_at(&expr, Timestamp(1_000_000)).unwrap_err();
    assert!(matches!(err, AuditError::Cancelled { .. }), "{err:?}");
    assert!(err.to_string().contains("cancelled"), "{err}");
}

#[test]
fn step_budget_trips_inside_worker_threads() {
    // With 4 workers, the budget check fires on whichever worker crosses the
    // shared atomic counter first; the surfaced error must be the same
    // structured BudgetExhausted — phase plus aggregated step count across
    // all workers — that the sequential path produces.
    let (db, log) = hospital();
    let engine = AuditEngine::with_options(
        &db,
        &log,
        EngineOptions {
            parallelism: 4,
            limits: ResourceLimits { max_steps: Some(5), ..ResourceLimits::unlimited() },
            ..Default::default()
        },
    );
    let expr = all_time(parse_audit(&standard_audit_text()).unwrap());
    let err = engine.audit_at(&expr, Timestamp(1_000_000)).unwrap_err();
    match &err {
        AuditError::BudgetExhausted { steps, limit, .. } => {
            assert_eq!(*limit, 5);
            assert!(*steps > 5, "aggregated progress is reported: {steps}");
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
    assert!(err.to_string().contains("steps completed"), "{err}");
}

#[test]
fn cancellation_reaches_worker_threads() {
    // The engine-level cancel flag is shared by every worker's governor
    // clone; pre-set, any thread observes it at its next check and the
    // audit stops with a structured Cancelled error naming the phase.
    let (db, log) = hospital();
    let engine = AuditEngine::with_options(
        &db,
        &log,
        EngineOptions { parallelism: 4, ..Default::default() },
    );
    engine.cancel_handle().store(true, std::sync::atomic::Ordering::Relaxed);
    let expr = all_time(parse_audit(&standard_audit_text()).unwrap());
    let err = engine.audit_at(&expr, Timestamp(1_000_000)).unwrap_err();
    match &err {
        AuditError::Cancelled { phase: _, steps } => {
            assert!(*steps > 0, "work completed before the flag was seen: {steps}");
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
    assert!(err.to_string().contains("cancelled"), "{err}");
}

#[test]
fn parallel_audit_many_keeps_failure_isolation() {
    // The audit_many fan-out across workers must keep per-expression Results
    // in expression order, with the bad one failing alone.
    let (db, log) = hospital();
    let engine = AuditEngine::with_options(
        &db,
        &log,
        EngineOptions { parallelism: 4, ..Default::default() },
    );
    let exprs = vec![
        all_time(parse_audit(&standard_audit_text()).unwrap()),
        all_time(parse_audit("AUDIT x FROM NoSuchTable").unwrap()),
        all_time(parse_audit("AUDIT age FROM Patients WHERE age > 60").unwrap()),
    ];
    let many = engine.audit_many(&exprs, Timestamp(1_000_000)).unwrap();
    assert_eq!(many.len(), 3);
    assert!(many[0].is_ok(), "{:?}", many[0]);
    assert!(matches!(many[1], Err(AuditError::UnknownTable(_))), "{:?}", many[1]);
    assert!(many[2].is_ok(), "{:?}", many[2]);
}

#[test]
fn pathological_cross_product_respects_the_deadline() {
    // A cross-product FROM over every data version: unbounded, this grinds
    // through millions of row steps. Governed, it must come back quickly
    // with a deadline error naming the phase and the progress made.
    let config = HospitalConfig { patients: 150, zip_zones: 3, diseases: 5, seed: 21 };
    let db = generate_hospital(&config, Timestamp(0));
    let mix =
        QueryMixConfig { queries: 40, suspicious_rate: 0.2, start: Timestamp(1_000), seed: 22 };
    let (log, _) = load_log(&generate_queries(&config, &mix));

    let deadline = Duration::from_millis(100);
    let engine = AuditEngine::with_options(
        &db,
        &log,
        EngineOptions {
            limits: ResourceLimits { deadline: Some(deadline), ..ResourceLimits::unlimited() },
            ..Default::default()
        },
    );
    let expr = all_time(parse_audit("AUDIT name FROM Patients, Health").unwrap());
    let started = Instant::now();
    let err = engine.audit_at(&expr, Timestamp(1_000_000)).unwrap_err();
    let elapsed = started.elapsed();
    match &err {
        AuditError::DeadlineExceeded { steps, deadline_ms, .. } => {
            assert_eq!(*deadline_ms, 100);
            assert!(*steps > 0, "progress is reported");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    // The governor checks at loop heads, so overshoot is bounded by one
    // uninterruptible unit of work (a single version's query), not by the
    // total workload. Allow generous slack for slow CI machines — the point
    // is seconds, not minutes.
    assert!(elapsed < deadline * 20, "returned in {elapsed:?} against a {deadline:?} deadline");
    let msg = err.to_string();
    assert!(msg.contains("deadline of 100 ms"), "{msg}");
}

#[test]
fn audit_many_isolates_a_failing_expression() {
    let (db, log) = hospital();
    let engine = AuditEngine::new(&db, &log);
    let exprs = vec![
        all_time(parse_audit(&standard_audit_text()).unwrap()),
        all_time(parse_audit("AUDIT x FROM NoSuchTable").unwrap()),
        all_time(parse_audit("AUDIT age FROM Patients WHERE age > 60").unwrap()),
    ];
    let many = engine.audit_many(&exprs, Timestamp(1_000_000)).unwrap();
    assert_eq!(many.len(), 3);
    assert!(many[0].is_ok(), "{:?}", many[0]);
    assert!(
        matches!(many[1], Err(AuditError::UnknownTable(_))),
        "the bad expression fails alone: {:?}",
        many[1]
    );
    assert!(many[2].is_ok(), "{:?}", many[2]);

    // The healthy reports are exactly what individual audits produce.
    for i in [0usize, 2] {
        let single = engine.audit_at(&exprs[i], Timestamp(1_000_000)).unwrap();
        let batched = many[i].as_ref().unwrap();
        assert_eq!(batched.verdict.suspicious, single.verdict.suspicious);
        assert_eq!(batched.verdict.contributing, single.verdict.contributing);
    }
}

#[test]
fn injected_storage_fault_propagates_cleanly_through_the_pipeline() {
    let (mut db, log) = hospital();
    db.arm_faults(FaultPlan::new().fail_all_scans("Patients"));
    let engine = AuditEngine::new(&db, &log);
    let expr = all_time(parse_audit(&standard_audit_text()).unwrap());
    let err = engine.audit_at(&expr, Timestamp(1_000_000)).unwrap_err();
    match &err {
        AuditError::Storage(StorageError::Injected { site }) => {
            assert!(site.contains("Patients"), "{site}");
        }
        other => panic!("expected an injected storage fault, got {other:?}"),
    }
    assert!(err.to_string().contains("injected storage fault"), "{err}");
}

#[test]
fn injected_fault_mid_batch_spares_the_other_expressions() {
    use audex::sql::ast::TypeName;
    use audex::sql::Ident;
    use audex::storage::Schema;

    let (mut db, log) = hospital();
    // A second table that only the second expression touches; take it down.
    let last = db.last_ts();
    db.create_table(
        Ident::new("Billing"),
        Schema::of(&[("pid", TypeName::Text), ("amount", TypeName::Int)]),
        last,
    )
    .unwrap();
    db.insert(&Ident::new("Billing"), vec!["p1".into(), audex::storage::Value::Int(10)], last)
        .unwrap();
    db.arm_faults(FaultPlan::new().fail_all_scans("Billing"));

    let engine = AuditEngine::new(&db, &log);
    let exprs = vec![
        all_time(parse_audit(&standard_audit_text()).unwrap()),
        all_time(parse_audit("AUDIT amount FROM Billing").unwrap()),
    ];
    let many = engine.audit_many(&exprs, Timestamp(1_000_000)).unwrap();
    assert!(many[0].is_ok(), "healthy expression unaffected: {:?}", many[0]);
    assert!(
        matches!(many[1], Err(AuditError::Storage(StorageError::Injected { .. }))),
        "faulted expression fails alone: {:?}",
        many[1]
    );
}

#[test]
fn backlog_cutoff_fails_historical_audits_only() {
    let (mut db, log) = hospital();
    // Give the database some history, so an all-time audit must replay
    // intermediate versions (the generator writes everything at one instant).
    for (ts, stmt) in [
        (500, "UPDATE Patients SET address = 'moved-1'"),
        (600, "UPDATE Patients SET address = 'moved-2'"),
    ] {
        db.execute(&audex::sql::parse_statement(stmt).unwrap(), Timestamp(ts)).unwrap();
    }
    // Truncate the backlog after t=100: the version at 500 needs a replay
    // past the cutoff (600 is the live state and needs none).
    db.arm_faults(FaultPlan::new().fail_all_backlogs_past(Timestamp(100)));
    let engine = AuditEngine::new(&db, &log);
    let expr = all_time(parse_audit(&standard_audit_text()).unwrap());
    let err = engine.audit_at(&expr, Timestamp(1_000_000)).unwrap_err();
    assert!(
        matches!(err, AuditError::Storage(StorageError::Injected { .. })),
        "all-time audit replays past the cutoff: {err:?}"
    );
}

// ---------------------------------------------------------------------------
// The `audex` binary: messages on stderr, exit codes that scripts can trust.
// ---------------------------------------------------------------------------

fn write_fixture(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("audex-robustness-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).unwrap();
    path
}

fn run_audex(args: &[&str]) -> (std::process::ExitStatus, String, String) {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_audex"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status,
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const DB_SCRIPT: &str = "\
@1/1/2008
CREATE TABLE Patients (pid TEXT, zipcode TEXT, disease TEXT);
INSERT INTO Patients VALUES ('p1', '120016', 'cancer'), ('p2', '145568', 'flu');
";

const LOG_SCRIPT: &str = "\
@2/1/2008 user=u1 role=nurse purpose=treatment
SELECT zipcode FROM Patients WHERE disease = 'cancer';
";

#[test]
fn binary_reports_structured_errors_with_nonzero_exit() {
    let db = write_fixture("db.sql", DB_SCRIPT);
    let log = write_fixture("log.txt", LOG_SCRIPT);
    let db = db.to_str().unwrap();
    let log = log.to_str().unwrap();
    let base = ["audit", "--db", db, "--log", log];

    // Healthy run: exit 0, report on stdout.
    let (status, stdout, _) = run_audex(
        &[
            &base[..],
            &[
                "--expr",
                "DURING 1/1/2008 TO now() AUDIT disease FROM Patients WHERE zipcode='120016'",
            ],
        ]
        .concat(),
    );
    assert!(status.success());
    assert!(stdout.contains("AUDIT REPORT"), "{stdout}");

    // Unknown table: structured message, exit 1.
    let (status, _, stderr) = run_audex(&[&base[..], &["--expr", "AUDIT x FROM NoSuch"]].concat());
    assert_eq!(status.code(), Some(1));
    assert!(stderr.contains("error:"), "{stderr}");
    assert!(stderr.contains("unknown table NoSuch"), "{stderr}");

    // Step budget: names the phase and the budget.
    let (status, _, stderr) = run_audex(
        &[
            &base[..],
            &["--expr", "DURING 1/1/2008 TO now() AUDIT disease FROM Patients", "--max-steps", "1"],
        ]
        .concat(),
    );
    assert_eq!(status.code(), Some(1));
    assert!(stderr.contains("step budget of 1"), "{stderr}");

    // Zero deadline: trips immediately, still a clean message.
    let (status, _, stderr) = run_audex(
        &[
            &base[..],
            &[
                "--expr",
                "DURING 1/1/2008 TO now() AUDIT disease FROM Patients",
                "--deadline-ms",
                "0",
            ],
        ]
        .concat(),
    );
    assert_eq!(status.code(), Some(1));
    assert!(stderr.contains("deadline of 0 ms"), "{stderr}");

    // Granule cap.
    let (status, _, stderr) = run_audex(
        &[
            &base[..],
            &[
                "--expr",
                "DURING 1/1/2008 TO now() AUDIT disease FROM Patients",
                "--max-granules",
                "1",
            ],
        ]
        .concat(),
    );
    assert_eq!(status.code(), Some(1));
    assert!(stderr.contains("granule set"), "{stderr}");

    // Unknown flag.
    let (status, _, stderr) = run_audex(&[&base[..], &["--frobnicate"]].concat());
    assert_eq!(status.code(), Some(1));
    assert!(stderr.contains("unknown option"), "{stderr}");

    std::fs::remove_file(db).ok();
    std::fs::remove_file(log).ok();
}

// ---------------------------------------------------------------------------
// Telemetry on the error path: every span that opened must close — present
// in the trace with a duration — and the interrupted ones must say so.
// ---------------------------------------------------------------------------

mod telemetry {
    use super::*;
    use audex::core::EngineObs;
    use audex::obs::{Registry, Tracer};
    use std::sync::Arc;

    #[test]
    fn spans_close_truncated_when_the_governor_trips() {
        let (db, log) = hospital();
        let registry = Registry::new();
        let tracer = Tracer::new();
        let engine = AuditEngine::with_options(
            &db,
            &log,
            EngineOptions {
                parallelism: 4,
                limits: ResourceLimits { max_steps: Some(5), ..ResourceLimits::unlimited() },
                ..Default::default()
            },
        )
        .with_obs(EngineObs::new(Arc::clone(&registry), Arc::clone(&tracer)));
        let expr = all_time(parse_audit(&standard_audit_text()).unwrap());
        let err = engine.audit_at(&expr, Timestamp(1_000_000)).unwrap_err();
        assert!(matches!(err, AuditError::BudgetExhausted { .. }), "{err:?}");

        // `take_events` returns only *closed* spans: the enclosing audit
        // span survived the error path and is flagged, as is whichever
        // inner phase the governor interrupted.
        let events = tracer.take_events();
        let audit: Vec<_> = events.iter().filter(|e| e.name == "audit").collect();
        assert_eq!(audit.len(), 1, "{events:?}");
        assert!(audit[0].truncated, "{events:?}");
        assert!(events.iter().any(|e| e.name != "audit" && e.truncated), "{events:?}");

        // The phase histogram recorded the interrupted run too.
        let text = registry.render_prometheus();
        assert!(text.contains(r#"audex_audit_phase_seconds_bucket{phase="audit""#), "{text}");
    }

    #[test]
    fn spans_close_truncated_on_injected_storage_faults() {
        let (mut db, log) = hospital();
        db.arm_faults(FaultPlan::new().fail_all_scans("Patients"));
        let registry = Registry::new();
        let tracer = Tracer::new();
        let engine = AuditEngine::new(&db, &log)
            .with_obs(EngineObs::new(Arc::clone(&registry), Arc::clone(&tracer)));
        let expr = all_time(parse_audit(&standard_audit_text()).unwrap());
        let err = engine.audit_at(&expr, Timestamp(1_000_000)).unwrap_err();
        assert!(matches!(err, AuditError::Storage(StorageError::Injected { .. })), "{err:?}");

        let events = tracer.take_events();
        assert!(events.iter().any(|e| e.name == "audit" && e.truncated), "{events:?}");
        assert!(events.iter().any(|e| e.name == "target-view" && e.truncated), "{events:?}");
    }

    #[test]
    fn one_failing_worker_truncates_only_its_own_span() {
        use audex::sql::ast::TypeName;
        use audex::sql::Ident;
        use audex::storage::Schema;

        // A second table that only the second expression touches; take it
        // down so that worker fails mid-phase while the others succeed.
        let (mut db, log) = hospital();
        let last = db.last_ts();
        db.create_table(
            Ident::new("Billing"),
            Schema::of(&[("pid", TypeName::Text), ("amount", TypeName::Int)]),
            last,
        )
        .unwrap();
        db.insert(&Ident::new("Billing"), vec!["p1".into(), audex::storage::Value::Int(10)], last)
            .unwrap();
        db.arm_faults(FaultPlan::new().fail_all_scans("Billing"));

        let registry = Registry::new();
        let tracer = Tracer::new();
        let engine = AuditEngine::with_options(
            &db,
            &log,
            EngineOptions { parallelism: 4, ..Default::default() },
        )
        .with_obs(EngineObs::new(Arc::clone(&registry), Arc::clone(&tracer)));
        let exprs = vec![
            all_time(parse_audit(&standard_audit_text()).unwrap()),
            all_time(parse_audit("AUDIT amount FROM Billing").unwrap()),
            all_time(parse_audit("AUDIT age FROM Patients WHERE age > 60").unwrap()),
        ];
        let many = engine.audit_many(&exprs, Timestamp(1_000_000)).unwrap();
        assert!(many[0].is_ok() && many[2].is_ok(), "{many:?}");
        assert!(
            matches!(many[1], Err(AuditError::Storage(StorageError::Injected { .. }))),
            "{:?}",
            many[1]
        );

        // The shared index build finished clean; the healthy expressions
        // closed their evaluation spans untruncated; the faulted worker
        // closed its target-view span with the truncated mark — failure
        // isolation holds for the trace as well.
        let events = tracer.take_events();
        assert!(events.iter().any(|e| e.name == "index-build" && !e.truncated), "{events:?}");
        let per_expr: Vec<_> = events.iter().filter(|e| e.name == "index-audit").collect();
        assert_eq!(per_expr.len(), 2, "{events:?}");
        assert!(per_expr.iter().all(|e| !e.truncated), "{events:?}");
        let truncated: Vec<_> = events.iter().filter(|e| e.truncated).collect();
        assert_eq!(truncated.len(), 1, "{events:?}");
        assert_eq!(truncated[0].name, "target-view", "{events:?}");
    }
}
