//! The Definition-4 scenario end to end: attacks split across queries (and
//! users) that only the *batch* notion catches, plus LIMIT/value-mode
//! interactions.

use audex::core::{AuditEngine, AuditMode, EngineOptions};
use audex::sql::parse_audit;
use audex::workload::{
    generate_batch_attack, generate_hospital, load_log, querygen::batch_audit_text, HospitalConfig,
    QueryMixConfig,
};
use audex::{AccessContext, QueryLog, Timestamp};

fn world() -> (audex::Database, QueryLog) {
    let hospital = HospitalConfig { patients: 200, zip_zones: 8, diseases: 6, seed: 55 };
    let db = generate_hospital(&hospital, Timestamp(0));
    let cfg =
        QueryMixConfig { queries: 0, suspicious_rate: 0.0, start: Timestamp(1_000), seed: 56 };
    let (log, _) = load_log(&generate_batch_attack(&cfg, 4));
    (db, log)
}

#[test]
fn batch_catches_what_singles_miss() {
    let (db, log) = world();
    let engine = AuditEngine::with_options(
        &db,
        &log,
        EngineOptions { mode: AuditMode::PerQuery, ..Default::default() },
    );
    let expr = parse_audit(&batch_audit_text()).unwrap();
    let r = engine.audit_at(&expr, Timestamp(1_000_000)).unwrap();

    // No single query covers both mandatory columns…
    assert!(r.per_query_suspicious.is_empty(), "{:?}", r.per_query_suspicious);
    // …but the batch reconstructs the protected view.
    assert!(r.verdict.suspicious);
    assert_eq!(r.verdict.contributing.len(), 8, "all eight attack queries contribute");
}

#[test]
fn one_half_of_a_pair_is_innocent() {
    let (db, _) = world();
    let log = QueryLog::new();
    let cfg =
        QueryMixConfig { queries: 0, suspicious_rate: 0.0, start: Timestamp(1_000), seed: 56 };
    let attack = generate_batch_attack(&cfg, 1);
    // Log only the name-reading half.
    log.record_text(&attack[0].sql, attack[0].at, attack[0].context.clone()).unwrap();
    let engine = AuditEngine::new(&db, &log);
    let expr = parse_audit(&batch_audit_text()).unwrap();
    let r = engine.audit_at(&expr, Timestamp(1_000_000)).unwrap();
    assert!(!r.verdict.suspicious);
}

#[test]
fn limit_zero_still_counts_for_indispensability_but_not_values() {
    // A LIMIT 0 query returns nothing, yet its predicate still *evaluated*
    // over the protected tuples (indispensable-tuple semantics flags it,
    // conservatively); under value-based auditing nothing was disclosed.
    let mut db = audex::Database::new();
    db.execute(
        &audex::parse_statement("CREATE TABLE Patients (pid TEXT, zipcode TEXT, disease TEXT)")
            .unwrap(),
        Timestamp(0),
    )
    .unwrap();
    db.execute(
        &audex::parse_statement("INSERT INTO Patients VALUES ('p1', '120016', 'cancer')").unwrap(),
        Timestamp(1),
    )
    .unwrap();
    let log = QueryLog::new();
    log.record_text(
        "SELECT disease FROM Patients WHERE zipcode = '120016' LIMIT 0",
        Timestamp(10),
        AccessContext::new("u", "r", "p"),
    )
    .unwrap();
    let engine = AuditEngine::new(&db, &log);

    let indispensable =
        parse_audit("DURING 1/1/1970 TO now() AUDIT disease FROM Patients WHERE zipcode='120016'")
            .unwrap();
    let r = engine.audit_at(&indispensable, Timestamp(1_000)).unwrap();
    assert!(r.verdict.suspicious, "predicate-level access is still access");

    let value_mode = parse_audit(
        "INDISPENSABLE false DURING 1/1/1970 TO now() \
         AUDIT disease FROM Patients WHERE zipcode='120016'",
    )
    .unwrap();
    let r = engine.audit_at(&value_mode, Timestamp(1_000)).unwrap();
    assert!(!r.verdict.suspicious, "nothing was returned, so no value leaked");
}

#[test]
fn ordered_limited_disclosure_is_caught_in_value_mode() {
    // ORDER BY ... LIMIT 1 returns exactly one protected value — value-mode
    // auditing counts the granule for the returned row only.
    let mut db = audex::Database::new();
    db.execute(
        &audex::parse_statement("CREATE TABLE Patients (pid TEXT, zipcode TEXT, disease TEXT)")
            .unwrap(),
        Timestamp(0),
    )
    .unwrap();
    db.execute(
        &audex::parse_statement(
            "INSERT INTO Patients VALUES ('p1', '120016', 'anemia'), ('p2', '120016', 'zoster')",
        )
        .unwrap(),
        Timestamp(1),
    )
    .unwrap();
    let log = QueryLog::new();
    log.record_text(
        "SELECT disease FROM Patients WHERE zipcode = '120016' ORDER BY disease LIMIT 1",
        Timestamp(10),
        AccessContext::new("u", "r", "p"),
    )
    .unwrap();
    let engine = AuditEngine::new(&db, &log);
    let value_mode = parse_audit(
        "INDISPENSABLE false DURING 1/1/1970 TO now() \
         AUDIT disease FROM Patients WHERE zipcode='120016'",
    )
    .unwrap();
    let r = engine.audit_at(&value_mode, Timestamp(1_000)).unwrap();
    assert!(r.verdict.suspicious);
    assert_eq!(r.verdict.accessed_granules, 1, "only 'anemia' was disclosed");
}
