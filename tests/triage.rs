//! End-to-end tests of the triage subsystem: evidence-backed explanations,
//! the ranked review queue under sensitivity weights, template mining at
//! scale, and the `--redact-log` durable store.
//!
//! The scale test drives 10,000 queries against 100 standing audits
//! in-process and checks the queue's ranking invariants, the per-audit
//! fact-probe cache counters, and template compression. The daemon test
//! SIGKILLs an `audex serve --redact-log` store mid-session and proves the
//! review queue (including ack/dismiss state and weights) recovers
//! byte-identically while the WAL never holds raw SQL — and documents
//! exactly which audit notions survive redaction.

use audex::service::{Json, Request, ServiceConfig, ServiceCore};
use audex::{Database, Timestamp};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

const ZONES: usize = 100;
const QUERIES: usize = 10_000;

fn ok(core: &mut ServiceCore, req: Request) -> Json {
    let resp = core.handle(req).response;
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");
    resp
}

/// A hospital with one patient per zip zone, and one standing audit per
/// zone — even zones audit `disease`, odd zones audit `pid`, so the two
/// families of flagged queries cover different sensitive columns.
fn scale_core() -> ServiceCore {
    let mut c = ServiceCore::new(Database::new(), ServiceConfig::default());
    let mut sql = String::from("CREATE TABLE Patients (pid TEXT, zipcode TEXT, disease TEXT);");
    for z in 0..ZONES {
        sql.push_str(&format!(" INSERT INTO Patients VALUES ('p{z}', 'z{z:03}', 'd{}');", z % 7));
    }
    ok(&mut c, Request::Dml { ts: Timestamp(100), sql });
    for z in 0..ZONES {
        let column = if z.is_multiple_of(2) { "disease" } else { "pid" };
        ok(
            &mut c,
            Request::Register {
                name: format!("audit-{z:03}"),
                expr: format!(
                    "DURING 1/1/1970 TO 1/1/2100 DATA-INTERVAL 1/1/1970 TO 1/1/2100 \
                     AUDIT {column} FROM Patients WHERE zipcode = 'z{z:03}'"
                ),
                now: Some(Timestamp(500)),
            },
        );
    }
    c
}

/// Drives the 10k mixed workload; returns the ids of the queries that were
/// flagged (non-empty score rows), in ingest order.
fn ingest_scale(core: &mut ServiceCore) -> Vec<i64> {
    let mut flagged = Vec::new();
    // Deterministic LCG so the mix is stable across runs and configs.
    let mut seed: u64 = 0x2545_F491_4F6C_DD1D;
    let mut next = move || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (seed >> 33) as usize
    };
    for i in 0..QUERIES {
        let z = next() % ZONES;
        let who = next() % 3;
        let suspicious = next() % 10 < 3; // ~30% of the stream is flagged
        let column = if z.is_multiple_of(2) { "disease" } else { "pid" };
        let sql = if suspicious {
            format!("SELECT {column} FROM Patients WHERE zipcode = 'z{z:03}'")
        } else {
            format!("SELECT zipcode FROM Patients WHERE zipcode = 'z{z:03}'")
        };
        let resp = ok(
            core,
            Request::Log {
                ts: Timestamp(1_000 + i as i64),
                user: format!("u{who}"),
                role: format!("role{who}"),
                purpose: "treatment".into(),
                sql,
            },
        );
        let scored = resp.get("scores").and_then(Json::as_arr).is_some_and(|s| !s.is_empty());
        if scored {
            flagged.push(resp.get("id").and_then(Json::as_int).unwrap());
        }
    }
    flagged
}

fn items(resp: &Json) -> &[Json] {
    resp.get("items").and_then(Json::as_arr).unwrap()
}

fn item_field(item: &Json, key: &str) -> f64 {
    item.get(key).and_then(Json::as_f64).unwrap()
}

#[test]
fn queue_ranks_10k_queries_against_100_audits() {
    let mut c = scale_core();
    let flagged = ingest_scale(&mut c);
    assert!(flagged.len() > 1_000, "workload produced only {} flagged queries", flagged.len());

    let stats = c.handle(Request::Stats).response;
    assert_eq!(stats.get("queries_ingested").and_then(Json::as_int), Some(QUERIES as i64));
    assert_eq!(stats.get("triage_open").and_then(Json::as_int), Some(flagged.len() as i64));
    // The per-audit fact-probe cache earned its keep: repeated flags of the
    // same audit reuse the probe built on first contact.
    let builds = stats.get("dispatch_fact_probe_builds").and_then(Json::as_int).unwrap();
    let hits = stats.get("dispatch_fact_probe_hits").and_then(Json::as_int).unwrap();
    assert!(builds > 0, "{stats}");
    assert!(hits > builds, "cache never reused: {builds} builds, {hits} hits");

    // Top-K page: priorities descend, ties break on ascending query id.
    let queue = c.handle(Request::Queue { top: Some(25), offset: 0 }).response;
    assert_eq!(queue.get("total_open").and_then(Json::as_int), Some(flagged.len() as i64));
    let page = items(&queue);
    assert_eq!(page.len(), 25);
    for pair in page.windows(2) {
        let (a, b) = (item_field(&pair[0], "priority"), item_field(&pair[1], "priority"));
        assert!(a >= b, "queue out of order: {a} then {b}");
        if a == b {
            assert!(
                pair[0].get("query").and_then(Json::as_int)
                    < pair[1].get("query").and_then(Json::as_int),
                "tie not broken by query id"
            );
        }
    }
    // Paging covers every open item exactly once.
    let mut seen = std::collections::BTreeSet::new();
    let mut offset = 0;
    loop {
        let page = c.handle(Request::Queue { top: Some(1_000), offset }).response;
        let page = items(&page);
        if page.is_empty() {
            break;
        }
        offset += page.len() as u64;
        for item in page {
            assert!(seen.insert(item.get("query").and_then(Json::as_int).unwrap()));
        }
    }
    assert_eq!(seen.len(), flagged.len(), "paging missed or duplicated items");

    // A sensitivity weight on pid floats every pid-covering item above the
    // disease family.
    ok(
        &mut c,
        Request::Weight { table: "Patients".into(), column: Some("pid".into()), weight: 10.0 },
    );
    let queue = c.handle(Request::Queue { top: Some(50), offset: 0 }).response;
    for item in items(&queue) {
        let columns = item.get("columns").and_then(Json::as_arr).unwrap();
        assert!(
            columns.iter().any(|c| c.as_str() == Some("Patients.pid")),
            "after the pid weight the top of the queue must be pid items: {item}"
        );
    }

    // Templates: every open item belongs to exactly one, and the grouping
    // compresses the review burden by an order of magnitude.
    let triage = c.handle(Request::Triage).response;
    let templates = triage.get("templates").and_then(Json::as_arr).unwrap();
    let total: i64 = templates.iter().map(|t| t.get("count").and_then(Json::as_int).unwrap()).sum();
    assert_eq!(total, flagged.len() as i64, "template counts must partition the open items");
    let compression = triage.get("compression").and_then(Json::as_f64).unwrap();
    assert!(
        compression > 5.0,
        "expected an order-of-magnitude compression, got {compression} ({} templates)",
        templates.len()
    );

    // Acking a whole template's example retires one item, not the group.
    let example = templates[0].get("example").and_then(Json::as_int).unwrap();
    ok(&mut c, Request::Ack { query: example as u64 });
    let after = c.handle(Request::Triage).response;
    assert_eq!(after.get("open").and_then(Json::as_int), Some(flagged.len() as i64 - 1), "{after}");
}

struct Serve {
    child: Child,
    stdin: ChildStdin,
    reader: BufReader<ChildStdout>,
}

impl Serve {
    fn spawn(extra: &[&str]) -> Serve {
        let mut child = Command::new(env!("CARGO_BIN_EXE_audex"))
            .args(["serve", "--stdio"])
            .args(extra)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn audex serve --stdio");
        let stdin = child.stdin.take().expect("child stdin");
        let reader = BufReader::new(child.stdout.take().expect("child stdout"));
        Serve { child, stdin, reader }
    }

    fn request(&mut self, line: &str) -> String {
        writeln!(self.stdin, "{line}").expect("write request");
        self.stdin.flush().expect("flush request");
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("read response");
        assert!(resp.ends_with('\n'), "truncated response for {line}");
        resp.pop();
        assert!(resp.contains("\"ok\":true"), "request {line} failed: {resp}");
        resp
    }

    fn kill(mut self) {
        self.child.kill().expect("kill child");
        let _ = self.child.wait();
    }

    fn finish(mut self) {
        drop(self.stdin);
        let status = self.child.wait().expect("child exits");
        assert!(status.success(), "serve exited with {status}");
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("audex-triage-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Does any file under `dir` contain `needle`?
fn dir_contains(dir: &Path, needle: &[u8]) -> bool {
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).expect("read dir") {
            let p = entry.expect("dir entry").path();
            if p.is_dir() {
                stack.push(p);
            } else if std::fs::read(&p)
                .expect("read file")
                .windows(needle.len())
                .any(|w| w == needle)
            {
                return true;
            }
        }
    }
    false
}

fn redacted_workload() -> Vec<String> {
    vec![
        r#"{"cmd":"dml","ts":100,"sql":"CREATE TABLE p (name CHAR, zipcode CHAR, disease CHAR); INSERT INTO p VALUES ('jane','145568','flu'), ('reku','145568','diabetic'), ('lucy','188888','malaria');"}"#.into(),
        r#"{"cmd":"register","name":"snoop","expr":"AUDIT disease FROM p WHERE zipcode='145568'","now":10000}"#.into(),
        r#"{"cmd":"register","name":"names","expr":"AUDIT name FROM p WHERE zipcode='188888'","now":10000}"#.into(),
        r#"{"cmd":"log","ts":200,"user":"u-7","role":"doctor","purpose":"treatment","sql":"SELECT disease FROM p WHERE zipcode = '145568'"}"#.into(),
        r#"{"cmd":"log","ts":300,"user":"u-13","role":"nurse","purpose":"treatment","sql":"SELECT zipcode FROM p WHERE disease = 'missing'"}"#.into(),
        r#"{"cmd":"log","ts":400,"user":"u-21","role":"clerk","purpose":"marketing","sql":"SELECT name FROM p WHERE zipcode = '188888'"}"#.into(),
        r#"{"cmd":"log","ts":500,"user":"u-21","role":"clerk","purpose":"marketing","sql":"SELECT disease, name FROM p WHERE zipcode = '145568'"}"#.into(),
        r#"{"cmd":"weight","table":"p","column":"name","weight":4.0}"#.into(),
        r#"{"cmd":"ack","query":1}"#.into(),
        r#"{"cmd":"dismiss","query":3}"#.into(),
    ]
}

/// The redaction matrix, proven against a real daemon across SIGKILL:
///
/// | notion                               | survives `--redact-log`? |
/// |--------------------------------------|--------------------------|
/// | per-query suspicion scores + evidence| yes (journaled redacted) |
/// | review queue, ack/dismiss, weights   | yes, byte-identical      |
/// | templates + compression              | yes, byte-identical      |
/// | batch re-audit of redacted span      | no — reported as skipped |
/// | raw SQL anywhere in the store        | never present            |
#[test]
fn redacted_store_recovers_queue_byte_identical_and_never_holds_sql() {
    let dir = temp_dir("redact");
    let dir_arg = dir.to_str().expect("utf-8 temp path");
    let flags =
        ["--data-dir", dir_arg, "--fsync", "always", "--redact-log", "--review-budget", "3"];

    let mut serve = Serve::spawn(&flags);
    for req in redacted_workload() {
        serve.request(&req);
    }
    // Live daemon: queue is ranked, the batch audit still works (the raw
    // SQL is in memory; only the durable store is redacted).
    let live_queue = serve.request(r#"{"cmd":"queue"}"#);
    let live_triage = serve.request(r#"{"cmd":"triage"}"#);
    let live_audit = serve.request(r#"{"cmd":"audit","name":"snoop"}"#);
    assert!(live_audit.contains("\"suspicious\":true"), "{live_audit}");
    assert!(live_queue.contains("\"query\":4"), "{live_queue}");
    serve.kill();

    // The store never holds query text, only structure and hashes.
    assert!(!dir_contains(&dir, b"SELECT"), "raw SQL leaked into the durable store");

    // Recovery: the queue — ranking, weights, ack/dismiss states — is
    // byte-identical to the live daemon's.
    let mut serve = Serve::spawn(&flags);
    assert_eq!(serve.request(r#"{"cmd":"queue"}"#), live_queue, "queue drifted through SIGKILL");
    assert_eq!(serve.request(r#"{"cmd":"triage"}"#), live_triage, "triage drifted");

    // What redaction costs: the batch re-audit cannot re-execute redacted
    // queries, and says so instead of pretending.
    let audit = serve.request(r#"{"cmd":"audit","name":"snoop"}"#);
    let skipped_at = audit.find("\"skipped\":").expect("skipped field");
    assert!(
        !audit[skipped_at..].starts_with("\"skipped\":[]"),
        "redacted span not reported: {audit}"
    );
    serve.finish();

    // The offline CLI prints the same queue from the same store.
    let triage = Command::new(env!("CARGO_BIN_EXE_audex"))
        .args(["triage", "--data-dir", dir_arg, "--top", "3"])
        .stderr(Stdio::null())
        .output()
        .expect("run audex triage");
    assert!(triage.status.success());
    let report = String::from_utf8_lossy(&triage.stdout);
    assert!(report.contains("\"total_open\":"), "offline triage report malformed:\n{report}");
    assert_eq!(
        report.lines().nth(1).expect("queue line"),
        live_queue,
        "offline triage disagrees with the daemon"
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
