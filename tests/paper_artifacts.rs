//! Reproduction of every worked artifact in the paper: Tables 1–6 and the
//! granule sets of Figures 4–6 (experiments E1–E9 in DESIGN.md).

use audex::core::{compute_target_view, normalize_with, AuditEngine, AuditScope, GranuleModel};
use audex::sql::{parse_audit, parse_query, Ident};
use audex::storage::{JoinStrategy, Tid};
use audex::workload::paper::*;
use audex::{AccessContext, QueryLog, Timestamp};

fn prepared(audit_text: &str) -> (audex::Database, audex::core::PreparedAudit) {
    let db = paper_database();
    let log = QueryLog::new();
    let engine = AuditEngine::new(&db, &log);
    let mut expr = parse_audit(audit_text).unwrap();
    // The paper's figures carry no DATA-INTERVAL: evaluate at the dataset's
    // single version.
    if expr.data_interval.is_none() {
        expr.data_interval = Some(audex::sql::ast::TimeInterval {
            start: audex::sql::ast::TsSpec::At(paper_epoch()),
            end: audex::sql::ast::TsSpec::At(paper_now()),
        });
    }
    let p = engine.prepare(&expr, paper_now()).unwrap();
    (db, p)
}

fn granule_set(audit_text: &str) -> Vec<String> {
    let (_db, p) = prepared(audit_text);
    let granules = p.model.materialize(&p.view, 10_000).unwrap();
    granules.iter().map(|g| p.model.render(g, &p.view)).collect()
}

/// E3 / Table 4: target data facts for Audit Expression-1 (Fig. 2).
#[test]
fn table4_target_data_facts() {
    let (_db, p) = prepared(FIG2_AUDIT_EXPRESSION_1);
    assert_eq!(p.view.len(), 3);
    let rows: Vec<(u64, String, String, String)> = p
        .view
        .facts
        .iter()
        .map(|f| {
            let tid = f.tid_of(&Ident::new("P-Personal")).unwrap().0;
            let get = |c: &str| {
                f.values
                    .get(&audex::core::ResolvedColumn::new("P-Personal", c))
                    .unwrap()
                    .to_string()
            };
            (tid, get("name"), get("age"), get("address"))
        })
        .collect();
    assert_eq!(
        rows,
        vec![
            (11, "Jane".into(), "25".into(), "A1".into()),
            (13, "Robert".into(), "29".into(), "A3".into()),
            (14, "Lucy".into(), "20".into(), "A4".into()),
        ]
    );
}

/// E4 / Table 5: target data facts for Audit Expression-2 (Fig. 3).
#[test]
fn table5_target_data_facts() {
    let (_db, p) = prepared(FIG3_AUDIT_EXPRESSION_2);
    assert_eq!(p.view.len(), 2);
    let tids: Vec<Vec<u64>> =
        p.view.facts.iter().map(|f| f.tids.iter().map(|(_, t)| t.0).collect()).collect();
    assert_eq!(tids, vec![vec![12, 22, 32], vec![14, 24, 34]]);
    // Table 5's printed values: Reku's row then Lucy's.
    let lucy = &p.view.facts[1];
    assert_eq!(
        lucy.values
            .get(&audex::core::ResolvedColumn::new("P-Personal", "name"))
            .unwrap()
            .to_string(),
        "Lucy"
    );
    assert_eq!(
        lucy.values
            .get(&audex::core::ResolvedColumn::new("P-Employ", "salary"))
            .unwrap()
            .to_string(),
        "19000"
    );
}

/// E6 / Fig. 4: the perfect-privacy granule set.
#[test]
fn fig4_perfect_privacy_granules() {
    let got = granule_set(FIG4_PERFECT_PRIVACY);
    // Every cell the paper lists is produced...
    for expected in FIG4_EXPECTED_PAPER {
        assert!(got.iter().any(|g| g == expected), "missing {expected}; got {got:?}");
    }
    // ...plus exactly the age cell the paper omits (see EXPERIMENTS.md E6).
    assert!(got.contains(&FIG4_IMPLIED_EXTRA.to_string()));
    assert_eq!(got.len(), FIG4_EXPECTED_PAPER.len() + 1);
}

/// E7 / Fig. 5: the weak-syntactic granule set.
#[test]
fn fig5_weak_syntactic_granules() {
    let got = granule_set(FIG5_WEAK_SYNTACTIC);
    for expected in FIG5_EXPECTED_PAPER {
        assert!(got.iter().any(|g| g == expected), "missing {expected}; got {got:?}");
    }
    // 8 schemes × 2 facts; the paper's extra "(t32)" entry is a typo.
    assert_eq!(got.len(), FIG5_EXPECTED_PAPER.len());
}

/// E8 / Fig. 6: the semantic-suspiciousness granule set.
#[test]
fn fig6_semantic_granules() {
    let got = granule_set(FIG6_SEMANTIC);
    assert_eq!(got, FIG6_EXPECTED_PAPER.iter().map(|s| s.to_string()).collect::<Vec<_>>());
}

/// E1 / §2.1: the Agrawal worked example — suspicious and innocent pairs.
#[test]
fn section21_worked_example() {
    let mut db = paper_database();
    with_section21_patients(&mut db);
    let log = QueryLog::new();
    log.record_text(SEC21_QUERY, db.last_ts().plus_seconds(10), AccessContext::new("u", "r", "p"))
        .unwrap();
    let engine = AuditEngine::new(&db, &log);

    let mut audit_disease = parse_audit(SEC21_AUDIT_DISEASE).unwrap();
    audit_disease.during = Some(audex::sql::ast::TimeInterval {
        start: audex::sql::ast::TsSpec::At(Timestamp(0)),
        end: audex::sql::ast::TsSpec::Now,
    });
    let r = engine.audit_at(&audit_disease, paper_now()).unwrap();
    assert!(r.verdict.suspicious, "a cancer patient lives in 120016");

    let mut audit_zip = parse_audit(SEC21_AUDIT_ZIPCODE).unwrap();
    audit_zip.during = audit_disease.during;
    let r = engine.audit_at(&audit_zip, paper_now()).unwrap();
    assert!(!r.verdict.suspicious, "no patient has both cancer and diabetes");
}

/// E9 / Fig. 7: every clause of the full grammar parses, defaults fill in,
/// and the expression round-trips through the printer.
#[test]
fn fig7_full_grammar_round_trip() {
    let a = parse_audit(FIG7_FULL_GRAMMAR).unwrap();
    assert_eq!(a.neg_role_purpose.len(), 2);
    assert_eq!(a.pos_role_purpose.len(), 1);
    assert_eq!(a.neg_users.len(), 1);
    assert_eq!(a.pos_users.len(), 2);
    assert!(a.during.is_some());
    assert!(a.data_interval.is_some());
    let b = parse_audit(&a.to_string()).unwrap();
    assert_eq!(a, b);
}

/// E5 / Table 6: the structural rules hold on the paper's own schema.
#[test]
fn table6_rules_on_paper_schema() {
    let db = paper_database();
    let from = vec![audex::sql::ast::TableRef::named("P-Personal")];
    let scope = AuditScope::resolve(&db, &from).unwrap();
    let norm = |list: &str| {
        let a = parse_audit(&format!("AUDIT {list} FROM P-Personal")).unwrap();
        normalize_with(&a.audit, &scope).unwrap()
    };
    assert_eq!(norm("[name]"), norm("(name)")); // rule 1
    assert_eq!(norm("(name)(age)"), norm("(name, age)")); // rule 2
    assert_eq!(norm("(name, age)"), norm("(age, name)")); // rule 3
    assert_eq!(norm("[name][age]"), norm("(name, age)")); // rule 4
    assert_eq!(norm("[name, age][sex, address]"), norm("[sex, address][name, age]")); // rule 5
    assert_eq!(norm("[(name, age)]"), norm("(name, age)")); // rule 6a
    assert_eq!(norm("([name, age])"), norm("[name, age]")); // rule 6b
    assert_eq!(norm("(name, age)[sex]"), norm("(name, age, sex)")); // rule 7
}

/// E2 / Tables 1–3: the relations carry the paper's tids and key values.
#[test]
fn tables_1_to_3_content() {
    let db = paper_database();
    let q = |sql: &str| db.at(paper_now()).query(&parse_query(sql).unwrap()).unwrap();
    let rs = q("SELECT name FROM P-Personal WHERE zipcode = '145568'");
    let names: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(names, vec!["Reku", "Lucy"]);

    let rs = q("SELECT pid FROM P-Health WHERE disease = 'diabetic'");
    assert_eq!(rs.rows.len(), 2);

    let rs = q("SELECT employer FROM P-Employ WHERE salary > 10000");
    assert_eq!(rs.rows.len(), 3);
}

/// The granule-set rendering used by the `paper_artifacts` example is
/// stable for Fig. 6 (exact string the paper prints, modulo braces).
#[test]
fn fig6_render_set_matches_paper_format() {
    let (_db, p) = prepared(FIG6_SEMANTIC);
    let rendered = p.render_granules(1000).unwrap();
    assert_eq!(rendered, "{(t12,t22,Reku,diabetic,A2), (t14,t24,Lucy,diabetic,A4)}");
}

/// Lineage sanity for the paper dataset: the Fig. 3 target view's facts are
/// exactly the two joined rows whose tids the paper prints in Table 5.
#[test]
fn fig3_lineage_tids() {
    let db = paper_database();
    let audit = parse_audit(FIG3_AUDIT_EXPRESSION_2).unwrap();
    let scope = AuditScope::resolve(&db, &audit.from).unwrap();
    let spec = normalize_with(&audit.audit, &scope).unwrap();
    let view = compute_target_view(&db, &audit, &scope, &spec, &[paper_now()], JoinStrategy::Auto)
        .unwrap();
    let model = GranuleModel { spec, threshold: Default::default(), indispensable: true };
    assert_eq!(model.count(view.len()), 2);
    assert_eq!(view.facts[0].tid_of(&Ident::new("P-Health")), Some(Tid(22)));
}

/// Fig. 7 end to end: the full-grammar expression (all four limiting
/// clauses, mixed mandatory/optional audit list) against the paper's query
/// log — only the doctor's access is audited, and it trips the
/// `(name)[disease|address]` schemes on the ward-W14 patients.
#[test]
fn fig7_full_expression_end_to_end() {
    let db = paper_database();
    let log = paper_query_log();
    let engine = AuditEngine::new(&db, &log);
    let mut expr = parse_audit(FIG7_FULL_GRAMMAR).unwrap();
    // Pin the data interval to the loaded dataset.
    expr.data_interval = Some(audex::sql::ast::TimeInterval {
        start: audex::sql::ast::TsSpec::At(paper_epoch()),
        end: audex::sql::ast::TsSpec::Now,
    });
    let r = engine.audit_at(&expr, paper_now()).unwrap();

    // Limiting parameters: u-13 (nurse) is negated by user id; the clerk's
    // marketing access is negated by (-, marketing); only u-7 the doctor
    // passes both positive clauses.
    assert_eq!(r.admitted.len(), 1, "admitted: {:?}", r.admitted);
    let entry = log.get(r.admitted[0]).unwrap();
    assert_eq!(entry.context.user, audex::sql::Ident::new("u-7"));

    // The doctor read (name, disease) of the W14 patients — granules of the
    // {name, disease} scheme for Ramesh (t13/t23) and King U's patient
    // (t14/t24) are accessed.
    assert!(r.verdict.suspicious);
    assert_eq!(r.verdict.accessed_granules, 2);
    assert_eq!(r.suspicious_queries(), &[audex::log::QueryId(1)]);
}

/// The paper policy judges the paper log: the nurse's address query is a
/// violation, the doctor's access is an authorized disclosure.
#[test]
fn paper_policy_triage() {
    let db = paper_database();
    let log = paper_query_log();
    let policy = paper_policy();
    let engine = AuditEngine::new(&db, &log);
    let mut expr =
        parse_audit("AUDIT [name, address] FROM P-Personal WHERE zipcode = '145568'").unwrap();
    let iv = audex::sql::ast::TimeInterval {
        start: audex::sql::ast::TsSpec::At(Timestamp(0)),
        end: audex::sql::ast::TsSpec::Now,
    };
    expr.during = Some(iv);
    expr.data_interval = Some(iv);
    let r = engine.audit_at(&expr, paper_now()).unwrap();
    assert!(r.verdict.suspicious);

    let assessments = audex::core::assess(&r, &db, &log, &policy);
    // q2 (the nurse reading names+addresses) is among the findings and is a
    // policy violation — nurses may only read P-Health columns.
    let nurse = assessments
        .iter()
        .find(|a| a.context.0 == audex::sql::Ident::new("u-13"))
        .expect("nurse flagged");
    assert!(matches!(nurse.class, audex::core::AccessClass::PolicyViolation(_)));
}
