//! The paper's §3.2 expressibility claim, verified at scale: for generated
//! workloads, the granule-model encodings of the prior suspicion notions
//! agree with direct implementations of their original definitions, and the
//! strictness hierarchy (perfect ≥ weak ≥ semantic) holds.

use audex::core::notions::{
    direct_perfect_privacy, direct_semantic_batch, direct_semantic_single, direct_weak_syntactic,
    perfect_privacy, semantic_indispensable, weak_syntactic,
};
use audex::core::{AuditEngine, EngineOptions};
use audex::sql::ast::{AuditExpr, TimeInterval, TsSpec};
use audex::sql::parse_audit;
use audex::workload::datagen::zip_of_zone;
use audex::workload::{
    generate_hospital, generate_queries, load_log, HospitalConfig, QueryMixConfig,
};
use audex::{QueryLog, Timestamp};

fn all_time(mut e: AuditExpr) -> AuditExpr {
    let iv = TimeInterval { start: TsSpec::At(Timestamp(0)), end: TsSpec::Now };
    e.during = Some(iv);
    e.data_interval = Some(iv);
    e
}

struct World {
    db: audex::Database,
    log: QueryLog,
    now: Timestamp,
}

fn world(seed: u64, queries: usize, rate: f64) -> World {
    let hospital = HospitalConfig { patients: 60, zip_zones: 4, diseases: 4, seed };
    let db = generate_hospital(&hospital, Timestamp(0));
    let mix =
        QueryMixConfig { queries, suspicious_rate: rate, start: Timestamp(1_000), seed: seed + 1 };
    let (log, _) = load_log(&generate_queries(&hospital, &mix));
    World { db, log, now: Timestamp(100_000) }
}

fn audits() -> Vec<AuditExpr> {
    let texts = [
        format!(
            "AUDIT disease FROM Patients, Health \
             WHERE Patients.pid = Health.pid AND Patients.zipcode = '{}'",
            zip_of_zone(0)
        ),
        format!(
            "AUDIT name, disease FROM Patients, Health \
             WHERE Patients.pid = Health.pid AND Patients.zipcode = '{}' AND age < 50",
            zip_of_zone(1)
        ),
        "AUDIT zipcode FROM Patients WHERE age > 60".to_string(),
        format!(
            "AUDIT salary FROM Patients, Employ \
             WHERE Patients.pid = Employ.pid AND zipcode = '{}'",
            zip_of_zone(2)
        ),
    ];
    texts.iter().map(|t| all_time(parse_audit(t).unwrap())).collect()
}

#[test]
fn granule_encodings_agree_with_direct_definitions() {
    for seed in [1u64, 2, 3] {
        let w = world(seed, 60, 0.15);
        let engine = AuditEngine::new(&w.db, &w.log);
        let batch = w.log.snapshot();
        for base in audits() {
            let enc_pp = engine.audit_at(&perfect_privacy(base.clone()), w.now).unwrap();
            let dir_pp = direct_perfect_privacy(&w.db, &batch, &base, w.now).unwrap();
            assert_eq!(
                enc_pp.verdict.suspicious, dir_pp,
                "perfect privacy, seed {seed}, audit {base}"
            );

            let enc_ws = engine.audit_at(&weak_syntactic(base.clone()).unwrap(), w.now).unwrap();
            let dir_ws = direct_weak_syntactic(&w.db, &batch, &base, w.now).unwrap();
            assert_eq!(
                enc_ws.verdict.suspicious, dir_ws,
                "weak syntactic, seed {seed}, audit {base}"
            );

            let enc_sem = engine.audit_at(&semantic_indispensable(base.clone()), w.now).unwrap();
            let dir_sem = direct_semantic_batch(&w.db, &batch, &base, w.now).unwrap();
            assert_eq!(enc_sem.verdict.suspicious, dir_sem, "semantic, seed {seed}, audit {base}");
        }
    }
}

#[test]
fn strictness_hierarchy_holds() {
    // semantic suspicious ⇒ weak syntactic suspicious ⇒ perfect privacy
    // suspicious, on every generated workload and audit.
    for seed in [4u64, 5, 6, 7] {
        let w = world(seed, 50, 0.2);
        let engine = AuditEngine::new(&w.db, &w.log);
        for base in audits() {
            let sem = engine.audit_at(&semantic_indispensable(base.clone()), w.now).unwrap();
            let weak = engine.audit_at(&weak_syntactic(base.clone()).unwrap(), w.now).unwrap();
            let pp = engine.audit_at(&perfect_privacy(base.clone()), w.now).unwrap();
            if sem.verdict.suspicious {
                assert!(weak.verdict.suspicious, "semantic ⊆ weak, seed {seed}, audit {base}");
            }
            if weak.verdict.suspicious {
                assert!(pp.verdict.suspicious, "weak ⊆ perfect, seed {seed}, audit {base}");
            }
        }
    }
}

#[test]
fn per_query_mode_matches_definition_3() {
    // Engine per-query verdicts == direct Definition 3 per query.
    for seed in [8u64, 9] {
        let w = world(seed, 40, 0.25);
        let engine = AuditEngine::with_options(
            &w.db,
            &w.log,
            EngineOptions { mode: audex::core::AuditMode::PerQuery, ..Default::default() },
        );
        for base in audits() {
            let expr = semantic_indispensable(base.clone());
            let report = engine.audit_at(&expr, w.now).unwrap();
            for entry in w.log.snapshot() {
                let direct = direct_semantic_single(&w.db, &entry, &expr, w.now).unwrap();
                let flagged = report.per_query_suspicious.contains(&entry.id);
                assert_eq!(
                    flagged, direct,
                    "Definition 3 mismatch for {} (seed {seed}, audit {base})",
                    entry.text
                );
            }
        }
    }
}

#[test]
fn static_filter_is_sound() {
    // A pruned query is never semantically suspicious in isolation, and
    // pruning never changes the batch verdict. (DESIGN.md §6 soundness.)
    for seed in [10u64, 11, 12] {
        let w = world(seed, 80, 0.2);
        for base in audits() {
            let with = AuditEngine::with_options(
                &w.db,
                &w.log,
                EngineOptions { static_filter: true, ..Default::default() },
            )
            .audit_at(&base, w.now)
            .unwrap();
            let without = AuditEngine::with_options(
                &w.db,
                &w.log,
                EngineOptions { static_filter: false, ..Default::default() },
            )
            .audit_at(&base, w.now)
            .unwrap();
            assert_eq!(with.verdict.suspicious, without.verdict.suspicious, "seed {seed}");
            assert_eq!(
                with.verdict.accessed_granules, without.verdict.accessed_granules,
                "seed {seed}"
            );
            assert_eq!(with.verdict.contributing, without.verdict.contributing, "seed {seed}");
            // Every pruned query is individually innocent.
            for id in &with.pruned {
                let entry = w.log.get(*id).unwrap();
                let direct = direct_semantic_single(&w.db, &entry, &base, w.now).unwrap();
                assert!(!direct, "statically pruned query {id} is semantically suspicious!");
            }
        }
    }
}
