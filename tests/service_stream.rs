//! End-to-end test of `audex serve --stdio`: a child process is driven over
//! the wire protocol with the paper's running example — Tables 1–3 loaded
//! as `dml`, the Figure 4–6 expressions registered (their granule totals
//! must match the sets `tests/paper_artifacts.rs` reproduces), the Fig. 7
//! full-grammar expression standing while the paper's query log streams in,
//! and the final `audit` answered from the incrementally built index.

use audex::service::Json;
use audex::workload::paper::{paper_epoch, paper_now, FIG7_FULL_GRAMMAR};
use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

/// Sends every request line to a fresh `audex serve --stdio` child and
/// returns (responses-in-request-order, events-in-emission-order).
fn drive(requests: &[String]) -> (Vec<Json>, Vec<Json>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_audex"))
        .args(["serve", "--stdio"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn audex serve --stdio");
    {
        let mut stdin = child.stdin.take().expect("child stdin");
        for req in requests {
            writeln!(stdin, "{req}").expect("write request");
        }
        // Dropping stdin closes the pipe: the server drains and exits.
    }
    let stdout = child.stdout.take().expect("child stdout");
    let mut responses = Vec::new();
    let mut events = Vec::new();
    for line in BufReader::new(stdout).lines() {
        let line = line.expect("read response line");
        let v = Json::parse(&line).unwrap_or_else(|e| panic!("bad JSON {line:?}: {e}"));
        if v.get("event").is_some() {
            events.push(v);
        } else {
            responses.push(v);
        }
    }
    let status = child.wait().expect("child exits");
    assert!(status.success(), "serve exited with {status}");
    assert_eq!(responses.len(), requests.len(), "one response line per request");
    (responses, events)
}

fn json_escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

fn register(name: &str, expr: &str, now: i64) -> String {
    format!(r#"{{"cmd":"register","name":"{name}","expr":"{}","now":{now}}}"#, json_escape(expr))
}

fn log_entry(ts: i64, user: &str, role: &str, purpose: &str, sql: &str) -> String {
    format!(
        r#"{{"cmd":"log","ts":{ts},"user":"{user}","role":"{role}","purpose":"{purpose}","sql":"{}"}}"#,
        json_escape(sql)
    )
}

/// The paper's Tables 1–3 as a DML script (plain INSERTs: the service
/// assigns its own tids, so assertions below are on granule *counts*, which
/// the tid relabeling cannot change).
const PAPER_TABLES_DML: &str = "\
    CREATE TABLE P-Personal (pid TEXT, name TEXT, age INT, sex TEXT, zipcode TEXT, address TEXT); \
    CREATE TABLE P-Health (pid TEXT, ward TEXT, doc-name TEXT, disease TEXT, pres-drugs TEXT); \
    CREATE TABLE P-Employ (pid TEXT, employer TEXT, salary INT); \
    INSERT INTO P-Personal VALUES \
      ('p1', 'Jane', 25, 'F', '177893', 'A1'), \
      ('p2', 'Reku', 35, 'M', '145568', 'A2'), \
      ('p13', 'Robert', 29, 'M', '188888', 'A3'), \
      ('p28', 'Lucy', 20, 'F', '145568', 'A4'); \
    INSERT INTO P-Health VALUES \
      ('p1', 'W11', 'Hassan', 'flu', 'drug2'), \
      ('p2', 'W12', 'Nicholas', 'diabetic', 'drug1'), \
      ('p13', 'W14', 'Ramesh', 'Malaria', 'drug3'), \
      ('p28', 'W14', 'King U', 'diabetic', 'drug1'); \
    INSERT INTO P-Employ VALUES \
      ('p1', 'E1', 12000), \
      ('p2', 'E2', 20000), \
      ('p13', 'E3', 9000), \
      ('p28', 'E4', 19000);";

/// Figures 4–6 carry no DATA-INTERVAL; pin it to the loaded dataset the
/// same way `tests/paper_artifacts.rs` does (the grammar accepts limiting
/// clauses in any order, so a prefix works for all three).
fn pinned(fig: &str) -> String {
    format!("DATA-INTERVAL 1/1/2008 TO 7/4/2008 {fig}")
}

#[test]
fn paper_workload_over_the_wire() {
    let now = paper_now().0;
    let t0 = paper_epoch().plus_seconds(3600).0;

    // The three figure expressions, reassembled over the service's own
    // backlog (plain INSERT tids differ from the paper's, so WHERE clauses
    // and granule counts — not granule renderings — are the invariant).
    let fig4 = pinned(
        "INDISPENSABLE true AUDIT [*] FROM P-Personal, P-Health, P-Employ \
         WHERE P-Personal.pid=P-Health.pid and P-Health.pid=P-Employ.pid and \
         P-Personal.zipcode='145568' and P-Employ.salary > 10000 and \
         P-Health.disease='diabetic' and P-Personal.name='Reku'",
    );
    let fig5 = pinned(
        "INDISPENSABLE true \
         AUDIT [name, disease, address, P-Personal.pid, P-Health.pid, P-Employ.pid, zipcode, salary] \
         FROM P-Personal, P-Health, P-Employ \
         WHERE P-Personal.pid=P-Health.pid and P-Health.pid=P-Employ.pid and \
         P-Personal.zipcode='145568' and P-Employ.salary > 10000 and \
         P-Health.disease='diabetic'",
    );
    let fig6 = pinned(
        "INDISPENSABLE true AUDIT (name, disease, address) FROM P-Personal, P-Health, P-Employ \
         WHERE P-Personal.pid=P-Health.pid and P-Health.pid=P-Employ.pid and \
         P-Personal.zipcode='145568' and P-Employ.salary > 10000 and \
         P-Health.disease='diabetic'",
    );

    let requests = vec![
        format!(r#"{{"cmd":"dml","ts":"1/1/2008","sql":"{}"}}"#, json_escape(PAPER_TABLES_DML)),
        r#"{"cmd":"subscribe"}"#.to_string(),
        register("fig4", &fig4, now),
        register("fig5", &fig5, now),
        register("fig6", &fig6, now),
        register("fig7", FIG7_FULL_GRAMMAR, now),
        // The paper's query log (workload::paper::paper_query_log), streamed.
        log_entry(
            t0,
            "u-7",
            "doctor",
            "treatment",
            "SELECT name, disease FROM P-Personal, P-Health \
             WHERE P-Personal.pid = P-Health.pid AND ward = 'W14'",
        ),
        log_entry(
            t0 + 600,
            "u-13",
            "nurse",
            "treatment",
            "SELECT name, address FROM P-Personal WHERE zipcode = '145568'",
        ),
        log_entry(
            t0 + 1200,
            "u-13",
            "nurse",
            "treatment",
            "SELECT disease FROM P-Health WHERE pid = 'p2'",
        ),
        log_entry(
            t0 + 1800,
            "u-21",
            "clerk",
            "marketing",
            "SELECT name FROM P-Personal WHERE age > 30",
        ),
        r#"{"cmd":"audit","name":"fig7"}"#.to_string(),
        r#"{"cmd":"stats"}"#.to_string(),
        r#"{"cmd":"shutdown"}"#.to_string(),
    ];
    let (responses, events) = drive(&requests);
    for (req, resp) in requests.iter().zip(&responses) {
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "request {req} failed: {resp}");
    }

    // The DML applied every statement of Tables 1–3.
    assert_eq!(responses[0].get("applied").and_then(Json::as_int), Some(6));

    // Granule totals match the sets paper_artifacts.rs reproduces:
    // Fig. 4 = the paper's 13 cells + the implied (t12,35); Fig. 5 = 8
    // schemes × 2 facts; Fig. 6 = 1 scheme × 2 facts.
    for (idx, name, total) in [(2, "fig4", 14), (3, "fig5", 16), (4, "fig6", 2)] {
        let r = &responses[idx];
        assert_eq!(r.get("name").and_then(Json::as_str), Some(name));
        assert_eq!(r.get("total_granules").and_then(Json::as_int), Some(total), "{name}: {r}");
    }

    // Streamed ingestion: only the doctor's query passes Fig. 7's limiting
    // parameters (u-13 is user-negated, the clerk's purpose is negated), so
    // exactly one log request carries scores.
    let scored: Vec<usize> = responses[6..10]
        .iter()
        .enumerate()
        .filter(|(_, r)| r.get("scores").and_then(Json::as_arr).is_some_and(|s| !s.is_empty()))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(scored, vec![0], "only the doctor's query is scored");

    // The subscription saw that ingestion as one score + one verdict event,
    // and the verdict already names the contributing query.
    assert_eq!(events.len(), 2, "events: {events:?}");
    assert_eq!(events[0].get("event").and_then(Json::as_str), Some("score"));
    assert_eq!(events[0].get("audit").and_then(Json::as_str), Some("fig7"));
    assert_eq!(events[0].get("query").and_then(Json::as_int), Some(1));
    assert_eq!(events[1].get("event").and_then(Json::as_str), Some("verdict"));
    assert_eq!(events[1].get("suspicious"), Some(&Json::Bool(true)));
    assert_eq!(events[1].get("contributing"), Some(&Json::Arr(vec![Json::Int(1)])));

    // The index-backed audit reproduces paper_artifacts.rs's Fig. 7 verdict:
    // suspicious, 2 accessed granules, q1 the only contributing query.
    let verdict = &responses[10];
    assert_eq!(verdict.get("suspicious"), Some(&Json::Bool(true)), "{verdict}");
    assert_eq!(verdict.get("accessed_granules").and_then(Json::as_int), Some(2), "{verdict}");
    assert_eq!(verdict.get("contributing"), Some(&Json::Arr(vec![Json::Int(1)])), "{verdict}");

    // Counters reflect the whole session: 4 ingested and indexed, 4 standing
    // audits, a backlog advanced by the DML.
    let stats = &responses[11];
    assert_eq!(stats.get("queries_ingested").and_then(Json::as_int), Some(4), "{stats}");
    assert_eq!(stats.get("index_len").and_then(Json::as_int), Some(4), "{stats}");
    assert_eq!(stats.get("index_skipped").and_then(Json::as_int), Some(0), "{stats}");
    assert_eq!(stats.get("registered_audits").and_then(Json::as_int), Some(4), "{stats}");
    assert_eq!(stats.get("dml_statements").and_then(Json::as_int), Some(6), "{stats}");
}

#[test]
fn rejections_and_backpressure_over_the_wire() {
    let requests = vec![
        r#"{"cmd":"dml","ts":100,"sql":"CREATE TABLE T (a INT); INSERT INTO T VALUES (1);"}"#
            .to_string(),
        // Malformed JSON: a protocol error, not a crash.
        r#"{"cmd":"log","#.to_string(),
        // Valid JSON, bad SQL.
        log_entry(200, "u", "r", "p", "SELECT nope FROM missing_table"),
        log_entry(300, "u", "r", "p", "SELECT a FROM T"),
        // Out of order after the entry above.
        log_entry(250, "u", "r", "p", "SELECT a FROM T"),
        r#"{"cmd":"stats"}"#.to_string(),
    ];
    let (responses, _) = drive(&requests);
    assert_eq!(responses[0].get("ok"), Some(&Json::Bool(true)));
    assert_eq!(responses[1].get("ok"), Some(&Json::Bool(false)));
    // A query over an unknown table parses, so it is logged; the index
    // records it as skipped below instead of inventing a footprint.
    assert_eq!(responses[2].get("ok"), Some(&Json::Bool(true)), "{}", responses[2]);
    assert_eq!(responses[3].get("ok"), Some(&Json::Bool(true)));
    assert!(
        responses[4]
            .get("error")
            .and_then(Json::as_str)
            .is_some_and(|e| e.contains("out-of-order")),
        "{}",
        responses[4]
    );
    let stats = &responses[5];
    assert_eq!(stats.get("log_len").and_then(Json::as_int), Some(2), "{stats}");
    // The query over the missing table parses (it is SQL) but has no
    // footprint: the index records it as skipped rather than guessing.
    assert_eq!(stats.get("index_len").and_then(Json::as_int), Some(1), "{stats}");
    assert_eq!(stats.get("index_skipped").and_then(Json::as_int), Some(1), "{stats}");
}
