//! The touch index (§4 future work) must agree exactly with direct batch
//! evaluation, for every suspicion notion, on generated workloads.

use audex::core::{AuditEngine, EngineOptions, Governor, TouchIndex};
use audex::log::QueryId;
use audex::sql::ast::{AuditExpr, TimeInterval, TsSpec};
use audex::sql::parse_audit;
use audex::storage::JoinStrategy;
use audex::workload::datagen::zip_of_zone;
use audex::workload::{
    generate_hospital, generate_queries, load_log, standard_audit_text, HospitalConfig,
    QueryMixConfig,
};
use audex::Timestamp;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn all_time(mut e: AuditExpr) -> AuditExpr {
    let iv = TimeInterval { start: TsSpec::At(Timestamp(0)), end: TsSpec::Now };
    e.during = Some(iv);
    e.data_interval = Some(iv);
    e
}

#[test]
fn index_agrees_with_direct_evaluation_across_audits() {
    let hospital = HospitalConfig { patients: 120, zip_zones: 6, diseases: 5, seed: 77 };
    let db = generate_hospital(&hospital, Timestamp(0));
    let mix =
        QueryMixConfig { queries: 80, suspicious_rate: 0.15, start: Timestamp(1_000), seed: 78 };
    let (log, _) = load_log(&generate_queries(&hospital, &mix));
    let batch = log.snapshot();
    let admitted: BTreeSet<QueryId> = batch.iter().map(|e| e.id).collect();

    let index = TouchIndex::build(&db, &batch, JoinStrategy::Auto);
    assert_eq!(index.len(), batch.len());

    let engine = AuditEngine::with_options(
        &db,
        &log,
        EngineOptions { static_filter: false, ..Default::default() },
    );
    let audits = [
        format!(
            "AUDIT disease FROM Patients, Health \
             WHERE Patients.pid = Health.pid AND Patients.zipcode = '{}'",
            zip_of_zone(0)
        ),
        format!("AUDIT name FROM Patients WHERE zipcode = '{}'", zip_of_zone(1)),
        "AUDIT (name, disease) FROM Patients, Health WHERE Patients.pid = Health.pid".to_string(),
        "INDISPENSABLE false AUDIT name FROM Patients WHERE age > 60".to_string(),
        "THRESHOLD 2 AUDIT age FROM Patients WHERE age < 30".to_string(),
        "AUDIT [name, age, address] FROM Patients WHERE age < 40".to_string(),
    ];
    for text in &audits {
        let expr = all_time(parse_audit(text).unwrap());
        let prepared = engine.prepare(&expr, Timestamp(1_000_000)).unwrap();
        let direct = engine.run(&prepared).unwrap();
        let indexed = index.evaluate(&prepared, &admitted).unwrap();
        assert_eq!(direct.verdict.suspicious, indexed.suspicious, "{text}");
        assert_eq!(direct.verdict.accessed_granules, indexed.accessed_granules, "{text}");
        assert_eq!(direct.verdict.contributing, indexed.contributing, "{text}");
        assert_eq!(direct.verdict.witnesses, indexed.witnesses, "{text}");
        assert_eq!(direct.verdict.per_scheme_accessed, indexed.per_scheme_accessed, "{text}");
    }
}

#[test]
fn admitted_set_restricts_evaluation() {
    let hospital = HospitalConfig { patients: 50, zip_zones: 4, diseases: 4, seed: 5 };
    let db = generate_hospital(&hospital, Timestamp(0));
    let mix =
        QueryMixConfig { queries: 20, suspicious_rate: 0.5, start: Timestamp(1_000), seed: 6 };
    let (log, planted) = load_log(&generate_queries(&hospital, &mix));
    let batch = log.snapshot();
    let index = TouchIndex::build(&db, &batch, JoinStrategy::Auto);

    let engine = AuditEngine::new(&db, &log);
    let expr = all_time(parse_audit(&standard_audit_text()).unwrap());
    let prepared = engine.prepare(&expr, Timestamp(1_000_000)).unwrap();

    // Nothing admitted → clean.
    let none = index.evaluate(&prepared, &BTreeSet::new()).unwrap();
    assert!(!none.suspicious);

    // Only one planted query admitted → exactly that one contributes.
    let one: BTreeSet<QueryId> = [planted[0]].into_iter().collect();
    let v = index.evaluate(&prepared, &one).unwrap();
    assert!(v.suspicious);
    assert_eq!(v.contributing, vec![planted[0]]);
}

#[test]
fn index_respects_limiting_parameters_via_admitted() {
    // The engine's filter decides `admitted`; the index applies it exactly.
    let hospital = HospitalConfig { patients: 60, zip_zones: 4, diseases: 4, seed: 9 };
    let db = generate_hospital(&hospital, Timestamp(0));
    let mix =
        QueryMixConfig { queries: 40, suspicious_rate: 0.3, start: Timestamp(1_000), seed: 10 };
    let (log, _) = load_log(&generate_queries(&hospital, &mix));
    let batch = log.snapshot();
    let index = TouchIndex::build(&db, &batch, JoinStrategy::Auto);

    let mut expr = all_time(parse_audit(&standard_audit_text()).unwrap());
    expr.neg_role_purpose = vec![audex::sql::ast::RolePurposePattern {
        role: Some(audex::sql::Ident::new("nurse")),
        purpose: None,
    }];
    let engine = AuditEngine::with_options(
        &db,
        &log,
        EngineOptions { static_filter: false, ..Default::default() },
    );
    let prepared = engine.prepare(&expr, Timestamp(1_000_000)).unwrap();
    let direct = engine.run(&prepared).unwrap();
    let admitted: BTreeSet<QueryId> = direct.admitted.iter().copied().collect();
    let indexed = index.evaluate(&prepared, &admitted).unwrap();
    assert_eq!(direct.verdict.contributing, indexed.contributing);
    assert_eq!(direct.verdict.accessed_granules, indexed.accessed_granules);
}

#[test]
fn audit_many_matches_individual_audits() {
    let hospital = HospitalConfig { patients: 80, zip_zones: 5, diseases: 4, seed: 91 };
    let db = generate_hospital(&hospital, Timestamp(0));
    let mix =
        QueryMixConfig { queries: 60, suspicious_rate: 0.2, start: Timestamp(1_000), seed: 92 };
    let (log, _) = load_log(&generate_queries(&hospital, &mix));
    let engine = AuditEngine::new(&db, &log);

    let exprs: Vec<AuditExpr> = (0..4)
        .map(|i| {
            let mut e = all_time(
                parse_audit(&format!(
                    "AUDIT disease FROM Patients, Health \
                     WHERE Patients.pid = Health.pid AND Patients.zipcode = '{}'",
                    zip_of_zone(i)
                ))
                .unwrap(),
            );
            if i == 1 {
                // One audit with a limiting parameter, to exercise per-
                // expression filtering inside audit_many.
                e.neg_role_purpose = vec![audex::sql::ast::RolePurposePattern {
                    role: Some(audex::sql::Ident::new("nurse")),
                    purpose: None,
                }];
            }
            e
        })
        .collect();

    let many = engine.audit_many(&exprs, Timestamp(1_000_000)).unwrap();
    for (expr, outcome) in exprs.iter().zip(&many) {
        let report = outcome.as_ref().expect("healthy expression audits cleanly");
        let single = engine.audit_at(expr, Timestamp(1_000_000)).unwrap();
        assert_eq!(report.verdict.suspicious, single.verdict.suspicious);
        assert_eq!(report.verdict.accessed_granules, single.verdict.accessed_granules);
        assert_eq!(report.verdict.contributing, single.verdict.contributing);
        assert_eq!(report.admitted, single.admitted);
    }
}

proptest! {
    // Workload generation dominates each case; 16 cases × (3 builds + 3
    // audits × 3 evaluations) is plenty of surface for a divergence to show.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Differential: growing the index one query at a time with
    /// [`TouchIndex::extend`] — the streaming service's ingestion path —
    /// yields byte-identical verdicts to a from-scratch batch build, at
    /// parallelism 1 and 4.
    #[test]
    fn extend_matches_from_scratch_build(
        db_seed in 0u64..500,
        mix_seed in 0u64..500,
        queries in 8usize..32,
        suspicious_pct in 0u32..40,
    ) {
        let hospital =
            HospitalConfig { patients: 40, zip_zones: 4, diseases: 4, seed: db_seed };
        let db = generate_hospital(&hospital, Timestamp(0));
        let mix = QueryMixConfig {
            queries,
            suspicious_rate: f64::from(suspicious_pct) / 100.0,
            start: Timestamp(1_000),
            seed: mix_seed,
        };
        let (log, _) = load_log(&generate_queries(&hospital, &mix));
        let batch = log.snapshot();
        let governor = Governor::unlimited();

        let sequential =
            TouchIndex::build_governed_with(&db, &batch, JoinStrategy::Auto, &governor, 1)
                .unwrap();
        let threaded =
            TouchIndex::build_governed_with(&db, &batch, JoinStrategy::Auto, &governor, 4)
                .unwrap();
        let mut incremental = TouchIndex::new();
        for entry in &batch {
            incremental.extend(&db, entry, JoinStrategy::Auto, &governor).unwrap();
        }
        prop_assert_eq!(incremental.len(), sequential.len());
        prop_assert_eq!(incremental.skipped_ids(), sequential.skipped_ids());

        let engine = AuditEngine::new(&db, &log);
        let admitted: BTreeSet<QueryId> = batch.iter().map(|e| e.id).collect();
        let audits = [
            standard_audit_text(),
            format!("AUDIT name FROM Patients WHERE zipcode = '{}'", zip_of_zone(1)),
            "THRESHOLD 2 AUDIT age FROM Patients WHERE age < 45".to_string(),
        ];
        for text in &audits {
            let expr = all_time(parse_audit(text).unwrap());
            let prepared = engine.prepare(&expr, Timestamp(1_000_000)).unwrap();
            let from_inc = incremental.evaluate(&prepared, &admitted).unwrap();
            let from_seq = sequential.evaluate(&prepared, &admitted).unwrap();
            let from_par = threaded.evaluate(&prepared, &admitted).unwrap();
            // Byte-identical, not merely equal: the service answers audits
            // from the extended index and its wire output is rendered from
            // this verdict.
            prop_assert_eq!(
                format!("{from_inc:?}"),
                format!("{from_seq:?}"),
                "extend vs sequential build diverged on {}", text
            );
            prop_assert_eq!(
                format!("{from_inc:?}"),
                format!("{from_par:?}"),
                "extend vs 4-thread build diverged on {}", text
            );
        }
    }
}
