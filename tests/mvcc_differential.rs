//! Differential oracle: `StorageMode::Mvcc` (the engine default) against
//! `StorageMode::Replay` (the retained per-query replay engine).
//!
//! The two representations must be observationally identical — byte-identical
//! audit reports, suspicion scores, touch-index verdicts, and triage queues —
//! on randomized DML / query / audit interleavings, with and without injected
//! storage faults, single-threaded and under concurrent readers.

use audex::core::AuditEngine;
use audex::service::{Request, ServiceConfig, ServiceCore};
use audex::sql::ast::{TimeInterval, TsSpec};
use audex::sql::{parse_audit, parse_statement};
use audex::storage::{Database, FaultPlan, StorageMode};
use audex::{AccessContext, QueryLog, Timestamp};
use proptest::prelude::*;

/// xorshift64* — the schedule generator is seeded explicitly so a failing
/// case replays from the one integer proptest prints.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    fn pick<'a>(&mut self, xs: &'a [&'a str]) -> &'a str {
        xs[self.below(xs.len() as u64) as usize]
    }
}

const ZIPS: [&str; 3] = ["120016", "145568", "983301"];
const DISEASES: [&str; 3] = ["cancer", "flu", "none"];
const AUDITS: [(&str, &str); 3] = [
    ("cancer-watch", "disease FROM Patients WHERE zipcode = '120016'"),
    ("zip-watch", "pid FROM Patients WHERE disease = 'cancer'"),
    ("all-pid", "pid FROM Patients"),
];

fn all_time(expr: &str) -> String {
    format!("DURING 1/1/1970 TO 1/1/2100 DATA-INTERVAL 1/1/1970 TO 1/1/2100 AUDIT {expr}")
}

/// A deterministic interleaving of DML, logged queries, audit evaluations,
/// and triage actions, drawn from `seed`.
fn schedule(seed: u64, ops: usize) -> Vec<Request> {
    let mut rng = Rng::new(seed);
    let mut reqs = vec![Request::Dml {
        ts: Timestamp(0),
        sql: "CREATE TABLE Patients (pid TEXT, zipcode TEXT, disease TEXT); \
              INSERT INTO Patients VALUES \
              ('p0', '120016', 'cancer'), ('p1', '120016', 'flu'), \
              ('p2', '145568', 'none'), ('p3', '983301', 'cancer');"
            .into(),
    }];
    for (name, expr) in AUDITS {
        reqs.push(Request::Register {
            name: name.into(),
            expr: all_time(expr),
            now: Some(Timestamp(5_000)),
        });
    }
    let mut next_pid = 4u64;
    let mut ts = 100i64;
    for _ in 0..ops {
        ts += 1 + rng.below(5) as i64;
        let req = match rng.below(10) {
            0 => {
                let pid = format!("p{next_pid}");
                next_pid += 1;
                Request::Dml {
                    ts: Timestamp(ts),
                    sql: format!(
                        "INSERT INTO Patients VALUES ('{pid}', '{}', '{}')",
                        rng.pick(&ZIPS),
                        rng.pick(&DISEASES)
                    ),
                }
            }
            1 => Request::Dml {
                ts: Timestamp(ts),
                sql: format!(
                    "UPDATE Patients SET zipcode = '{}' WHERE pid = 'p{}'",
                    rng.pick(&ZIPS),
                    rng.below(next_pid)
                ),
            },
            2 => Request::Dml {
                ts: Timestamp(ts),
                sql: format!(
                    "UPDATE Patients SET disease = '{}' WHERE pid = 'p{}'",
                    rng.pick(&DISEASES),
                    rng.below(next_pid)
                ),
            },
            3 => Request::Dml {
                ts: Timestamp(ts),
                sql: format!("DELETE FROM Patients WHERE pid = 'p{}'", rng.below(next_pid)),
            },
            4..=6 => {
                let (col, filter_col, pool): (&str, &str, &[&str]) = match rng.below(3) {
                    0 => ("disease", "zipcode", &ZIPS),
                    1 => ("pid", "disease", &DISEASES),
                    _ => ("zipcode", "pid", &["p0", "p1", "p2"]),
                };
                let val = pool[rng.below(pool.len() as u64) as usize];
                Request::Log {
                    ts: Timestamp(ts),
                    user: format!("u{}", rng.below(3)),
                    role: format!("r{}", rng.below(2)),
                    purpose: "care".into(),
                    sql: format!("SELECT {col} FROM Patients WHERE {filter_col} = '{val}'"),
                }
            }
            7 => Request::Audit { name: AUDITS[rng.below(3) as usize].0.into() },
            8 => Request::Queue { top: None, offset: 0 },
            _ => match rng.below(4) {
                0 => Request::Ack { query: rng.below(20) },
                1 => Request::Dismiss { query: rng.below(20) },
                2 => Request::Weight {
                    table: "Patients".into(),
                    column: Some(rng.pick(&["pid", "zipcode", "disease"]).into()),
                    weight: (1 + rng.below(5)) as f64,
                },
                _ => Request::Triage,
            },
        };
        reqs.push(req);
    }
    // Every observable, once more, at the end of the interleaving.
    for (name, _) in AUDITS {
        reqs.push(Request::Audit { name: name.into() });
    }
    reqs.push(Request::Queue { top: None, offset: 0 });
    reqs.push(Request::Triage);
    reqs
}

/// Runs `reqs` against a fresh core in `mode` and returns each response
/// serialized — the byte string the wire would carry.
fn run(mode: StorageMode, reqs: &[Request], faults: Option<&FaultPlan>) -> Vec<String> {
    let mut db = Database::with_mode(mode);
    if let Some(plan) = faults {
        db.arm_faults(plan.clone());
    }
    let mut core = ServiceCore::new(db, ServiceConfig { storage: mode, ..Default::default() });
    reqs.iter().map(|r| core.handle(r.clone()).response.to_string()).collect()
}

fn assert_identical(seed: u64, reqs: &[Request], faults: Option<&FaultPlan>) {
    let mvcc = run(StorageMode::Mvcc, reqs, faults);
    let replay = run(StorageMode::Replay, reqs, faults);
    for (i, (m, r)) in mvcc.iter().zip(&replay).enumerate() {
        assert_eq!(m, r, "seed {seed}: responses diverge at step {i} ({:?})", reqs[i]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Healthy path: every response byte-identical across the two modes.
    #[test]
    fn mvcc_and_replay_answer_identically(seed in any::<u64>()) {
        let reqs = schedule(seed, 40);
        assert_identical(seed, &reqs, None);
    }

    /// Injected storage faults must surface identically: a backlog cutoff
    /// mid-history fails the same audits with the same structured errors in
    /// both modes (the MVCC visibility path keeps the replay fault gates).
    #[test]
    fn fault_injection_is_mode_invariant(seed in any::<u64>()) {
        let reqs = schedule(seed, 40);
        let plan = FaultPlan::new().fail_all_backlogs_past(Timestamp(150));
        assert_identical(seed, &reqs, Some(&plan));
    }
}

/// Canonical digest of one engine-level report — everything the paper's
/// auditor observes.
fn digest(r: &audex::core::AuditReport) -> String {
    format!(
        "target={} versions={:?} admitted={:?} suspicious={} contributing={:?} \
         witnesses={:?} granules={}",
        r.target_size,
        r.versions,
        r.admitted,
        r.verdict.suspicious,
        r.verdict.contributing,
        r.verdict.witnesses,
        r.verdict.accessed_granules,
    )
}

/// Builds a database in `mode` plus a populated query log from the DML and
/// Log steps of `reqs` (engine-level mirror of the service schedule).
fn build(mode: StorageMode, reqs: &[Request]) -> (Database, QueryLog) {
    let mut db = Database::with_mode(mode);
    let log = QueryLog::new();
    for req in reqs {
        match req {
            Request::Dml { ts, sql } => {
                let mut at = *ts;
                for stmt in sql.split(';').map(str::trim).filter(|s| !s.is_empty()) {
                    db.execute(&parse_statement(stmt).unwrap(), at).unwrap();
                    at = Timestamp(at.0 + 1);
                }
            }
            Request::Log { ts, user, role, purpose, sql } => {
                log.record_text(
                    sql,
                    *ts,
                    AccessContext::new(user.as_str(), role.as_str(), purpose.as_str()),
                )
                .unwrap();
            }
            _ => {}
        }
    }
    (db, log)
}

/// Four concurrent readers, each auditing in a different rotation, against a
/// shared MVCC database: every thread must produce the digests the replay
/// engine produces sequentially. Exercises the shared snapshot cache and
/// visibility counters under contention.
#[test]
fn concurrent_mvcc_readers_agree_with_sequential_replay() {
    let iv = TimeInterval { start: TsSpec::At(Timestamp(0)), end: TsSpec::Now };
    let exprs: Vec<_> = AUDITS
        .iter()
        .map(|(_, body)| {
            let mut e = parse_audit(&format!("AUDIT {body}")).unwrap();
            e.during = Some(iv);
            e.data_interval = Some(iv);
            e
        })
        .collect();
    for seed in [11u64, 2_026, 808_808] {
        let reqs = schedule(seed, 40);
        let (replay_db, replay_log) = build(StorageMode::Replay, &reqs);
        let replay_engine = AuditEngine::new(&replay_db, &replay_log);
        let baseline: Vec<String> = exprs
            .iter()
            .map(|e| digest(&replay_engine.audit_at(e, Timestamp(1_000_000)).unwrap()))
            .collect();

        let (mvcc_db, mvcc_log) = build(StorageMode::Mvcc, &reqs);
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let (exprs, baseline) = (&exprs, &baseline);
                let (db, log) = (&mvcc_db, &mvcc_log);
                scope.spawn(move || {
                    let engine = AuditEngine::new(db, log);
                    for round in 0..3 {
                        for i in 0..exprs.len() {
                            let k = (i + t + round) % exprs.len();
                            let got =
                                digest(&engine.audit_at(&exprs[k], Timestamp(1_000_000)).unwrap());
                            assert_eq!(
                                got, baseline[k],
                                "seed {seed}: thread {t} diverged on audit {k}"
                            );
                        }
                    }
                });
            }
        });
    }
}
