//! End-to-end tests of the multi-tenant fleet: cross-tenant isolation,
//! concurrent per-tenant TCP ingest, and SIGKILL crash recovery over a
//! 100-tenant store.
//!
//! The isolation oracle is differential: a fleet daemon serving N tenants
//! must answer every tenant-addressed request **byte-identically** to N
//! independent single-tenant daemons each running that tenant's slice of
//! the workload. Any cross-tenant leakage — shared table, shared log,
//! shared audit state — shows up as a diverged response line.

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

struct Serve {
    child: Child,
    stdin: ChildStdin,
    reader: BufReader<ChildStdout>,
}

impl Serve {
    fn spawn(extra: &[&str]) -> Serve {
        let mut child = Command::new(env!("CARGO_BIN_EXE_audex"))
            .args(["serve", "--stdio"])
            .args(extra)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn audex serve --stdio");
        let stdin = child.stdin.take().expect("child stdin");
        let reader = BufReader::new(child.stdout.take().expect("child stdout"));
        Serve { child, stdin, reader }
    }

    /// Sends one request and reads its one response line.
    fn request(&mut self, line: &str) -> String {
        writeln!(self.stdin, "{line}").expect("write request");
        self.stdin.flush().expect("flush request");
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("read response");
        assert!(resp.ends_with('\n'), "truncated response for {line}");
        resp.pop();
        assert!(resp.contains("\"ok\":true"), "request {line} failed: {resp}");
        resp
    }

    /// Simulates a crash: SIGKILL, no drain, no flush.
    fn kill(mut self) {
        self.child.kill().expect("kill child");
        let _ = self.child.wait();
    }

    fn finish(mut self) {
        drop(self.stdin);
        let status = self.child.wait().expect("child exits");
        assert!(status.success(), "serve exited with {status}");
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("audex-multi-tenant-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Addresses a request line to a tenant (the field parses anywhere in the
/// object; the front is easiest to splice).
fn with_tenant(line: &str, tenant: &str) -> String {
    assert!(line.starts_with('{'), "not a request object: {line}");
    format!("{{\"tenant\":\"{tenant}\",{}", &line[1..])
}

/// One tenant's workload, parameterized so different tenants hold
/// different data: schema + seed rows, a standing audit, a suspicious and
/// an innocuous query, the full audit. Every response is deterministic.
fn workload(zip: &str, disease: &str) -> Vec<String> {
    vec![
        format!(
            r#"{{"cmd":"dml","ts":100,"sql":"CREATE TABLE p (name CHAR, zipcode CHAR, disease CHAR); INSERT INTO p VALUES ('jane','{zip}','{disease}'), ('reku','{zip}','diabetic'), ('lucy','188888','malaria');"}}"#
        ),
        format!(
            r#"{{"cmd":"register","name":"snoop","expr":"AUDIT disease FROM p WHERE zipcode='{zip}'","now":10000}}"#
        ),
        format!(
            r#"{{"cmd":"log","ts":200,"user":"u-7","role":"doctor","purpose":"treatment","sql":"SELECT disease FROM p WHERE zipcode = '{zip}'"}}"#
        ),
        r#"{"cmd":"log","ts":300,"user":"u-13","role":"nurse","purpose":"treatment","sql":"SELECT name FROM p WHERE zipcode = '188888'"}"#.to_string(),
        r#"{"cmd":"audit","name":"snoop"}"#.to_string(),
        r#"{"cmd":"stats"}"#.to_string(),
    ]
}

/// Two tenants interleaved through one fleet daemon answer byte-for-byte
/// like two dedicated single-tenant daemons: ingest, audits, and stats
/// counters never bleed across the shard boundary.
#[test]
fn interleaved_tenants_match_dedicated_daemons_byte_for_byte() {
    let wl_a = workload("145568", "flu");
    let wl_b = workload("99901", "cancer");

    // References: each workload alone in its own daemon.
    let reference: Vec<Vec<String>> = [&wl_a, &wl_b]
        .iter()
        .map(|wl| {
            let mut serve = Serve::spawn(&[]);
            let responses: Vec<String> = wl.iter().map(|r| serve.request(r)).collect();
            serve.finish();
            responses
        })
        .collect();

    // The fleet: both tenants through one daemon, strictly interleaved.
    let mut fleet = Serve::spawn(&[]);
    fleet.request(r#"{"cmd":"create-tenant","name":"a"}"#);
    fleet.request(r#"{"cmd":"create-tenant","name":"b"}"#);
    let mut got_a = Vec::new();
    let mut got_b = Vec::new();
    for (ra, rb) in wl_a.iter().zip(&wl_b) {
        got_a.push(fleet.request(&with_tenant(ra, "a")));
        got_b.push(fleet.request(&with_tenant(rb, "b")));
    }

    assert_eq!(got_a, reference[0], "tenant a diverged from a dedicated daemon");
    assert_eq!(got_b, reference[1], "tenant b diverged from a dedicated daemon");
    let audit_a = &got_a[4];
    assert!(audit_a.contains("\"suspicious\":true"), "workload not suspicious: {audit_a}");

    // An unknown tenant is a structured error, not a default-shard hit.
    writeln!(fleet.stdin, "{}", with_tenant(r#"{"cmd":"stats"}"#, "ghost")).expect("write");
    fleet.stdin.flush().expect("flush");
    let mut resp = String::new();
    fleet.reader.read_line(&mut resp).expect("read");
    assert!(resp.contains("unknown tenant"), "{resp}");

    // The default tenant saw none of it.
    let stats = fleet.request(r#"{"cmd":"stats"}"#);
    assert!(stats.contains("\"log_len\":0"), "default tenant leaked state: {stats}");
    fleet.request(r#"{"cmd":"shutdown"}"#);
}

/// Two clients flood different tenants over TCP at the same time; both
/// final audits and log lengths must match dedicated single-tenant
/// daemons run sequentially. Exercises the lock-free cross-tenant ingest
/// path (distinct shard mutexes) under real concurrency.
#[test]
fn concurrent_tcp_ingest_keeps_tenants_isolated() {
    const QUERIES: usize = 200;

    // Reference: each tenant's flood alone in a dedicated daemon.
    let reference: Vec<(String, String)> = [("145568", "flu"), ("99901", "cancer")]
        .iter()
        .map(|(zip, disease)| {
            let mut serve = Serve::spawn(&[]);
            let wl = workload(zip, disease);
            serve.request(&wl[0]);
            serve.request(&wl[1]);
            for i in 0..QUERIES {
                serve.request(&flood_line(zip, i));
            }
            let audit = serve.request(r#"{"cmd":"audit","name":"snoop"}"#);
            let stats = serve.request(r#"{"cmd":"stats"}"#);
            serve.finish();
            (audit, stats)
        })
        .collect();

    let mut server = Command::new(env!("CARGO_BIN_EXE_audex"))
        .args(["serve", "--listen", "127.0.0.1:0"])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn audex serve --listen");
    let mut server_err = BufReader::new(server.stderr.take().expect("server stderr"));
    let mut banner = String::new();
    loop {
        banner.clear();
        assert!(server_err.read_line(&mut banner).expect("read banner") > 0, "stderr closed");
        if banner.contains("audexd listening on") {
            break;
        }
    }
    std::thread::spawn(move || for _ in server_err.lines() {});
    let addr = banner.trim().rsplit(' ').next().expect("address in banner").to_string();

    let workers: Vec<_> = [("a", "145568", "flu"), ("b", "99901", "cancer")]
        .iter()
        .map(|(tenant, zip, disease)| {
            let addr = addr.clone();
            let (tenant, zip, disease) = (tenant.to_string(), zip.to_string(), disease.to_string());
            std::thread::spawn(move || {
                let stream = std::net::TcpStream::connect(&addr).expect("connect");
                let mut writer = stream.try_clone().expect("clone stream");
                let mut reader = BufReader::new(stream);
                let mut ask = |line: &str| {
                    writeln!(writer, "{line}").expect("send");
                    writer.flush().expect("flush");
                    let mut resp = String::new();
                    reader.read_line(&mut resp).expect("read");
                    assert!(resp.contains("\"ok\":true"), "request {line} failed: {resp}");
                    resp.trim_end().to_string()
                };
                ask(&format!(r#"{{"cmd":"create-tenant","name":"{tenant}"}}"#));
                let wl = workload(&zip, &disease);
                ask(&with_tenant(&wl[0], &tenant));
                ask(&with_tenant(&wl[1], &tenant));
                for i in 0..QUERIES {
                    ask(&with_tenant(&flood_line(&zip, i), &tenant));
                }
                let audit = ask(&with_tenant(r#"{"cmd":"audit","name":"snoop"}"#, &tenant));
                let stats = ask(&with_tenant(r#"{"cmd":"stats"}"#, &tenant));
                (audit, stats)
            })
        })
        .collect();
    let results: Vec<(String, String)> =
        workers.into_iter().map(|w| w.join().expect("worker")).collect();

    for ((got, reference), tenant) in results.iter().zip(&reference).zip(["a", "b"]) {
        assert_eq!(got.0, reference.0, "tenant {tenant} audit diverged under concurrency");
        // Stats are compared on the state counters; front-door fields
        // (connections etc.) legitimately differ between TCP and stdio.
        for field in ["\"log_len\":", "\"index_len\":", "\"registered_audits\":"] {
            let pick = |line: &str| {
                let at = line.find(field).unwrap_or_else(|| panic!("{field} missing in {line}"));
                line[at..].chars().take_while(|c| *c != ',' && *c != '}').collect::<String>()
            };
            assert_eq!(pick(&got.1), pick(&reference.1), "tenant {tenant} {field} diverged");
        }
    }

    // Shut the fleet down over the wire; the drain must exit 0.
    let stream = std::net::TcpStream::connect(&addr).expect("connect for shutdown");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    writeln!(writer, r#"{{"cmd":"shutdown"}}"#).expect("send shutdown");
    writer.flush().expect("flush shutdown");
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read shutdown response");
    assert!(resp.contains("\"stopping\":true"), "{resp}");
    let status = server.wait().expect("server exits");
    assert!(status.success(), "fleet drain must exit 0, got {status}");
}

fn flood_line(zip: &str, i: usize) -> String {
    format!(
        r#"{{"cmd":"log","ts":{},"user":"u-{}","role":"clerk","purpose":"marketing","sql":"SELECT disease FROM p WHERE zipcode = '{zip}'"}}"#,
        1000 + i as u64,
        i % 17,
    )
}

/// SIGKILL over a 100-tenant durable fleet: restart recovers every tenant
/// from `tenants/<name>/` and answers every tenant's audit byte-identically
/// to an uninterrupted single-tenant daemon.
#[test]
fn hundred_tenant_sigkill_recovery_is_byte_identical() {
    const TENANTS: usize = 100;
    let wl = workload("145568", "flu");

    // Reference: the workload uninterrupted in one in-memory daemon.
    let (audit_ref, audit_events_suspicious) = {
        let mut serve = Serve::spawn(&[]);
        let responses: Vec<String> = wl.iter().map(|r| serve.request(r)).collect();
        serve.finish();
        (responses[4].clone(), responses[4].contains("\"suspicious\":true"))
    };
    assert!(audit_events_suspicious, "workload not suspicious: {audit_ref}");

    let dir = temp_dir("sigkill-100");
    let dir_arg = dir.to_str().expect("utf-8 temp path").to_string();

    // Build the fleet and ingest every tenant's prefix (everything except
    // the audit + stats), then crash without warning.
    let mut serve = Serve::spawn(&["--data-dir", &dir_arg, "--fsync", "always"]);
    let names: Vec<String> = (0..TENANTS).map(|i| format!("org-{i:03}")).collect();
    for name in &names {
        serve.request(&format!(r#"{{"cmd":"create-tenant","name":"{name}"}}"#));
    }
    for req in &wl[..4] {
        for name in &names {
            serve.request(&with_tenant(req, name));
        }
    }
    serve.kill();

    // Restart from the same directory: discovery must reopen all 100
    // tenant stores plus the default.
    let mut serve = Serve::spawn(&["--data-dir", &dir_arg, "--fsync", "always"]);
    let listing = serve.request(r#"{"cmd":"list-tenants"}"#);
    for name in &names {
        assert!(listing.contains(&format!("\"tenant\":\"{name}\"")), "{name} lost: {listing}");
    }
    assert!(!listing.contains("\"degraded\":true"), "degraded tenants after recovery: {listing}");

    for name in &names {
        let audit = serve.request(&with_tenant(r#"{"cmd":"audit","name":"snoop"}"#, name));
        assert_eq!(audit, audit_ref, "tenant {name} audit drifted through SIGKILL recovery");
    }

    // Fleet-wide stats: every tenant reports its own journal counters and
    // identical per-shard state.
    let stats = serve.request(r#"{"cmd":"stats","all_tenants":true}"#);
    assert_eq!(
        stats.matches("\"journal_records_appended\":").count(),
        TENANTS + 1,
        "per-tenant journal counters missing: {stats}"
    );
    assert_eq!(stats.matches("\"log_len\":2").count(), TENANTS, "per-tenant log drifted");
    assert!(stats.contains("\"busy_tenants\":0"), "{stats}");

    // Fleet-wide audit fans out to all registered tenants; the default
    // tenant (no registration) is skipped, not an error.
    let all = serve.request(r#"{"cmd":"audit","name":"snoop","all_tenants":true}"#);
    assert_eq!(all.matches("\"suspicious\":true").count(), TENANTS, "fleet audit drifted");
    assert!(all.contains("\"skipped\":[\"default\"]"), "{all}");

    serve.request(r#"{"cmd":"shutdown"}"#);
    serve.finish();
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// A renamed default tenant (`--default-tenant`) keeps the unaddressed
/// compatibility path and its store at the data-dir root across restarts.
#[test]
fn renamed_default_tenant_serves_unaddressed_requests() {
    let dir = temp_dir("renamed-default");
    let dir_arg = dir.to_str().expect("utf-8 temp path").to_string();
    let wl = workload("145568", "flu");

    let mut serve = Serve::spawn(&[
        "--data-dir",
        &dir_arg,
        "--fsync",
        "always",
        "--default-tenant",
        "mercy-west",
    ]);
    for req in &wl[..4] {
        serve.request(req); // unaddressed → the renamed default
    }
    serve.kill();

    let mut serve = Serve::spawn(&[
        "--data-dir",
        &dir_arg,
        "--fsync",
        "always",
        "--default-tenant",
        "mercy-west",
    ]);
    let listing = serve.request(r#"{"cmd":"list-tenants"}"#);
    assert!(listing.contains("\"default\":\"mercy-west\""), "{listing}");
    // Addressed by name or unaddressed: the same shard answers.
    let by_name = serve.request(&with_tenant(r#"{"cmd":"audit","name":"snoop"}"#, "mercy-west"));
    let unaddressed = serve.request(r#"{"cmd":"audit","name":"snoop"}"#);
    assert_eq!(by_name, unaddressed);
    assert!(by_name.contains("\"suspicious\":true"), "{by_name}");
    serve.request(r#"{"cmd":"shutdown"}"#);
    serve.finish();
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
