//! Differential crash-recovery test of the durable store.
//!
//! A reference `audex serve --stdio` child runs a workload uninterrupted in
//! memory. A second child runs the same workload against `--data-dir`
//! with `--fsync always`, is SIGKILLed mid-ingest after a known number of
//! acknowledged requests, and is restarted from the same directory to
//! finish the workload. The final full-audit response must be
//! **byte-identical** to the in-memory run — and must stay byte-identical
//! when the crash leaves a torn tail (garbage appended to the live WAL
//! segment) or a corrupt-CRC final record (last byte flipped; the dropped
//! record's request is re-sent after restart, exactly what a client that
//! never saw the ack would do).

use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStderr, ChildStdin, ChildStdout, Command, Stdio};

struct Serve {
    child: Child,
    stdin: ChildStdin,
    reader: BufReader<ChildStdout>,
    stderr: Option<BufReader<ChildStderr>>,
}

impl Serve {
    fn spawn(extra: &[&str]) -> Serve {
        Serve::spawn_inner(extra, false)
    }

    /// Like [`Serve::spawn`] but keeps stderr, where the startup recovery
    /// report ("checkpoint covers N record(s), WAL tail has M") is printed.
    fn spawn_capturing_stderr(extra: &[&str]) -> Serve {
        Serve::spawn_inner(extra, true)
    }

    fn spawn_inner(extra: &[&str], capture_stderr: bool) -> Serve {
        let mut child = Command::new(env!("CARGO_BIN_EXE_audex"))
            .args(["serve", "--stdio"])
            .args(extra)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(if capture_stderr { Stdio::piped() } else { Stdio::null() })
            .spawn()
            .expect("spawn audex serve --stdio");
        let stdin = child.stdin.take().expect("child stdin");
        let reader = BufReader::new(child.stdout.take().expect("child stdout"));
        let stderr = child.stderr.take().map(BufReader::new);
        Serve { child, stdin, reader, stderr }
    }

    /// Sends one request and reads its one response line (the protocol is
    /// strictly one line back per line in, absent subscriptions).
    fn request(&mut self, line: &str) -> String {
        writeln!(self.stdin, "{line}").expect("write request");
        self.stdin.flush().expect("flush request");
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("read response");
        assert!(resp.ends_with('\n'), "truncated response for {line}");
        resp.pop();
        assert!(resp.contains("\"ok\":true"), "request {line} failed: {resp}");
        resp
    }

    /// Simulates a crash: SIGKILL, no drain, no flush.
    fn kill(mut self) {
        self.child.kill().expect("kill child");
        let _ = self.child.wait();
    }

    fn finish(mut self) {
        drop(self.stdin);
        let status = self.child.wait().expect("child exits");
        assert!(status.success(), "serve exited with {status}");
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("audex-crash-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The workload: schema + seed rows, a standing audit, queries streaming
/// in around a mid-stream DML write. `KILL_AFTER` requests get acked
/// before the crash; the tail (including the final audit) runs after
/// restart.
fn workload() -> Vec<String> {
    vec![
        r#"{"cmd":"dml","ts":100,"sql":"CREATE TABLE p (name CHAR, zipcode CHAR, disease CHAR); INSERT INTO p VALUES ('jane','145568','flu'), ('reku','145568','diabetic'), ('lucy','188888','malaria');"}"#.into(),
        r#"{"cmd":"register","name":"snoop","expr":"AUDIT disease FROM p WHERE zipcode='145568'","now":10000}"#.into(),
        r#"{"cmd":"log","ts":200,"user":"u-7","role":"doctor","purpose":"treatment","sql":"SELECT disease FROM p WHERE zipcode = '145568'"}"#.into(),
        r#"{"cmd":"log","ts":300,"user":"u-13","role":"nurse","purpose":"treatment","sql":"SELECT name FROM p WHERE zipcode = '188888'"}"#.into(),
        // Single-row insert: exactly one WAL record, so the corrupt-CRC
        // variant below drops precisely this request's effect.
        r#"{"cmd":"dml","ts":400,"sql":"INSERT INTO p VALUES ('rob','145568','diabetic');"}"#.into(),
        r#"{"cmd":"log","ts":500,"user":"u-21","role":"clerk","purpose":"marketing","sql":"SELECT disease, name FROM p WHERE zipcode = '145568'"}"#.into(),
        r#"{"cmd":"audit","name":"snoop"}"#.into(),
        r#"{"cmd":"shutdown"}"#.into(),
    ]
}

/// Requests acked before the simulated crash (indices 0..KILL_AFTER).
const KILL_AFTER: usize = 5;

/// Runs the full workload uninterrupted and returns every response line.
fn run_uninterrupted(extra: &[&str]) -> Vec<String> {
    let mut serve = Serve::spawn(extra);
    let responses: Vec<String> = workload().iter().map(|r| serve.request(r)).collect();
    serve.finish();
    responses
}

/// Runs the prefix against `dir`, crashes, optionally mutates the store,
/// restarts from `dir`, and finishes the workload from `resume_from`.
fn run_with_crash(dir: &Path, mutate: impl FnOnce(&Path), resume_from: usize) -> Vec<String> {
    let requests = workload();
    let dir_arg = dir.to_str().expect("utf-8 temp path");

    let mut serve = Serve::spawn(&["--data-dir", dir_arg, "--fsync", "always"]);
    for req in &requests[..KILL_AFTER] {
        serve.request(req);
    }
    serve.kill();

    mutate(dir);

    let mut serve = Serve::spawn(&["--data-dir", dir_arg, "--fsync", "always"]);
    let responses: Vec<String> = requests[resume_from..].iter().map(|r| serve.request(r)).collect();
    serve.finish();
    responses
}

fn last_wal_segment(dir: &Path) -> PathBuf {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read data dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    segments.sort();
    segments.pop().expect("at least one WAL segment")
}

#[test]
fn crash_recovery_report_is_byte_identical() {
    let reference = run_uninterrupted(&[]);
    let audit_ref = &reference[6];
    assert!(audit_ref.contains("\"suspicious\":true"), "workload not suspicious: {audit_ref}");

    // Clean crash: the acked prefix is durable, the tail is re-driven.
    let dir = temp_dir("clean");
    let recovered = run_with_crash(&dir, |_| {}, KILL_AFTER);
    assert_eq!(&recovered[1], audit_ref, "audit drifted through crash recovery");
    std::fs::remove_dir_all(&dir).expect("cleanup");

    // Torn tail: the crash additionally left a half-written frame. Recovery
    // truncates it and the replayed state is unchanged.
    let dir = temp_dir("torn");
    let recovered = run_with_crash(
        &dir,
        |d| {
            use std::io::Write as _;
            let seg = last_wal_segment(d);
            let mut f = std::fs::OpenOptions::new().append(true).open(seg).expect("open segment");
            f.write_all(&[0x13, 0x37, 0xde, 0xad, 0xbe]).expect("append garbage");
        },
        KILL_AFTER,
    );
    assert_eq!(&recovered[1], audit_ref, "audit drifted through torn-tail recovery");
    std::fs::remove_dir_all(&dir).expect("cleanup");

    // Corrupt CRC: the final durable record (the single-row INSERT) is
    // damaged in place, so recovery drops it; re-sending that request —
    // what a client without the ack does — restores identical state.
    let dir = temp_dir("crc");
    let recovered = run_with_crash(
        &dir,
        |d| {
            let seg = last_wal_segment(d);
            let mut bytes = std::fs::read(&seg).expect("read segment");
            let last = bytes.len() - 1;
            bytes[last] ^= 0x01;
            std::fs::write(&seg, bytes).expect("rewrite segment");
        },
        KILL_AFTER - 1,
    );
    assert_eq!(&recovered[2], audit_ref, "audit drifted through corrupt-CRC recovery");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn recovered_stats_match_in_memory_counters() {
    // Drive the workload durably with a crash, then compare the service
    // counters the stats command reports against the in-memory run.
    // Journal/snapshot internals are store-specific, so compare the
    // counter fields the protocol has always exposed.
    let dir = temp_dir("stats");
    let requests = workload();
    let body = requests.len() - 1; // everything but the final shutdown
    let dir_arg = dir.to_str().expect("utf-8 temp path");
    let mut serve = Serve::spawn(&["--data-dir", dir_arg, "--fsync", "always"]);
    for req in &requests[..KILL_AFTER] {
        serve.request(req);
    }
    serve.kill();
    let mut serve = Serve::spawn(&["--data-dir", dir_arg, "--fsync", "always"]);
    for req in &requests[KILL_AFTER..body] {
        serve.request(req);
    }
    let stats = serve.request(r#"{"cmd":"stats"}"#);
    let reference_stats = {
        let mut s = Serve::spawn(&[]);
        for req in &requests[..body] {
            s.request(req);
        }
        let line = s.request(r#"{"cmd":"stats"}"#);
        s.finish();
        line
    };
    for field in ["\"log_len\":", "\"index_len\":", "\"index_skipped\":", "\"registered_audits\":"]
    {
        let pick = |line: &str| {
            let at = line.find(field).unwrap_or_else(|| panic!("{field} missing in {line}"));
            line[at..].chars().take_while(|c| *c != ',' && *c != '}').collect::<String>()
        };
        assert_eq!(pick(&stats), pick(&reference_stats), "{field} drifted");
    }
    // The durable run reports its journal in the same stats response.
    assert!(stats.contains("\"journal_records_appended\":"), "{stats}");
    serve.finish();
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// The drain path: SIGTERM mid-ingest (TCP serve, live subscriber) must
/// exit 0, flush the subscriber, leave **no torn WAL tail**, and recover
/// byte-identical — the graceful counterpart of the SIGKILL cases above.
#[test]
fn sigterm_drain_leaves_clean_tail_and_identical_recovery() {
    let reference = run_uninterrupted(&[]);
    let audit_ref = &reference[6];

    let dir = temp_dir("drain");
    let dir_arg = dir.to_str().expect("utf-8 temp path");
    let requests = workload();

    let mut server = Command::new(env!("CARGO_BIN_EXE_audex"))
        .args(["serve", "--listen", "127.0.0.1:0"])
        .args(["--data-dir", dir_arg, "--fsync", "always", "--metrics-every", "1"])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn audex serve --listen");
    // With --data-dir the recovery report precedes the listening banner on
    // stderr; scan for the banner line.
    let mut server_err = BufReader::new(server.stderr.take().expect("server stderr"));
    let mut banner = String::new();
    loop {
        banner.clear();
        assert!(server_err.read_line(&mut banner).expect("read banner") > 0, "stderr closed");
        if banner.contains("audexd listening on") {
            break;
        }
    }
    std::thread::spawn(move || for _ in server_err.lines() {});
    let addr = banner.trim().rsplit(' ').next().expect("address in banner").to_string();

    // A live subscriber follows the event stream throughout the drain.
    let subscriber = std::net::TcpStream::connect(&addr).expect("connect subscriber");
    let mut sub_writer = subscriber.try_clone().expect("clone subscriber");
    let sub_thread = std::thread::spawn(move || {
        let mut lines = Vec::new();
        for line in BufReader::new(subscriber).lines() {
            match line {
                Ok(l) => lines.push(l),
                Err(_) => break,
            }
        }
        lines // EOF reached: the server closed us cleanly
    });
    writeln!(sub_writer, r#"{{"cmd":"subscribe"}}"#).expect("send subscribe");
    sub_writer.flush().expect("flush subscribe");

    let driver = std::net::TcpStream::connect(&addr).expect("connect driver");
    let mut driver_writer = driver.try_clone().expect("clone driver");
    let mut driver_reader = BufReader::new(driver);
    for req in &requests[..KILL_AFTER] {
        writeln!(driver_writer, "{req}").expect("send request");
        driver_writer.flush().expect("flush request");
        let mut resp = String::new();
        driver_reader.read_line(&mut resp).expect("read response");
        assert!(resp.contains("\"ok\":true"), "request {req} failed: {resp}");
    }

    // SIGTERM mid-session (std's kill() is SIGKILL, so shell out).
    let pid = server.id().to_string();
    let status = Command::new("kill").args(["-TERM", &pid]).status().expect("send SIGTERM");
    assert!(status.success(), "kill -TERM failed");
    let status = server.wait().expect("server exits");
    assert!(status.success(), "drain must exit 0, got {status}");

    // The subscriber was flushed (subscribe ack + two ingest broadcasts)
    // and closed cleanly, not reset.
    let sub_lines = sub_thread.join().expect("subscriber thread");
    assert!(
        sub_lines.iter().any(|l| l.contains("\"ok\":true")),
        "subscribe never acknowledged: {sub_lines:?}"
    );
    assert!(
        sub_lines.iter().filter(|l| l.contains("\"event\"")).count() >= 2,
        "drain dropped queued events: {sub_lines:?}"
    );

    // No torn tail: `audex recover` must certify the store clean.
    let recover = Command::new(env!("CARGO_BIN_EXE_audex"))
        .args(["recover", "--data-dir", dir_arg])
        .stderr(Stdio::null())
        .output()
        .expect("run audex recover");
    assert!(recover.status.success());
    let report = String::from_utf8_lossy(&recover.stdout);
    assert!(report.contains("clean: no torn tail"), "recover found damage:\n{report}");

    // Restart and finish the workload: byte-identical audit.
    let mut serve = Serve::spawn(&["--data-dir", dir_arg, "--fsync", "always"]);
    let responses: Vec<String> = requests[KILL_AFTER..].iter().map(|r| serve.request(r)).collect();
    serve.finish();
    assert_eq!(&responses[1], audit_ref, "audit drifted through SIGTERM drain");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// SIGKILL with checkpoints enabled: restart takes the snapshot path (the
/// MVCC version store is restored wholesale from the checkpoint, not
/// re-derived record by record), and the rebuilt store must answer `as_of`
/// identically. The workload's queries at ts 200/300 run *before* the
/// mid-stream ts-400 INSERT and the one at ts 500 after it, so the final
/// audit verdict depends on historical visibility — byte-identity against
/// the uninterrupted in-memory run proves the rebuilt intervals are exact.
#[test]
fn checkpointed_sigkill_recovery_answers_as_of_identically() {
    let reference = run_uninterrupted(&[]);
    let audit_ref = &reference[6];

    let dir = temp_dir("snapshot");
    let dir_arg = dir.to_str().expect("utf-8 temp path");
    let requests = workload();

    // --checkpoint-every 2: several snapshot checkpoints land inside the
    // acked prefix, so the restart recovers from a version-store snapshot
    // plus a short WAL tail.
    let args = ["--data-dir", dir_arg, "--fsync", "always", "--checkpoint-every", "2"];
    let mut serve = Serve::spawn(&args);
    for req in &requests[..KILL_AFTER] {
        serve.request(req);
    }
    serve.kill();

    let mut serve = Serve::spawn_capturing_stderr(&args);
    let recovery_line = {
        let stderr = serve.stderr.as_mut().expect("captured stderr");
        let mut line = String::new();
        assert!(stderr.read_line(&mut line).expect("read recovery report") > 0);
        line
    };
    assert!(
        recovery_line.contains("checkpoint covers"),
        "restart did not recover from a checkpoint: {recovery_line}"
    );
    let responses: Vec<String> = requests[KILL_AFTER..].iter().map(|r| serve.request(r)).collect();
    serve.finish();
    assert_eq!(&responses[1], audit_ref, "as_of drifted through snapshot recovery");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Recovery cost no longer scales with bare-WAL length: with checkpoints
/// every 8 records, a crash after ~80 ingested records leaves a restart
/// that reads a snapshot plus a tail bounded by the checkpoint interval —
/// not the whole log. Asserted structurally from the recovery report, so
/// the check is timing-free and CI-stable.
#[test]
fn checkpointed_recovery_tail_is_bounded_not_log_length() {
    let dir = temp_dir("bounded");
    let dir_arg = dir.to_str().expect("utf-8 temp path");
    let args = ["--data-dir", dir_arg, "--fsync", "always", "--checkpoint-every", "8"];

    let mut serve = Serve::spawn(&args);
    serve.request(r#"{"cmd":"dml","ts":0,"sql":"CREATE TABLE p (pid CHAR, zipcode CHAR);"}"#);
    let total = 80u32;
    for i in 0..total {
        serve.request(&format!(
            r#"{{"cmd":"dml","ts":{},"sql":"INSERT INTO p VALUES ('p{i}','145568');"}}"#,
            100 + i
        ));
    }
    serve.kill();

    let mut serve = Serve::spawn_capturing_stderr(&args);
    let recovery_line = {
        let stderr = serve.stderr.as_mut().expect("captured stderr");
        let mut line = String::new();
        assert!(stderr.read_line(&mut line).expect("read recovery report") > 0);
        line
    };
    // "checkpoint covers C record(s), WAL tail has T": C carries the bulk,
    // T stays under two checkpoint intervals however long the log grows.
    let number_after = |marker: &str| -> u32 {
        let at = recovery_line
            .find(marker)
            .unwrap_or_else(|| panic!("{marker:?} missing in {recovery_line}"));
        recovery_line[at + marker.len()..]
            .trim_start()
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .expect("number in recovery report")
    };
    let covered = number_after("checkpoint covers");
    let tail = number_after("WAL tail has");
    assert!(covered >= total / 2, "checkpoint covers too little: {recovery_line}");
    assert!(tail <= 16, "recovery tail scales with the log: {recovery_line}");

    // The recovered store is alive and consistent after the bounded replay.
    let stats = serve.request(r#"{"cmd":"stats"}"#);
    assert!(stats.contains(&format!("\"dml_statements\":{}", total + 1)), "{stats}");
    serve.request(r#"{"cmd":"shutdown"}"#);
    serve.finish();
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
