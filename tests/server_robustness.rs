//! End-to-end robustness proof for the overload-safe TCP front door:
//! a stalled subscriber is evicted instead of blocking ingest, accepts
//! over the connection cap are shed with a structured error, deterministic
//! network faults (torn frames, mid-request disconnects, slow writers,
//! garbage, oversized lines) leave the audit report byte-identical to a
//! clean run, idle connections are reaped, and a graceful drain flushes
//! subscriber queues before exit.

use audex::service::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Spawns `audex serve --listen 127.0.0.1:0 [extra]` and returns the child
/// plus the bound address scraped from the stderr banner.
fn spawn_serve(extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_audex"))
        .args(["serve", "--listen", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn audex serve --listen");
    let mut banner = String::new();
    let mut stderr = BufReader::new(child.stderr.take().expect("server stderr"));
    stderr.read_line(&mut banner).expect("read banner");
    // Keep draining stderr in the background so the server never blocks on
    // a full pipe.
    std::thread::spawn(move || for _ in stderr.lines() {});
    let addr = banner.trim().rsplit(' ').next().expect("address in banner").to_string();
    (child, addr)
}

/// One protocol connection: write a request line, read one response line.
struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn open(addr: &str) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Conn { writer: stream, reader }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send request");
        self.writer.flush().expect("flush request");
    }

    fn read_line(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line),
            Err(e) => panic!("read response: {e}"),
        }
    }

    fn request(&mut self, line: &str) -> Json {
        self.send(line);
        let resp = self.read_line().unwrap_or_else(|| panic!("no response to {line}"));
        Json::parse(&resp).unwrap_or_else(|e| panic!("bad JSON {resp:?}: {e}"))
    }
}

fn json_escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The paper's Tables 1–3 as a DML script (same data as
/// `tests/service_stream.rs`).
const PAPER_TABLES_DML: &str = "\
    CREATE TABLE P-Personal (pid TEXT, name TEXT, age INT, sex TEXT, zipcode TEXT, address TEXT); \
    CREATE TABLE P-Health (pid TEXT, ward TEXT, doc-name TEXT, disease TEXT, pres-drugs TEXT); \
    CREATE TABLE P-Employ (pid TEXT, employer TEXT, salary INT); \
    INSERT INTO P-Personal VALUES \
      ('p1', 'Jane', 25, 'F', '177893', 'A1'), \
      ('p2', 'Reku', 35, 'M', '145568', 'A2'), \
      ('p13', 'Robert', 29, 'M', '188888', 'A3'), \
      ('p28', 'Lucy', 20, 'F', '145568', 'A4'); \
    INSERT INTO P-Health VALUES \
      ('p1', 'W11', 'Hassan', 'flu', 'drug2'), \
      ('p2', 'W12', 'Nicholas', 'diabetic', 'drug1'), \
      ('p13', 'W14', 'Ramesh', 'Malaria', 'drug3'), \
      ('p28', 'W14', 'King U', 'diabetic', 'drug1'); \
    INSERT INTO P-Employ VALUES \
      ('p1', 'E1', 12000), \
      ('p2', 'E2', 20000), \
      ('p13', 'E3', 9000), \
      ('p28', 'E4', 19000);";

fn tables_dml_request() -> String {
    format!(r#"{{"cmd":"dml","ts":"1/1/2008","sql":"{}"}}"#, json_escape(PAPER_TABLES_DML))
}

fn register_request() -> String {
    let expr = "DATA-INTERVAL 1/1/2008 TO 7/4/2008 INDISPENSABLE true \
                AUDIT disease FROM P-Personal, P-Health \
                WHERE P-Personal.pid=P-Health.pid and P-Personal.zipcode='145568'";
    format!(
        r#"{{"cmd":"register","name":"snoop","expr":"{}","now":1207267200}}"#,
        json_escape(expr)
    )
}

fn log_request(ts: i64, sql: &str) -> String {
    format!(
        r#"{{"cmd":"log","ts":{ts},"user":"u-7","role":"doctor","purpose":"treatment","sql":"{}"}}"#,
        json_escape(sql)
    )
}

/// The streamed query log: a handful of lookups against Tables 1–3, one of
/// them the planted snooping access Fig. 4 is after.
fn workload_logs() -> Vec<String> {
    let base = 1_199_145_600 + 3_600; // 1/1/2008 + 1h
    vec![
        log_request(
            base,
            "SELECT name, disease FROM P-Personal, P-Health \
             WHERE P-Personal.pid = P-Health.pid AND ward = 'W14'",
        ),
        log_request(
            base + 600,
            "SELECT disease FROM P-Personal, P-Health \
             WHERE P-Personal.pid = P-Health.pid AND zipcode = '145568'",
        ),
        log_request(base + 1200, "SELECT zipcode FROM P-Personal WHERE age > 30"),
        log_request(base + 1800, "SELECT salary FROM P-Employ WHERE salary > 10000"),
        log_request(base + 2400, "SELECT address FROM P-Personal WHERE name = 'Lucy'"),
        log_request(base + 3000, "SELECT doc-name FROM P-Health WHERE disease = 'flu'"),
    ]
}

fn stat(stats: &Json, field: &str) -> i64 {
    stats.get(field).and_then(Json::as_int).unwrap_or_else(|| panic!("no {field} in {stats}"))
}

/// Polls `stats` on `conn` until `pred` holds or the deadline passes;
/// returns the last stats object.
fn poll_stats(conn: &mut Conn, deadline: Duration, pred: impl Fn(&Json) -> bool) -> Json {
    let start = Instant::now();
    loop {
        let stats = conn.request(r#"{"cmd":"stats"}"#);
        if pred(&stats) || start.elapsed() > deadline {
            return stats;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn shutdown_and_wait(conn: &mut Conn, server: &mut Child) {
    let resp = conn.request(r#"{"cmd":"shutdown"}"#);
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");
    assert!(server.wait().expect("server exits").success());
}

/// The acceptance criterion: with a subscriber that never drains its
/// socket (server-side stall fault — deterministic, no kernel buffer
/// tuning), the Tables 1–3 workload completes promptly, the stalled
/// subscriber is evicted, and the eviction lands on the `obs` counter.
/// Under the old design the first broadcast blocked forever inside the
/// core lock, hanging every other connection.
#[test]
fn stalled_subscriber_is_evicted_and_never_blocks_ingest() {
    // Conn 1 = the stalled subscriber: its writes absorb 1 byte then time
    // out. A tiny queue makes the eviction trip on the first few events.
    let (mut server, addr) =
        spawn_serve(&["--metrics-every", "1", "--sub-queue", "4", "--net-fault", "stall:1:1"]);

    let mut stalled = Conn::open(&addr);
    stalled.send(r#"{"cmd":"subscribe"}"#); // never reads anything back

    let mut driver = Conn::open(&addr);
    let stats = poll_stats(&mut driver, Duration::from_secs(5), |s| stat(s, "subscribers") >= 1);
    assert!(stat(&stats, "subscribers") >= 1, "subscriber never attached: {stats}");

    let started = Instant::now();
    let mut requests = vec![tables_dml_request(), register_request()];
    requests.extend(workload_logs());
    requests.push(r#"{"cmd":"audit","name":"snoop"}"#.to_string());
    for req in &requests {
        let resp = driver.request(req);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "request {req} failed: {resp}");
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(10),
        "ingest took {elapsed:?} with a stalled subscriber attached"
    );

    let stats =
        poll_stats(&mut driver, Duration::from_secs(5), |s| stat(s, "subscribers_evicted") >= 1);
    assert!(stat(&stats, "subscribers_evicted") >= 1, "no eviction counted: {stats}");
    assert_eq!(stat(&stats, "subscribers"), 0, "evicted subscriber still attached: {stats}");
    assert_eq!(stat(&stats, "queries_ingested"), 6, "{stats}");

    shutdown_and_wait(&mut driver, &mut server);
}

/// Accepts over `--max-conns` are shed with one structured line and a
/// close — clients get a fast explicit refusal, never a queue.
#[test]
fn over_cap_accepts_are_shed_with_structured_error() {
    let (mut server, addr) = spawn_serve(&["--max-conns", "1"]);
    let mut holder = Conn::open(&addr);
    let resp = holder.request(r#"{"cmd":"stats"}"#);
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");

    let mut shed = Conn::open(&addr);
    let line = shed.read_line().expect("shed notice");
    let v = Json::parse(&line).unwrap_or_else(|e| panic!("bad JSON {line:?}: {e}"));
    assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "{v}");
    assert_eq!(v.get("error").and_then(Json::as_str), Some("overloaded"), "{v}");
    assert!(shed.read_line().is_none(), "shed connection should be closed");

    let stats =
        poll_stats(&mut holder, Duration::from_secs(5), |s| stat(s, "connections_shed") >= 1);
    assert!(stat(&stats, "connections_shed") >= 1, "{stats}");
    assert_eq!(stat(&stats, "connections"), 1, "{stats}");

    shutdown_and_wait(&mut holder, &mut server);
}

/// Malformed and oversized frames are answered with structured errors and
/// counted; the connection (and the server) keep serving afterwards.
#[test]
fn garbage_and_oversized_frames_never_kill_the_connection() {
    let (mut server, addr) = spawn_serve(&["--max-line-bytes", "128"]);
    let mut conn = Conn::open(&addr);

    let resp = conn.request("this is not json");
    assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "{resp}");

    let huge = format!(r#"{{"cmd":"stats","pad":"{}"}}"#, "x".repeat(4096));
    let resp = conn.request(&huge);
    assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "{resp}");
    assert!(
        resp.get("error").and_then(Json::as_str).is_some_and(|e| e.contains("128 bytes")),
        "{resp}"
    );

    // Interleaved carriage returns and a blank line are tolerated noise.
    conn.send("\r");
    let stats = conn.request(r#"{"cmd":"stats"}"#);
    assert_eq!(stats.get("ok"), Some(&Json::Bool(true)), "{stats}");
    assert_eq!(stat(&stats, "frames_malformed"), 1, "{stats}");
    assert_eq!(stat(&stats, "frames_oversized"), 1, "{stats}");

    shutdown_and_wait(&mut conn, &mut server);
}

/// `--conn-idle-ms` reaps silent connections with a structured notice and
/// counts them; a working connection is unaffected.
#[test]
fn idle_connections_are_reaped() {
    let (mut server, addr) = spawn_serve(&["--conn-idle-ms", "150"]);
    let mut idle = Conn::open(&addr);
    let notice = idle.read_line().expect("idle notice before close");
    let v = Json::parse(&notice).unwrap_or_else(|e| panic!("bad JSON {notice:?}: {e}"));
    assert_eq!(v.get("error").and_then(Json::as_str), Some("idle timeout"), "{v}");
    assert!(idle.read_line().is_none(), "idle connection should be closed");

    let mut driver = Conn::open(&addr);
    let stats =
        poll_stats(&mut driver, Duration::from_secs(5), |s| stat(s, "conn_idle_timeouts") >= 1);
    assert!(stat(&stats, "conn_idle_timeouts") >= 1, "{stats}");
    shutdown_and_wait(&mut driver, &mut server);
}

/// The byte-identical guarantee: the audit report produced while faulty
/// clients churn (torn frames, a mid-request disconnect, a slow writer,
/// plain garbage) equals the report from a clean, fault-free run of the
/// same logical workload.
#[test]
fn audit_report_is_byte_identical_under_network_faults() {
    let audit_under = |faulty: bool| -> (String, Json) {
        let fault_args: &[&str] = if faulty {
            // Conn 2: valid requests delivered 3 bytes at a time.
            // Conn 3: dies 40 bytes into a request line.
            // Conn 4: valid requests, each read paused 1ms.
            &["--net-fault", "torn:2:3", "--net-fault", "eof:3:40", "--net-fault", "slow:4:1"]
        } else {
            &[]
        };
        let (mut server, addr) = spawn_serve(fault_args);

        // Conn 1: the clean driver loads the schema and the expression.
        let mut driver = Conn::open(&addr);
        for req in [tables_dml_request(), register_request()] {
            let resp = driver.request(&req);
            assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");
        }

        let logs = workload_logs();
        // Conn 2 (torn) streams the first half of the log.
        let mut torn = Conn::open(&addr);
        for req in &logs[..3] {
            let resp = torn.request(req);
            assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "torn conn: {resp}");
        }
        // Conn 3 dies mid-request: the server must just count it.
        let mut dying = Conn::open(&addr);
        dying.send(&format!(
            r#"{{"cmd":"log","ts":9,"user":"u-9","role":"doctor","purpose":"treatment","sql":"{}"}}"#,
            "SELECT name FROM P-Personal".repeat(4)
        ));
        // Conn 4 (slow) streams the second half.
        let mut slow = Conn::open(&addr);
        for req in &logs[3..] {
            let resp = slow.request(req);
            assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "slow conn: {resp}");
        }
        // Conn 5 sends garbage, then proves the server still answers.
        let mut garbage = Conn::open(&addr);
        let resp = garbage.request("%%% definitely not a request %%%");
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "{resp}");
        let resp = garbage.request(r#"{"cmd":"stats"}"#);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");

        let report = driver.request(r#"{"cmd":"audit","name":"snoop"}"#);
        assert_eq!(report.get("ok"), Some(&Json::Bool(true)), "{report}");
        let stats = driver.request(r#"{"cmd":"stats"}"#);
        assert_eq!(stat(&stats, "queries_ingested"), 6, "{stats}");
        if faulty {
            let stats = poll_stats(&mut driver, Duration::from_secs(5), |s| {
                stat(s, "frames_truncated") >= 1
            });
            assert!(stat(&stats, "frames_truncated") >= 1, "{stats}");
        }
        shutdown_and_wait(&mut driver, &mut server);
        (report.to_string(), stats)
    };

    let (clean, _) = audit_under(false);
    let (faulty, _) = audit_under(true);
    assert_eq!(clean, faulty, "audit report changed under injected network faults");
}

/// Graceful drain: `shutdown` flushes every queued event to a healthy
/// subscriber before the server exits 0.
#[test]
fn drain_flushes_subscriber_queues_before_exit() {
    let (mut server, addr) = spawn_serve(&["--metrics-every", "1"]);

    let mut subscriber = Conn::open(&addr);
    let resp = subscriber.request(r#"{"cmd":"subscribe"}"#);
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");

    let mut driver = Conn::open(&addr);
    poll_stats(&mut driver, Duration::from_secs(5), |s| stat(s, "subscribers") >= 1);
    let mut requests = vec![tables_dml_request(), register_request()];
    requests.extend(workload_logs());
    for req in &requests {
        let resp = driver.request(req);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");
    }
    shutdown_and_wait(&mut driver, &mut server);

    // After exit, the subscriber reads everything that was broadcast —
    // one metrics event per ingested query — then a clean EOF.
    let mut events = 0;
    while let Some(line) = subscriber.read_line() {
        let v = Json::parse(&line).unwrap_or_else(|e| panic!("bad JSON {line:?}: {e}"));
        if v.get("event").is_some() {
            events += 1;
        }
    }
    assert!(events >= 6, "subscriber saw only {events} events after drain");
}
