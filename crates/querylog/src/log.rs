//! The append-only query log.

use audex_sql::ast::Query;
use audex_sql::{ParseError, Timestamp};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::entry::{AccessContext, LoggedQuery, QueryId};

/// An append-only, thread-safe log of executed queries with their
/// annotations — the "User Accesses Log" the paper audits.
#[derive(Debug, Default)]
pub struct QueryLog {
    inner: RwLock<Vec<Arc<LoggedQuery>>>,
}

impl QueryLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    // The log's invariants (dense ids, append-only vector) hold even when a
    // writer panics mid-push, so lock poisoning is safely ignored.
    fn read(&self) -> RwLockReadGuard<'_, Vec<Arc<LoggedQuery>>> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, Vec<Arc<LoggedQuery>>> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends an already-parsed query; returns its id.
    pub fn record(&self, query: Query, executed_at: Timestamp, context: AccessContext) -> QueryId {
        let text = query.to_string();
        self.record_with_text(query, text, executed_at, context)
    }

    /// Parses and appends query text; returns its id.
    pub fn record_text(
        &self,
        sql: &str,
        executed_at: Timestamp,
        context: AccessContext,
    ) -> Result<QueryId, ParseError> {
        let query = audex_sql::parse_query(sql)?;
        Ok(self.record_with_text(query, sql.to_string(), executed_at, context))
    }

    fn record_with_text(
        &self,
        query: Query,
        text: String,
        executed_at: Timestamp,
        context: AccessContext,
    ) -> QueryId {
        let mut guard = self.write();
        let id = QueryId(guard.len() as u64 + 1);
        guard.push(Arc::new(LoggedQuery { id, query, text, executed_at, context }));
        id
    }

    /// Number of logged queries.
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// True when nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }

    /// A consistent snapshot of all entries, oldest first.
    pub fn snapshot(&self) -> Vec<Arc<LoggedQuery>> {
        self.read().clone()
    }

    /// Looks up a single entry.
    pub fn get(&self, id: QueryId) -> Option<Arc<LoggedQuery>> {
        let guard = self.read();
        let idx = id.0.checked_sub(1)? as usize;
        guard.get(idx).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> AccessContext {
        AccessContext::new("u1", "nurse", "treatment")
    }

    #[test]
    fn ids_are_sequential() {
        let log = QueryLog::new();
        let a = log.record_text("SELECT a FROM t", Timestamp(1), ctx()).unwrap();
        let b = log.record_text("SELECT b FROM t", Timestamp(2), ctx()).unwrap();
        assert_eq!(a, QueryId(1));
        assert_eq!(b, QueryId(2));
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn get_by_id() {
        let log = QueryLog::new();
        let id = log.record_text("SELECT a FROM t", Timestamp(1), ctx()).unwrap();
        assert_eq!(log.get(id).unwrap().text, "SELECT a FROM t");
        assert!(log.get(QueryId(99)).is_none());
        assert!(log.get(QueryId(0)).is_none());
    }

    #[test]
    fn record_text_rejects_bad_sql() {
        let log = QueryLog::new();
        assert!(log.record_text("DELETE FROM t", Timestamp(1), ctx()).is_err());
        assert!(log.record_text("SELECT FROM", Timestamp(1), ctx()).is_err());
        assert!(log.is_empty());
    }

    #[test]
    fn concurrent_appends() {
        let log = Arc::new(QueryLog::new());
        let mut handles = Vec::new();
        for i in 0..8 {
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                for j in 0..50 {
                    log.record_text(
                        &format!("SELECT c{j} FROM t{i}"),
                        Timestamp(i * 100 + j),
                        AccessContext::new(format!("u{i}"), "r", "p"),
                    )
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.len(), 400);
        // Ids are dense 1..=400.
        let mut ids: Vec<u64> = log.snapshot().iter().map(|e| e.id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (1..=400).collect::<Vec<_>>());
    }
}
