//! The append-only query log.

use audex_sql::ast::Query;
use audex_sql::{ParseError, Timestamp};
use std::fmt;
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::entry::{AccessContext, LoggedQuery, QueryId};

/// Observer of successful log appends, called synchronously under the log's
/// write lock so a journal sees entries exactly once, in id order.
///
/// Infallible by design: a sink that cannot persist stashes the error and
/// surfaces it through its own diagnostics (the entry is already appended).
pub trait LogSink: Send + Sync {
    /// `entry` was appended to the log.
    fn on_append(&self, entry: &LoggedQuery);
}

/// Why a validated append was refused (see [`QueryLog::record_text_validated`]).
#[derive(Debug)]
pub enum AppendError {
    /// The SQL text is not a well-formed SELECT.
    Parse(ParseError),
    /// The entry's timestamp precedes the newest logged entry — a live
    /// stream must arrive in execution order for ids to stay meaningful.
    OutOfOrder {
        /// Timestamp of the newest entry already in the log.
        last: Timestamp,
        /// The rejected entry's timestamp.
        offered: Timestamp,
    },
}

impl fmt::Display for AppendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppendError::Parse(e) => write!(f, "query does not parse: {e}"),
            AppendError::OutOfOrder { last, offered } => write!(
                f,
                "out-of-order log append: offered {offered}, but the log is already at {last} \
                 (timestamps must be non-decreasing)"
            ),
        }
    }
}

impl std::error::Error for AppendError {}

impl From<ParseError> for AppendError {
    fn from(e: ParseError) -> Self {
        AppendError::Parse(e)
    }
}

/// An append-only, thread-safe log of executed queries with their
/// annotations — the "User Accesses Log" the paper audits.
#[derive(Default)]
pub struct QueryLog {
    inner: RwLock<Vec<Arc<LoggedQuery>>>,
    /// Append observer (see [`LogSink`]); invisible to everything else.
    sink: Mutex<Option<Arc<dyn LogSink>>>,
    /// Telemetry mirror of the append count (no-op unless wired via
    /// [`QueryLog::set_obs`]); invisible to equality like the sink.
    appends: Mutex<audex_obs::Counter>,
}

impl fmt::Debug for QueryLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sink = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("QueryLog")
            .field("inner", &self.read())
            .field("sink", &sink.as_ref().map(|_| "attached"))
            .finish()
    }
}

impl QueryLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a [`LogSink`] observing every subsequent successful append.
    /// Replaces any previous sink.
    pub fn set_sink(&self, sink: Arc<dyn LogSink>) {
        *self.sink.lock().unwrap_or_else(|e| e.into_inner()) = Some(sink);
    }

    /// Detaches the append sink, if any.
    pub fn clear_sink(&self) {
        *self.sink.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }

    /// Counts every subsequent successful append into `registry` as
    /// `audex_querylog_appends_total`.
    pub fn set_obs(&self, registry: &audex_obs::Registry) {
        *self.appends.lock().unwrap_or_else(|e| e.into_inner()) = registry.counter(
            "audex_querylog_appends_total",
            "Queries appended to the user-accesses log.",
            &[],
        );
    }

    fn notify(&self, entry: &LoggedQuery) {
        self.appends.lock().unwrap_or_else(|e| e.into_inner()).inc();
        let sink = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(s) = sink.as_ref() {
            s.on_append(entry);
        }
    }

    // The log's invariants (dense ids, append-only vector) hold even when a
    // writer panics mid-push, so lock poisoning is safely ignored.
    fn read(&self) -> RwLockReadGuard<'_, Vec<Arc<LoggedQuery>>> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, Vec<Arc<LoggedQuery>>> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends an already-parsed query; returns its id.
    pub fn record(&self, query: Query, executed_at: Timestamp, context: AccessContext) -> QueryId {
        let text = query.to_string();
        self.record_with_text(query, text, executed_at, context)
    }

    /// Parses and appends query text; returns its id.
    pub fn record_text(
        &self,
        sql: &str,
        executed_at: Timestamp,
        context: AccessContext,
    ) -> Result<QueryId, ParseError> {
        let query = audex_sql::parse_query(sql)?;
        Ok(self.record_with_text(query, sql.to_string(), executed_at, context))
    }

    /// Parses and appends query text like [`QueryLog::record_text`], but
    /// also enforces the streaming discipline: the entry's timestamp must
    /// not precede the newest entry already logged. Validation and append
    /// happen under one write lock, so concurrent appenders cannot
    /// interleave a rewind past the check.
    pub fn record_text_validated(
        &self,
        sql: &str,
        executed_at: Timestamp,
        context: AccessContext,
    ) -> Result<QueryId, AppendError> {
        let query = audex_sql::parse_query(sql)?;
        let mut guard = self.write();
        if let Some(last) = guard.last() {
            if executed_at < last.executed_at {
                return Err(AppendError::OutOfOrder {
                    last: last.executed_at,
                    offered: executed_at,
                });
            }
        }
        let id = QueryId(guard.len() as u64 + 1);
        let entry = Arc::new(LoggedQuery::new(id, query, sql.to_string(), executed_at, context));
        self.notify(&entry);
        guard.push(entry);
        Ok(id)
    }

    /// Appends text that an earlier run already validated — a journaled
    /// append being replayed during recovery. No parse, no ordering check:
    /// the journal replays in exactly the order the live run accepted, and
    /// the AST materializes lazily on first audit use, keeping recovery
    /// time independent of per-entry SQL complexity.
    pub fn record_prevalidated(
        &self,
        sql: &str,
        executed_at: Timestamp,
        context: AccessContext,
    ) -> QueryId {
        let mut guard = self.write();
        let id = QueryId(guard.len() as u64 + 1);
        let entry = Arc::new(LoggedQuery::prevalidated(id, sql.to_string(), executed_at, context));
        self.notify(&entry);
        guard.push(entry);
        id
    }

    fn record_with_text(
        &self,
        query: Query,
        text: String,
        executed_at: Timestamp,
        context: AccessContext,
    ) -> QueryId {
        let mut guard = self.write();
        let id = QueryId(guard.len() as u64 + 1);
        let entry = Arc::new(LoggedQuery::new(id, query, text, executed_at, context));
        self.notify(&entry);
        guard.push(entry);
        id
    }

    /// Number of logged queries.
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// True when nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }

    /// A consistent snapshot of all entries, oldest first.
    pub fn snapshot(&self) -> Vec<Arc<LoggedQuery>> {
        self.read().clone()
    }

    /// The newest entry's execution timestamp. O(1) — the streaming
    /// service's per-ingest ordering check must not clone the whole log
    /// (that would make sustained ingest quadratic in log length).
    pub fn last_ts(&self) -> Option<Timestamp> {
        self.read().last().map(|e| e.executed_at)
    }

    /// Looks up a single entry.
    pub fn get(&self, id: QueryId) -> Option<Arc<LoggedQuery>> {
        let guard = self.read();
        let idx = id.0.checked_sub(1)? as usize;
        guard.get(idx).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> AccessContext {
        AccessContext::new("u1", "nurse", "treatment")
    }

    #[test]
    fn ids_are_sequential() {
        let log = QueryLog::new();
        let a = log.record_text("SELECT a FROM t", Timestamp(1), ctx()).unwrap();
        let b = log.record_text("SELECT b FROM t", Timestamp(2), ctx()).unwrap();
        assert_eq!(a, QueryId(1));
        assert_eq!(b, QueryId(2));
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn get_by_id() {
        let log = QueryLog::new();
        let id = log.record_text("SELECT a FROM t", Timestamp(1), ctx()).unwrap();
        assert_eq!(log.get(id).unwrap().text, "SELECT a FROM t");
        assert!(log.get(QueryId(99)).is_none());
        assert!(log.get(QueryId(0)).is_none());
    }

    #[test]
    fn record_text_rejects_bad_sql() {
        let log = QueryLog::new();
        assert!(log.record_text("DELETE FROM t", Timestamp(1), ctx()).is_err());
        assert!(log.record_text("SELECT FROM", Timestamp(1), ctx()).is_err());
        assert!(log.is_empty());
    }

    #[test]
    fn validated_append_enforces_order() {
        let log = QueryLog::new();
        log.record_text_validated("SELECT a FROM t", Timestamp(10), ctx()).unwrap();
        // Equal timestamps are fine (same-instant batch).
        log.record_text_validated("SELECT b FROM t", Timestamp(10), ctx()).unwrap();
        let err = log.record_text_validated("SELECT c FROM t", Timestamp(9), ctx()).unwrap_err();
        assert!(matches!(
            err,
            AppendError::OutOfOrder { last: Timestamp(10), offered: Timestamp(9) }
        ));
        assert!(err.to_string().contains("out-of-order"), "{err}");
        // Bad SQL is rejected before touching the log.
        assert!(matches!(
            log.record_text_validated("DELETE FROM t", Timestamp(11), ctx()),
            Err(AppendError::Parse(_))
        ));
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn concurrent_appends() {
        let log = Arc::new(QueryLog::new());
        let mut handles = Vec::new();
        for i in 0..8 {
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                for j in 0..50 {
                    log.record_text(
                        &format!("SELECT c{j} FROM t{i}"),
                        Timestamp(i * 100 + j),
                        AccessContext::new(format!("u{i}"), "r", "p"),
                    )
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.len(), 400);
        // Ids are dense 1..=400.
        let mut ids: Vec<u64> = log.snapshot().iter().map(|e| e.id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (1..=400).collect::<Vec<_>>());
    }
}
