//! Logged queries and their privacy annotations.

use audex_sql::ast::Query;
use audex_sql::{Ident, Timestamp};
use std::fmt;
use std::sync::OnceLock;

/// A stable identifier for a logged query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u64);

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// The privacy-policy annotations the Hippocratic DBMS attaches to each
/// query execution: who ran it, in which role, for which purpose (Agrawal
/// et al. log exactly these alongside the query text).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AccessContext {
    /// The authenticated user id.
    pub user: Ident,
    /// The role the user acted under.
    pub role: Ident,
    /// The declared access purpose.
    pub purpose: Ident,
}

impl AccessContext {
    /// Convenience constructor.
    pub fn new(user: impl Into<Ident>, role: impl Into<Ident>, purpose: impl Into<Ident>) -> Self {
        AccessContext { user: user.into(), role: role.into(), purpose: purpose.into() }
    }
}

/// One logged query execution.
#[derive(Debug, Clone)]
pub struct LoggedQuery {
    /// Log-assigned id.
    pub id: QueryId,
    /// The original text as submitted.
    pub text: String,
    /// Execution time.
    pub executed_at: Timestamp,
    /// Who / as-what / why.
    pub context: AccessContext,
    /// Parsed form of `text`, materialized on first AST access. Live
    /// appends pre-fill it (the text was parsed to validate it anyway);
    /// entries rebuilt from a journal defer the parse so recovery cost
    /// stays independent of how many logged queries an audit store holds.
    parsed: OnceLock<Query>,
}

// `parsed` is derived from `text`, so it carries no identity of its own;
// two entries are equal iff the durable fields agree.
impl PartialEq for LoggedQuery {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
            && self.text == other.text
            && self.executed_at == other.executed_at
            && self.context == other.context
    }
}

impl LoggedQuery {
    /// An entry whose text has already been parsed (the live append path).
    pub fn new(
        id: QueryId,
        query: Query,
        text: String,
        executed_at: Timestamp,
        context: AccessContext,
    ) -> Self {
        let parsed = OnceLock::new();
        let _ = parsed.set(query);
        LoggedQuery { id, text, executed_at, context, parsed }
    }

    /// An entry whose text was validated when it was first accepted — a
    /// journaled append being replayed — so the parse can be deferred
    /// until the AST is actually needed.
    pub fn prevalidated(
        id: QueryId,
        text: String,
        executed_at: Timestamp,
        context: AccessContext,
    ) -> Self {
        LoggedQuery { id, text, executed_at, context, parsed: OnceLock::new() }
    }

    /// The parsed query, materializing it from `text` on first access.
    pub fn query(&self) -> &Query {
        self.parsed.get_or_init(|| match audex_sql::parse_query(&self.text) {
            Ok(q) => q,
            // Only reachable through [`LoggedQuery::prevalidated`], whose
            // contract is that the text parsed when first accepted; a
            // failure here means the journal was edited out-of-band, and
            // auditing against a silently dropped query would be worse
            // than stopping.
            Err(e) => panic!("previously-validated query {} no longer parses: {e}", self.id),
        })
    }

    /// The columns this query *accessed*: everything in its projection plus
    /// everything referenced by its predicate — the paper's
    /// `C_Q = C_OQ ∪ columns(P_Q)`. Wildcards are returned as `*` markers
    /// for the audit layer to expand against the schema.
    pub fn accessed_columns(&self) -> Vec<AccessedColumn> {
        let mut out = Vec::new();
        for item in &self.query().projection {
            match item {
                audex_sql::ast::SelectItem::Wildcard => out.push(AccessedColumn::AllColumns),
                audex_sql::ast::SelectItem::QualifiedWildcard(t) => {
                    out.push(AccessedColumn::AllOf(t.clone()))
                }
                audex_sql::ast::SelectItem::Expr { expr, .. } => {
                    expr.walk_columns(&mut |c| out.push(AccessedColumn::Column(c.clone())));
                }
            }
        }
        if let Some(pred) = &self.query().selection {
            pred.walk_columns(&mut |c| out.push(AccessedColumn::Column(c.clone())));
        }
        // ORDER BY keys are read too (their values leak through ordering).
        for o in &self.query().order_by {
            o.expr.walk_columns(&mut |c| out.push(AccessedColumn::Column(c.clone())));
        }
        out
    }
}

/// A column access, possibly a wildcard.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AccessedColumn {
    /// A specific (possibly qualified) column.
    Column(audex_sql::ColumnRef),
    /// `SELECT *`.
    AllColumns,
    /// `SELECT t.*`.
    AllOf(Ident),
}

#[cfg(test)]
mod tests {
    use super::*;
    use audex_sql::parse_query;

    fn logged(sql: &str) -> LoggedQuery {
        LoggedQuery::new(
            QueryId(1),
            parse_query(sql).unwrap(),
            sql.to_string(),
            Timestamp(100),
            AccessContext::new("u1", "nurse", "treatment"),
        )
    }

    #[test]
    fn prevalidated_parses_lazily_and_compares_equal() {
        let sql = "SELECT zipcode FROM Patients WHERE disease = 'cancer'";
        let lazy = LoggedQuery::prevalidated(
            QueryId(1),
            sql.to_string(),
            Timestamp(100),
            AccessContext::new("u1", "nurse", "treatment"),
        );
        let eager = logged(sql);
        // Equality ignores whether the AST has been materialized yet.
        assert_eq!(lazy, eager);
        assert_eq!(lazy.query(), eager.query());
        assert_eq!(lazy.accessed_columns(), eager.accessed_columns());
    }

    #[test]
    fn accessed_columns_cover_projection_and_predicate() {
        let q = logged("SELECT zipcode FROM Patients WHERE disease = 'cancer'");
        let cols = q.accessed_columns();
        assert_eq!(cols.len(), 2);
        assert!(cols
            .iter()
            .any(|c| matches!(c, AccessedColumn::Column(r) if r.column == Ident::new("zipcode"))));
        assert!(cols
            .iter()
            .any(|c| matches!(c, AccessedColumn::Column(r) if r.column == Ident::new("disease"))));
    }

    #[test]
    fn wildcards_are_markers() {
        let q = logged("SELECT *, P-Health.* FROM P-Personal, P-Health");
        let cols = q.accessed_columns();
        assert!(cols.contains(&AccessedColumn::AllColumns));
        assert!(cols.contains(&AccessedColumn::AllOf(Ident::new("P-Health"))));
    }

    #[test]
    fn order_by_columns_are_accessed() {
        let q = logged("SELECT zipcode FROM Patients ORDER BY disease");
        let cols = q.accessed_columns();
        assert!(cols
            .iter()
            .any(|c| matches!(c, AccessedColumn::Column(r) if r.column == Ident::new("disease"))));
    }

    #[test]
    fn query_id_displays() {
        assert_eq!(QueryId(7).to_string(), "q7");
    }
}
