//! Logged queries and their privacy annotations.

use audex_sql::ast::Query;
use audex_sql::{Ident, Timestamp};
use std::fmt;

/// A stable identifier for a logged query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u64);

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// The privacy-policy annotations the Hippocratic DBMS attaches to each
/// query execution: who ran it, in which role, for which purpose (Agrawal
/// et al. log exactly these alongside the query text).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AccessContext {
    /// The authenticated user id.
    pub user: Ident,
    /// The role the user acted under.
    pub role: Ident,
    /// The declared access purpose.
    pub purpose: Ident,
}

impl AccessContext {
    /// Convenience constructor.
    pub fn new(user: impl Into<Ident>, role: impl Into<Ident>, purpose: impl Into<Ident>) -> Self {
        AccessContext { user: user.into(), role: role.into(), purpose: purpose.into() }
    }
}

/// One logged query execution.
#[derive(Debug, Clone, PartialEq)]
pub struct LoggedQuery {
    /// Log-assigned id.
    pub id: QueryId,
    /// The parsed query.
    pub query: Query,
    /// The original text as submitted.
    pub text: String,
    /// Execution time.
    pub executed_at: Timestamp,
    /// Who / as-what / why.
    pub context: AccessContext,
}

impl LoggedQuery {
    /// The columns this query *accessed*: everything in its projection plus
    /// everything referenced by its predicate — the paper's
    /// `C_Q = C_OQ ∪ columns(P_Q)`. Wildcards are returned as `*` markers
    /// for the audit layer to expand against the schema.
    pub fn accessed_columns(&self) -> Vec<AccessedColumn> {
        let mut out = Vec::new();
        for item in &self.query.projection {
            match item {
                audex_sql::ast::SelectItem::Wildcard => out.push(AccessedColumn::AllColumns),
                audex_sql::ast::SelectItem::QualifiedWildcard(t) => {
                    out.push(AccessedColumn::AllOf(t.clone()))
                }
                audex_sql::ast::SelectItem::Expr { expr, .. } => {
                    expr.walk_columns(&mut |c| out.push(AccessedColumn::Column(c.clone())));
                }
            }
        }
        if let Some(pred) = &self.query.selection {
            pred.walk_columns(&mut |c| out.push(AccessedColumn::Column(c.clone())));
        }
        // ORDER BY keys are read too (their values leak through ordering).
        for o in &self.query.order_by {
            o.expr.walk_columns(&mut |c| out.push(AccessedColumn::Column(c.clone())));
        }
        out
    }
}

/// A column access, possibly a wildcard.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AccessedColumn {
    /// A specific (possibly qualified) column.
    Column(audex_sql::ColumnRef),
    /// `SELECT *`.
    AllColumns,
    /// `SELECT t.*`.
    AllOf(Ident),
}

#[cfg(test)]
mod tests {
    use super::*;
    use audex_sql::parse_query;

    fn logged(sql: &str) -> LoggedQuery {
        LoggedQuery {
            id: QueryId(1),
            query: parse_query(sql).unwrap(),
            text: sql.to_string(),
            executed_at: Timestamp(100),
            context: AccessContext::new("u1", "nurse", "treatment"),
        }
    }

    #[test]
    fn accessed_columns_cover_projection_and_predicate() {
        let q = logged("SELECT zipcode FROM Patients WHERE disease = 'cancer'");
        let cols = q.accessed_columns();
        assert_eq!(cols.len(), 2);
        assert!(cols
            .iter()
            .any(|c| matches!(c, AccessedColumn::Column(r) if r.column == Ident::new("zipcode"))));
        assert!(cols
            .iter()
            .any(|c| matches!(c, AccessedColumn::Column(r) if r.column == Ident::new("disease"))));
    }

    #[test]
    fn wildcards_are_markers() {
        let q = logged("SELECT *, P-Health.* FROM P-Personal, P-Health");
        let cols = q.accessed_columns();
        assert!(cols.contains(&AccessedColumn::AllColumns));
        assert!(cols.contains(&AccessedColumn::AllOf(Ident::new("P-Health"))));
    }

    #[test]
    fn order_by_columns_are_accessed() {
        let q = logged("SELECT zipcode FROM Patients ORDER BY disease");
        let cols = q.accessed_columns();
        assert!(cols
            .iter()
            .any(|c| matches!(c, AccessedColumn::Column(r) if r.column == Ident::new("disease"))));
    }

    #[test]
    fn query_id_displays() {
        assert_eq!(QueryId(7).to_string(), "q7");
    }
}
