//! `audex-log` — the annotated query-log substrate.
//!
//! During normal operation a Hippocratic DBMS logs the text of every query
//! with annotations: execution time, the submitting user, the role acted
//! under, and the declared purpose (Agrawal et al., VLDB'04, §"During normal
//! operation"). The auditing framework of the paper replays and filters this
//! log. This crate provides:
//!
//! * [`entry::LoggedQuery`] — a parsed query plus its [`entry::AccessContext`]
//!   annotations, with the `C_Q` accessed-column computation,
//! * [`log::QueryLog`] — a thread-safe append-only log,
//! * [`filter::AccessFilter`] — the paper's §3.3 limiting parameters
//!   (`Pos-/Neg-Role-Purpose`, `Pos-/Neg-User-Identity`, `DURING`) with
//!   negative-precedence conflict resolution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod entry;
pub mod filter;
pub mod log;

pub use entry::{AccessContext, AccessedColumn, LoggedQuery, QueryId};
pub use filter::AccessFilter;
pub use log::{AppendError, LogSink, QueryLog};
