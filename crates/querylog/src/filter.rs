//! Limiting-parameter filters over the query log (paper §3.3).
//!
//! The audit expression may restrict which logged accesses are audited via
//! `Pos-/Neg-Role-Purpose`, `Pos-/Neg-User-Identity`, and `DURING`. The
//! paper fixes one conflict rule: **negative clauses take precedence over
//! positive ones** ("we give precedence to negative clause and the accesses
//! will not be audited").

use audex_sql::ast::RolePurposePattern;
use audex_sql::{Ident, Timestamp};

use crate::entry::LoggedQuery;

/// A compiled access filter.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AccessFilter {
    /// Exclusion patterns (precedence).
    pub neg_role_purpose: Vec<RolePurposePattern>,
    /// Inclusion patterns (when non-empty, an access must match one).
    pub pos_role_purpose: Vec<RolePurposePattern>,
    /// Excluded users (precedence).
    pub neg_users: Vec<Ident>,
    /// Included users (when non-empty, the user must be listed).
    pub pos_users: Vec<Ident>,
    /// `DURING` interval (inclusive); `None` audits every execution time.
    pub during: Option<(Timestamp, Timestamp)>,
}

fn pattern_matches(p: &RolePurposePattern, role: &Ident, purpose: &Ident) -> bool {
    p.role.as_ref().is_none_or(|r| r == role) && p.purpose.as_ref().is_none_or(|pr| pr == purpose)
}

impl AccessFilter {
    /// A filter that admits everything (the paper's defaults).
    pub fn admit_all() -> Self {
        Self::default()
    }

    /// Decides whether a logged access is subject to this audit, applying
    /// negative precedence.
    pub fn admits(&self, entry: &LoggedQuery) -> bool {
        self.admits_parts(
            &entry.context.user,
            &entry.context.role,
            &entry.context.purpose,
            entry.executed_at,
        )
    }

    /// Field-level form of [`AccessFilter::admits`] (useful for tests and
    /// for callers without a full entry).
    pub fn admits_parts(&self, user: &Ident, role: &Ident, purpose: &Ident, at: Timestamp) -> bool {
        if let Some((s, e)) = self.during {
            if at < s || at > e {
                return false;
            }
        }
        // Negative clauses first: they win every conflict.
        if self.neg_users.contains(user) {
            return false;
        }
        if self.neg_role_purpose.iter().any(|p| pattern_matches(p, role, purpose)) {
            return false;
        }
        // Positive clauses restrict when present.
        if !self.pos_users.is_empty() && !self.pos_users.contains(user) {
            return false;
        }
        if !self.pos_role_purpose.is_empty()
            && !self.pos_role_purpose.iter().any(|p| pattern_matches(p, role, purpose))
        {
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(role: Option<&str>, purpose: Option<&str>) -> RolePurposePattern {
        RolePurposePattern { role: role.map(Ident::new), purpose: purpose.map(Ident::new) }
    }

    fn admits(f: &AccessFilter, user: &str, role: &str, purpose: &str, at: i64) -> bool {
        f.admits_parts(&Ident::new(user), &Ident::new(role), &Ident::new(purpose), Timestamp(at))
    }

    #[test]
    fn default_admits_everything() {
        let f = AccessFilter::admit_all();
        assert!(admits(&f, "u", "r", "p", 0));
    }

    #[test]
    fn during_is_inclusive() {
        let f = AccessFilter { during: Some((Timestamp(10), Timestamp(20))), ..Default::default() };
        assert!(!admits(&f, "u", "r", "p", 9));
        assert!(admits(&f, "u", "r", "p", 10));
        assert!(admits(&f, "u", "r", "p", 20));
        assert!(!admits(&f, "u", "r", "p", 21));
    }

    #[test]
    fn negative_role_purpose_wildcards() {
        let f = AccessFilter {
            neg_role_purpose: vec![
                pat(Some("nurse"), Some("billing")),
                pat(Some("admin"), None),
                pat(None, Some("marketing")),
            ],
            ..Default::default()
        };
        assert!(!admits(&f, "u", "nurse", "billing", 0));
        assert!(admits(&f, "u", "nurse", "treatment", 0));
        assert!(!admits(&f, "u", "admin", "anything", 0));
        assert!(!admits(&f, "u", "doctor", "marketing", 0));
        assert!(admits(&f, "u", "doctor", "treatment", 0));
    }

    #[test]
    fn positive_restricts_when_present() {
        let f = AccessFilter {
            pos_role_purpose: vec![pat(Some("doctor"), None)],
            ..Default::default()
        };
        assert!(admits(&f, "u", "doctor", "treatment", 0));
        assert!(!admits(&f, "u", "nurse", "treatment", 0));
    }

    #[test]
    fn negative_beats_positive_on_conflict() {
        // The paper's explicit rule: conflict resolved in favour of negative.
        let f = AccessFilter {
            pos_role_purpose: vec![pat(Some("doctor"), None)],
            neg_role_purpose: vec![pat(Some("doctor"), Some("marketing"))],
            ..Default::default()
        };
        assert!(!admits(&f, "u", "doctor", "marketing", 0));
        assert!(admits(&f, "u", "doctor", "treatment", 0));
    }

    #[test]
    fn user_lists() {
        let f = AccessFilter {
            pos_users: vec![Ident::new("u1"), Ident::new("u2")],
            neg_users: vec![Ident::new("u2")],
            ..Default::default()
        };
        assert!(admits(&f, "u1", "r", "p", 0));
        assert!(!admits(&f, "u2", "r", "p", 0)); // negative precedence
        assert!(!admits(&f, "u3", "r", "p", 0)); // not in positive list
    }

    #[test]
    fn user_ids_match_case_insensitively() {
        let f = AccessFilter { neg_users: vec![Ident::new("U-17")], ..Default::default() };
        assert!(!admits(&f, "u-17", "r", "p", 0));
    }
}
