//! Property tests on the policy substrate: purpose-hierarchy laws and
//! authorization monotonicity.

use audex_policy::{ColumnScope, PrivacyPolicy, PurposeRegistry};
use audex_sql::Ident;
use proptest::prelude::*;

const NAMES: [&str; 8] = ["p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7"];

/// A random forest over the 8 purpose names: each purpose optionally gets a
/// parent with a strictly smaller index (guaranteeing acyclicity).
fn forest_strategy() -> impl Strategy<Value = Vec<Option<usize>>> {
    (0..NAMES.len())
        .map(|i| if i == 0 { Just(None).boxed() } else { proptest::option::of(0..i).boxed() })
        .collect::<Vec<_>>()
}

fn registry(parents: &[Option<usize>]) -> PurposeRegistry {
    let mut reg = PurposeRegistry::new();
    for (i, parent) in parents.iter().enumerate() {
        match parent {
            None => {
                reg.declare(NAMES[i]);
            }
            Some(p) => {
                reg.declare_under(NAMES[i], NAMES[*p]);
            }
        }
    }
    reg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// is_within is reflexive and transitive on acyclic forests.
    #[test]
    fn hierarchy_laws(parents in forest_strategy()) {
        let reg = registry(&parents);
        let id = |i: usize| Ident::new(NAMES[i]);
        for i in 0..NAMES.len() {
            prop_assert!(reg.is_within(&id(i), &id(i)), "reflexivity at {i}");
        }
        for a in 0..NAMES.len() {
            for b in 0..NAMES.len() {
                for c in 0..NAMES.len() {
                    if reg.is_within(&id(a), &id(b)) && reg.is_within(&id(b), &id(c)) {
                        prop_assert!(
                            reg.is_within(&id(a), &id(c)),
                            "transitivity {a}→{b}→{c}"
                        );
                    }
                }
            }
        }
    }

    /// is_within agrees with explicit parent-chain walking.
    #[test]
    fn hierarchy_matches_chain(parents in forest_strategy(), a in 0..NAMES.len(), b in 0..NAMES.len()) {
        let reg = registry(&parents);
        let mut cur = Some(a);
        let mut expected = false;
        while let Some(i) = cur {
            if i == b {
                expected = true;
                break;
            }
            cur = parents[i];
        }
        prop_assert_eq!(reg.is_within(&Ident::new(NAMES[a]), &Ident::new(NAMES[b])), expected);
    }

    /// Granting a purpose authorizes exactly its descendants (and itself).
    #[test]
    fn authorization_covers_descendants_only(parents in forest_strategy(), granted in 0..NAMES.len()) {
        let mut policy = PrivacyPolicy::new();
        policy.purposes = registry(&parents);
        policy.users.register("u", vec![Ident::new("r")]);
        policy.allow("r", NAMES[granted], "T", ColumnScope::All);
        for (acting, name) in NAMES.iter().enumerate() {
            let denials = policy.check_access(
                &Ident::new("u"),
                &Ident::new("r"),
                &Ident::new(*name),
                &[(Ident::new("T"), Ident::new("c"))],
            );
            let should_pass = policy
                .purposes
                .is_within(&Ident::new(*name), &Ident::new(NAMES[granted]));
            prop_assert_eq!(denials.is_empty(), should_pass, "acting {} granted {}", acting, granted);
        }
    }

    /// Widening the column scope never introduces new denials.
    #[test]
    fn column_scope_is_monotone(cols in proptest::collection::btree_set(0..6usize, 0..6), probe in 0..6usize) {
        let names = ["c0", "c1", "c2", "c3", "c4", "c5"];
        let mut narrow = PrivacyPolicy::new();
        narrow.purposes.declare("p");
        narrow.users.register("u", vec![Ident::new("r")]);
        narrow.allow("r", "p", "T", ColumnScope::only(cols.iter().map(|i| names[*i])));
        let mut wide = PrivacyPolicy::new();
        wide.purposes.declare("p");
        wide.users.register("u", vec![Ident::new("r")]);
        wide.allow("r", "p", "T", ColumnScope::All);

        let reads = [(Ident::new("T"), Ident::new(names[probe]))];
        let narrow_ok = narrow
            .check_access(&Ident::new("u"), &Ident::new("r"), &Ident::new("p"), &reads)
            .is_empty();
        let wide_ok = wide
            .check_access(&Ident::new("u"), &Ident::new("r"), &Ident::new("p"), &reads)
            .is_empty();
        prop_assert!(wide_ok);
        prop_assert_eq!(narrow_ok, cols.contains(&probe));
    }
}
