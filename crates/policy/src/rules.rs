//! Authorization rules and compliance decisions.

use audex_sql::Ident;
use std::collections::BTreeSet;
use std::fmt;

use crate::model::{PurposeRegistry, UserRegistry};

/// The columns an authorization covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnScope {
    /// Every column of the table.
    All,
    /// Only the listed columns.
    Only(BTreeSet<Ident>),
}

impl ColumnScope {
    /// Builds a scope from column names.
    pub fn only<I, C>(cols: I) -> Self
    where
        I: IntoIterator<Item = C>,
        C: Into<Ident>,
    {
        ColumnScope::Only(cols.into_iter().map(Into::into).collect())
    }

    fn covers(&self, column: &Ident) -> bool {
        match self {
            ColumnScope::All => true,
            ColumnScope::Only(set) => set.contains(column),
        }
    }
}

/// One authorization: acting under `role` for `purpose` (or any descendant
/// purpose), these columns of this table may be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Authorization {
    /// The authorized role.
    pub role: Ident,
    /// The authorized purpose (covers descendants in the hierarchy).
    pub purpose: Ident,
    /// The table covered.
    pub table: Ident,
    /// The columns covered.
    pub columns: ColumnScope,
}

/// Why an access was denied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Denial {
    /// The user is not registered.
    UnknownUser(Ident),
    /// The user may not act under this role.
    RoleNotHeld {
        /// The offending user.
        user: Ident,
        /// The role claimed.
        role: Ident,
    },
    /// The purpose is not declared in the policy.
    UnknownPurpose(Ident),
    /// No authorization covers this column access.
    ColumnNotAuthorized {
        /// The table read.
        table: Ident,
        /// The column read.
        column: Ident,
    },
}

impl fmt::Display for Denial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Denial::UnknownUser(u) => write!(f, "unknown user {u}"),
            Denial::RoleNotHeld { user, role } => write!(f, "user {user} may not act as {role}"),
            Denial::UnknownPurpose(p) => write!(f, "undeclared purpose {p}"),
            Denial::ColumnNotAuthorized { table, column } => {
                write!(f, "no authorization covers {table}.{column}")
            }
        }
    }
}

/// A complete privacy policy: registries plus authorizations.
#[derive(Debug, Clone, Default)]
pub struct PrivacyPolicy {
    /// Declared purposes.
    pub purposes: PurposeRegistry,
    /// Registered users.
    pub users: UserRegistry,
    /// The authorization rules.
    pub authorizations: Vec<Authorization>,
}

impl PrivacyPolicy {
    /// An empty policy (denies all column accesses).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an authorization.
    pub fn allow(
        &mut self,
        role: impl Into<Ident>,
        purpose: impl Into<Ident>,
        table: impl Into<Ident>,
        columns: ColumnScope,
    ) -> &mut Self {
        self.authorizations.push(Authorization {
            role: role.into(),
            purpose: purpose.into(),
            table: table.into(),
            columns,
        });
        self
    }

    /// Checks one access: `user` acting as `role` for `purpose` reading the
    /// given `(table, column)` pairs. Returns every violation found (empty =
    /// compliant).
    pub fn check_access(
        &self,
        user: &Ident,
        role: &Ident,
        purpose: &Ident,
        reads: &[(Ident, Ident)],
    ) -> Vec<Denial> {
        let mut denials = Vec::new();
        if !self.users.contains(user) {
            denials.push(Denial::UnknownUser(user.clone()));
        } else if !self.users.may_act_as(user, role) {
            denials.push(Denial::RoleNotHeld { user: user.clone(), role: role.clone() });
        }
        if !self.purposes.contains(purpose) {
            denials.push(Denial::UnknownPurpose(purpose.clone()));
        }
        for (table, column) in reads {
            let authorized = self.authorizations.iter().any(|a| {
                &a.role == role
                    && &a.table == table
                    && a.columns.covers(column)
                    && self.purposes.is_within(purpose, &a.purpose)
            });
            if !authorized {
                denials.push(Denial::ColumnNotAuthorized {
                    table: table.clone(),
                    column: column.clone(),
                });
            }
        }
        denials
    }

    /// The `(role, purpose)` pairs that can read **all** of the given
    /// columns — the "authorized privacy policy parameters through which the
    /// violation is possible" an auditor would plug into the audit
    /// expression's `Pos-Role-Purpose` clause.
    pub fn channels_to(&self, reads: &[(Ident, Ident)]) -> Vec<(Ident, Ident)> {
        let mut out: Vec<(Ident, Ident)> = Vec::new();
        for a in &self.authorizations {
            let covers_all = reads.iter().all(|(t, c)| {
                self.authorizations.iter().any(|b| {
                    b.role == a.role
                        && self.purposes.is_within(&a.purpose, &b.purpose)
                        && &b.table == t
                        && b.columns.covers(c)
                })
            });
            if covers_all && !out.contains(&(a.role.clone(), a.purpose.clone())) {
                out.push((a.role.clone(), a.purpose.clone()));
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> PrivacyPolicy {
        let mut p = PrivacyPolicy::new();
        p.purposes.declare("healthcare");
        p.purposes.declare_under("treatment", "healthcare");
        p.purposes.declare("marketing");
        p.users.register("u1", vec![Ident::new("nurse")]);
        p.users.register("u2", vec![Ident::new("clerk")]);
        p.allow("nurse", "healthcare", "P-Health", ColumnScope::All);
        p.allow("clerk", "marketing", "P-Personal", ColumnScope::only(["name", "address"]));
        p
    }

    fn reads(pairs: &[(&str, &str)]) -> Vec<(Ident, Ident)> {
        pairs.iter().map(|(t, c)| (Ident::new(*t), Ident::new(*c))).collect()
    }

    #[test]
    fn compliant_access() {
        let p = policy();
        let d = p.check_access(
            &Ident::new("u1"),
            &Ident::new("nurse"),
            &Ident::new("treatment"), // descendant of healthcare
            &reads(&[("P-Health", "disease")]),
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn column_scope_enforced() {
        let p = policy();
        let d = p.check_access(
            &Ident::new("u2"),
            &Ident::new("clerk"),
            &Ident::new("marketing"),
            &reads(&[("P-Personal", "name"), ("P-Personal", "zipcode")]),
        );
        assert_eq!(d.len(), 1);
        assert!(
            matches!(&d[0], Denial::ColumnNotAuthorized { column, .. } if column == &Ident::new("zipcode"))
        );
    }

    #[test]
    fn role_not_held() {
        let p = policy();
        let d = p.check_access(
            &Ident::new("u2"),
            &Ident::new("nurse"),
            &Ident::new("treatment"),
            &reads(&[("P-Health", "disease")]),
        );
        assert!(d.iter().any(|x| matches!(x, Denial::RoleNotHeld { .. })));
    }

    #[test]
    fn unknown_user_and_purpose() {
        let p = policy();
        let d = p.check_access(
            &Ident::new("ghost"),
            &Ident::new("nurse"),
            &Ident::new("undeclared"),
            &[],
        );
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn purpose_hierarchy_does_not_leak_upward() {
        let p = policy();
        // Authorized for healthcare does not mean authorized when acting for
        // an unrelated purpose.
        let d = p.check_access(
            &Ident::new("u1"),
            &Ident::new("nurse"),
            &Ident::new("marketing"),
            &reads(&[("P-Health", "disease")]),
        );
        assert!(!d.is_empty());
    }

    #[test]
    fn channels_to_finds_authorized_parameters() {
        let p = policy();
        let ch = p.channels_to(&reads(&[("P-Health", "disease")]));
        assert_eq!(ch, vec![(Ident::new("nurse"), Ident::new("healthcare"))]);
        let none = p.channels_to(&reads(&[("P-Personal", "zipcode")]));
        assert!(none.is_empty());
    }
}
