//! Users, roles, and the purpose hierarchy.

use audex_sql::Ident;
use std::collections::BTreeMap;

/// A registry of declared purposes with an optional hierarchy: authorizing a
/// parent purpose implies its descendants (Hippocratic-database style, after
/// Agrawal et al.'s purpose taxonomy).
#[derive(Debug, Clone, Default)]
pub struct PurposeRegistry {
    parents: BTreeMap<Ident, Option<Ident>>,
}

impl PurposeRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a root purpose.
    pub fn declare(&mut self, purpose: impl Into<Ident>) -> &mut Self {
        self.parents.insert(purpose.into(), None);
        self
    }

    /// Declares a purpose under a parent.
    pub fn declare_under(
        &mut self,
        purpose: impl Into<Ident>,
        parent: impl Into<Ident>,
    ) -> &mut Self {
        self.parents.insert(purpose.into(), Some(parent.into()));
        self
    }

    /// True when the purpose is declared.
    pub fn contains(&self, purpose: &Ident) -> bool {
        self.parents.contains_key(purpose)
    }

    /// True when `purpose` is `ancestor` or a descendant of it.
    pub fn is_within(&self, purpose: &Ident, ancestor: &Ident) -> bool {
        let mut cur = Some(purpose.clone());
        let mut hops = 0;
        while let Some(p) = cur {
            if &p == ancestor {
                return true;
            }
            cur = self.parents.get(&p).cloned().flatten();
            hops += 1;
            if hops > self.parents.len() {
                return false; // cycle guard
            }
        }
        false
    }

    /// All declared purposes, sorted.
    pub fn purposes(&self) -> Vec<Ident> {
        self.parents.keys().cloned().collect()
    }
}

/// A registry of users and the roles they may act under.
#[derive(Debug, Clone, Default)]
pub struct UserRegistry {
    roles_of: BTreeMap<Ident, Vec<Ident>>,
}

impl UserRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a user with their permitted roles.
    pub fn register(&mut self, user: impl Into<Ident>, roles: Vec<Ident>) -> &mut Self {
        self.roles_of.insert(user.into(), roles);
        self
    }

    /// True when the user exists.
    pub fn contains(&self, user: &Ident) -> bool {
        self.roles_of.contains_key(user)
    }

    /// True when `user` may act under `role`.
    pub fn may_act_as(&self, user: &Ident, role: &Ident) -> bool {
        self.roles_of.get(user).is_some_and(|rs| rs.contains(role))
    }

    /// All users, sorted.
    pub fn users(&self) -> Vec<Ident> {
        self.roles_of.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn purpose_hierarchy() {
        let mut reg = PurposeRegistry::new();
        reg.declare("healthcare");
        reg.declare_under("treatment", "healthcare");
        reg.declare_under("surgery", "treatment");
        reg.declare("marketing");

        let p = |s: &str| Ident::new(s);
        assert!(reg.is_within(&p("surgery"), &p("healthcare")));
        assert!(reg.is_within(&p("treatment"), &p("treatment")));
        assert!(!reg.is_within(&p("marketing"), &p("healthcare")));
        assert!(!reg.is_within(&p("healthcare"), &p("treatment"))); // not downward
        assert!(reg.contains(&p("surgery")));
        assert!(!reg.contains(&p("unknown")));
    }

    #[test]
    fn cycle_guard_terminates() {
        let mut reg = PurposeRegistry::new();
        reg.declare_under("a", "b");
        reg.declare_under("b", "a");
        assert!(!reg.is_within(&Ident::new("a"), &Ident::new("c")));
    }

    #[test]
    fn user_roles() {
        let mut users = UserRegistry::new();
        users.register("u1", vec![Ident::new("nurse"), Ident::new("auditor")]);
        assert!(users.may_act_as(&Ident::new("u1"), &Ident::new("nurse")));
        assert!(!users.may_act_as(&Ident::new("u1"), &Ident::new("doctor")));
        assert!(!users.may_act_as(&Ident::new("u2"), &Ident::new("nurse")));
    }
}
