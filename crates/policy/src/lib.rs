//! `audex-policy` — the Hippocratic privacy-policy substrate.
//!
//! The paper's limiting parameters (§3.3) are "the authorization parameters
//! given in the privacy policy which allow access to the target data view":
//! user ids, roles, and purposes. This crate models the policy those
//! parameters come from — a purpose hierarchy, user/role registry, and
//! column-level authorizations — so examples and workloads can distinguish
//! policy-compliant accesses from violating ones, and so an auditor can ask
//! which `(role, purpose)` channels could have reached the leaked data
//! ([`rules::PrivacyPolicy::channels_to`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub mod rules;

pub use model::{PurposeRegistry, UserRegistry};
pub use rules::{Authorization, ColumnScope, Denial, PrivacyPolicy};
