//! Static (data-independent) batch suspiciousness — the paper's first
//! future-work question (§4): *"it would be interesting to see for what
//! suspicion notions static determination of a query batch suspiciousness
//! is decidable."*
//!
//! This module gives a concrete, certificate-producing answer for the SPJ
//! fragment with conjunctive comparison predicates (the fragment the
//! paper's own examples use):
//!
//! * **Weak syntactic suspicion (Definition 7)** quantifies over *some
//!   database instance*, so it is a static notion. For the decidable
//!   fragment — top-level conjunctions of `col op literal` and
//!   `col = col`, interpreted over dense domains — [`static_weak_syntactic`]
//!   decides it exactly and, when the answer is *suspicious*, returns a
//!   **witness instance**: a tiny database on which the batch provably
//!   trips the notion (re-verified dynamically before being returned).
//!   Queries outside the fragment (disjunctions, LIKE, arithmetic,
//!   inequality column-column comparisons) degrade the answer to
//!   [`StaticVerdict::Unknown`] rather than a wrong verdict.
//! * **Semantic (indispensable-tuple) suspicion** is inherently
//!   data-dependent — the actual instance decides — so static analysis can
//!   only ever return *not suspicious* (when no query is even a candidate)
//!   or *unknown*; [`static_semantic_bound`] provides exactly that sound
//!   bound.
//!
//! Together these reproduce the qualitative landscape the related work
//! describes: syntactic notions are decidable (Motwani et al.), semantic
//! ones require the data (Agrawal et al.), and general formulas make the
//! problem intractable (Miklau–Suciu) — the fragment boundary is where this
//! implementation switches to `Unknown`.

use audex_sql::ast::{BinOp, Expr, Literal, TypeName};
use audex_sql::{Ident, Timestamp};
use audex_storage::{Database, JoinStrategy, Schema, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use crate::attrspec::normalize_with;
use crate::candidate::{accessed_base_columns, BaseColumn, CandidateChecker};
use crate::catalog::AuditScope;
use crate::error::AuditError;
use crate::governor::{AuditPhase, Governor};
use crate::granule::GranuleModel;
use crate::notions::weak_syntactic;
use crate::suspicion::BatchEvaluator;
use audex_log::{LoggedQuery, QueryId};

/// Outcome of a static determination.
#[derive(Debug, Clone, PartialEq)]
pub enum StaticVerdict {
    /// Provably suspicious on *some* instance; a witness is attached.
    Suspicious {
        /// The query that trips the notion on the witness instance.
        query: QueryId,
        /// A database instance on which the batch is suspicious.
        witness: Box<Database>,
    },
    /// Provably not suspicious on *any* instance.
    NotSuspicious,
    /// Outside the decidable fragment; no determination.
    Unknown,
}

impl StaticVerdict {
    /// True for the suspicious variant.
    pub fn is_suspicious(&self) -> bool {
        matches!(self, StaticVerdict::Suspicious { .. })
    }
}

/// A bound (lower, upper, strictness) with disequalities, per column class.
#[derive(Debug, Clone, Default)]
struct ClassBounds {
    lo: Option<(Value, bool)>,
    hi: Option<(Value, bool)>,
    neq: Vec<Value>,
}

/// A conjunct of the decidable fragment.
enum FragmentConstraint {
    ColEq(BaseColumn, BaseColumn),
    Cmp(BaseColumn, BinOp, Value),
}

/// Extracts the predicate into fragment constraints; `None` when any
/// conjunct falls outside the fragment.
fn extract_strict(pred: &Expr, scope: &AuditScope) -> Option<Vec<FragmentConstraint>> {
    fn split<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        if let Expr::Binary { left, op: BinOp::And, right } = e {
            split(left, out);
            split(right, out);
        } else {
            out.push(e);
        }
    }
    let mut conjuncts = Vec::new();
    split(pred, &mut conjuncts);

    let col = |e: &Expr| -> Option<BaseColumn> {
        if let Expr::Column(c) = e {
            let rc = crate::attrspec::ColumnResolver::resolve(scope, c).ok()?;
            scope.base_of_column(&rc)
        } else {
            None
        }
    };
    let lit = |e: &Expr| -> Option<Value> {
        match e {
            Expr::Literal(Literal::Int(v)) => Some(Value::Int(*v)),
            Expr::Literal(Literal::Float(v)) => Some(Value::Float(*v)),
            Expr::Literal(Literal::Str(s)) => Some(Value::Str(s.clone())),
            Expr::Literal(Literal::Bool(b)) => Some(Value::Bool(*b)),
            Expr::Literal(Literal::Ts(t)) => Some(Value::Ts(*t)),
            _ => None,
        }
    };

    let mut out = Vec::new();
    for c in conjuncts {
        match c {
            Expr::Binary { left, op, right } if op.is_comparison() => {
                match (col(left), col(right)) {
                    (Some(a), Some(b)) if *op == BinOp::Eq => {
                        out.push(FragmentConstraint::ColEq(a, b))
                    }
                    (Some(_), Some(_)) => return None, // col <op> col: outside fragment
                    (Some(cc), None) => out.push(FragmentConstraint::Cmp(cc, *op, lit(right)?)),
                    (None, Some(cc)) => {
                        out.push(FragmentConstraint::Cmp(cc, op.flip(), lit(left)?))
                    }
                    _ => return None,
                }
            }
            Expr::Between { expr, low, high, negated: false } => {
                let cc = col(expr)?;
                out.push(FragmentConstraint::Cmp(cc.clone(), BinOp::GtEq, lit(low)?));
                out.push(FragmentConstraint::Cmp(cc, BinOp::LtEq, lit(high)?));
            }
            _ => return None,
        }
    }
    Some(out)
}

/// Solves fragment constraints into a value per column, or `None` when
/// unsatisfiable / not solvable within this implementation.
fn solve(constraints: &[FragmentConstraint]) -> Option<BTreeMap<BaseColumn, Value>> {
    // Union-find.
    let mut cols: Vec<BaseColumn> = Vec::new();
    let mut index: BTreeMap<BaseColumn, usize> = BTreeMap::new();
    let mut parent: Vec<usize> = Vec::new();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let intern = |c: &BaseColumn,
                  cols: &mut Vec<BaseColumn>,
                  index: &mut BTreeMap<BaseColumn, usize>,
                  parent: &mut Vec<usize>|
     -> usize {
        *index.entry(c.clone()).or_insert_with(|| {
            cols.push(c.clone());
            parent.push(parent.len());
            cols.len() - 1
        })
    };
    let mut cmps: Vec<(usize, BinOp, Value)> = Vec::new();
    for c in constraints {
        match c {
            FragmentConstraint::ColEq(a, b) => {
                let ia = intern(a, &mut cols, &mut index, &mut parent);
                let ib = intern(b, &mut cols, &mut index, &mut parent);
                let (ra, rb) = (find(&mut parent, ia), find(&mut parent, ib));
                parent[ra] = rb;
            }
            FragmentConstraint::Cmp(c, op, v) => {
                let i = intern(c, &mut cols, &mut index, &mut parent);
                cmps.push((i, *op, v.clone()));
            }
        }
    }
    let mut bounds: BTreeMap<usize, ClassBounds> = BTreeMap::new();
    for (i, op, v) in cmps {
        let root = find(&mut parent, i);
        let b = bounds.entry(root).or_default();
        match op {
            BinOp::Eq => {
                tighten(&mut b.lo, v.clone(), false, true);
                tighten(&mut b.hi, v, false, false);
            }
            BinOp::NotEq => b.neq.push(v),
            BinOp::Gt => tighten(&mut b.lo, v, true, true),
            BinOp::GtEq => tighten(&mut b.lo, v, false, true),
            BinOp::Lt => tighten(&mut b.hi, v, true, false),
            BinOp::LtEq => tighten(&mut b.hi, v, false, false),
            _ => return None,
        }
    }

    // Pick a value per class.
    let mut solution: BTreeMap<BaseColumn, Value> = BTreeMap::new();
    let mut class_values: BTreeMap<usize, Value> = BTreeMap::new();
    for (ci, col) in cols.iter().enumerate() {
        let root = find(&mut parent, ci);
        let value = match class_values.get(&root) {
            Some(v) => v.clone(),
            None => {
                let v = pick_value(bounds.get(&root).cloned().unwrap_or_default())?;
                class_values.insert(root, v.clone());
                v
            }
        };
        solution.insert(col.clone(), value);
    }
    Some(solution)
}

fn tighten(slot: &mut Option<(Value, bool)>, v: Value, strict: bool, is_lo: bool) {
    let replace = match slot {
        None => true,
        Some((cur, cur_strict)) => match v.sql_cmp(cur) {
            Some(std::cmp::Ordering::Greater) => is_lo,
            Some(std::cmp::Ordering::Less) => !is_lo,
            Some(std::cmp::Ordering::Equal) => strict && !*cur_strict,
            None => false,
        },
    };
    if replace {
        *slot = Some((v, strict));
    }
}

/// Chooses a concrete value satisfying the bounds, avoiding disequalities.
fn pick_value(b: ClassBounds) -> Option<Value> {
    let candidates: Vec<Value> = match (&b.lo, &b.hi) {
        (None, None) => vec![Value::Int(0), Value::Int(1), Value::Int(2), Value::Str("w".into())],
        (Some((lo, strict)), None) => match lo {
            Value::Int(v) => vec![Value::Int(if *strict { v + 1 } else { *v }), Value::Int(v + 2)],
            Value::Float(v) => vec![Value::Float(v + 1.0), Value::Float(v + 2.0)],
            Value::Str(s) => {
                if *strict {
                    vec![Value::Str(format!("{s}z")), Value::Str(format!("{s}zz"))]
                } else {
                    vec![Value::Str(s.clone()), Value::Str(format!("{s}z"))]
                }
            }
            Value::Ts(t) => vec![Value::Ts(Timestamp(t.0 + 1)), Value::Ts(Timestamp(t.0 + 2))],
            Value::Bool(v) => vec![Value::Bool(*v), Value::Bool(true)],
            Value::Null => return None,
        },
        (None, Some((hi, strict))) => match hi {
            Value::Int(v) => vec![Value::Int(if *strict { v - 1 } else { *v }), Value::Int(v - 2)],
            Value::Float(v) => vec![Value::Float(v - 1.0), Value::Float(v - 2.0)],
            Value::Str(s) => {
                if *strict {
                    // Any strictly-smaller string; empty works unless s is empty.
                    if s.is_empty() {
                        return None;
                    }
                    vec![Value::Str(String::new())]
                } else {
                    vec![Value::Str(s.clone())]
                }
            }
            Value::Ts(t) => vec![Value::Ts(Timestamp(t.0 - 1)), Value::Ts(Timestamp(t.0 - 2))],
            Value::Bool(v) => vec![Value::Bool(*v), Value::Bool(false)],
            Value::Null => return None,
        },
        (Some((lo, lo_strict)), Some((hi, hi_strict))) => {
            // Feasibility first.
            match lo.sql_cmp(hi) {
                Some(std::cmp::Ordering::Greater) => return None,
                Some(std::cmp::Ordering::Equal) if *lo_strict || *hi_strict => return None,
                None => return None,
                _ => {}
            }
            match (lo, hi) {
                (Value::Int(a), Value::Int(bv)) => {
                    let start = if *lo_strict { a + 1 } else { *a };
                    let end = if *hi_strict { bv - 1 } else { *bv };
                    if start > end {
                        return None; // integer gap (dense-domain caveat handled)
                    }
                    (start..=end.min(start + 8)).map(Value::Int).collect()
                }
                (Value::Float(a), Value::Float(bv)) => vec![Value::Float((a + bv) / 2.0)],
                (Value::Int(a), Value::Float(bv)) => vec![Value::Float((*a as f64 + bv) / 2.0)],
                (Value::Float(a), Value::Int(bv)) => vec![Value::Float((a + *bv as f64) / 2.0)],
                (Value::Str(a), Value::Str(_)) if !*lo_strict => vec![Value::Str(a.clone())],
                (Value::Ts(a), Value::Ts(bv)) => {
                    let start = if *lo_strict { a.0 + 1 } else { a.0 };
                    let end = if *hi_strict { bv.0 - 1 } else { bv.0 };
                    if start > end {
                        return None;
                    }
                    vec![Value::Ts(Timestamp(start))]
                }
                _ => return None, // mixed / string-range: out of scope
            }
        }
    };
    candidates
        .into_iter()
        .find(|c| !b.neq.iter().any(|n| n.sql_cmp(c) == Some(std::cmp::Ordering::Equal)))
}

/// Decides weak-syntactic batch suspiciousness statically, returning a
/// verified witness instance when suspicious. `db` supplies only the
/// *catalog* (schemas); no data is read.
pub fn static_weak_syntactic(
    db: &Database,
    batch: &[Arc<LoggedQuery>],
    audit: &audex_sql::ast::AuditExpr,
) -> Result<StaticVerdict, AuditError> {
    static_weak_syntactic_governed(db, batch, audit, &Governor::unlimited())
}

/// [`static_weak_syntactic`] under a [`Governor`]: one step per batch query.
pub fn static_weak_syntactic_governed(
    db: &Database,
    batch: &[Arc<LoggedQuery>],
    audit: &audex_sql::ast::AuditExpr,
    governor: &Governor,
) -> Result<StaticVerdict, AuditError> {
    let audit_scope = AuditScope::resolve(db, &audit.from)?;
    let weak = weak_syntactic(audit.clone())?;
    let spec = normalize_with(&weak.audit, &audit_scope)?;
    let relevant: BTreeSet<BaseColumn> =
        spec.all_columns().iter().filter_map(|c| audit_scope.base_of_column(c)).collect();
    let audit_bases: BTreeSet<Ident> = audit_scope.bases().into_iter().collect();

    let audit_constraints = match &audit.selection {
        Some(p) => match extract_strict(p, &audit_scope) {
            Some(cs) => cs,
            None => return Ok(StaticVerdict::Unknown), // audit outside fragment
        },
        None => Vec::new(),
    };

    let mut saw_unknown = false;
    for q in batch {
        governor.tick(AuditPhase::StaticAnalysis)?;
        let Ok(q_scope) = AuditScope::resolve(db, &q.query().from) else {
            continue; // unknown tables: can never be suspicious
        };
        // Must share a table and access a relevant column — purely schematic.
        if !q_scope.entries().iter().any(|e| audit_bases.contains(&e.base)) {
            continue;
        }
        if accessed_base_columns(q, &q_scope).is_disjoint(&relevant) {
            continue;
        }
        let q_constraints = match &q.query().selection {
            Some(p) => match extract_strict(p, &q_scope) {
                Some(cs) => cs,
                None => {
                    saw_unknown = true;
                    continue;
                }
            },
            None => Vec::new(),
        };
        let mut all = audit_constraints
            .iter()
            .map(|c| match c {
                FragmentConstraint::ColEq(a, b) => FragmentConstraint::ColEq(a.clone(), b.clone()),
                FragmentConstraint::Cmp(c, op, v) => {
                    FragmentConstraint::Cmp(c.clone(), *op, v.clone())
                }
            })
            .collect::<Vec<_>>();
        all.extend(q_constraints);

        let Some(solution) = solve(&all) else { continue };

        // Build and *verify* the witness.
        if let Some(witness) = build_witness(db, &q_scope, &audit_scope, &solution) {
            if verify_witness(&witness, q, audit)? {
                return Ok(StaticVerdict::Suspicious { query: q.id, witness: Box::new(witness) });
            }
            // Verification failure means our solver over-promised (e.g.
            // type coercion subtleties); degrade honestly.
            saw_unknown = true;
        } else {
            saw_unknown = true;
        }
    }
    Ok(if saw_unknown { StaticVerdict::Unknown } else { StaticVerdict::NotSuspicious })
}

/// One row per base table mentioned by the query or the audit, with solved
/// values where constrained and type defaults elsewhere.
fn build_witness(
    db: &Database,
    q_scope: &AuditScope,
    audit_scope: &AuditScope,
    solution: &BTreeMap<BaseColumn, Value>,
) -> Option<Database> {
    let mut witness = Database::new();
    let mut bases: BTreeSet<Ident> = BTreeSet::new();
    for e in q_scope.entries().iter().chain(audit_scope.entries()) {
        bases.insert(e.base.clone());
    }
    // Create every table first: the database clock is monotonic, so all
    // creations happen at t=0 and all row insertions at t=1.
    for base in &bases {
        let schema = db.table(base)?.schema().clone();
        witness.create_table(base.clone(), schema, Timestamp(0)).ok()?;
    }
    for base in &bases {
        let schema: Schema = db.table(base)?.schema().clone();
        let row: Vec<Value> = schema
            .iter()
            .map(|(name, ty)| {
                solution.get(&(base.clone(), name.clone())).cloned().unwrap_or(match ty {
                    TypeName::Int => Value::Int(0),
                    TypeName::Float => Value::Float(0.0),
                    TypeName::Text => Value::Str("w".into()),
                    TypeName::Bool => Value::Bool(false),
                    TypeName::Timestamp => Value::Ts(Timestamp(0)),
                })
            })
            .collect();
        witness.insert(base, row, Timestamp(1)).ok()?;
    }
    Some(witness)
}

/// Runs the weak-syntactic notion dynamically on the witness.
fn verify_witness(
    witness: &Database,
    q: &LoggedQuery,
    audit: &audex_sql::ast::AuditExpr,
) -> Result<bool, AuditError> {
    let audit_scope = AuditScope::resolve(witness, &audit.from)?;
    let weak = weak_syntactic(audit.clone())?;
    let spec = normalize_with(&weak.audit, &audit_scope)?;
    let view = crate::target::compute_target_view(
        witness,
        audit,
        &audit_scope,
        &spec,
        &[Timestamp(1)],
        JoinStrategy::Auto,
    )?;
    let model =
        GranuleModel { spec, threshold: audex_sql::ast::Threshold::Count(1), indispensable: true };
    // Re-time the query to the witness instant.
    let mut q2 = (**{ &q }).clone();
    q2.executed_at = Timestamp(1);
    let evaluator = BatchEvaluator::new(witness, &audit_scope, &model, &view, JoinStrategy::Auto);
    let verdict = evaluator.evaluate(&[Arc::new(q2)])?;
    Ok(verdict.suspicious)
}

/// The sound static bound for *semantic* (data-dependent) notions: returns
/// [`StaticVerdict::NotSuspicious`] when no query passes candidacy (paper
/// Definition 1) — meaning no instance of the *current catalog and data*
/// could make the batch suspicious via the static tests — and
/// [`StaticVerdict::Unknown`] otherwise (the data decides; run the engine).
pub fn static_semantic_bound(
    db: &Database,
    batch: &[Arc<LoggedQuery>],
    audit: &audex_sql::ast::AuditExpr,
) -> Result<StaticVerdict, AuditError> {
    static_semantic_bound_governed(db, batch, audit, &Governor::unlimited())
}

/// [`static_semantic_bound`] under a [`Governor`]: one step per batch query.
pub fn static_semantic_bound_governed(
    db: &Database,
    batch: &[Arc<LoggedQuery>],
    audit: &audex_sql::ast::AuditExpr,
    governor: &Governor,
) -> Result<StaticVerdict, AuditError> {
    let audit_scope = AuditScope::resolve(db, &audit.from)?;
    let spec = normalize_with(&audit.audit, &audit_scope)?;
    let checker = CandidateChecker::new(&audit_scope, &spec, audit.selection.as_ref())?;
    for q in batch {
        governor.tick(AuditPhase::StaticAnalysis)?;
        if let Ok(q_scope) = AuditScope::resolve(db, &q.query().from) {
            if checker.is_candidate(q, &q_scope) {
                return Ok(StaticVerdict::Unknown);
            }
        }
    }
    Ok(StaticVerdict::NotSuspicious)
}

#[cfg(test)]
mod tests {
    use super::*;
    use audex_log::AccessContext;
    use audex_sql::parse_audit;
    use audex_sql::parse_query;

    fn catalog() -> Database {
        let mut db = Database::new();
        db.create_table(
            Ident::new("Patients"),
            Schema::of(&[
                ("pid", TypeName::Text),
                ("zipcode", TypeName::Text),
                ("disease", TypeName::Text),
                ("age", TypeName::Int),
            ]),
            Timestamp(0),
        )
        .unwrap();
        db
    }

    fn q(id: u64, sql: &str) -> Arc<LoggedQuery> {
        Arc::new(LoggedQuery::new(
            QueryId(id),
            parse_query(sql).unwrap(),
            sql.into(),
            Timestamp(5),
            AccessContext::new("u", "r", "p"),
        ))
    }

    #[test]
    fn consistent_predicates_yield_witness() {
        let db = catalog();
        let audit = parse_audit("AUDIT disease FROM Patients WHERE zipcode = '120016'").unwrap();
        let batch = vec![q(1, "SELECT disease FROM Patients WHERE age > 30")];
        let v = static_weak_syntactic(&db, &batch, &audit).unwrap();
        match v {
            StaticVerdict::Suspicious { query, witness } => {
                assert_eq!(query, QueryId(1));
                // The witness really contains a >30-year-old in 120016.
                let rs = witness
                    .at(Timestamp(1))
                    .query(
                        &parse_query(
                            "SELECT age FROM Patients WHERE zipcode = '120016' AND age > 30",
                        )
                        .unwrap(),
                    )
                    .unwrap();
                assert_eq!(rs.rows.len(), 1);
            }
            other => panic!("expected Suspicious, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_predicates_are_not_suspicious() {
        let db = catalog();
        let audit = parse_audit("AUDIT disease FROM Patients WHERE age < 30").unwrap();
        let batch = vec![q(1, "SELECT disease FROM Patients WHERE age > 40")];
        assert_eq!(
            static_weak_syntactic(&db, &batch, &audit).unwrap(),
            StaticVerdict::NotSuspicious
        );
    }

    #[test]
    fn integer_gap_is_detected() {
        // age > 29 AND age < 30 has no integer solution; over a dense domain
        // it would, but the INT column pins the domain — the picker returns
        // no witness and the verdict honestly degrades to NotSuspicious
        // because no other query exists.
        let db = catalog();
        let audit = parse_audit("AUDIT disease FROM Patients WHERE age > 29").unwrap();
        let batch = vec![q(1, "SELECT disease FROM Patients WHERE age < 30")];
        let v = static_weak_syntactic(&db, &batch, &audit).unwrap();
        assert_eq!(v, StaticVerdict::NotSuspicious);
    }

    #[test]
    fn column_disjoint_queries_are_not_suspicious() {
        let db = catalog();
        let audit = parse_audit("AUDIT disease FROM Patients").unwrap();
        // Accesses only pid — not in the weak-syntactic scheme set (disease
        // is the single audit column; no WHERE).
        let batch = vec![q(1, "SELECT pid FROM Patients")];
        assert_eq!(
            static_weak_syntactic(&db, &batch, &audit).unwrap(),
            StaticVerdict::NotSuspicious
        );
    }

    #[test]
    fn out_of_fragment_degrades_to_unknown() {
        let db = catalog();
        let audit = parse_audit("AUDIT disease FROM Patients WHERE age < 30").unwrap();
        let batch = vec![q(1, "SELECT disease FROM Patients WHERE age > 40 OR zipcode = '1'")];
        assert_eq!(static_weak_syntactic(&db, &batch, &audit).unwrap(), StaticVerdict::Unknown);
    }

    #[test]
    fn suspicious_beats_unknown_in_a_batch() {
        let db = catalog();
        let audit = parse_audit("AUDIT disease FROM Patients WHERE zipcode = '120016'").unwrap();
        let batch = vec![
            q(1, "SELECT disease FROM Patients WHERE age > 40 OR zipcode = '1'"), // unknown
            q(2, "SELECT disease FROM Patients WHERE age = 50"),                  // witnessable
        ];
        let v = static_weak_syntactic(&db, &batch, &audit).unwrap();
        match v {
            StaticVerdict::Suspicious { query, .. } => assert_eq!(query, QueryId(2)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn equality_chains_solve() {
        let mut db = catalog();
        db.create_table(
            Ident::new("Visits"),
            Schema::of(&[("pid", TypeName::Text), ("ward", TypeName::Text)]),
            Timestamp(0),
        )
        .unwrap();
        let audit = parse_audit(
            "AUDIT disease FROM Patients, Visits \
             WHERE Patients.pid = Visits.pid AND ward = 'W14'",
        )
        .unwrap();
        let batch = vec![q(1, "SELECT disease FROM Patients WHERE Patients.pid = 'p9'")];
        let v = static_weak_syntactic(&db, &batch, &audit).unwrap();
        match v {
            StaticVerdict::Suspicious { witness, .. } => {
                // The witness joins: same pid in both tables, ward W14.
                let rs = witness
                    .at(Timestamp(1))
                    .query(
                        &parse_query(
                            "SELECT ward FROM Patients, Visits \
                             WHERE Patients.pid = Visits.pid AND ward = 'W14' AND Patients.pid = 'p9'",
                        )
                        .unwrap(),
                    )
                    .unwrap();
                assert_eq!(rs.rows.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn semantic_bound_is_sound() {
        let db = catalog();
        let audit = parse_audit("AUDIT disease FROM Patients WHERE zipcode = '120016'").unwrap();
        // Candidate exists → unknown (data decides).
        let batch = vec![q(1, "SELECT disease FROM Patients")];
        assert_eq!(static_semantic_bound(&db, &batch, &audit).unwrap(), StaticVerdict::Unknown);
        // No candidate (contradiction) → provably not suspicious.
        let batch = vec![q(1, "SELECT disease FROM Patients WHERE zipcode = '999'")];
        assert_eq!(
            static_semantic_bound(&db, &batch, &audit).unwrap(),
            StaticVerdict::NotSuspicious
        );
    }

    #[test]
    fn not_eq_constraints_avoided_in_witness() {
        let db = catalog();
        let audit = parse_audit("AUDIT disease FROM Patients WHERE age >= 10").unwrap();
        let batch = vec![q(1, "SELECT disease FROM Patients WHERE age <> 10 AND age <= 12")];
        let v = static_weak_syntactic(&db, &batch, &audit).unwrap();
        match v {
            StaticVerdict::Suspicious { witness, .. } => {
                let rs = witness
                    .at(Timestamp(1))
                    .query(&parse_query("SELECT age FROM Patients").unwrap())
                    .unwrap();
                let age = &rs.rows[0][0];
                assert_ne!(age, &Value::Int(10));
            }
            other => panic!("{other:?}"),
        }
    }
}
