//! The audit-attribute specification algebra (paper §3.2, Table 6).
//!
//! An audit list is a sequence of mandatory `(…)` and optional `[…]` groups.
//! Semantically it is a monotone boolean formula over attribute accesses:
//! a mandatory group is a conjunction, an optional group a disjunction, and
//! the top-level sequence a conjunction. Normalization expands the formula
//! into its **antichain of minimal satisfying attribute sets** — the paper's
//! *granule schemes*. Because access is monotone (touching more columns
//! never un-trips a granule), the minimal sets characterize the notion
//! completely, and all seven structural rules of Table 6 fall out as
//! antichain equalities (each is a unit test below; confluence is
//! property-tested).

use audex_sql::ast::{AttrGroup, AttrItem, AttrNode, AttrSpec};
use audex_sql::Ident;
use std::collections::BTreeSet;
use std::fmt;

use crate::error::AuditError;

/// A fully resolved column: base table plus column name.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResolvedColumn {
    /// The table (as named in the audit's `FROM`).
    pub table: Ident,
    /// The column.
    pub column: Ident,
}

impl ResolvedColumn {
    /// Convenience constructor.
    pub fn new(table: impl Into<Ident>, column: impl Into<Ident>) -> Self {
        ResolvedColumn { table: table.into(), column: column.into() }
    }
}

impl fmt::Display for ResolvedColumn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

/// One granule scheme: a minimal set of columns whose joint access (within
/// one granule's tuples) makes a batch suspicious.
pub type Scheme = BTreeSet<ResolvedColumn>;

/// The normalized attribute specification: an antichain of minimal schemes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NormalizedSpec {
    schemes: Vec<Scheme>,
}

impl NormalizedSpec {
    /// The minimal schemes, in deterministic (lexicographic) order.
    pub fn schemes(&self) -> &[Scheme] {
        &self.schemes
    }

    /// Number of schemes.
    pub fn len(&self) -> usize {
        self.schemes.len()
    }

    /// True when the specification admits no scheme (empty audit list).
    pub fn is_empty(&self) -> bool {
        self.schemes.is_empty()
    }

    /// Every column mentioned by any scheme.
    pub fn all_columns(&self) -> BTreeSet<ResolvedColumn> {
        self.schemes.iter().flatten().cloned().collect()
    }

    /// True when a set of accessed columns satisfies at least one scheme.
    pub fn satisfied_by(&self, accessed: &BTreeSet<ResolvedColumn>) -> bool {
        self.schemes.iter().any(|s| s.is_subset(accessed))
    }
}

impl fmt::Display for NormalizedSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.schemes.iter().enumerate() {
            if i > 0 {
                f.write_str(" | ")?;
            }
            f.write_str("{")?;
            for (j, c) in s.iter().enumerate() {
                if j > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{c}")?;
            }
            f.write_str("}")?;
        }
        Ok(())
    }
}

/// Resolves attribute names against the audit's `FROM` tables and expands
/// the specification into its normalized scheme antichain.
///
/// `resolver` maps an [`AttrItem`] to concrete columns: it must resolve
/// unqualified names (erroring on ambiguity) and expand `*` to every column
/// of every `FROM` table. [`crate::catalog::AuditScope`] provides the
/// standard implementation backed by table schemas.
pub fn normalize_with(
    spec: &AttrSpec,
    resolver: &impl ColumnResolver,
) -> Result<NormalizedSpec, AuditError> {
    // The top-level sequence is a conjunction (Table 6 rule 2).
    let alts = expand_conjunction(&spec.nodes, resolver)?;
    Ok(NormalizedSpec { schemes: minimal_antichain(alts) })
}

/// Maps attribute items to resolved columns.
pub trait ColumnResolver {
    /// Resolves one (possibly qualified) column name.
    fn resolve(&self, col: &audex_sql::ColumnRef) -> Result<ResolvedColumn, AuditError>;
    /// Every column of every table in scope, for `*`.
    fn all_columns(&self) -> Vec<ResolvedColumn>;
}

fn expand_node(node: &AttrNode, resolver: &impl ColumnResolver) -> Result<Vec<Scheme>, AuditError> {
    match node {
        AttrNode::Item(AttrItem::Column(c)) => {
            let rc = resolver.resolve(c)?;
            Ok(vec![Scheme::from([rc])])
        }
        // A bare `*` (mandatory position): every column required.
        AttrNode::Item(AttrItem::Star) => {
            Ok(vec![resolver.all_columns().into_iter().collect::<Scheme>()])
        }
        AttrNode::Group(AttrGroup::Mandatory(members)) => expand_conjunction(members, resolver),
        AttrNode::Group(AttrGroup::Optional(members)) => {
            // Disjunction: union of member alternatives; `*` inside an
            // optional group contributes one alternative per column
            // (Fig. 4's `AUDIT [*]`).
            let mut alts = Vec::new();
            for m in members {
                match m {
                    AttrNode::Item(AttrItem::Star) => {
                        alts.extend(resolver.all_columns().into_iter().map(|c| Scheme::from([c])));
                    }
                    other => alts.extend(expand_node(other, resolver)?),
                }
            }
            Ok(alts)
        }
    }
}

fn expand_conjunction(
    nodes: &[AttrNode],
    resolver: &impl ColumnResolver,
) -> Result<Vec<Scheme>, AuditError> {
    let mut acc: Vec<Scheme> = vec![Scheme::new()];
    for node in nodes {
        // `*` directly inside a mandatory context spreads element-wise only
        // when it *is* the group; as a member it means "all columns".
        let alts = expand_node(node, resolver)?;
        if alts.is_empty() {
            return Ok(Vec::new());
        }
        let mut next = Vec::with_capacity(acc.len() * alts.len());
        for a in &acc {
            for b in &alts {
                let mut u = a.clone();
                u.extend(b.iter().cloned());
                next.push(u);
            }
        }
        acc = next;
    }
    // The empty conjunction (no nodes) yields one empty scheme; callers
    // treat an empty *audit list* as an error upstream.
    if nodes.is_empty() {
        return Ok(Vec::new());
    }
    Ok(acc)
}

/// Keeps only minimal sets, deduplicated, in deterministic order.
fn minimal_antichain(mut sets: Vec<Scheme>) -> Vec<Scheme> {
    sets.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    sets.dedup();
    let mut out: Vec<Scheme> = Vec::new();
    for s in sets {
        if !out.iter().any(|m| m.is_subset(&s)) {
            out.push(s);
        }
    }
    out.sort();
    out
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use audex_sql::parse_audit;

    /// A resolver over a fixed single-table universe `t.{a,b,c,d}`.
    pub(crate) struct FixedResolver(pub Vec<&'static str>);

    impl ColumnResolver for FixedResolver {
        fn resolve(&self, col: &audex_sql::ColumnRef) -> Result<ResolvedColumn, AuditError> {
            if self.0.iter().any(|c| Ident::new(*c) == col.column) {
                Ok(ResolvedColumn::new("t", col.column.clone()))
            } else {
                Err(AuditError::UnknownAuditColumn(col.column.value.clone()))
            }
        }
        fn all_columns(&self) -> Vec<ResolvedColumn> {
            self.0.iter().map(|c| ResolvedColumn::new("t", *c)).collect()
        }
    }

    fn norm(audit_list: &str) -> NormalizedSpec {
        let a = parse_audit(&format!("AUDIT {audit_list} FROM t")).unwrap();
        normalize_with(&a.audit, &FixedResolver(vec!["a", "b", "c", "d"])).unwrap()
    }

    fn schemes(audit_list: &str) -> Vec<Vec<&'static str>> {
        let n = norm(audit_list);
        let names = ["a", "b", "c", "d"];
        n.schemes()
            .iter()
            .map(|s| {
                let mut v: Vec<&'static str> = s
                    .iter()
                    .map(|c| *names.iter().find(|n| Ident::new(**n) == c.column).unwrap())
                    .collect();
                v.sort_unstable();
                v
            })
            .collect()
    }

    #[test]
    fn rule1_singleton_optional_equals_mandatory() {
        assert_eq!(norm("[a]"), norm("(a)"));
        assert_eq!(schemes("[a]"), vec![vec!["a"]]);
    }

    #[test]
    fn rule2_mandatory_sequence_merges() {
        assert_eq!(norm("(a)(b)"), norm("(a, b)"));
        assert_eq!(norm("(a, b)(c)"), norm("(a, b, c)"));
    }

    #[test]
    fn rule3_set_commutativity() {
        assert_eq!(norm("(a, b)"), norm("(b, a)"));
        assert_eq!(norm("[a, b]"), norm("[b, a]"));
    }

    #[test]
    fn rule4_two_singleton_optionals_compose() {
        assert_eq!(norm("[a][b]"), norm("(a, b)"));
    }

    #[test]
    fn rule5_sequence_commutativity() {
        assert_eq!(norm("[a, b][c, d]"), norm("[c, d][a, b]"));
        assert_eq!(norm("(a)(b)"), norm("(b)(a)"));
        assert_eq!(norm("(a)[b, c]"), norm("[b, c](a)"));
    }

    #[test]
    fn rule6_nesting_collapses() {
        assert_eq!(norm("[(a, b)]"), norm("(a, b)"));
        assert_eq!(norm("([a, b])"), norm("[a, b]"));
    }

    #[test]
    fn rule7_composition() {
        assert_eq!(norm("(a, b)[c]"), norm("(a, b, c)"));
    }

    #[test]
    fn paper_example_mixed_spec() {
        // §3.2: (a,b),[c,d] trips on {a,b,c} or {a,b,d}.
        assert_eq!(schemes("(a, b), [c, d]"), vec![vec!["a", "b", "c"], vec!["a", "b", "d"]]);
    }

    #[test]
    fn all_optional_is_one_scheme_per_attr() {
        assert_eq!(schemes("[a, b, c, d]"), vec![vec!["a"], vec!["b"], vec!["c"], vec!["d"]]);
    }

    #[test]
    fn all_mandatory_is_single_scheme() {
        assert_eq!(schemes("(a, b, c, d)"), vec![vec!["a", "b", "c", "d"]]);
    }

    #[test]
    fn bare_columns_are_mandatory() {
        // The Fig. 1 / Fig. 2 classic form.
        assert_eq!(schemes("a, b, c"), vec![vec!["a", "b", "c"]]);
    }

    #[test]
    fn optional_star_expands_per_column() {
        assert_eq!(schemes("[*]"), vec![vec!["a"], vec!["b"], vec!["c"], vec!["d"]]);
    }

    #[test]
    fn mandatory_star_requires_everything() {
        assert_eq!(schemes("*"), vec![vec!["a", "b", "c", "d"]]);
        assert_eq!(schemes("(*)"), vec![vec!["a", "b", "c", "d"]]);
    }

    #[test]
    fn two_optional_groups_cross() {
        assert_eq!(
            schemes("[a, b][c, d]"),
            vec![vec!["a", "c"], vec!["a", "d"], vec!["b", "c"], vec!["b", "d"]]
        );
    }

    #[test]
    fn redundant_supersets_are_pruned() {
        // [a, (a,b)] — the {a,b} alternative is subsumed by {a}.
        assert_eq!(schemes("[a, (a, b)]"), vec![vec!["a"]]);
    }

    #[test]
    fn duplicate_attrs_collapse() {
        assert_eq!(norm("(a, a)"), norm("(a)"));
        assert_eq!(norm("[a, a, b]"), norm("[a, b]"));
    }

    #[test]
    fn satisfied_by_checks_any_scheme() {
        let n = norm("(a, b), [c, d]");
        let acc = |cols: &[&str]| -> BTreeSet<ResolvedColumn> {
            cols.iter().map(|c| ResolvedColumn::new("t", *c)).collect()
        };
        assert!(n.satisfied_by(&acc(&["a", "b", "c"])));
        assert!(n.satisfied_by(&acc(&["a", "b", "d", "c"])));
        assert!(!n.satisfied_by(&acc(&["a", "b"])));
        assert!(!n.satisfied_by(&acc(&["c", "d"])));
    }

    #[test]
    fn unknown_column_errors() {
        let a = parse_audit("AUDIT nosuch FROM t").unwrap();
        assert!(normalize_with(&a.audit, &FixedResolver(vec!["a"])).is_err());
    }

    #[test]
    fn display_is_readable() {
        let n = norm("(a, b)");
        assert_eq!(n.to_string(), "{t.a, t.b}");
    }
}
