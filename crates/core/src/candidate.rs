//! Static (data-independent) candidate analysis — paper Definition 1.
//!
//! "A query Q is a candidate query with respect to an audit expression A if
//! Q can not be marked syntactically non-suspicious … query and audit
//! expression are not executed over any database instance."
//!
//! Following Agrawal et al., the audit engine first prunes the query log
//! with this analysis, then runs the (expensive) semantic evaluation only on
//! the survivors. The analysis here is **sound**: it returns "not a
//! candidate" only when the query provably cannot contribute to suspicion —
//! it shares no base table with the audit, or its predicate conjoined with
//! the audit's is unsatisfiable. Anything it cannot reason about
//! (disjunctions, LIKE, arithmetic) is conservatively treated as
//! satisfiable, and the classic column-overlap test lives in the stricter
//! single-query variant (see [`CandidateChecker::is_candidate_single`]).
//! Soundness — pruning never changes any audit report — is tested in the
//! integration suite against full semantic evaluation.

use audex_sql::ast::{BinOp, Expr, Literal};
use audex_sql::Ident;
use audex_storage::{Database, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use crate::attrspec::NormalizedSpec;
use crate::catalog::AuditScope;
use crate::error::AuditError;
use crate::governor::{AuditPhase, Governor};
use audex_log::{AccessedColumn, LoggedQuery, QueryId};

/// A column identified by `(base table, column)` — the namespace shared
/// between a query and an audit expression (backlog prefixes stripped).
pub type BaseColumn = (Ident, Ident);

/// Expands a query's accessed columns (`C_Q = C_OQ ∪ columns(P_Q)`, with
/// wildcards expanded against the schemas) into base-column identities.
pub fn accessed_base_columns(q: &LoggedQuery, q_scope: &AuditScope) -> BTreeSet<BaseColumn> {
    let mut out = BTreeSet::new();
    for ac in q.accessed_columns() {
        match ac {
            AccessedColumn::Column(c) => {
                if let Ok(rc) = crate::attrspec::ColumnResolver::resolve(q_scope, &c) {
                    if let Some(bc) = q_scope.base_of_column(&rc) {
                        out.insert(bc);
                    }
                }
            }
            AccessedColumn::AllColumns => {
                for e in q_scope.entries() {
                    for (name, _) in e.schema.iter() {
                        out.insert((e.base.clone(), name.clone()));
                    }
                }
            }
            AccessedColumn::AllOf(t) => {
                if let Some(e) = q_scope.entry(&t) {
                    for (name, _) in e.schema.iter() {
                        out.insert((e.base.clone(), name.clone()));
                    }
                }
            }
        }
    }
    out
}

/// The audit-side inputs to candidacy, precomputed once per audit.
pub struct CandidateChecker {
    audit_bases: BTreeSet<Ident>,
    relevant_columns: BTreeSet<BaseColumn>,
    audit_constraints: Vec<Constraint>,
}

impl CandidateChecker {
    /// Precomputes the audit's base tables, relevant columns (the union of
    /// all scheme columns), and normalized predicate constraints.
    pub fn new(
        audit_scope: &AuditScope,
        spec: &NormalizedSpec,
        audit_pred: Option<&Expr>,
    ) -> Result<Self, AuditError> {
        let audit_bases = audit_scope.bases().into_iter().collect();
        let relevant_columns =
            spec.all_columns().iter().filter_map(|c| audit_scope.base_of_column(c)).collect();
        let audit_constraints = match audit_pred {
            Some(p) => extract_constraints(p, audit_scope),
            None => Vec::new(),
        };
        Ok(CandidateChecker { audit_bases, relevant_columns, audit_constraints })
    }

    /// Paper Definition 1, generalized to the granule model: `true` unless
    /// the query provably cannot contribute to any granule access.
    ///
    /// Note that column overlap is deliberately *not* required here: under
    /// batch semantics (Definition 4) a query that accesses none of the
    /// audited columns can still join `Q'` by witnessing an indispensable
    /// tuple, so pruning it would change granule counts. The stricter
    /// [`CandidateChecker::is_candidate_single`] adds the classic
    /// column-overlap test of Agrawal et al., which is sound when each
    /// query is audited in isolation.
    pub fn is_candidate(&self, q: &LoggedQuery, q_scope: &AuditScope) -> bool {
        // (1) Must share a base table with the audit.
        if !q_scope.entries().iter().any(|e| self.audit_bases.contains(&e.base)) {
            return false;
        }
        // (2) P_Q ∧ P_A must be satisfiable.
        let mut constraints = self.audit_constraints.clone();
        if let Some(p) = &q.query().selection {
            constraints.extend(extract_constraints(p, q_scope));
        }
        satisfiable(&constraints)
    }

    /// Splits admitted log entries into static candidates and pruned ids
    /// (engine pipeline step 2), consulting `governor` once per entry. With
    /// `static_filter` off every entry is kept, so the split is free.
    #[allow(clippy::type_complexity)]
    pub fn partition(
        &self,
        db: &Database,
        entries: Vec<Arc<LoggedQuery>>,
        static_filter: bool,
        governor: &Governor,
    ) -> Result<(Vec<Arc<LoggedQuery>>, Vec<QueryId>), AuditError> {
        let mut candidates = Vec::with_capacity(entries.len());
        let mut pruned = Vec::new();
        for e in entries {
            governor.tick(AuditPhase::CandidateFilter)?;
            let keep = if static_filter {
                match AuditScope::resolve(db, &e.query().from) {
                    Ok(q_scope) => self.is_candidate(&e, &q_scope),
                    Err(_) => false, // references unknown tables: cannot match
                }
            } else {
                true
            };
            if keep {
                candidates.push(e);
            } else {
                pruned.push(e.id);
            }
        }
        Ok((candidates, pruned))
    }

    /// True when the query accesses at least one column some granule scheme
    /// needs (`C_Q ∩ relevant ≠ ∅`).
    pub fn accesses_relevant_column(&self, q: &LoggedQuery, q_scope: &AuditScope) -> bool {
        !accessed_base_columns(q, q_scope).is_disjoint(&self.relevant_columns)
    }

    /// The single-query candidacy test (Agrawal et al.): additionally
    /// requires column overlap. Sound for per-query (Definition 3) auditing
    /// — a lone query covering no scheme column can never be suspicious by
    /// itself — but NOT for batch granule counting (see
    /// [`CandidateChecker::is_candidate`]).
    pub fn is_candidate_single(&self, q: &LoggedQuery, q_scope: &AuditScope) -> bool {
        self.is_candidate(q, q_scope) && self.accesses_relevant_column(q, q_scope)
    }
}

/// A conjunct the solver understands.
#[derive(Debug, Clone)]
enum Constraint {
    /// `colA = colB`
    ColEq(BaseColumn, BaseColumn),
    /// `col op literal`
    Cmp(BaseColumn, BinOp, Value),
}

/// Extracts solver-friendly constraints from the top-level conjuncts of a
/// predicate; anything else is dropped (conservative).
fn extract_constraints(pred: &Expr, scope: &AuditScope) -> Vec<Constraint> {
    let mut out = Vec::new();
    for conj in split_and(pred) {
        extract_one(conj, scope, &mut out);
    }
    out
}

fn split_and(e: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        if let Expr::Binary { left, op: BinOp::And, right } = e {
            walk(left, out);
            walk(right, out);
        } else {
            out.push(e);
        }
    }
    walk(e, &mut out);
    out
}

fn column_of(e: &Expr, scope: &AuditScope) -> Option<BaseColumn> {
    if let Expr::Column(c) = e {
        let rc = crate::attrspec::ColumnResolver::resolve(scope, c).ok()?;
        scope.base_of_column(&rc)
    } else {
        None
    }
}

fn literal_of(e: &Expr) -> Option<Value> {
    match e {
        Expr::Literal(Literal::Int(v)) => Some(Value::Int(*v)),
        Expr::Literal(Literal::Float(v)) => Some(Value::Float(*v)),
        Expr::Literal(Literal::Str(s)) => Some(Value::Str(s.clone())),
        Expr::Literal(Literal::Bool(b)) => Some(Value::Bool(*b)),
        Expr::Literal(Literal::Ts(t)) => Some(Value::Ts(*t)),
        _ => None,
    }
}

fn extract_one(e: &Expr, scope: &AuditScope, out: &mut Vec<Constraint>) {
    match e {
        Expr::Binary { left, op, right } if op.is_comparison() => {
            match (column_of(left, scope), column_of(right, scope)) {
                (Some(a), Some(b)) if *op == BinOp::Eq => {
                    out.push(Constraint::ColEq(a, b));
                }
                // Other column-column comparisons: conservatively SAT.
                (Some(c), None) => {
                    if let Some(v) = literal_of(right) {
                        out.push(Constraint::Cmp(c, *op, v));
                    }
                }
                (None, Some(c)) => {
                    if let Some(v) = literal_of(left) {
                        out.push(Constraint::Cmp(c, op.flip(), v));
                    }
                }
                _ => {}
            }
        }
        Expr::Between { expr, low, high, negated: false } => {
            if let Some(c) = column_of(expr, scope) {
                if let Some(lo) = literal_of(low) {
                    out.push(Constraint::Cmp(c.clone(), BinOp::GtEq, lo));
                }
                if let Some(hi) = literal_of(high) {
                    out.push(Constraint::Cmp(c, BinOp::LtEq, hi));
                }
            }
        }
        Expr::InList { expr, list, negated: false } if list.len() == 1 => {
            if let (Some(c), Some(v)) = (column_of(expr, scope), literal_of(&list[0])) {
                out.push(Constraint::Cmp(c, BinOp::Eq, v));
            }
        }
        // Disjunctions, negations, LIKE, IS NULL, arithmetic: no constraint.
        _ => {}
    }
}

/// Bounds for one equivalence class of columns.
#[derive(Debug, Clone, Default)]
struct Bounds {
    lo: Option<(Value, bool)>, // (bound, strict)
    hi: Option<(Value, bool)>,
    neq: Vec<Value>,
}

/// Decides satisfiability of the conjunction; `true` on "don't know".
fn satisfiable(constraints: &[Constraint]) -> bool {
    // Union-find over columns.
    let mut cols: Vec<BaseColumn> = Vec::new();
    let mut index: BTreeMap<BaseColumn, usize> = BTreeMap::new();
    let intern =
        |c: &BaseColumn, cols: &mut Vec<BaseColumn>, index: &mut BTreeMap<BaseColumn, usize>| {
            *index.entry(c.clone()).or_insert_with(|| {
                cols.push(c.clone());
                cols.len() - 1
            })
        };
    let mut parent: Vec<usize> = Vec::new();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }

    // First pass: intern and union.
    let mut interned: Vec<(usize, Option<(BinOp, Value)>)> = Vec::new();
    for c in constraints {
        match c {
            Constraint::ColEq(a, b) => {
                let ia = intern(a, &mut cols, &mut index);
                let ib = intern(b, &mut cols, &mut index);
                while parent.len() < cols.len() {
                    parent.push(parent.len());
                }
                let (ra, rb) = (find(&mut parent, ia), find(&mut parent, ib));
                parent[ra] = rb;
            }
            Constraint::Cmp(col, op, v) => {
                let i = intern(col, &mut cols, &mut index);
                while parent.len() < cols.len() {
                    parent.push(parent.len());
                }
                interned.push((i, Some((*op, v.clone()))));
            }
        }
    }
    while parent.len() < cols.len() {
        parent.push(parent.len());
    }

    // Second pass: accumulate bounds per class representative.
    let mut bounds: BTreeMap<usize, Bounds> = BTreeMap::new();
    for (i, cmp) in interned {
        let root = find(&mut parent, i);
        let b = bounds.entry(root).or_default();
        let Some((op, v)) = cmp else { continue };
        match op {
            BinOp::Eq => {
                tighten_lo(b, v.clone(), false);
                tighten_hi(b, v, false);
            }
            BinOp::NotEq => b.neq.push(v),
            BinOp::Lt => tighten_hi(b, v, true),
            BinOp::LtEq => tighten_hi(b, v, false),
            BinOp::Gt => tighten_lo(b, v, true),
            BinOp::GtEq => tighten_lo(b, v, false),
            _ => {}
        }
    }

    // Check each class.
    for b in bounds.values() {
        if let (Some((lo, lo_strict)), Some((hi, hi_strict))) = (&b.lo, &b.hi) {
            match lo.sql_cmp(hi) {
                Some(std::cmp::Ordering::Greater) => return false,
                Some(std::cmp::Ordering::Equal) if *lo_strict || *hi_strict => return false,
                Some(std::cmp::Ordering::Equal)
                    // Pinned to a single value; any NotEq on it kills it.
                    if b.neq.iter().any(|v| v.sql_cmp(lo) == Some(std::cmp::Ordering::Equal)) => {
                        return false;
                    }
                _ => {}
            }
        }
    }
    true
}

fn tighten_lo(b: &mut Bounds, v: Value, strict: bool) {
    let replace = match &b.lo {
        None => true,
        Some((cur, cur_strict)) => match v.sql_cmp(cur) {
            Some(std::cmp::Ordering::Greater) => true,
            Some(std::cmp::Ordering::Equal) => strict && !cur_strict,
            _ => false,
        },
    };
    if replace {
        b.lo = Some((v, strict));
    }
}

fn tighten_hi(b: &mut Bounds, v: Value, strict: bool) {
    let replace = match &b.hi {
        None => true,
        Some((cur, cur_strict)) => match v.sql_cmp(cur) {
            Some(std::cmp::Ordering::Less) => true,
            Some(std::cmp::Ordering::Equal) => strict && !cur_strict,
            _ => false,
        },
    };
    if replace {
        b.hi = Some((v, strict));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrspec::normalize_with;
    use audex_log::AccessContext;
    use audex_log::QueryId;
    use audex_sql::ast::TypeName;
    use audex_sql::{parse_audit, parse_query, Timestamp};
    use audex_storage::{Database, Schema};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            Ident::new("Patients"),
            Schema::of(&[
                ("pid", TypeName::Text),
                ("zipcode", TypeName::Text),
                ("disease", TypeName::Text),
                ("age", TypeName::Int),
            ]),
            Timestamp(0),
        )
        .unwrap();
        db.create_table(
            Ident::new("Visits"),
            Schema::of(&[("pid", TypeName::Text), ("ward", TypeName::Text)]),
            Timestamp(0),
        )
        .unwrap();
        db
    }

    fn checker(db: &Database, audit_sql: &str) -> (CandidateChecker, AuditScope) {
        let audit = parse_audit(audit_sql).unwrap();
        let scope = AuditScope::resolve(db, &audit.from).unwrap();
        let spec = normalize_with(&audit.audit, &scope).unwrap();
        let c = CandidateChecker::new(&scope, &spec, audit.selection.as_ref()).unwrap();
        (c, scope)
    }

    fn logged(db: &Database, sql: &str) -> (LoggedQuery, AuditScope) {
        let query = parse_query(sql).unwrap();
        let scope = AuditScope::resolve(db, &query.from).unwrap();
        let q = LoggedQuery::new(
            QueryId(1),
            query,
            sql.into(),
            Timestamp(1),
            AccessContext::new("u", "r", "p"),
        );
        (q, scope)
    }

    fn is_candidate(audit_sql: &str, query_sql: &str) -> bool {
        let db = db();
        let (c, _) = checker(&db, audit_sql);
        let (q, qs) = logged(&db, query_sql);
        c.is_candidate(&q, &qs)
    }

    fn is_candidate_single(audit_sql: &str, query_sql: &str) -> bool {
        let db = db();
        let (c, _) = checker(&db, audit_sql);
        let (q, qs) = logged(&db, query_sql);
        c.is_candidate_single(&q, &qs)
    }

    #[test]
    fn shares_no_table_not_candidate() {
        assert!(!is_candidate(
            "AUDIT disease FROM Patients WHERE zipcode = '1'",
            "SELECT ward FROM Visits"
        ));
    }

    #[test]
    fn column_overlap_only_required_in_single_mode() {
        // Batch candidacy keeps the query: it can witness a tuple for the
        // batch even though it covers no audited column.
        assert!(is_candidate(
            "AUDIT disease FROM Patients",
            "SELECT age FROM Patients WHERE pid = 'p1'"
        ));
        // Single-query candidacy prunes it (C_Q ⊉ C_A).
        assert!(!is_candidate_single(
            "AUDIT disease FROM Patients",
            "SELECT age FROM Patients WHERE pid = 'p1'"
        ));
    }

    #[test]
    fn where_access_counts() {
        // disease appears only in the query's WHERE — still an access (C_Q).
        assert!(is_candidate_single(
            "AUDIT disease FROM Patients",
            "SELECT zipcode FROM Patients WHERE disease = 'cancer'"
        ));
    }

    #[test]
    fn wildcard_accesses_everything() {
        assert!(is_candidate_single("AUDIT disease FROM Patients", "SELECT * FROM Patients"));
    }

    #[test]
    fn contradictory_equalities_pruned() {
        assert!(!is_candidate(
            "AUDIT disease FROM Patients WHERE zipcode = '120016'",
            "SELECT disease FROM Patients WHERE zipcode = '145568'"
        ));
    }

    #[test]
    fn interval_contradiction_pruned() {
        assert!(!is_candidate(
            "AUDIT disease FROM Patients WHERE age < 30",
            "SELECT disease FROM Patients WHERE age > 40"
        ));
        assert!(is_candidate(
            "AUDIT disease FROM Patients WHERE age < 30",
            "SELECT disease FROM Patients WHERE age > 20"
        ));
    }

    #[test]
    fn strict_boundary_contradiction() {
        assert!(!is_candidate(
            "AUDIT disease FROM Patients WHERE age < 30",
            "SELECT disease FROM Patients WHERE age >= 30"
        ));
        assert!(is_candidate(
            "AUDIT disease FROM Patients WHERE age <= 30",
            "SELECT disease FROM Patients WHERE age >= 30"
        ));
    }

    #[test]
    fn not_eq_on_pinned_value() {
        assert!(!is_candidate(
            "AUDIT disease FROM Patients WHERE age = 30",
            "SELECT disease FROM Patients WHERE age <> 30"
        ));
        assert!(is_candidate(
            "AUDIT disease FROM Patients WHERE age = 30",
            "SELECT disease FROM Patients WHERE age <> 31"
        ));
    }

    #[test]
    fn equality_propagates_through_join_columns() {
        // Audit pins Patients.pid = 'p1'; query joins Visits.pid = Patients.pid
        // and pins Visits.pid = 'p2' → unsatisfiable.
        assert!(!is_candidate(
            "AUDIT disease FROM Patients WHERE Patients.pid = 'p1'",
            "SELECT disease FROM Patients, Visits \
             WHERE Patients.pid = Visits.pid AND Visits.pid = 'p2'"
        ));
        assert!(is_candidate(
            "AUDIT disease FROM Patients WHERE Patients.pid = 'p1'",
            "SELECT disease FROM Patients, Visits \
             WHERE Patients.pid = Visits.pid AND Visits.pid = 'p1'"
        ));
    }

    #[test]
    fn disjunctions_are_conservatively_satisfiable() {
        assert!(is_candidate(
            "AUDIT disease FROM Patients WHERE age < 30",
            "SELECT disease FROM Patients WHERE age > 40 OR zipcode = '1'"
        ));
    }

    #[test]
    fn numeric_string_coercion_in_solver() {
        // zipcode = '145568' vs zipcode = 145568 must be consistent (Fig. 3
        // writes the integer form).
        assert!(is_candidate(
            "AUDIT disease FROM Patients WHERE zipcode = '145568'",
            "SELECT disease FROM Patients WHERE zipcode = 145568"
        ));
        assert!(!is_candidate(
            "AUDIT disease FROM Patients WHERE zipcode = '145568'",
            "SELECT disease FROM Patients WHERE zipcode = 145569"
        ));
    }

    #[test]
    fn between_constraints() {
        assert!(!is_candidate(
            "AUDIT disease FROM Patients WHERE age BETWEEN 10 AND 20",
            "SELECT disease FROM Patients WHERE age BETWEEN 30 AND 40"
        ));
        assert!(is_candidate(
            "AUDIT disease FROM Patients WHERE age BETWEEN 10 AND 30",
            "SELECT disease FROM Patients WHERE age BETWEEN 25 AND 40"
        ));
    }

    #[test]
    fn backlog_audit_matches_base_query() {
        // An audit over b-Patients shares the base table with queries over
        // Patients.
        assert!(is_candidate("AUDIT disease FROM b-Patients", "SELECT disease FROM Patients"));
    }

    #[test]
    fn single_element_in_list_is_equality() {
        assert!(!is_candidate(
            "AUDIT disease FROM Patients WHERE zipcode IN ('1')",
            "SELECT disease FROM Patients WHERE zipcode = '2'"
        ));
    }
}
