//! Resource governance for audit runs.
//!
//! A production auditor cannot let one pathological expression — a huge
//! `DATA-INTERVAL`, a cross-product `FROM`, thousands of logged queries —
//! spin forever or take the whole batch down. The [`Governor`] is a cheap,
//! clonable handle carrying the run's resource envelope:
//!
//! * a **wall-clock deadline**,
//! * a **step budget** (steps are versions scanned, rows deduplicated,
//!   queries evaluated, facts tested — the unit loop bodies of the
//!   expensive phases),
//! * the existing **granule cap** (materialization guard), and
//! * a **cooperative cancellation flag** shareable across threads.
//!
//! The expensive phases — target-view computation, candidate selection,
//! suspicion testing, static batch analysis, touch-index construction —
//! consult the governor at their loop heads. A trip surfaces as a structured
//! [`AuditError`] naming the [`AuditPhase`] that stopped and how much work
//! completed, so a truncated audit is diagnosable, not mysterious.
//!
//! Shared step accounting: clones of one governor share the step counter and
//! the cancellation flag (both are `Arc`s), so a budget spans everything a
//! single audit call does, no matter how many components it touches.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::AuditError;

/// The audit pipeline phases the governor can interrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AuditPhase {
    /// Computing the target data view `U` over the `DATA-INTERVAL` versions.
    TargetView,
    /// Static candidate selection (paper Definition 1) over the admitted log.
    CandidateFilter,
    /// Indispensability / suspicion testing of the candidate batch.
    Suspicion,
    /// Per-query verdict refinement ([`crate::engine::AuditMode::PerQuery`]).
    PerQuery,
    /// Static (data-independent) batch analysis.
    StaticAnalysis,
    /// Building or probing the multi-audit touch index.
    Indexing,
}

impl fmt::Display for AuditPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AuditPhase::TargetView => "target-view computation",
            AuditPhase::CandidateFilter => "candidate filtering",
            AuditPhase::Suspicion => "suspicion evaluation",
            AuditPhase::PerQuery => "per-query evaluation",
            AuditPhase::StaticAnalysis => "static batch analysis",
            AuditPhase::Indexing => "touch-index construction",
        })
    }
}

/// Declarative resource limits — the governor's configuration, carried by
/// [`crate::engine::EngineOptions`]. `Copy`, so options stay cheap to pass
/// around; [`Governor::arm`] turns limits into a live governor when an audit
/// call starts (which is when the deadline clock begins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceLimits {
    /// Wall-clock budget for one audit call. `None` = unlimited.
    pub deadline: Option<Duration>,
    /// Step budget for one audit call. `None` = unlimited.
    pub max_steps: Option<u64>,
    /// Largest granule set the engine will evaluate or materialize.
    /// `None` = unlimited (rendering paths still take explicit caps).
    pub granule_limit: Option<u64>,
}

impl ResourceLimits {
    /// No limits at all.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// True when every limit is disabled.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_steps.is_none() && self.granule_limit.is_none()
    }
}

/// A live resource governor for one audit run. Cloning is cheap and clones
/// share the step counter and cancellation flag.
#[derive(Debug, Clone)]
pub struct Governor {
    /// Deadline instant plus the configured duration (for error reporting).
    deadline: Option<(Instant, Duration)>,
    max_steps: Option<u64>,
    granule_limit: Option<u64>,
    steps: Arc<AtomicU64>,
    cancel: Arc<AtomicBool>,
}

impl Default for Governor {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl Governor {
    /// A governor that never interrupts anything.
    pub fn unlimited() -> Self {
        Governor {
            deadline: None,
            max_steps: None,
            granule_limit: None,
            steps: Arc::new(AtomicU64::new(0)),
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Arms `limits` into a live governor: the deadline clock starts now.
    pub fn arm(limits: &ResourceLimits) -> Self {
        Governor {
            deadline: limits.deadline.map(|d| (Instant::now() + d, d)),
            max_steps: limits.max_steps,
            granule_limit: limits.granule_limit,
            steps: Arc::new(AtomicU64::new(0)),
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Replaces the deadline with `d` from now.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some((Instant::now() + d, d));
        self
    }

    /// Replaces the step budget.
    pub fn with_max_steps(mut self, limit: u64) -> Self {
        self.max_steps = Some(limit);
        self
    }

    /// Replaces the granule cap.
    pub fn with_granule_limit(mut self, limit: u64) -> Self {
        self.granule_limit = Some(limit);
        self
    }

    /// Uses `flag` as the cancellation flag (shared with the caller, who can
    /// set it from another thread to stop the audit cooperatively).
    pub fn with_cancel_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = flag;
        self
    }

    /// The shared cancellation flag. Setting it makes every in-flight check
    /// on this governor (and its clones) fail with [`AuditError::Cancelled`].
    pub fn cancel_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel)
    }

    /// Requests cooperative cancellation.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Steps spent so far across all clones.
    pub fn steps(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// The configured granule cap, if any.
    pub fn granule_limit(&self) -> Option<u64> {
        self.granule_limit
    }

    /// Checks the envelope without spending a step — for loop heads whose
    /// body cost is accounted elsewhere.
    pub fn check(&self, phase: AuditPhase) -> Result<(), AuditError> {
        let steps = self.steps.load(Ordering::Relaxed);
        if self.cancel.load(Ordering::Relaxed) {
            return Err(AuditError::Cancelled { phase, steps });
        }
        if let Some((at, configured)) = self.deadline {
            if Instant::now() >= at {
                return Err(AuditError::DeadlineExceeded {
                    phase,
                    steps,
                    deadline_ms: configured.as_millis() as u64,
                });
            }
        }
        if let Some(limit) = self.max_steps {
            if steps > limit {
                return Err(AuditError::BudgetExhausted { phase, steps, limit });
            }
        }
        Ok(())
    }

    /// Spends one step, then checks the envelope.
    pub fn tick(&self, phase: AuditPhase) -> Result<(), AuditError> {
        self.bump(phase, 1)
    }

    /// Spends `n` steps at once (row batches), then checks the envelope.
    pub fn bump(&self, phase: AuditPhase, n: u64) -> Result<(), AuditError> {
        self.steps.fetch_add(n, Ordering::Relaxed);
        self.check(phase)
    }

    /// Enforces the granule cap against a granule count, reusing the
    /// engine's existing [`AuditError::GranuleSetTooLarge`] guard.
    pub fn check_granules(&self, count: u128) -> Result<(), AuditError> {
        if let Some(limit) = self.granule_limit {
            if count > u128::from(limit) {
                return Err(AuditError::GranuleSetTooLarge { count, limit });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let gov = Governor::unlimited();
        for _ in 0..10_000 {
            gov.tick(AuditPhase::TargetView).unwrap();
        }
    }

    #[test]
    fn step_budget_trips_with_progress() {
        let gov = Governor::unlimited().with_max_steps(10);
        let mut trips = 0;
        for _ in 0..20 {
            if let Err(e) = gov.tick(AuditPhase::Suspicion) {
                trips += 1;
                match e {
                    AuditError::BudgetExhausted { phase, steps, limit } => {
                        assert_eq!(phase, AuditPhase::Suspicion);
                        assert!(steps >= limit);
                        assert_eq!(limit, 10);
                    }
                    other => panic!("unexpected error {other:?}"),
                }
            }
        }
        assert_eq!(trips, 10, "every step past the budget fails");
    }

    #[test]
    fn deadline_trips_after_expiry() {
        let gov = Governor::unlimited().with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        let err = gov.tick(AuditPhase::TargetView).unwrap_err();
        assert!(
            matches!(err, AuditError::DeadlineExceeded { phase: AuditPhase::TargetView, .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("target-view"), "{err}");
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let gov = Governor::unlimited();
        let clone = gov.clone();
        gov.cancel();
        let err = clone.check(AuditPhase::Indexing).unwrap_err();
        assert!(matches!(err, AuditError::Cancelled { phase: AuditPhase::Indexing, .. }));
    }

    #[test]
    fn clones_share_the_step_counter() {
        let gov = Governor::unlimited().with_max_steps(3);
        let clone = gov.clone();
        gov.bump(AuditPhase::TargetView, 2).unwrap();
        assert!(clone.bump(AuditPhase::Suspicion, 2).is_err());
    }

    #[test]
    fn granule_cap_reuses_existing_error() {
        let gov = Governor::unlimited().with_granule_limit(100);
        gov.check_granules(100).unwrap();
        let err = gov.check_granules(101).unwrap_err();
        assert!(matches!(err, AuditError::GranuleSetTooLarge { count: 101, limit: 100 }));
    }

    #[test]
    fn arm_starts_from_limits() {
        let limits = ResourceLimits {
            deadline: Some(Duration::from_secs(3600)),
            max_steps: Some(5),
            granule_limit: Some(7),
        };
        assert!(!limits.is_unlimited());
        let gov = Governor::arm(&limits);
        assert_eq!(gov.granule_limit(), Some(7));
        for _ in 0..5 {
            let _ = gov.tick(AuditPhase::CandidateFilter);
        }
        assert!(gov.tick(AuditPhase::CandidateFilter).is_err());
        assert!(ResourceLimits::unlimited().is_unlimited());
    }
}
