//! The prior-work suspicion notions (paper §2), both as **granule-model
//! encodings** (the paper's §3.2 expressibility claim) and as **direct
//! implementations** of their original definitions. The integration suite
//! checks the two agree on generated workloads — the reproduction of the
//! paper's central argument.

use audex_sql::ast::{AttrSpec, AuditExpr, Threshold};
use audex_sql::Timestamp;
use audex_storage::{Database, JoinStrategy};
use std::collections::BTreeSet;

use crate::attrspec::normalize_with;
use crate::candidate::accessed_base_columns;
use crate::catalog::{base_name, AuditScope};
use crate::error::AuditError;
use audex_log::{AccessedColumn, LoggedQuery};

/// Rewrites an audit expression into the **perfect-privacy** notion of
/// Miklau–Suciu \[17\] (paper Fig. 4): every cell of every `FROM` column is
/// its own granule — `AUDIT [*]`, `INDISPENSABLE true`, `THRESHOLD 1`.
pub fn perfect_privacy(mut audit: AuditExpr) -> AuditExpr {
    audit.audit = AttrSpec::optional_star();
    audit.indispensable = true;
    audit.threshold = Threshold::Count(1);
    audit
}

/// Rewrites into **weak syntactic suspicion** of Motwani et al. \[13\]
/// (paper Fig. 5): one singleton scheme per attribute of the audit list
/// *and* the `WHERE` clause — accessing any one of them (with consistent
/// predicates) suffices.
pub fn weak_syntactic(mut audit: AuditExpr) -> Result<AuditExpr, AuditError> {
    use audex_sql::ast::{AttrGroup, AttrItem, AttrNode};
    let mut items: Vec<AttrNode> = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let push = |c: audex_sql::ColumnRef, items: &mut Vec<AttrNode>, seen: &mut BTreeSet<String>| {
        let key = format!(
            "{}.{}",
            c.table.as_ref().map(|t| t.normalized()).unwrap_or_default(),
            c.column.normalized()
        );
        if seen.insert(key) {
            items.push(AttrNode::Item(AttrItem::Column(c)));
        }
    };
    // Existing audit attributes...
    fn walk(nodes: &[AttrNode], push: &mut impl FnMut(audex_sql::ColumnRef)) {
        for n in nodes {
            match n {
                AttrNode::Item(AttrItem::Column(c)) => push(c.clone()),
                AttrNode::Item(AttrItem::Star) => {}
                AttrNode::Group(AttrGroup::Mandatory(m) | AttrGroup::Optional(m)) => walk(m, push),
            }
        }
    }
    let has_star = audit.audit.nodes.iter().any(|n| {
        fn star(n: &AttrNode) -> bool {
            match n {
                AttrNode::Item(AttrItem::Star) => true,
                AttrNode::Item(_) => false,
                AttrNode::Group(AttrGroup::Mandatory(m) | AttrGroup::Optional(m)) => {
                    m.iter().any(star)
                }
            }
        }
        star(n)
    });
    walk(&audit.audit.nodes, &mut |c| push(c, &mut items, &mut seen));
    // ...plus every WHERE attribute (Definition 7 counts the audit list; the
    // paper's own Fig. 5 includes the predicate columns, which we follow).
    if let Some(pred) = &audit.selection {
        pred.walk_columns(&mut |c| push(c.clone(), &mut items, &mut seen));
    }
    if has_star {
        items.push(AttrNode::Item(AttrItem::Star));
    }
    if items.is_empty() {
        return Err(AuditError::EmptyAuditList);
    }
    audit.audit = AttrSpec { nodes: vec![AttrNode::Group(AttrGroup::Optional(items))] };
    audit.indispensable = true;
    audit.threshold = Threshold::Count(1);
    Ok(audit)
}

/// Rewrites into the **indispensable-tuple / strong semantic** notion of
/// Agrawal et al. \[12\] / Motwani et al. \[13\] (paper Fig. 6): all audit-list
/// attributes jointly mandatory.
pub fn semantic_indispensable(mut audit: AuditExpr) -> AuditExpr {
    use audex_sql::ast::{AttrGroup, AttrNode};
    // Wrap the existing list into one mandatory group (bare items already
    // are mandatory; groups keep their meaning under rule 6).
    let members = std::mem::take(&mut audit.audit.nodes);
    audit.audit = AttrSpec { nodes: vec![AttrNode::Group(AttrGroup::Mandatory(members))] };
    audit.indispensable = true;
    audit.threshold = Threshold::Count(1);
    audit
}

// ---------------------------------------------------------------------------
// Direct implementations of the original definitions (baselines).
// ---------------------------------------------------------------------------

/// Shared-indispensable-tuple test: do `q` and the audit keep a common
/// tuple of their common base tables? `q` is evaluated at its own execution
/// time; the audit tuples are the target view's (already computed over the
/// `DATA-INTERVAL` versions). This is the semantic core of Definitions 3/4/6.
pub fn shares_indispensable_tuple(
    db: &Database,
    q: &LoggedQuery,
    audit_scope: &AuditScope,
    view: &crate::target::TargetView,
) -> Result<bool, AuditError> {
    let q_bases: BTreeSet<audex_sql::Ident> =
        q.query().from.iter().map(|t| base_name(&t.name)).collect();
    let shared: Vec<&crate::catalog::ScopeEntry> =
        audit_scope.entries().iter().filter(|e| q_bases.contains(&e.base)).collect();
    if shared.is_empty() {
        return Ok(false);
    }
    let rs = match db.at(q.executed_at).query_with(q.query(), JoinStrategy::Auto) {
        Ok(rs) => rs,
        Err(_) => return Ok(false),
    };
    for lin in &rs.lineage {
        for fact in &view.facts {
            let all = shared.iter().all(|e| {
                let Some(tid) = fact.tid_of(&e.binding) else { return false };
                lin.iter().any(|le| base_name(&le.table) == e.base && le.tid == tid)
            });
            if all {
                return Ok(true);
            }
        }
    }
    Ok(false)
}

/// Definition 3 (Agrawal et al.): a single query is suspicious iff it is a
/// candidate (`C_Q ⊇ C_A`) and shares an indispensable tuple with the audit.
pub fn direct_semantic_single(
    db: &Database,
    q: &LoggedQuery,
    audit: &AuditExpr,
    now: Timestamp,
) -> Result<bool, AuditError> {
    let audit_scope = AuditScope::resolve(db, &audit.from)?;
    let spec = normalize_with(&audit.audit, &audit_scope)?;
    let q_scope = match AuditScope::resolve(db, &q.query().from) {
        Ok(s) => s,
        Err(_) => return Ok(false),
    };
    // C_Q ⊇ C_A: the audit-list columns (all schemes' union here — for the
    // classic form the list is a single mandatory scheme).
    let accessed = accessed_base_columns(q, &q_scope);
    let needed: BTreeSet<_> =
        spec.all_columns().iter().filter_map(|c| audit_scope.base_of_column(c)).collect();
    if !needed.is_subset(&accessed) {
        return Ok(false);
    }
    let (ds, de) = crate::limits::resolve_interval(audit.data_interval.as_ref(), now)?;
    let versions = db.versions_in(&audit_scope.bases(), ds, de);
    let view = crate::target::compute_target_view(
        db,
        audit,
        &audit_scope,
        &spec,
        &versions,
        JoinStrategy::Auto,
    )?;
    shares_indispensable_tuple(db, q, &audit_scope, &view)
}

/// Definition 4 (Motwani et al.): a batch is semantically suspicious iff the
/// queries sharing an indispensable tuple with the audit jointly access all
/// audit-list columns.
pub fn direct_semantic_batch(
    db: &Database,
    batch: &[std::sync::Arc<LoggedQuery>],
    audit: &AuditExpr,
    now: Timestamp,
) -> Result<bool, AuditError> {
    let audit_scope = AuditScope::resolve(db, &audit.from)?;
    let spec = normalize_with(&audit.audit, &audit_scope)?;
    let (ds, de) = crate::limits::resolve_interval(audit.data_interval.as_ref(), now)?;
    let versions = db.versions_in(&audit_scope.bases(), ds, de);
    let view = crate::target::compute_target_view(
        db,
        audit,
        &audit_scope,
        &spec,
        &versions,
        JoinStrategy::Auto,
    )?;

    let mut covered: BTreeSet<(audex_sql::Ident, audex_sql::Ident)> = BTreeSet::new();
    for q in batch {
        if shares_indispensable_tuple(db, q, &audit_scope, &view)? {
            if let Ok(q_scope) = AuditScope::resolve(db, &q.query().from) {
                covered.extend(accessed_base_columns(q, &q_scope));
            }
        }
    }
    let needed: BTreeSet<_> =
        spec.all_columns().iter().filter_map(|c| audit_scope.base_of_column(c)).collect();
    Ok(!needed.is_empty() && needed.is_subset(&covered))
}

/// Definition 7 (weak syntactic, instantiated on the actual database): the
/// batch contains a query sharing an indispensable tuple with the audit that
/// accesses at least one audit-list column.
pub fn direct_weak_syntactic(
    db: &Database,
    batch: &[std::sync::Arc<LoggedQuery>],
    audit: &AuditExpr,
    now: Timestamp,
) -> Result<bool, AuditError> {
    let audit_scope = AuditScope::resolve(db, &audit.from)?;
    let weak = weak_syntactic(audit.clone())?;
    let spec = normalize_with(&weak.audit, &audit_scope)?;
    let (ds, de) = crate::limits::resolve_interval(audit.data_interval.as_ref(), now)?;
    let versions = db.versions_in(&audit_scope.bases(), ds, de);
    let view = crate::target::compute_target_view(
        db,
        audit,
        &audit_scope,
        &spec,
        &versions,
        JoinStrategy::Auto,
    )?;
    let needed: BTreeSet<_> =
        spec.all_columns().iter().filter_map(|c| audit_scope.base_of_column(c)).collect();
    for q in batch {
        if shares_indispensable_tuple(db, q, &audit_scope, &view)? {
            if let Ok(q_scope) = AuditScope::resolve(db, &q.query().from) {
                let accessed = accessed_base_columns(q, &q_scope);
                if accessed.iter().any(|c| needed.contains(c)) {
                    return Ok(true);
                }
            }
        }
    }
    Ok(false)
}

/// Definition 6 (perfect privacy, instantiated): the batch contains a query
/// sharing *any* tuple with the audit (no column requirement beyond the
/// query referencing the tuple at all).
pub fn direct_perfect_privacy(
    db: &Database,
    batch: &[std::sync::Arc<LoggedQuery>],
    audit: &AuditExpr,
    now: Timestamp,
) -> Result<bool, AuditError> {
    let audit_scope = AuditScope::resolve(db, &audit.from)?;
    let pp = perfect_privacy(audit.clone());
    let spec = normalize_with(&pp.audit, &audit_scope)?;
    let (ds, de) = crate::limits::resolve_interval(audit.data_interval.as_ref(), now)?;
    let versions = db.versions_in(&audit_scope.bases(), ds, de);
    let view = crate::target::compute_target_view(
        db,
        audit,
        &audit_scope,
        &spec,
        &versions,
        JoinStrategy::Auto,
    )?;
    for q in batch {
        if shares_indispensable_tuple(db, q, &audit_scope, &view)? {
            // Any query keeping a tuple necessarily references some column
            // of it (or selects it wholesale) — Definition 6 needs no more.
            return Ok(true);
        }
    }
    Ok(false)
}

/// Expands a query's accessed columns for display purposes.
pub fn describe_accessed(q: &LoggedQuery) -> Vec<String> {
    q.accessed_columns()
        .into_iter()
        .map(|c| match c {
            AccessedColumn::Column(r) => r.to_string(),
            AccessedColumn::AllColumns => "*".to_string(),
            AccessedColumn::AllOf(t) => format!("{t}.*"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use audex_sql::parse_audit;

    #[test]
    fn perfect_privacy_rewrite() {
        let a =
            parse_audit("THRESHOLD 3 INDISPENSABLE false AUDIT (x, y) FROM t WHERE x = 1").unwrap();
        let pp = perfect_privacy(a);
        assert_eq!(pp.audit, AttrSpec::optional_star());
        assert!(pp.indispensable);
        assert_eq!(pp.threshold, Threshold::Count(1));
        assert!(pp.selection.is_some(), "WHERE is preserved");
    }

    #[test]
    fn weak_syntactic_rewrite_collects_audit_and_where_columns() {
        let a =
            parse_audit("AUDIT name, disease FROM t WHERE zipcode = '1' AND salary > 2").unwrap();
        let w = weak_syntactic(a).unwrap();
        match &w.audit.nodes[0] {
            audex_sql::ast::AttrNode::Group(audex_sql::ast::AttrGroup::Optional(m)) => {
                assert_eq!(m.len(), 4); // name, disease, zipcode, salary
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn weak_syntactic_dedupes() {
        let a = parse_audit("AUDIT name FROM t WHERE name = 'x'").unwrap();
        let w = weak_syntactic(a).unwrap();
        match &w.audit.nodes[0] {
            audex_sql::ast::AttrNode::Group(audex_sql::ast::AttrGroup::Optional(m)) => {
                assert_eq!(m.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn semantic_rewrite_wraps_mandatory() {
        let a = parse_audit("AUDIT name, disease FROM t").unwrap();
        let s = semantic_indispensable(a);
        assert!(matches!(
            &s.audit.nodes[0],
            audex_sql::ast::AttrNode::Group(audex_sql::ast::AttrGroup::Mandatory(m)) if m.len() == 2
        ));
    }
}
