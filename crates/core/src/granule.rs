//! Suspicion granules (paper §3.2).
//!
//! A suspicion notion "defines a set of suspicion granules G ... such that
//! if a batch of queries Q accesses any granule o ∈ G, Q is marked
//! suspicious". A granule is determined by (i) a *scheme* (which columns),
//! (ii) a THRESHOLD-sized subset of the target view's tuples, and (iii) the
//! INDISPENSABLE flag (whether tuple ids — and hence predicate consistency —
//! are part of the granule).
//!
//! For a target view with `n` facts and threshold `k` there are
//! `|schemes| · C(n,k)` granules; counting is exact ([`GranuleModel::count`])
//! and enumeration is lazy, with a guarded materializer for display.

use audex_sql::ast::Threshold;

use crate::attrspec::{NormalizedSpec, ResolvedColumn, Scheme};
use crate::error::AuditError;
use crate::target::TargetView;

/// The granule-generating part of a suspicion notion.
#[derive(Debug, Clone)]
pub struct GranuleModel {
    /// The scheme antichain from the AUDIT clause.
    pub spec: NormalizedSpec,
    /// Tuples per granule.
    pub threshold: Threshold,
    /// Whether granules carry tuple ids (access-by-indispensability) or only
    /// values (access-by-content).
    pub indispensable: bool,
}

/// One materialized granule: a scheme plus the indices (into
/// [`TargetView::facts`]) of its tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Granule {
    /// Index of the scheme in the model's antichain.
    pub scheme_idx: usize,
    /// Fact indices, ascending.
    pub facts: Vec<usize>,
}

/// `C(n, k)` without overflow (saturating at `u128::MAX`).
pub fn binomial(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((n - i) as u128) / (i as u128 + 1);
    }
    acc
}

impl GranuleModel {
    /// Effective tuples-per-granule for a view of `n` facts.
    pub fn k_for(&self, n: usize) -> u64 {
        match self.threshold {
            Threshold::Count(k) => k,
            Threshold::All => n as u64,
        }
    }

    /// Exact granule count for a view of `n` facts.
    pub fn count(&self, n: usize) -> u128 {
        (self.spec.len() as u128).saturating_mul(binomial(n as u64, self.k_for(n)))
    }

    /// Lazily enumerates all granules of `view`.
    pub fn enumerate<'a>(&'a self, view: &'a TargetView) -> impl Iterator<Item = Granule> + 'a {
        let n = view.len();
        let k = self.k_for(n) as usize;
        self.spec.schemes().iter().enumerate().flat_map(move |(si, _)| {
            KSubsets::new(n, k).map(move |facts| Granule { scheme_idx: si, facts })
        })
    }

    /// Materializes all granules, refusing when there are more than `limit`.
    pub fn materialize(&self, view: &TargetView, limit: u64) -> Result<Vec<Granule>, AuditError> {
        let count = self.count(view.len());
        if count > limit as u128 {
            return Err(AuditError::GranuleSetTooLarge { count, limit });
        }
        Ok(self.enumerate(view).collect())
    }

    /// The scheme of a granule.
    pub fn scheme_of(&self, g: &Granule) -> &Scheme {
        &self.spec.schemes()[g.scheme_idx]
    }

    /// Renders a granule the way the paper writes them: the tuple ids of the
    /// tables contributing the scheme's columns (when INDISPENSABLE), then
    /// the scheme's values, e.g. `(t12,t22,Reku,diabetic,A2)` (Fig. 6).
    /// Multi-tuple granules (THRESHOLD > 1) join their tuples with `;`.
    pub fn render(&self, g: &Granule, view: &TargetView) -> String {
        let scheme = self.scheme_of(g);
        // Column display order: the view's order restricted to the scheme.
        let ordered: Vec<&ResolvedColumn> =
            view.columns.iter().filter(|c| scheme.contains(*c)).collect();
        let mut parts: Vec<String> = Vec::new();
        for &fi in &g.facts {
            let fact = &view.facts[fi];
            let mut cells: Vec<String> = Vec::new();
            if self.indispensable {
                // Tids of bindings contributing at least one scheme column,
                // in FROM order.
                for (binding, tid) in &fact.tids {
                    if ordered.iter().any(|c| &c.table == binding) {
                        cells.push(tid.to_string());
                    }
                }
            }
            for c in &ordered {
                if let Some(v) = fact.values.get(*c) {
                    cells.push(v.to_string());
                }
            }
            parts.push(format!("({})", cells.join(",")));
        }
        parts.join(";")
    }

    /// Renders the full granule set `G = {…}` (paper Figs. 4–6). Intended
    /// for paper-scale views; guarded by `limit`.
    pub fn render_set(&self, view: &TargetView, limit: u64) -> Result<String, AuditError> {
        let granules = self.materialize(view, limit)?;
        let mut items: Vec<String> = granules.iter().map(|g| self.render(g, view)).collect();
        // Deduplicate renderings (two schemes can render identically when a
        // value column repeats).
        items.dedup();
        Ok(format!("{{{}}}", items.join(", ")))
    }
}

/// Iterator over all k-subsets of `0..n` in lexicographic order.
struct KSubsets {
    n: usize,
    k: usize,
    cur: Option<Vec<usize>>,
}

impl KSubsets {
    fn new(n: usize, k: usize) -> Self {
        let cur = if k <= n { Some((0..k).collect()) } else { None };
        KSubsets { n, k, cur }
    }
}

impl Iterator for KSubsets {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let cur = self.cur.as_mut()?;
        let out = cur.clone();
        // Advance to the next combination.
        if self.k == 0 {
            self.cur = None;
            return Some(out);
        }
        let mut i = self.k;
        loop {
            if i == 0 {
                self.cur = None;
                break;
            }
            i -= 1;
            if cur[i] < self.n - self.k + i {
                cur[i] += 1;
                for j in i + 1..self.k {
                    cur[j] = cur[j - 1] + 1;
                }
                break;
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrspec::{normalize_with, tests::FixedResolver};
    use audex_sql::parse_audit;
    use audex_sql::{Ident, Timestamp};
    use audex_storage::{Tid, Value};
    use std::collections::BTreeMap;

    fn spec(audit_list: &str) -> NormalizedSpec {
        let a = parse_audit(&format!("AUDIT {audit_list} FROM t")).unwrap();
        normalize_with(&a.audit, &FixedResolver(vec!["a", "b", "c", "d"])).unwrap()
    }

    fn view(n: usize) -> TargetView {
        let col = ResolvedColumn::new("t", "a");
        let facts = (0..n)
            .map(|i| crate::target::UFact {
                tids: vec![(Ident::new("t"), Tid(i as u64 + 1))],
                values: BTreeMap::from([(col.clone(), Value::Int(i as i64))]),
                first_seen: Timestamp(0),
            })
            .collect();
        TargetView { columns: vec![col], facts, versions: vec![Timestamp(0)] }
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(4, 2), 6);
        assert_eq!(binomial(10, 0), 1);
        assert_eq!(binomial(10, 10), 1);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(52, 5), 2_598_960);
        // Saturation, not overflow.
        assert!(binomial(200, 100) > 0);
    }

    #[test]
    fn count_is_schemes_times_choose() {
        let m = GranuleModel {
            spec: spec("[a, b]"),
            threshold: Threshold::Count(2),
            indispensable: true,
        };
        assert_eq!(m.count(4), 2 * 6);
        let all =
            GranuleModel { spec: spec("(a)"), threshold: Threshold::All, indispensable: true };
        assert_eq!(all.count(4), 1);
    }

    #[test]
    fn enumerate_matches_count() {
        let m = GranuleModel {
            spec: spec("[a, b, c]"),
            threshold: Threshold::Count(2),
            indispensable: true,
        };
        let v = view(5);
        assert_eq!(m.enumerate(&v).count() as u128, m.count(5));
    }

    #[test]
    fn k_subsets_lexicographic() {
        let subs: Vec<Vec<usize>> = KSubsets::new(4, 2).collect();
        assert_eq!(
            subs,
            vec![vec![0, 1], vec![0, 2], vec![0, 3], vec![1, 2], vec![1, 3], vec![2, 3],]
        );
    }

    #[test]
    fn k_equals_n_single_granule() {
        let subs: Vec<Vec<usize>> = KSubsets::new(3, 3).collect();
        assert_eq!(subs, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn k_greater_than_n_is_empty() {
        assert_eq!(KSubsets::new(2, 3).count(), 0);
    }

    #[test]
    fn k_zero_yields_empty_set_once() {
        let subs: Vec<Vec<usize>> = KSubsets::new(3, 0).collect();
        assert_eq!(subs, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn materialize_guards_size() {
        let m = GranuleModel {
            spec: spec("[a, b]"),
            threshold: Threshold::Count(2),
            indispensable: true,
        };
        let v = view(30);
        assert!(m.materialize(&v, 10).is_err());
        assert_eq!(m.materialize(&v, 10_000).unwrap().len(), 2 * 435);
    }

    #[test]
    fn render_includes_tid_when_indispensable() {
        let m =
            GranuleModel { spec: spec("(a)"), threshold: Threshold::Count(1), indispensable: true };
        let v = view(2);
        let gs = m.materialize(&v, 100).unwrap();
        assert_eq!(m.render(&gs[0], &v), "(t1,0)");
        let m2 = GranuleModel {
            spec: spec("(a)"),
            threshold: Threshold::Count(1),
            indispensable: false,
        };
        assert_eq!(m2.render(&gs[0], &v), "(0)");
    }

    #[test]
    fn render_set_braces() {
        let m =
            GranuleModel { spec: spec("(a)"), threshold: Threshold::Count(1), indispensable: true };
        let v = view(2);
        assert_eq!(m.render_set(&v, 100).unwrap(), "{(t1,0), (t2,1)}");
    }

    #[test]
    fn multi_tuple_granule_renders_with_semicolons() {
        let m =
            GranuleModel { spec: spec("(a)"), threshold: Threshold::Count(2), indispensable: true };
        let v = view(2);
        let gs = m.materialize(&v, 100).unwrap();
        assert_eq!(m.render(&gs[0], &v), "(t1,0);(t2,1)");
    }
}
