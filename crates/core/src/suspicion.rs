//! Granule accessibility and batch suspicion evaluation (paper §3.2).
//!
//! **INDISPENSABLE = true.** A granule carries tuple ids; it is accessed
//! when every one of its tuples is *indispensable* (Definition 2) to some
//! query of the batch — witnessed by the tuple appearing in the lineage of
//! the query evaluated at its own execution time, the backlog methodology of
//! \[12\] — and the batch's queries jointly access every column of the
//! granule's scheme. With scheme = the whole audit list and THRESHOLD 1
//! this is exactly Motwani et al.'s batch semantic suspicion (Definition 4);
//! with per-column schemes it is weak syntactic suspicion / perfect privacy
//! (see [`crate::notions`]).
//!
//! **INDISPENSABLE = false.** A granule carries only values; it is accessed
//! when the batch's *result sets* contain the granule's values on the
//! scheme's columns ("the batch has accessed an information which contains
//! tuples similar to the ones present in the granule"). Exposure is
//! computed row-by-row per query and unioned across the batch — a sound
//! over-approximation of value disclosure.
//!
//! Neither mode materializes granules: for each scheme the evaluator counts
//! qualifying facts `m` and adds `C(m, k)` accessed granules.

use audex_sql::Ident;
use audex_storage::{Database, JoinStrategy, ResultSet, Tid};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use crate::attrspec::ResolvedColumn;
use crate::candidate::{accessed_base_columns, BaseColumn};
use crate::catalog::AuditScope;
use crate::error::AuditError;
use crate::governor::{AuditPhase, Governor};
use crate::granule::{binomial, GranuleModel};
use crate::target::TargetView;
use audex_log::{LoggedQuery, QueryId};

/// What one query contributed to the audit.
#[derive(Debug, Clone, Default)]
pub struct QueryContribution {
    /// Facts of `U` this query shares an indispensable tuple with.
    pub touched_facts: BTreeSet<usize>,
    /// Base columns the query accessed (`C_Q`, wildcard-expanded).
    pub covered_columns: BTreeSet<BaseColumn>,
    /// Value mode: per fact, the audit columns whose values the query's
    /// result set revealed.
    pub exposed: BTreeMap<usize, BTreeSet<ResolvedColumn>>,
}

impl QueryContribution {
    /// True when the query contributed nothing at all.
    pub fn is_empty(&self) -> bool {
        self.touched_facts.is_empty() && self.exposed.is_empty()
    }
}

/// The outcome of evaluating a batch against one audit expression.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchVerdict {
    /// Whether any granule was accessed.
    pub suspicious: bool,
    /// Number of accessed granules.
    pub accessed_granules: u128,
    /// Total granule count (`|schemes| · C(n, k)`).
    pub total_granules: u128,
    /// `accessed / total` (0 when there are no granules) — the suspicion
    /// degree the paper's §4 proposes for online ranking.
    pub degree: f64,
    /// Accessed-granule count per scheme (parallel to the model's schemes).
    pub per_scheme_accessed: Vec<u128>,
    /// Queries that contributed to disclosure: they shared an indispensable
    /// tuple (or exposed a value) **and** accessed at least one column some
    /// scheme needs. These are the queries an auditor should review.
    pub contributing: Vec<QueryId>,
    /// Queries that only *witnessed* tuples (shared an indispensable tuple
    /// without touching any audited column). They enter Definition 4's `Q'`
    /// — their tuples count toward granule accessibility — but reveal no
    /// audited attribute themselves.
    pub witnesses: Vec<QueryId>,
    /// Queries that could not be evaluated (parse/scope/execution errors);
    /// they are conservatively reported rather than silently dropped.
    pub skipped: Vec<QueryId>,
}

/// Evaluates batches of logged queries against one prepared audit.
pub struct BatchEvaluator<'a> {
    db: &'a Database,
    scope: &'a AuditScope,
    model: &'a GranuleModel,
    view: &'a TargetView,
    strategy: JoinStrategy,
    governor: Governor,
    /// Worker threads for batch evaluation; `1` = sequential.
    parallelism: usize,
    /// (base, column) → audit view columns with that identity.
    columns_by_base: BTreeMap<BaseColumn, Vec<ResolvedColumn>>,
}

impl<'a> BatchEvaluator<'a> {
    /// Prepares an evaluator for one audit.
    pub fn new(
        db: &'a Database,
        scope: &'a AuditScope,
        model: &'a GranuleModel,
        view: &'a TargetView,
        strategy: JoinStrategy,
    ) -> Self {
        let mut columns_by_base: BTreeMap<BaseColumn, Vec<ResolvedColumn>> = BTreeMap::new();
        for c in &view.columns {
            if let Some(bc) = scope.base_of_column(c) {
                columns_by_base.entry(bc).or_default().push(c.clone());
            }
        }
        BatchEvaluator {
            db,
            scope,
            model,
            view,
            strategy,
            governor: Governor::unlimited(),
            parallelism: 1,
            columns_by_base,
        }
    }

    /// Puts the evaluator under `governor`: the batch and fact loops then
    /// consult it and evaluation stops with a governor error when it trips.
    pub fn with_governor(mut self, governor: Governor) -> Self {
        self.governor = governor;
        self
    }

    /// Sets the worker-thread count for [`BatchEvaluator::evaluate`]. `1`
    /// (the default) keeps the exact sequential path.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.max(1);
        self
    }

    /// Computes one query's contribution, or `None` when the query cannot be
    /// evaluated (unknown tables, execution error). Governor trips are
    /// swallowed here too; use [`BatchEvaluator::try_contribution`] to see
    /// them.
    pub fn contribution(&self, q: &LoggedQuery) -> Option<QueryContribution> {
        self.try_contribution(q).ok().flatten()
    }

    /// Computes one query's contribution. `Ok(None)` means the query itself
    /// cannot be evaluated (unknown tables, execution error) and should be
    /// reported as skipped; `Err` means the governor stopped the audit.
    pub fn try_contribution(
        &self,
        q: &LoggedQuery,
    ) -> Result<Option<QueryContribution>, AuditError> {
        let mut shared = SharedQueryState::new(self.db, q);
        // A throwaway probe cache: building a map costs exactly what the
        // old per-fact loop cost, so the one-shot path never regresses.
        let mut probe = FactProbeCache::default();
        self.try_contribution_with(q, &mut shared, &mut probe)
    }

    /// [`BatchEvaluator::try_contribution`] with the per-query work hoisted
    /// into `shared`: scope resolution, accessed columns, the executed
    /// result set, and its lineage products are computed once and reused by
    /// every audit evaluated against the same logged query. `probe` is the
    /// audit-side dual — fact-probe maps that outlive the query and are
    /// reused across every observation of the same audit. Produces
    /// bit-identical contributions to the unshared path.
    pub(crate) fn try_contribution_with(
        &self,
        q: &LoggedQuery,
        shared: &mut SharedQueryState,
        probe: &mut FactProbeCache,
    ) -> Result<Option<QueryContribution>, AuditError> {
        let Some(q_scope) = shared.q_scope.as_ref() else {
            return Ok(None);
        };
        let mut contrib = QueryContribution {
            covered_columns: shared.covered_columns.clone(),
            ..Default::default()
        };

        // Which audit bindings can this query's tables witness?
        let q_bases: BTreeSet<&Ident> = q_scope.entries().iter().map(|e| &e.base).collect();
        let shared_bindings: Vec<Ident> = self
            .scope
            .entries()
            .iter()
            .filter(|e| q_bases.contains(&e.base))
            .map(|e| e.binding.clone())
            .collect();
        if shared_bindings.is_empty() {
            return Ok(Some(contrib)); // no tuples can be shared
        }
        let out_cols =
            if self.model.indispensable { Vec::new() } else { self.out_cols(q, q_scope) };

        let Some(exec) = shared.ensure_exec(self.db, q, self.strategy) else {
            return Ok(None);
        };

        if self.model.indispensable {
            let binding_refs: Vec<&Ident> = shared_bindings.iter().collect();
            // The covered tid-tuples over the shared bindings, so each fact
            // probes a hash set in O(1); shared across audits with the same
            // base-table signature.
            let covered = exec.covered_for(&binding_refs, self.scope);
            // The dual map — fact tid-tuple → fact indices — is built once
            // per (audit, signature) and cached in `probe`, so matching
            // costs O(min(|covered|, |distinct fact tuples|)) instead of a
            // per-fact scan on every query. Joining the smaller side keeps
            // the innocent full-scan class (huge `covered`, small view)
            // and the point-query class (tiny `covered`) both cheap.
            let map = probe.map_for(&binding_refs, self.scope, self.view, &self.governor)?;
            if covered.len() <= map.len() {
                for key in covered.iter() {
                    self.governor.tick(AuditPhase::Suspicion)?;
                    if let Some(fis) = map.get(key) {
                        contrib.touched_facts.extend(fis.iter().copied());
                    }
                }
            } else {
                for (key, fis) in map.iter() {
                    self.governor.tick(AuditPhase::Suspicion)?;
                    if covered.contains(key) {
                        contrib.touched_facts.extend(fis.iter().copied());
                    }
                }
            }
        } else if !out_cols.is_empty() {
            for row in &exec.rs.rows {
                self.governor.bump(AuditPhase::Suspicion, self.view.facts.len() as u64)?;
                for (fi, fact) in self.view.facts.iter().enumerate() {
                    for (ri, audit_cols) in &out_cols {
                        for ac in audit_cols {
                            if let Some(fv) = fact.values.get(ac) {
                                if row.get(*ri).is_some_and(|v| v.grouping_eq(fv)) {
                                    contrib.exposed.entry(fi).or_default().insert(ac.clone());
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(Some(contrib))
    }

    /// Value mode: resolves plain-column projection items to audit view
    /// columns (position `ri` in the result row → audited columns).
    fn out_cols(&self, q: &LoggedQuery, q_scope: &AuditScope) -> Vec<(usize, Vec<ResolvedColumn>)> {
        let mut out_cols: Vec<(usize, Vec<ResolvedColumn>)> = Vec::new();
        let mut out_idx = 0usize;
        for item in &q.query().projection {
            match item {
                audex_sql::ast::SelectItem::Wildcard => {
                    for e in q_scope.entries() {
                        for (name, _) in e.schema.iter() {
                            self.push_out_col(&mut out_cols, out_idx, e, name);
                            out_idx += 1;
                        }
                    }
                }
                audex_sql::ast::SelectItem::QualifiedWildcard(t) => {
                    if let Some(e) = q_scope.entry(t) {
                        for (name, _) in e.schema.iter() {
                            self.push_out_col(&mut out_cols, out_idx, e, name);
                            out_idx += 1;
                        }
                    }
                }
                audex_sql::ast::SelectItem::Expr { expr, .. } => {
                    if let audex_sql::ast::Expr::Column(c) = expr {
                        if let Ok(rc) = crate::attrspec::ColumnResolver::resolve(q_scope, c) {
                            if let Some(e) = q_scope.entry(&rc.table) {
                                self.push_out_col(&mut out_cols, out_idx, e, &rc.column);
                            }
                        }
                    }
                    out_idx += 1;
                }
            }
        }
        out_cols
    }

    fn push_out_col(
        &self,
        out_cols: &mut Vec<(usize, Vec<ResolvedColumn>)>,
        idx: usize,
        entry: &crate::catalog::ScopeEntry,
        column: &Ident,
    ) {
        let key = (entry.base.clone(), column.clone());
        if let Some(audit_cols) = self.columns_by_base.get(&key) {
            out_cols.push((idx, audit_cols.clone()));
        }
    }

    /// Per-query contributions for a whole batch, in batch order.
    ///
    /// With `parallelism > 1` the queries are evaluated on scoped worker
    /// threads (read-only over the database; the shared governor's atomics
    /// keep one step budget across workers) and folded back in batch order,
    /// so the verdict below is bitwise identical to the sequential path.
    /// Errors surface as the first failing entry *in batch order* — the one
    /// a sequential run would have stopped at — regardless of which worker
    /// tripped first in wall-clock time.
    #[allow(clippy::type_complexity)]
    fn batch_contributions(
        &self,
        batch: &[Arc<LoggedQuery>],
    ) -> Result<Vec<(QueryId, Option<QueryContribution>)>, AuditError> {
        if self.parallelism <= 1 || batch.len() <= 1 {
            let mut out = Vec::with_capacity(batch.len());
            for q in batch {
                self.governor.tick(AuditPhase::Suspicion)?;
                out.push((q.id, self.try_contribution(q)?));
            }
            return Ok(out);
        }
        crate::parallel::par_map(self.parallelism, batch, |_, q| {
            self.governor.tick(AuditPhase::Suspicion)?;
            Ok((q.id, self.try_contribution(q)?))
        })
        .into_iter()
        .collect()
    }

    /// Evaluates a whole batch.
    pub fn evaluate(&self, batch: &[Arc<LoggedQuery>]) -> Result<BatchVerdict, AuditError> {
        let mut contributing = Vec::new();
        let mut witnesses = Vec::new();
        let mut skipped = Vec::new();
        let mut touched_union: BTreeSet<usize> = BTreeSet::new();
        let mut covered_union: BTreeSet<BaseColumn> = BTreeSet::new();
        let mut exposure: BTreeMap<usize, BTreeSet<ResolvedColumn>> = BTreeMap::new();

        // Columns any scheme needs, in base identity.
        let relevant: BTreeSet<BaseColumn> = self
            .model
            .spec
            .all_columns()
            .iter()
            .filter_map(|c| self.scope.base_of_column(c))
            .collect();

        for (id, contribution) in self.batch_contributions(batch)? {
            match contribution {
                None => skipped.push(id),
                Some(c) => {
                    if self.model.indispensable {
                        if !c.touched_facts.is_empty() {
                            // Only queries sharing an indispensable tuple
                            // join Q' (Definition 4's subset).
                            touched_union.extend(c.touched_facts.iter().copied());
                            covered_union.extend(c.covered_columns.iter().cloned());
                            if c.covered_columns.iter().any(|bc| relevant.contains(bc)) {
                                contributing.push(id);
                            } else {
                                witnesses.push(id);
                            }
                        }
                    } else if !c.exposed.is_empty() {
                        for (fi, cols) in &c.exposed {
                            exposure.entry(*fi).or_default().extend(cols.iter().cloned());
                        }
                        contributing.push(id);
                    }
                }
            }
        }

        let n = self.view.len();
        let k = self.model.k_for(n);
        let mut per_scheme_accessed = Vec::with_capacity(self.model.spec.len());
        let mut accessed: u128 = 0;
        for scheme in self.model.spec.schemes() {
            let m = if self.model.indispensable {
                let covered = scheme.iter().all(|c| {
                    self.scope.base_of_column(c).is_some_and(|bc| covered_union.contains(&bc))
                });
                if covered {
                    touched_union.len() as u64
                } else {
                    0
                }
            } else {
                self.view
                    .facts
                    .iter()
                    .enumerate()
                    .filter(|(fi, _)| {
                        exposure.get(fi).is_some_and(|cols| scheme.iter().all(|c| cols.contains(c)))
                    })
                    .count() as u64
            };
            let a = binomial(m, k);
            per_scheme_accessed.push(a);
            accessed = accessed.saturating_add(a);
        }

        let total = self.model.count(n);
        Ok(BatchVerdict {
            suspicious: accessed > 0,
            accessed_granules: accessed,
            total_granules: total,
            degree: if total == 0 { 0.0 } else { (accessed as f64) / (total as f64) },
            per_scheme_accessed,
            contributing,
            witnesses,
            skipped,
        })
    }
}

/// Per-query artifacts shared across every audit evaluated against the
/// same logged query: the resolved scope, the accessed base columns, and
/// (lazily, on first need) the executed result set with its
/// lineage-derived products. The dispatch-indexed `observe` threads one
/// `SharedQueryState` through the whole shortlist so the expensive
/// `db.at(..).query_with(..)` runs once per query instead of once per
/// audit.
pub(crate) struct SharedQueryState {
    q_scope: Option<AuditScope>,
    covered_columns: BTreeSet<BaseColumn>,
    exec: ExecState,
}

enum ExecState {
    NotRun,
    Failed,
    Ready(ExecShared),
}

/// The executed result set plus caches over its lineage.
pub(crate) struct ExecShared {
    rs: ResultSet,
    /// Per satisfying combination: tids grouped by base table (lazy).
    combos: Option<Vec<BTreeMap<Ident, BTreeSet<Tid>>>>,
    /// Covered tid-tuples keyed by the ordered base-table signature of the
    /// shared bindings — audits with the same signature cover the same
    /// tuples regardless of binding names.
    covered_cache: HashMap<Vec<Ident>, Arc<HashSet<Vec<Tid>>>>,
}

impl SharedQueryState {
    /// Resolves the query's scope and accessed columns once.
    pub(crate) fn new(db: &Database, q: &LoggedQuery) -> SharedQueryState {
        match AuditScope::resolve(db, &q.query().from) {
            Ok(qs) => {
                let covered_columns = accessed_base_columns(q, &qs);
                SharedQueryState { q_scope: Some(qs), covered_columns, exec: ExecState::NotRun }
            }
            Err(_) => SharedQueryState {
                q_scope: None,
                covered_columns: BTreeSet::new(),
                exec: ExecState::NotRun,
            },
        }
    }

    /// The query's resolved scope; `None` when resolution failed (every
    /// audit then reports the query as skipped).
    pub(crate) fn q_scope(&self) -> Option<&AuditScope> {
        self.q_scope.as_ref()
    }

    fn ensure_exec(
        &mut self,
        db: &Database,
        q: &LoggedQuery,
        strategy: JoinStrategy,
    ) -> Option<&mut ExecShared> {
        if matches!(self.exec, ExecState::NotRun) {
            self.exec = match db.at(q.executed_at).query_with(q.query(), strategy) {
                Ok(rs) => {
                    ExecState::Ready(ExecShared { rs, combos: None, covered_cache: HashMap::new() })
                }
                Err(_) => ExecState::Failed,
            };
        }
        match &mut self.exec {
            ExecState::Ready(e) => Some(e),
            _ => None,
        }
    }

    /// The query's [`crate::index::QueryFootprint`] built from the shared
    /// execution (running it first if nothing forced it yet), so the
    /// streaming service maintains its touch index without a second
    /// `query_with` call. `None` exactly when `TouchIndex`'s own footprint
    /// path would skip the query: unresolvable scope or failed execution.
    pub(crate) fn footprint(
        &mut self,
        db: &Database,
        q: &LoggedQuery,
        strategy: JoinStrategy,
    ) -> Option<crate::index::QueryFootprint> {
        self.q_scope.as_ref()?;
        self.ensure_exec(db, q, strategy)?;
        let (Some(q_scope), ExecState::Ready(exec)) = (&self.q_scope, &self.exec) else {
            return None;
        };
        Some(crate::index::footprint_from_parts(q, q_scope, &exec.rs))
    }

    /// Distinct `(base table, Tid)` pairs across the executed lineage, for
    /// the dispatch index's tuple-id layer. `None` when execution fails.
    pub(crate) fn lineage_pairs(
        &mut self,
        db: &Database,
        q: &LoggedQuery,
        strategy: JoinStrategy,
    ) -> Option<BTreeSet<(Ident, Tid)>> {
        let exec = self.ensure_exec(db, q, strategy)?;
        let mut pairs = BTreeSet::new();
        for lin in &exec.rs.lineage {
            for e in lin {
                pairs.insert((crate::catalog::base_name(&e.table), e.tid));
            }
        }
        Some(pairs)
    }
}

impl ExecShared {
    fn combos(&mut self) -> &[BTreeMap<Ident, BTreeSet<Tid>>] {
        if self.combos.is_none() {
            self.combos = Some(
                self.rs
                    .lineage
                    .iter()
                    .map(|lin| {
                        let mut m: BTreeMap<Ident, BTreeSet<Tid>> = BTreeMap::new();
                        for e in lin {
                            let base = crate::catalog::base_name(&e.table);
                            m.entry(base).or_default().insert(e.tid);
                        }
                        m
                    })
                    .collect(),
            );
        }
        self.combos.as_deref().unwrap_or(&[])
    }

    fn covered_for(
        &mut self,
        shared_bindings: &[&Ident],
        scope: &AuditScope,
    ) -> Arc<HashSet<Vec<Tid>>> {
        let key: Option<Vec<Ident>> =
            shared_bindings.iter().map(|b| scope.entry(b).map(|e| e.base.clone())).collect();
        let Some(key) = key else {
            // A binding outside the scope covers nothing (the unshared path
            // cleared every combination in that case).
            return Arc::new(HashSet::new());
        };
        if let Some(c) = self.covered_cache.get(&key) {
            return Arc::clone(c);
        }
        let covered = Arc::new(covered_tuples_by_base(self.combos(), &key));
        self.covered_cache.insert(key, Arc::clone(&covered));
        covered
    }
}

/// Per-audit fact-probe maps: for each base-table signature of shared
/// bindings, the map from a fact's tid-tuple (in binding order) to the
/// indices of facts carrying that tuple. The audit's target view is pinned
/// at preparation time, so a built map never invalidates; it is the dual of
/// [`ExecShared::covered_for`]'s query-side cache — keyed the same way, so
/// a cached map always matches the covered set it is joined against.
///
/// Before this cache, every observation of an audit scanned all of `U`'s
/// facts; with it, the scan happens once per signature and each later query
/// joins the smaller of its covered set and the map. This is what cuts the
/// cost of innocent full-scan queries that legitimately shortlist every
/// audit (the ROADMAP item-1 follow-up).
/// Fact indices grouped by their tid-tuple under one binding signature.
pub(crate) type FactProbeMap = Arc<HashMap<Vec<Tid>, Vec<usize>>>;

#[derive(Default)]
pub(crate) struct FactProbeCache {
    by_sig: HashMap<Vec<Ident>, FactProbeMap>,
    /// Maps built (one per new signature).
    pub(crate) builds: u64,
    /// Probes answered from an already-built map.
    pub(crate) hits: u64,
}

impl FactProbeCache {
    /// The probe map for one binding signature, building it on first use.
    /// The build ticks the governor once per fact — exactly what the scan
    /// it replaces cost — so step budgets keep their meaning.
    pub(crate) fn map_for(
        &mut self,
        shared_bindings: &[&Ident],
        scope: &AuditScope,
        view: &TargetView,
        governor: &Governor,
    ) -> Result<FactProbeMap, AuditError> {
        let key: Option<Vec<Ident>> =
            shared_bindings.iter().map(|b| scope.entry(b).map(|e| e.base.clone())).collect();
        let Some(key) = key else {
            // A binding outside the scope covers nothing; mirror
            // `covered_for`, which returns the empty set for this key.
            return Ok(Arc::new(HashMap::new()));
        };
        if let Some(m) = self.by_sig.get(&key) {
            self.hits += 1;
            return Ok(Arc::clone(m));
        }
        let mut map: HashMap<Vec<Tid>, Vec<usize>> = HashMap::new();
        for (fi, fact) in view.facts.iter().enumerate() {
            governor.tick(AuditPhase::Suspicion)?;
            let tuple: Option<Vec<Tid>> = shared_bindings.iter().map(|b| fact.tid_of(b)).collect();
            if let Some(tuple) = tuple {
                map.entry(tuple).or_default().push(fi);
            }
        }
        self.builds += 1;
        let map = Arc::new(map);
        self.by_sig.insert(key, Arc::clone(&map));
        Ok(map)
    }
}

/// Base columns the query's *projection* resolves to, in base identity —
/// the positions value-mode exposure can possibly flow through. Mirrors
/// [`BatchEvaluator::out_cols`] without an audit in hand, so the dispatch
/// index can prune value-mode audits whose view columns are disjoint.
pub(crate) fn projected_base_columns(
    q: &LoggedQuery,
    q_scope: &AuditScope,
) -> BTreeSet<BaseColumn> {
    let mut out = BTreeSet::new();
    for item in &q.query().projection {
        match item {
            audex_sql::ast::SelectItem::Wildcard => {
                for e in q_scope.entries() {
                    for (name, _) in e.schema.iter() {
                        out.insert((e.base.clone(), name.clone()));
                    }
                }
            }
            audex_sql::ast::SelectItem::QualifiedWildcard(t) => {
                if let Some(e) = q_scope.entry(t) {
                    for (name, _) in e.schema.iter() {
                        out.insert((e.base.clone(), name.clone()));
                    }
                }
            }
            audex_sql::ast::SelectItem::Expr { expr, .. } => {
                if let audex_sql::ast::Expr::Column(c) = expr {
                    if let Ok(rc) = crate::attrspec::ColumnResolver::resolve(q_scope, c) {
                        if let Some(e) = q_scope.entry(&rc.table) {
                            out.insert((e.base.clone(), rc.column.clone()));
                        }
                    }
                }
            }
        }
    }
    out
}

/// Expands satisfying combinations into the set of tid-tuples they cover
/// over `shared_bindings` (in binding order). A fact is touched by a query
/// iff its own tid-tuple over those bindings is in this set — the hash-set
/// form of "some combination witnesses every shared binding's tuple".
///
/// Combination tid-sets are per base table and almost always singletons, so
/// the per-combination cartesian product is tiny; the set as a whole is
/// bounded by the query's satisfying combinations.
pub(crate) fn covered_tuples(
    combos: &[BTreeMap<Ident, BTreeSet<Tid>>],
    shared_bindings: &[&Ident],
    scope: &AuditScope,
) -> HashSet<Vec<Tid>> {
    let bases: Option<Vec<Ident>> =
        shared_bindings.iter().map(|b| scope.entry(b).map(|e| e.base.clone())).collect();
    match bases {
        Some(bases) => covered_tuples_by_base(combos, &bases),
        // A binding outside the scope clears every combination.
        None => HashSet::new(),
    }
}

/// [`covered_tuples`] with the bindings already mapped to base tables.
pub(crate) fn covered_tuples_by_base(
    combos: &[BTreeMap<Ident, BTreeSet<Tid>>],
    bases: &[Ident],
) -> HashSet<Vec<Tid>> {
    let mut covered: HashSet<Vec<Tid>> = HashSet::new();
    for combo in combos {
        let mut tuples: Vec<Vec<Tid>> = vec![Vec::with_capacity(bases.len())];
        for base in bases {
            let Some(tids) = combo.get(base) else {
                tuples.clear();
                break;
            };
            let mut next = Vec::with_capacity(tuples.len() * tids.len());
            for prefix in &tuples {
                for t in tids {
                    let mut p = prefix.clone();
                    p.push(*t);
                    next.push(p);
                }
            }
            tuples = next;
        }
        covered.extend(tuples);
    }
    covered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrspec::normalize_with;
    use crate::target::compute_target_view;
    use audex_log::AccessContext;
    use audex_sql::ast::TypeName;
    use audex_sql::{parse_audit, parse_query, Timestamp};
    use audex_storage::{Schema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        let p = Ident::new("Patients");
        db.create_table(
            p.clone(),
            Schema::of(&[
                ("pid", TypeName::Text),
                ("name", TypeName::Text),
                ("zipcode", TypeName::Text),
                ("disease", TypeName::Text),
            ]),
            Timestamp(0),
        )
        .unwrap();
        for (tid, pid, name, zip, dis) in [
            (1u64, "p1", "Jane", "120016", "cancer"),
            (2, "p2", "Reku", "145568", "diabetic"),
            (3, "p3", "Lucy", "120016", "flu"),
        ] {
            db.insert_with_tid(
                &p,
                Tid(tid),
                vec![pid.into(), name.into(), zip.into(), dis.into()],
                Timestamp(1),
            )
            .unwrap();
        }
        db
    }

    struct Setup {
        db: Database,
        scope: AuditScope,
        model: GranuleModel,
        view: TargetView,
    }

    fn setup(audit_sql: &str) -> Setup {
        let db = db();
        let audit = parse_audit(audit_sql).unwrap();
        let scope = AuditScope::resolve(&db, &audit.from).unwrap();
        let spec = normalize_with(&audit.audit, &scope).unwrap();
        let view =
            compute_target_view(&db, &audit, &scope, &spec, &[Timestamp(1)], JoinStrategy::Auto)
                .unwrap();
        let model =
            GranuleModel { spec, threshold: audit.threshold, indispensable: audit.indispensable };
        Setup { db, scope, model, view }
    }

    fn logged(sql: &str, id: u64) -> Arc<LoggedQuery> {
        Arc::new(LoggedQuery::new(
            QueryId(id),
            parse_query(sql).unwrap(),
            sql.into(),
            Timestamp(5),
            AccessContext::new("u", "r", "p"),
        ))
    }

    fn verdict(s: &Setup, queries: &[Arc<LoggedQuery>]) -> BatchVerdict {
        BatchEvaluator::new(&s.db, &s.scope, &s.model, &s.view, JoinStrategy::Auto)
            .evaluate(queries)
            .unwrap()
    }

    #[test]
    fn paper_section_2_1_example_suspicious() {
        // AUDIT disease … zipcode='120016'; the query SELECT zipcode WHERE
        // disease='cancer' is suspicious because Jane (cancer) lives there.
        let s = setup("AUDIT disease FROM Patients WHERE zipcode='120016'");
        let v = verdict(&s, &[logged("SELECT zipcode FROM Patients WHERE disease='cancer'", 1)]);
        assert!(v.suspicious);
        assert_eq!(v.contributing, vec![QueryId(1)]);
    }

    #[test]
    fn paper_section_2_1_example_not_suspicious() {
        // AUDIT zipcode … disease='diabetes': no patient has both cancer and
        // diabetes, so the cancer query is innocent.
        let s = setup("AUDIT zipcode FROM Patients WHERE disease='diabetes'");
        let v = verdict(&s, &[logged("SELECT zipcode FROM Patients WHERE disease='cancer'", 1)]);
        assert!(!v.suspicious);
        assert!(v.contributing.is_empty());
    }

    #[test]
    fn batch_composes_column_coverage() {
        // Audit requires (name, disease) jointly; each query alone covers
        // one column, together they cover both (Def. 4 batch semantics).
        let s = setup("AUDIT (name, disease) FROM Patients WHERE zipcode='120016'");
        let q1 = logged("SELECT name FROM Patients WHERE zipcode='120016'", 1);
        let q2 = logged("SELECT disease FROM Patients WHERE zipcode='120016'", 2);
        assert!(!verdict(&s, std::slice::from_ref(&q1)).suspicious);
        assert!(!verdict(&s, std::slice::from_ref(&q2)).suspicious);
        let v = verdict(&s, &[q1, q2]);
        assert!(v.suspicious);
        assert_eq!(v.contributing.len(), 2);
    }

    #[test]
    fn query_without_shared_tuple_does_not_contribute_columns() {
        // The second query covers `disease` but shares no indispensable
        // tuple (wrong zipcode), so the batch stays innocent.
        let s = setup("AUDIT (name, disease) FROM Patients WHERE zipcode='120016'");
        let q1 = logged("SELECT name FROM Patients WHERE zipcode='120016'", 1);
        let q2 = logged("SELECT disease FROM Patients WHERE zipcode='999999'", 2);
        let v = verdict(&s, &[q1, q2]);
        assert!(!v.suspicious);
        assert_eq!(v.contributing, vec![QueryId(1)]);
    }

    #[test]
    fn threshold_counts_facts() {
        // Two facts share zipcode 120016. THRESHOLD 2 needs both touched.
        let s = setup("THRESHOLD 2 AUDIT name FROM Patients WHERE zipcode='120016'");
        let q_one = logged("SELECT name FROM Patients WHERE pid='p1'", 1);
        let v = verdict(&s, std::slice::from_ref(&q_one));
        assert!(!v.suspicious, "one tuple does not fill a 2-granule");
        let q_both = logged("SELECT name FROM Patients WHERE zipcode='120016'", 2);
        let v = verdict(&s, &[q_one, q_both]);
        assert!(v.suspicious);
        assert_eq!(v.accessed_granules, 1); // C(2,2)
        assert_eq!(v.total_granules, 1);
    }

    #[test]
    fn threshold_all_requires_whole_view() {
        let s = setup("THRESHOLD ALL AUDIT name FROM Patients");
        let q = logged("SELECT name FROM Patients WHERE zipcode='120016'", 1);
        let v = verdict(&s, &[q]);
        assert!(!v.suspicious, "only 2 of 3 facts touched");
        let q_all = logged("SELECT name FROM Patients", 2);
        let v = verdict(&s, &[q_all]);
        assert!(v.suspicious);
    }

    #[test]
    fn degree_is_fraction_of_granules() {
        let s = setup("AUDIT name FROM Patients");
        let q = logged("SELECT name FROM Patients WHERE zipcode='120016'", 1);
        let v = verdict(&s, &[q]);
        assert_eq!(v.total_granules, 3);
        assert_eq!(v.accessed_granules, 2);
        assert!((v.degree - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn value_mode_exposes_by_content() {
        // INDISPENSABLE false: a query with a *different* predicate that
        // still returns the protected value trips the granule.
        let s = setup("INDISPENSABLE false AUDIT name FROM Patients WHERE zipcode='120016'");
        let q = logged("SELECT name FROM Patients WHERE disease='cancer'", 1);
        let v = verdict(&s, &[q]);
        assert!(v.suspicious); // Jane's name surfaced
        assert_eq!(v.accessed_granules, 1); // Jane only; Lucy not returned
    }

    #[test]
    fn value_mode_requires_value_match() {
        let s = setup("INDISPENSABLE false AUDIT name FROM Patients WHERE zipcode='120016'");
        // Returns only Reku's name — not a protected value.
        let q = logged("SELECT name FROM Patients WHERE zipcode='145568'", 1);
        let v = verdict(&s, &[q]);
        assert!(!v.suspicious);
    }

    #[test]
    fn value_mode_ignores_non_column_projections() {
        let s = setup("INDISPENSABLE false AUDIT name FROM Patients WHERE zipcode='120016'");
        let q = logged("SELECT pid FROM Patients WHERE zipcode='120016'", 1);
        let v = verdict(&s, &[q]);
        assert!(!v.suspicious, "pid is not an audited column");
    }

    #[test]
    fn indispensable_mode_catches_predicate_only_access() {
        // The classic counter-example for value matching: the query never
        // *returns* the audited column but uses it in WHERE.
        let s = setup("AUDIT disease FROM Patients WHERE zipcode='120016'");
        let q = logged("SELECT zipcode FROM Patients WHERE disease='cancer'", 1);
        assert!(verdict(&s, &[q]).suspicious);
    }

    #[test]
    fn skipped_queries_are_reported() {
        let s = setup("AUDIT name FROM Patients");
        let q = logged("SELECT nope FROM NoTable", 9);
        let v = verdict(&s, &[q]);
        assert_eq!(v.skipped, vec![QueryId(9)]);
        assert!(!v.suspicious);
    }

    #[test]
    fn per_scheme_counts() {
        let s = setup("AUDIT [name, disease] FROM Patients WHERE zipcode='120016'");
        // Touches both facts, accesses name only.
        let q = logged("SELECT name FROM Patients WHERE zipcode='120016'", 1);
        let v = verdict(&s, &[q]);
        assert_eq!(s.model.spec.len(), 2);
        // disease scheme uncovered, name scheme counts 2 facts.
        let total: u128 = v.per_scheme_accessed.iter().sum();
        assert_eq!(total, 2);
        assert!(v.per_scheme_accessed.contains(&0));
        assert!(v.per_scheme_accessed.contains(&2));
    }

    #[test]
    fn empty_view_is_never_suspicious() {
        let s = setup("AUDIT name FROM Patients WHERE zipcode='000000'");
        let q = logged("SELECT name FROM Patients", 1);
        let v = verdict(&s, &[q]);
        assert!(!v.suspicious);
        assert_eq!(v.total_granules, 0);
        assert_eq!(v.degree, 0.0);
    }

    #[test]
    fn query_evaluated_at_its_own_execution_time() {
        // A query executed before the data existed cannot have touched it.
        let s = setup("AUDIT name FROM Patients");
        let early = LoggedQuery::new(
            QueryId(1),
            parse_query("SELECT name FROM Patients").unwrap(),
            String::new(),
            Timestamp(0),
            AccessContext::new("u", "r", "p"),
        );
        let v = verdict(&s, &[Arc::new(early)]);
        assert!(!v.suspicious);
    }

    #[test]
    fn touched_facts_match_expected_tids() {
        let s = setup("AUDIT name FROM Patients WHERE zipcode='120016'");
        let ev = BatchEvaluator::new(&s.db, &s.scope, &s.model, &s.view, JoinStrategy::Auto);
        let c = ev.contribution(&logged("SELECT name FROM Patients WHERE pid='p1'", 1)).unwrap();
        assert_eq!(c.touched_facts.len(), 1);
        let fi = *c.touched_facts.iter().next().unwrap();
        assert_eq!(s.view.facts[fi].tids[0].1, Tid(1));
        assert_eq!(s.view.facts[fi].values.values().next().unwrap(), &Value::Str("Jane".into()));
    }
}
