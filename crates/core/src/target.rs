//! The target data view `U` (paper §3.1).
//!
//! `U` is "the sensitive data which is in the audit scope": the tuples
//! selected by the audit's `WHERE` predicate from the cross product of its
//! `FROM` tables, with scheme = AUDIT attributes ∪ WHERE attributes ∪ one
//! tuple-id attribute per `FROM` table. Because the database is versioned,
//! `U` is computed at **every data version selected by `DATA-INTERVAL`** and
//! deduplicated, so an audit can cover "all the versions ... present in the
//! backlog" (\[12\]'s interpretation) or a single instant (\[13\]'s), as the
//! administrator chooses.

use audex_sql::ast::{AttrGroup, AttrItem, AttrNode, AuditExpr, Query, SelectItem};
use audex_sql::{ColumnRef, Ident, Timestamp};
use audex_storage::{Database, JoinStrategy, Tid, Value};
use std::collections::{BTreeMap, HashSet};
use std::fmt;

use crate::attrspec::{ColumnResolver, NormalizedSpec, ResolvedColumn};
use crate::catalog::AuditScope;
use crate::error::AuditError;
use crate::governor::{AuditPhase, Governor};

/// One data fact of `U`: the contributing tuple ids (one per `FROM` binding)
/// plus the values of every audited/filtered column.
#[derive(Debug, Clone, PartialEq)]
pub struct UFact {
    /// `(binding, tid)` in `FROM` order.
    pub tids: Vec<(Ident, Tid)>,
    /// Values keyed by resolved column.
    pub values: BTreeMap<ResolvedColumn, Value>,
    /// The earliest selected version at which this fact was observed.
    pub first_seen: Timestamp,
}

impl UFact {
    /// The tid this fact has for `binding`, if that binding contributed.
    pub fn tid_of(&self, binding: &Ident) -> Option<Tid> {
        self.tids.iter().find(|(b, _)| b == binding).map(|(_, t)| *t)
    }
}

/// The computed target data view.
#[derive(Debug, Clone)]
pub struct TargetView {
    /// Columns of `U` in display order: AUDIT attributes in list order, then
    /// WHERE attributes (first occurrence order).
    pub columns: Vec<ResolvedColumn>,
    /// The deduplicated data facts.
    pub facts: Vec<UFact>,
    /// The data versions that were evaluated.
    pub versions: Vec<Timestamp>,
}

impl TargetView {
    /// Number of facts (`n` in the paper's `ⁿCₖ` granule count).
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True when the target view selected nothing.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Renders `U` as an aligned text table (the paper's Tables 4–5).
    pub fn render(&self, scope: &AuditScope) -> String {
        let mut header: Vec<String> =
            scope.entries().iter().map(|e| format!("tid_{}", e.binding)).collect();
        header.extend(self.columns.iter().map(|c| c.to_string()));

        let mut rows: Vec<Vec<String>> = Vec::with_capacity(self.facts.len());
        for f in &self.facts {
            let mut row: Vec<String> = scope
                .entries()
                .iter()
                .map(|e| f.tid_of(&e.binding).map_or("-".to_string(), |t| t.to_string()))
                .collect();
            row.extend(
                self.columns
                    .iter()
                    .map(|c| f.values.get(c).map_or("-".to_string(), |v| v.to_string())),
            );
            rows.push(row);
        }
        render_table(&header, &rows)
    }
}

/// Renders an aligned text table.
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        out.push('|');
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!(" {:<w$} |", c, w = widths[i]));
        }
        out.push('\n');
    };
    line(&mut out, header);
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{:-<w$}|", "", w = w + 2));
    }
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// The columns of `U` in the paper's display order, plus the full needed set.
pub fn target_columns(
    audit: &AuditExpr,
    scope: &AuditScope,
    spec: &NormalizedSpec,
) -> Result<Vec<ResolvedColumn>, AuditError> {
    let mut ordered: Vec<ResolvedColumn> = Vec::new();
    let mut push = |c: ResolvedColumn| {
        if !ordered.contains(&c) {
            ordered.push(c);
        }
    };

    // AUDIT attributes in their syntactic order (stars expand in schema
    // order).
    fn walk(
        nodes: &[AttrNode],
        scope: &AuditScope,
        push: &mut impl FnMut(ResolvedColumn),
    ) -> Result<(), AuditError> {
        for n in nodes {
            match n {
                AttrNode::Item(AttrItem::Column(c)) => push(scope.resolve(c)?),
                AttrNode::Item(AttrItem::Star) => {
                    for c in scope.all_columns() {
                        push(c);
                    }
                }
                AttrNode::Group(AttrGroup::Mandatory(m) | AttrGroup::Optional(m)) => {
                    walk(m, scope, push)?
                }
            }
        }
        Ok(())
    }
    walk(&audit.audit.nodes, scope, &mut push)?;

    // WHERE attributes next.
    if let Some(pred) = &audit.selection {
        let mut err = None;
        pred.walk_columns(&mut |c| {
            if err.is_none() {
                match scope.resolve(c) {
                    Ok(rc) => push(rc),
                    Err(e) => err = Some(e),
                }
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
    }

    // Anything a scheme needs that the syntactic walk missed (defensive).
    for c in spec.all_columns() {
        push(c);
    }
    Ok(ordered)
}

/// Computes `U` over the given data versions with an unlimited governor.
pub fn compute_target_view(
    db: &Database,
    audit: &AuditExpr,
    scope: &AuditScope,
    spec: &NormalizedSpec,
    versions: &[Timestamp],
    strategy: JoinStrategy,
) -> Result<TargetView, AuditError> {
    compute_target_view_governed(db, audit, scope, spec, versions, strategy, &Governor::unlimited())
}

/// Computes `U` over the given data versions, consulting `governor` per
/// version scanned and per result row folded into the view.
#[allow(clippy::too_many_arguments)]
pub fn compute_target_view_governed(
    db: &Database,
    audit: &AuditExpr,
    scope: &AuditScope,
    spec: &NormalizedSpec,
    versions: &[Timestamp],
    strategy: JoinStrategy,
    governor: &Governor,
) -> Result<TargetView, AuditError> {
    let columns = target_columns(audit, scope, spec)?;

    // Synthesize `SELECT <columns> FROM <audit.from> WHERE <audit.where>`.
    let projection: Vec<SelectItem> = columns
        .iter()
        .map(|c| SelectItem::Expr {
            expr: audex_sql::ast::Expr::Column(ColumnRef {
                table: Some(c.table.clone()),
                column: c.column.clone(),
            }),
            alias: None,
        })
        .collect();
    let query = Query {
        distinct: false,
        projection,
        from: audit.from.clone(),
        selection: audit.selection.clone(),
        order_by: Vec::new(),
        limit: None,
    };

    let mut facts: Vec<UFact> = Vec::new();
    // Hash-based dedup in first-occurrence order. `Value`'s `Hash` agrees
    // with its `PartialEq` (strict type rank, floats by `total_cmp`), so
    // membership here decides exactly as the former `facts.iter().any(..)`
    // scan did — in O(1) per fact instead of O(|facts|).
    type FactKey = (Vec<(Ident, Tid)>, BTreeMap<ResolvedColumn, Value>);
    let mut seen: HashSet<FactKey> = HashSet::new();
    for &ts in versions {
        governor.tick(AuditPhase::TargetView)?;
        let rs = db.at(ts).query_with(&query, strategy)?;
        for (row, lineage) in rs.rows.iter().zip(&rs.lineage) {
            governor.tick(AuditPhase::TargetView)?;
            let tids: Vec<(Ident, Tid)> =
                lineage.iter().map(|e| (e.binding.clone(), e.tid)).collect();
            let values: BTreeMap<ResolvedColumn, Value> =
                columns.iter().cloned().zip(row.iter().cloned()).collect();
            if seen.insert((tids.clone(), values.clone())) {
                facts.push(UFact { tids, values, first_seen: ts });
            }
        }
    }

    Ok(TargetView { columns, facts, versions: versions.to_vec() })
}

impl fmt::Display for TargetView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U with {} facts over {} versions", self.facts.len(), self.versions.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrspec::normalize_with;
    use audex_sql::ast::TypeName;
    use audex_sql::parse_audit;
    use audex_storage::Schema;

    fn db() -> Database {
        let mut db = Database::new();
        let t = Ident::new("P-Personal");
        db.create_table(
            t.clone(),
            Schema::of(&[
                ("pid", TypeName::Text),
                ("name", TypeName::Text),
                ("age", TypeName::Int),
                ("zipcode", TypeName::Text),
                ("address", TypeName::Text),
            ]),
            Timestamp(0),
        )
        .unwrap();
        let rows: Vec<(u64, Vec<Value>)> = vec![
            (11, vec!["p1".into(), "Jane".into(), Value::Int(25), "177893".into(), "A1".into()]),
            (12, vec!["p2".into(), "Reku".into(), Value::Int(35), "145568".into(), "A2".into()]),
            (13, vec!["p13".into(), "Robert".into(), Value::Int(29), "188888".into(), "A3".into()]),
            (14, vec!["p28".into(), "Lucy".into(), Value::Int(20), "145568".into(), "A4".into()]),
        ];
        for (tid, row) in rows {
            db.insert_with_tid(&t, Tid(tid), row, Timestamp(1)).unwrap();
        }
        db
    }

    fn view(db: &Database, audit_sql: &str, versions: &[Timestamp]) -> (TargetView, AuditScope) {
        let audit = parse_audit(audit_sql).unwrap();
        let scope = AuditScope::resolve(db, &audit.from).unwrap();
        let spec = normalize_with(&audit.audit, &scope).unwrap();
        let tv =
            compute_target_view(db, &audit, &scope, &spec, versions, JoinStrategy::Auto).unwrap();
        (tv, scope)
    }

    #[test]
    fn paper_table_4_target_facts() {
        // Audit Expression-1 (Fig. 2) over Table 1 yields Table 4:
        // {t11 Jane 25 A1, t13 Robert 29 A3, t14 Lucy 20 A4}.
        let db = db();
        let (tv, _) =
            view(&db, "Audit name, age, address FROM P-Personal WHERE age < 30", &[Timestamp(1)]);
        assert_eq!(tv.len(), 3);
        let tids: Vec<u64> = tv.facts.iter().map(|f| f.tids[0].1 .0).collect();
        assert_eq!(tids, vec![11, 13, 14]);
        // Columns: audit order (name, age, address); `age` not repeated for
        // the WHERE clause.
        let names: Vec<String> = tv.columns.iter().map(|c| c.column.value.clone()).collect();
        assert_eq!(names, vec!["name", "age", "address"]);
    }

    #[test]
    fn where_columns_are_appended() {
        let db = db();
        let (tv, _) =
            view(&db, "Audit name FROM P-Personal WHERE zipcode = '145568'", &[Timestamp(1)]);
        let names: Vec<String> = tv.columns.iter().map(|c| c.column.value.clone()).collect();
        assert_eq!(names, vec!["name", "zipcode"]);
        assert_eq!(tv.len(), 2); // Reku, Lucy
    }

    #[test]
    fn versions_are_deduplicated() {
        let mut db = db();
        // An unrelated update: U identical at both versions.
        db.insert_with_tid(
            &Ident::new("P-Personal"),
            Tid(15),
            vec!["p99".into(), "Old".into(), Value::Int(80), "000000".into(), "A9".into()],
            Timestamp(50),
        )
        .unwrap();
        let (tv, _) =
            view(&db, "Audit name FROM P-Personal WHERE age < 30", &[Timestamp(1), Timestamp(50)]);
        assert_eq!(tv.len(), 3); // no duplicates from the second version
    }

    #[test]
    fn changed_data_adds_version_facts() {
        let mut db = db();
        // Reku's zipcode changes: under a zipcode audit both versions count.
        db.execute(
            &audex_sql::parse_statement(
                "UPDATE P-Personal SET zipcode = '999999' WHERE pid = 'p2'",
            )
            .unwrap(),
            Timestamp(60),
        )
        .unwrap();
        let (tv_single, _) =
            view(&db, "Audit zipcode FROM P-Personal WHERE name = 'Reku'", &[Timestamp(1)]);
        assert_eq!(tv_single.len(), 1);
        let (tv_both, _) = view(
            &db,
            "Audit zipcode FROM P-Personal WHERE name = 'Reku'",
            &[Timestamp(1), Timestamp(60)],
        );
        assert_eq!(tv_both.len(), 2);
        assert_eq!(tv_both.facts[0].first_seen, Timestamp(1));
        assert_eq!(tv_both.facts[1].first_seen, Timestamp(60));
    }

    #[test]
    fn render_includes_tids_and_values() {
        let db = db();
        let (tv, scope) =
            view(&db, "Audit name, age, address FROM P-Personal WHERE age < 30", &[Timestamp(1)]);
        let s = tv.render(&scope);
        assert!(s.contains("tid_P-Personal"), "{s}");
        assert!(s.contains("t11"), "{s}");
        assert!(s.contains("Jane"), "{s}");
        assert!(s.contains("Robert"), "{s}");
    }

    #[test]
    fn empty_target_view() {
        let db = db();
        let (tv, _) = view(&db, "Audit name FROM P-Personal WHERE age > 100", &[Timestamp(1)]);
        assert!(tv.is_empty());
    }
}
