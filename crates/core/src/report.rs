//! Human-readable and machine-readable rendering of audit reports.

use crate::engine::AuditReport;
use audex_log::QueryLog;
use std::fmt::Write as _;

/// Escapes one CSV field (RFC 4180 quoting).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

impl AuditReport {
    /// Renders the report as a text summary for the auditor's console.
    pub fn render_text(&self, log: &QueryLog) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "AUDIT REPORT");
        let _ = writeln!(out, "expression : {}", self.expr_text);
        let _ = writeln!(
            out,
            "pipeline   : {} admitted -> {} candidates ({} statically pruned)",
            self.admitted.len(),
            self.candidates.len(),
            self.pruned.len()
        );
        let _ = writeln!(
            out,
            "target     : |U| = {} over {} data version(s)",
            self.target_size,
            self.versions.len()
        );
        let _ = writeln!(
            out,
            "verdict    : {} — {}/{} granules accessed (degree {:.4})",
            if self.verdict.suspicious { "SUSPICIOUS" } else { "clean" },
            self.verdict.accessed_granules,
            self.verdict.total_granules,
            self.verdict.degree
        );
        if !self.verdict.skipped.is_empty() {
            let _ = writeln!(
                out,
                "skipped    : {} unevaluable queries {:?}",
                self.verdict.skipped.len(),
                self.verdict.skipped
            );
        }
        if !self.verdict.witnesses.is_empty() {
            let _ = writeln!(
                out,
                "witnesses  : {} tuple-witnessing queries (no audited column) {:?}",
                self.verdict.witnesses.len(),
                self.verdict.witnesses
            );
        }
        if !self.verdict.contributing.is_empty() {
            let _ = writeln!(out, "suspicious queries:");
            for id in &self.verdict.contributing {
                match log.get(*id) {
                    Some(e) => {
                        let _ = writeln!(
                            out,
                            "  {id} @{} user={} role={} purpose={} :: {}",
                            e.executed_at,
                            e.context.user.value,
                            e.context.role.value,
                            e.context.purpose.value,
                            e.text
                        );
                    }
                    None => {
                        let _ = writeln!(out, "  {id} (no longer in log)");
                    }
                }
            }
        }
        if !self.per_query_suspicious.is_empty() {
            let _ = writeln!(
                out,
                "individually suspicious (Definition 3): {:?}",
                self.per_query_suspicious
            );
        }
        if let Some(e) = &self.truncation {
            let _ = writeln!(out, "TRUNCATED  : per-query refinement stopped early — {e}");
        }
        out
    }

    /// Renders the contributing queries as CSV
    /// (`query_id,executed_at,user,role,purpose,individually_suspicious,text`).
    pub fn render_csv(&self, log: &QueryLog) -> String {
        let mut out =
            String::from("query_id,executed_at,user,role,purpose,individually_suspicious,text\n");
        for id in &self.verdict.contributing {
            if let Some(e) = log.get(*id) {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{},{}",
                    id,
                    e.executed_at,
                    csv_field(&e.context.user.value),
                    csv_field(&e.context.role.value),
                    csv_field(&e.context.purpose.value),
                    self.per_query_suspicious.contains(id),
                    csv_field(&e.text)
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{AuditEngine, AuditMode, EngineOptions};
    use audex_log::{AccessContext, QueryLog};
    use audex_sql::ast::TypeName;
    use audex_sql::{parse_audit, Ident, Timestamp};
    use audex_storage::{Database, Schema};

    fn fixture() -> (Database, QueryLog) {
        let mut db = Database::new();
        db.create_table(
            Ident::new("Patients"),
            Schema::of(&[
                ("pid", TypeName::Text),
                ("zipcode", TypeName::Text),
                ("disease", TypeName::Text),
            ]),
            Timestamp(0),
        )
        .unwrap();
        db.insert(
            &Ident::new("Patients"),
            vec!["p1".into(), "120016".into(), "cancer".into()],
            Timestamp(1),
        )
        .unwrap();
        let log = QueryLog::new();
        log.record_text(
            "SELECT zipcode FROM Patients WHERE disease = 'cancer'",
            Timestamp(10),
            AccessContext::new("u,với\"x", "nurse", "treatment"),
        )
        .unwrap();
        (db, log)
    }

    #[test]
    fn text_report_mentions_everything() {
        let (db, log) = fixture();
        let engine = AuditEngine::with_options(
            &db,
            &log,
            EngineOptions { mode: AuditMode::PerQuery, ..Default::default() },
        );
        let expr = parse_audit(
            "DURING 1/1/1970 TO now() AUDIT disease FROM Patients WHERE zipcode='120016'",
        )
        .unwrap();
        let r = engine.audit_at(&expr, Timestamp(100)).unwrap();
        let text = r.render_text(&log);
        assert!(text.contains("SUSPICIOUS"), "{text}");
        assert!(text.contains("q1"), "{text}");
        assert!(text.contains("nurse"), "{text}");
        assert!(text.contains("Definition 3"), "{text}");
    }

    #[test]
    fn csv_escapes_fields() {
        let (db, log) = fixture();
        let engine = AuditEngine::new(&db, &log);
        let expr = parse_audit(
            "DURING 1/1/1970 TO now() AUDIT disease FROM Patients WHERE zipcode='120016'",
        )
        .unwrap();
        let r = engine.audit_at(&expr, Timestamp(100)).unwrap();
        let csv = r.render_csv(&log);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "query_id,executed_at,user,role,purpose,individually_suspicious,text"
        );
        let row = lines.next().unwrap();
        assert!(row.starts_with("q1,"));
        assert!(row.contains("\"u,với\"\"x\""), "{row}");
        // Single quotes alone don't force CSV quoting.
        assert!(row.ends_with(",SELECT zipcode FROM Patients WHERE disease = 'cancer'"), "{row}");
    }

    #[test]
    fn clean_report_has_no_query_section() {
        let (db, log) = fixture();
        let engine = AuditEngine::new(&db, &log);
        let expr = parse_audit(
            "DURING 1/1/1970 TO now() AUDIT disease FROM Patients WHERE zipcode='999999'",
        )
        .unwrap();
        let r = engine.audit_at(&expr, Timestamp(100)).unwrap();
        let text = r.render_text(&log);
        assert!(text.contains("clean"));
        assert!(!text.contains("suspicious queries:"));
        assert_eq!(r.render_csv(&log).lines().count(), 1);
    }
}
