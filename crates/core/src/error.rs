//! Audit-layer errors.

use std::fmt;

/// Errors raised while interpreting or evaluating an audit expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditError {
    /// An attribute in the `AUDIT` clause does not resolve.
    UnknownAuditColumn(String),
    /// An unqualified attribute matches several `FROM` tables.
    AmbiguousAuditColumn(String),
    /// A `FROM` table in the audit expression does not exist.
    UnknownTable(audex_sql::Ident),
    /// The audit list normalized to nothing.
    EmptyAuditList,
    /// `DATA-INTERVAL` (or `DURING`) start lies after its end.
    EmptyInterval {
        /// Interval start.
        start: audex_sql::Timestamp,
        /// Interval end.
        end: audex_sql::Timestamp,
    },
    /// The granule set is too large to materialize.
    GranuleSetTooLarge {
        /// The number of granules that would be produced.
        count: u128,
        /// The configured materialization limit.
        limit: u64,
    },
    /// The wall-clock deadline expired before the audit finished.
    DeadlineExceeded {
        /// The pipeline phase that was running when the deadline passed.
        phase: crate::governor::AuditPhase,
        /// Governed work steps completed before the audit stopped.
        steps: u64,
        /// The configured deadline, in milliseconds.
        deadline_ms: u64,
    },
    /// The step budget ran out before the audit finished.
    BudgetExhausted {
        /// The pipeline phase that was running when the budget ran out.
        phase: crate::governor::AuditPhase,
        /// Governed work steps completed before the audit stopped.
        steps: u64,
        /// The configured step budget.
        limit: u64,
    },
    /// The audit was cancelled cooperatively via the governor's flag.
    Cancelled {
        /// The pipeline phase that was running when cancellation was seen.
        phase: crate::governor::AuditPhase,
        /// Governed work steps completed before the audit stopped.
        steps: u64,
    },
    /// An error bubbled up from the storage/executor substrate.
    Storage(audex_storage::StorageError),
    /// An error bubbled up from SQL parsing.
    Parse(audex_sql::ParseError),
    /// An internal invariant was violated (e.g. restoring checkpointed
    /// state that does not fit the structure it is restored onto).
    Internal(String),
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::UnknownAuditColumn(c) => write!(f, "unknown audit attribute {c}"),
            AuditError::AmbiguousAuditColumn(c) => {
                write!(f, "audit attribute {c} is ambiguous; qualify it with a table name")
            }
            AuditError::UnknownTable(t) => write!(f, "unknown table {t} in audit FROM"),
            AuditError::EmptyAuditList => f.write_str("audit list resolves to no attributes"),
            AuditError::EmptyInterval { start, end } => {
                write!(f, "interval start {start} is after end {end}")
            }
            AuditError::GranuleSetTooLarge { count, limit } => {
                write!(
                    f,
                    "granule set has {count} granules, over the materialization limit {limit}"
                )
            }
            AuditError::DeadlineExceeded { phase, steps, deadline_ms } => write!(
                f,
                "audit deadline of {deadline_ms} ms exceeded during {phase} \
                 ({steps} steps completed)"
            ),
            AuditError::BudgetExhausted { phase, steps, limit } => write!(
                f,
                "audit step budget of {limit} exhausted during {phase} \
                 ({steps} steps completed)"
            ),
            AuditError::Cancelled { phase, steps } => {
                write!(f, "audit cancelled during {phase} ({steps} steps completed)")
            }
            AuditError::Storage(e) => write!(f, "storage: {e}"),
            AuditError::Parse(e) => write!(f, "parse: {e}"),
            AuditError::Internal(msg) => write!(f, "internal: {msg}"),
        }
    }
}

impl std::error::Error for AuditError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AuditError::Storage(e) => Some(e),
            AuditError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<audex_storage::StorageError> for AuditError {
    fn from(e: audex_storage::StorageError) -> Self {
        AuditError::Storage(e)
    }
}

impl From<audex_sql::ParseError> for AuditError {
    fn from(e: audex_sql::ParseError) -> Self {
        AuditError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn governor_errors_report_phase_and_progress() {
        use crate::governor::AuditPhase;
        let e = AuditError::DeadlineExceeded {
            phase: AuditPhase::TargetView,
            steps: 42,
            deadline_ms: 250,
        };
        let msg = e.to_string();
        assert!(msg.contains("250 ms"), "{msg}");
        assert!(msg.contains("target-view"), "{msg}");
        assert!(msg.contains("42 steps"), "{msg}");

        let e = AuditError::BudgetExhausted { phase: AuditPhase::Suspicion, steps: 7, limit: 5 };
        assert!(e.to_string().contains("budget of 5"), "{e}");
        assert!(std::error::Error::source(&e).is_none());

        let e = AuditError::Cancelled { phase: AuditPhase::Indexing, steps: 3 };
        assert!(e.to_string().contains("cancelled during touch-index"), "{e}");
    }

    #[test]
    fn display_and_source() {
        let e = AuditError::Storage(audex_storage::StorageError::DivisionByZero);
        assert!(e.to_string().contains("storage"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&AuditError::EmptyAuditList).is_none());
    }
}
