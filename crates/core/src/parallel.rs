//! Scoped fork/join over a slice — the engine's only threading primitive.
//!
//! Built on [`std::thread::scope`] so worker closures can borrow the
//! engine's state (`&Database`, `&PreparedAudit`, the shared [`Governor`])
//! without `'static` bounds or new dependencies. Workers pull item indices
//! from a shared atomic counter (dynamic scheduling: one slow item does not
//! stall a whole pre-partitioned chunk) and results are returned **in item
//! order**, so callers observe the same sequence a sequential loop would
//! produce regardless of which worker ran which item.
//!
//! [`Governor`]: crate::governor::Governor

use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `f` over `items` on up to `parallelism` scoped worker threads,
/// returning results in item order.
///
/// With `parallelism <= 1` (or fewer than two items) this degenerates to a
/// plain sequential loop on the calling thread — no threads are spawned, so
/// `--threads 1` is exactly today's sequential path, not an emulation of it.
/// A panicking worker is resumed on the caller via
/// [`std::panic::resume_unwind`], preserving the panic payload.
pub fn par_map<T, R, F>(parallelism: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = parallelism.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(items.len(), || None);

    let chunks = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut done: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        done.push((i, f(i, item)));
                    }
                    done
                })
            })
            .collect();
        let mut chunks = Vec::with_capacity(workers);
        for h in handles {
            match h.join() {
                Ok(c) => chunks.push(c),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        chunks
    });

    for (i, r) in chunks.into_iter().flatten() {
        slots[i] = Some(r);
    }
    // Every index was claimed by exactly one worker, so every slot is full.
    slots.into_iter().flatten().collect()
}

/// The default worker count: the machine's available parallelism, or 1 when
/// that cannot be determined.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 4, 7] {
            let out = par_map(threads, &items, |i, t| {
                assert_eq!(i, *t);
                t * 3
            });
            assert_eq!(out, items.iter().map(|t| t * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_item_slices() {
        let none: Vec<i32> = Vec::new();
        assert!(par_map(8, &none, |_, t| *t).is_empty());
        assert_eq!(par_map(8, &[41], |_, t| t + 1), vec![42]);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..32).collect();
        let r = std::panic::catch_unwind(|| {
            par_map(4, &items, |_, t| {
                if *t == 17 {
                    panic!("boom at 17");
                }
                *t
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn default_parallelism_is_positive() {
        assert!(default_parallelism() >= 1);
    }
}
