//! The touch index — the paper's §4 second future-work item, implemented:
//! "designing efficient algorithms to map an audit expression to a set of
//! suspicious batch of queries for a given database instance".
//!
//! Semantic evaluation is dominated by running each logged query against the
//! backlog. When an auditor investigates *many* audit expressions over the
//! same log (the common case: one expression per complaint, per protected
//! view, per suspicion notion), that work repeats identically. The
//! [`TouchIndex`] runs every query **once**, storing for each query its
//! satisfying tuple combinations (grouped by base table) and its accessed
//! columns; any number of prepared audits can then be evaluated against the
//! index with no further query execution.
//!
//! The index is exact, not approximate: [`TouchIndex::evaluate`] produces
//! verdicts identical to [`crate::suspicion::BatchEvaluator::evaluate`]
//! (asserted in tests and in the B8 benchmark).

use audex_sql::Ident;
use audex_storage::{Database, JoinStrategy, ResultSet, Tid};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use crate::attrspec::ResolvedColumn;
use crate::candidate::{accessed_base_columns, BaseColumn};
use crate::catalog::{base_name, AuditScope};
use crate::engine::PreparedAudit;
use crate::error::AuditError;
use crate::governor::{AuditPhase, Governor};
use crate::granule::binomial;
use crate::suspicion::BatchVerdict;
use audex_log::{LoggedQuery, QueryId};

/// Per-query execution footprint.
///
/// Public (with public fields) so a durability layer can checkpoint the
/// index and restore it without re-executing queries — footprint execution
/// is the dominant cost of both index builds and recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryFootprint {
    /// The indexed query.
    pub id: QueryId,
    /// Base tables in the query's `FROM`.
    pub bases: BTreeSet<Ident>,
    /// Accessed columns (`C_Q`), in base identity.
    pub covered: BTreeSet<BaseColumn>,
    /// Satisfying combinations: per combination, tids grouped by base table.
    pub combos: Vec<BTreeMap<Ident, BTreeSet<Tid>>>,
    /// Result rows as (base column → value) maps per output row, for
    /// value-mode (INDISPENSABLE false) audits. Only plain-column
    /// projections are recorded.
    pub value_rows: Vec<Vec<(BaseColumn, audex_storage::Value)>>,
}

/// Builds a [`QueryFootprint`] from an already-resolved scope and an
/// already-executed result set. Split out of [`TouchIndex`]'s private
/// `footprint` so the online auditor can derive the footprint from its
/// *shared* execution ([`crate::suspicion::SharedQueryState`]) instead of
/// running the query a second time — both paths produce byte-identical
/// footprints because this is the only constructor.
pub(crate) fn footprint_from_parts(
    q: &LoggedQuery,
    q_scope: &AuditScope,
    rs: &ResultSet,
) -> QueryFootprint {
    let combos = rs
        .lineage
        .iter()
        .map(|lin| {
            let mut m: BTreeMap<Ident, BTreeSet<Tid>> = BTreeMap::new();
            for e in lin {
                m.entry(base_name(&e.table)).or_default().insert(e.tid);
            }
            m
        })
        .collect();

    // Record plain-column output positions for value-mode matching.
    let mut out_cols: Vec<(usize, BaseColumn)> = Vec::new();
    let mut idx = 0usize;
    for item in &q.query().projection {
        match item {
            audex_sql::ast::SelectItem::Wildcard => {
                for e in q_scope.entries() {
                    for (name, _) in e.schema.iter() {
                        out_cols.push((idx, (e.base.clone(), name.clone())));
                        idx += 1;
                    }
                }
            }
            audex_sql::ast::SelectItem::QualifiedWildcard(t) => {
                if let Some(e) = q_scope.entry(t) {
                    for (name, _) in e.schema.iter() {
                        out_cols.push((idx, (e.base.clone(), name.clone())));
                        idx += 1;
                    }
                }
            }
            audex_sql::ast::SelectItem::Expr { expr, .. } => {
                if let audex_sql::ast::Expr::Column(c) = expr {
                    if let Ok(rc) = crate::attrspec::ColumnResolver::resolve(q_scope, c) {
                        if let Some(e) = q_scope.entry(&rc.table) {
                            out_cols.push((idx, (e.base.clone(), rc.column.clone())));
                        }
                    }
                }
                idx += 1;
            }
        }
    }
    let value_rows = rs
        .rows
        .iter()
        .map(|row| {
            out_cols
                .iter()
                .filter_map(|(ri, bc)| row.get(*ri).map(|v| (bc.clone(), v.clone())))
                .collect()
        })
        .collect();

    QueryFootprint {
        id: q.id,
        bases: q_scope.entries().iter().map(|e| e.base.clone()).collect(),
        covered: accessed_base_columns(q, q_scope),
        combos,
        value_rows,
    }
}

/// An index of every logged query's data footprint.
pub struct TouchIndex {
    footprints: Vec<QueryFootprint>,
    /// Queries that could not be executed (unknown tables, runtime errors).
    skipped: Vec<QueryId>,
}

impl Default for TouchIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl TouchIndex {
    /// An empty index, ready to be grown with [`TouchIndex::extend`].
    pub fn new() -> TouchIndex {
        TouchIndex { footprints: Vec::new(), skipped: Vec::new() }
    }

    /// Builds the index by executing every query once at its own execution
    /// time.
    pub fn build(
        db: &Database,
        queries: &[Arc<LoggedQuery>],
        strategy: JoinStrategy,
    ) -> TouchIndex {
        Self::build_governed(db, queries, strategy, &Governor::unlimited())
            .unwrap_or_else(|_| TouchIndex { footprints: Vec::new(), skipped: Vec::new() })
    }

    /// Builds the index under a [`Governor`]: one step per query executed.
    pub fn build_governed(
        db: &Database,
        queries: &[Arc<LoggedQuery>],
        strategy: JoinStrategy,
        governor: &Governor,
    ) -> Result<TouchIndex, AuditError> {
        Self::build_governed_with(db, queries, strategy, governor, 1)
    }

    /// [`TouchIndex::build_governed`] with an explicit worker-thread count.
    /// Queries execute read-only against the (shared, internally
    /// synchronized) snapshot cache; footprints are folded back in log
    /// order, so the index is identical for every `parallelism`.
    pub fn build_governed_with(
        db: &Database,
        queries: &[Arc<LoggedQuery>],
        strategy: JoinStrategy,
        governor: &Governor,
        parallelism: usize,
    ) -> Result<TouchIndex, AuditError> {
        let mut footprints = Vec::with_capacity(queries.len());
        let mut skipped = Vec::new();
        if parallelism <= 1 || queries.len() <= 1 {
            for q in queries {
                governor.tick(AuditPhase::Indexing)?;
                match Self::footprint(db, q, strategy) {
                    Some(fp) => footprints.push(fp),
                    None => skipped.push(q.id),
                }
            }
        } else {
            let results = crate::parallel::par_map(parallelism, queries, |_, q| {
                governor.tick(AuditPhase::Indexing)?;
                Ok((q.id, Self::footprint(db, q, strategy)))
            })
            .into_iter()
            .collect::<Result<Vec<_>, AuditError>>()?;
            for (id, fp) in results {
                match fp {
                    Some(fp) => footprints.push(fp),
                    None => skipped.push(id),
                }
            }
        }
        Ok(TouchIndex { footprints, skipped })
    }

    /// Appends one query's footprint to the index — the incremental
    /// maintenance step of the streaming service. Extending an index
    /// query-by-query in log order produces an index identical to
    /// [`TouchIndex::build_governed_with`] over the same slice at any
    /// `parallelism` (footprints are folded back in log order there too;
    /// asserted by the differential proptest in `tests/touch_index.rs`).
    /// One governor step per query executed, like the batch build.
    pub fn extend(
        &mut self,
        db: &Database,
        q: &Arc<LoggedQuery>,
        strategy: JoinStrategy,
        governor: &Governor,
    ) -> Result<(), AuditError> {
        governor.tick(AuditPhase::Indexing)?;
        match Self::footprint(db, q, strategy) {
            Some(fp) => self.footprints.push(fp),
            None => self.skipped.push(q.id),
        }
        Ok(())
    }

    /// Appends a footprint computed elsewhere (`None` records a skip) —
    /// the zero-execution sibling of [`TouchIndex::extend`]. The streaming
    /// service shares one query execution between online scoring and index
    /// maintenance: [`crate::OnlineAuditor::observe_with_footprint`]
    /// produces the footprint from its own execution and this call folds
    /// it in, so the per-ingest cost is one execution, not two.
    pub fn extend_prepared(&mut self, id: QueryId, fp: Option<QueryFootprint>) {
        match fp {
            Some(fp) => self.footprints.push(fp),
            None => self.skipped.push(id),
        }
    }

    /// Ids of queries that could not be executed and were skipped (the
    /// streaming counterpart of the batch build's skip list).
    pub fn skipped_ids(&self) -> &[QueryId] {
        &self.skipped
    }

    /// The stored footprints, in log order.
    pub fn footprints(&self) -> &[QueryFootprint] {
        &self.footprints
    }

    /// Clones the index's entire contents for checkpointing.
    pub fn export(&self) -> (Vec<QueryFootprint>, Vec<QueryId>) {
        (self.footprints.clone(), self.skipped.clone())
    }

    /// Reassembles an index from checkpointed parts — the inverse of
    /// [`TouchIndex::export`], skipping all query execution.
    pub fn from_parts(footprints: Vec<QueryFootprint>, skipped: Vec<QueryId>) -> TouchIndex {
        TouchIndex { footprints, skipped }
    }

    fn footprint(db: &Database, q: &LoggedQuery, strategy: JoinStrategy) -> Option<QueryFootprint> {
        let q_scope = AuditScope::resolve(db, &q.query().from).ok()?;
        let rs = db.at(q.executed_at).query_with(q.query(), strategy).ok()?;
        Some(footprint_from_parts(q, &q_scope, &rs))
    }

    /// Number of indexed queries.
    pub fn len(&self) -> usize {
        self.footprints.len()
    }

    /// True when nothing was indexed.
    pub fn is_empty(&self) -> bool {
        self.footprints.is_empty()
    }

    /// Evaluates a prepared audit against the index. Only queries in
    /// `admitted` (the limiting-parameter survivors) participate; pass the
    /// full id set to audit everything.
    pub fn evaluate(
        &self,
        prepared: &PreparedAudit,
        admitted: &BTreeSet<QueryId>,
    ) -> Result<BatchVerdict, AuditError> {
        self.evaluate_governed(prepared, admitted, &Governor::unlimited())
    }

    /// [`TouchIndex::evaluate`] under a [`Governor`]: one step per admitted
    /// footprint plus one per fact tested against it.
    pub fn evaluate_governed(
        &self,
        prepared: &PreparedAudit,
        admitted: &BTreeSet<QueryId>,
        governor: &Governor,
    ) -> Result<BatchVerdict, AuditError> {
        let scope = &prepared.scope;
        let model = &prepared.model;
        let view = &prepared.view;

        let relevant: BTreeSet<BaseColumn> =
            model.spec.all_columns().iter().filter_map(|c| scope.base_of_column(c)).collect();

        // View-column lookup for value mode.
        let mut columns_by_base: BTreeMap<BaseColumn, Vec<ResolvedColumn>> = BTreeMap::new();
        for c in &view.columns {
            if let Some(bc) = scope.base_of_column(c) {
                columns_by_base.entry(bc).or_default().push(c.clone());
            }
        }

        let mut contributing = Vec::new();
        let mut witnesses = Vec::new();
        let mut touched_union: BTreeSet<usize> = BTreeSet::new();
        let mut covered_union: BTreeSet<BaseColumn> = BTreeSet::new();
        let mut exposure: BTreeMap<usize, BTreeSet<ResolvedColumn>> = BTreeMap::new();

        for fp in &self.footprints {
            if !admitted.contains(&fp.id) {
                continue;
            }
            governor.tick(AuditPhase::Indexing)?;
            let shared_bindings: Vec<&Ident> = scope
                .entries()
                .iter()
                .filter(|e| fp.bases.contains(&e.base))
                .map(|e| &e.binding)
                .collect();

            if model.indispensable {
                if shared_bindings.is_empty() {
                    continue;
                }
                // Hash-set probe per fact instead of rescanning every
                // combination (see `suspicion::covered_tuples`).
                let covered = crate::suspicion::covered_tuples(&fp.combos, &shared_bindings, scope);
                let mut touched = BTreeSet::new();
                for (fi, fact) in view.facts.iter().enumerate() {
                    governor.tick(AuditPhase::Indexing)?;
                    let key: Option<Vec<Tid>> =
                        shared_bindings.iter().map(|b| fact.tid_of(b)).collect();
                    if key.is_some_and(|k| covered.contains(&k)) {
                        touched.insert(fi);
                    }
                }
                if !touched.is_empty() {
                    touched_union.extend(touched.iter().copied());
                    covered_union.extend(fp.covered.iter().cloned());
                    if fp.covered.iter().any(|bc| relevant.contains(bc)) {
                        contributing.push(fp.id);
                    } else {
                        witnesses.push(fp.id);
                    }
                }
            } else {
                let mut exposed_any = false;
                for row in &fp.value_rows {
                    governor.bump(AuditPhase::Indexing, view.facts.len() as u64)?;
                    for (bc, v) in row {
                        let Some(audit_cols) = columns_by_base.get(bc) else { continue };
                        for (fi, fact) in view.facts.iter().enumerate() {
                            for ac in audit_cols {
                                if let Some(fv) = fact.values.get(ac) {
                                    if v.grouping_eq(fv) {
                                        exposure.entry(fi).or_default().insert(ac.clone());
                                        exposed_any = true;
                                    }
                                }
                            }
                        }
                    }
                }
                if exposed_any {
                    contributing.push(fp.id);
                }
            }
        }

        // Identical counting to BatchEvaluator::evaluate.
        let n = view.len();
        let k = model.k_for(n);
        let mut per_scheme_accessed = Vec::with_capacity(model.spec.len());
        let mut accessed: u128 = 0;
        for scheme in model.spec.schemes() {
            let m = if model.indispensable {
                let covered = scheme
                    .iter()
                    .all(|c| scope.base_of_column(c).is_some_and(|bc| covered_union.contains(&bc)));
                if covered {
                    touched_union.len() as u64
                } else {
                    0
                }
            } else {
                view.facts
                    .iter()
                    .enumerate()
                    .filter(|(fi, _)| {
                        exposure.get(fi).is_some_and(|cols| scheme.iter().all(|c| cols.contains(c)))
                    })
                    .count() as u64
            };
            let a = binomial(m, k);
            per_scheme_accessed.push(a);
            accessed = accessed.saturating_add(a);
        }
        let total = model.count(n);
        Ok(BatchVerdict {
            suspicious: accessed > 0,
            accessed_granules: accessed,
            total_granules: total,
            degree: if total == 0 { 0.0 } else { accessed as f64 / total as f64 },
            per_scheme_accessed,
            contributing,
            witnesses,
            skipped: self.skipped.iter().filter(|id| admitted.contains(id)).copied().collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use audex_log::QueryLog;
    use audex_sql::Timestamp;

    #[test]
    fn unexecutable_queries_are_skipped() {
        let mut db = Database::new();
        db.create_table(
            Ident::new("t"),
            audex_storage::Schema::of(&[("a", audex_sql::ast::TypeName::Int)]),
            Timestamp(0),
        )
        .unwrap();
        let log = QueryLog::new();
        log.record_text(
            "SELECT a FROM t",
            Timestamp(1),
            audex_log::AccessContext::new("u", "r", "p"),
        )
        .unwrap();
        log.record_text(
            "SELECT x FROM ghost",
            Timestamp(2),
            audex_log::AccessContext::new("u", "r", "p"),
        )
        .unwrap();
        let batch = log.snapshot();
        let index = TouchIndex::build(&db, &batch, JoinStrategy::Auto);
        assert_eq!(index.len(), 1);
        assert_eq!(index.skipped, vec![QueryId(2)]);
    }
}
