//! Resolution of an audit expression's `FROM` scope against the database.

use audex_sql::ast::TableRef;
use audex_sql::{ColumnRef, Ident};
use audex_storage::{Database, Schema};

use crate::attrspec::{ColumnResolver, ResolvedColumn};
use crate::error::AuditError;

/// One `FROM` entry of an audit expression (or of a logged query), resolved.
#[derive(Debug, Clone)]
pub struct ScopeEntry {
    /// The name this table binds in the expression (alias if given).
    pub binding: Ident,
    /// The relation name as written (`P-Personal` or `b-P-Personal`).
    pub relation: Ident,
    /// The *base* table name (`b-` prefix stripped): the identity used when
    /// matching tuples between queries and audit expressions, since a query
    /// over `Patients` and an audit over `b-Patients` inspect versions of
    /// the same tuples.
    pub base: Ident,
    /// The table schema.
    pub schema: Schema,
}

/// A resolved audit (or query) `FROM` scope.
#[derive(Debug, Clone)]
pub struct AuditScope {
    entries: Vec<ScopeEntry>,
}

/// Strips the backlog prefix: `b-T` → `T`, anything else unchanged.
pub fn base_name(name: &Ident) -> Ident {
    let lower = name.normalized();
    match lower.strip_prefix("b-") {
        Some(rest) => Ident::new(rest.to_string()),
        None => name.clone(),
    }
}

impl AuditScope {
    /// Resolves `from` against the database catalog. Backlog names (`b-T`)
    /// resolve to the base table's schema.
    pub fn resolve(db: &Database, from: &[TableRef]) -> Result<Self, AuditError> {
        let mut entries = Vec::with_capacity(from.len());
        for tref in from {
            let base = base_name(&tref.name);
            let table =
                db.table(&base).ok_or_else(|| AuditError::UnknownTable(tref.name.clone()))?;
            let binding = tref.binding().clone();
            if entries.iter().any(|e: &ScopeEntry| e.binding == binding) {
                return Err(AuditError::Storage(audex_storage::StorageError::DuplicateBinding(
                    binding,
                )));
            }
            entries.push(ScopeEntry {
                binding,
                relation: tref.name.clone(),
                base,
                schema: table.schema().clone(),
            });
        }
        Ok(AuditScope { entries })
    }

    /// The resolved entries, in `FROM` order.
    pub fn entries(&self) -> &[ScopeEntry] {
        &self.entries
    }

    /// The entry bound under `binding`.
    pub fn entry(&self, binding: &Ident) -> Option<&ScopeEntry> {
        self.entries.iter().find(|e| &e.binding == binding)
    }

    /// The base table names, in `FROM` order.
    pub fn bases(&self) -> Vec<Ident> {
        self.entries.iter().map(|e| e.base.clone()).collect()
    }

    /// Maps a resolved column (keyed by binding) to its `(base, column)`
    /// identity for cross-expression matching.
    pub fn base_of_column(&self, col: &ResolvedColumn) -> Option<(Ident, Ident)> {
        self.entry(&col.table).map(|e| (e.base.clone(), col.column.clone()))
    }
}

impl ColumnResolver for AuditScope {
    fn resolve(&self, col: &ColumnRef) -> Result<ResolvedColumn, AuditError> {
        match &col.table {
            Some(t) => {
                let entry = self
                    .entry(t)
                    .ok_or_else(|| AuditError::UnknownAuditColumn(format!("{t}.{}", col.column)))?;
                if entry.schema.position(&col.column).is_none() {
                    return Err(AuditError::UnknownAuditColumn(format!("{t}.{}", col.column)));
                }
                Ok(ResolvedColumn { table: entry.binding.clone(), column: col.column.clone() })
            }
            None => {
                let mut found: Option<ResolvedColumn> = None;
                for e in &self.entries {
                    if e.schema.position(&col.column).is_some() {
                        if found.is_some() {
                            return Err(AuditError::AmbiguousAuditColumn(col.column.value.clone()));
                        }
                        found = Some(ResolvedColumn {
                            table: e.binding.clone(),
                            column: col.column.clone(),
                        });
                    }
                }
                found.ok_or_else(|| AuditError::UnknownAuditColumn(col.column.value.clone()))
            }
        }
    }

    fn all_columns(&self) -> Vec<ResolvedColumn> {
        let mut out = Vec::new();
        for e in &self.entries {
            for (name, _) in e.schema.iter() {
                out.push(ResolvedColumn { table: e.binding.clone(), column: name.clone() });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use audex_sql::ast::TypeName;
    use audex_sql::Timestamp;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            Ident::new("P-Personal"),
            Schema::of(&[("pid", TypeName::Text), ("name", TypeName::Text)]),
            Timestamp(0),
        )
        .unwrap();
        db.create_table(
            Ident::new("P-Health"),
            Schema::of(&[("pid", TypeName::Text), ("disease", TypeName::Text)]),
            Timestamp(0),
        )
        .unwrap();
        db
    }

    fn scope(from: &[&str]) -> AuditScope {
        let refs: Vec<TableRef> = from.iter().map(|n| TableRef::named(*n)).collect();
        AuditScope::resolve(&db(), &refs).unwrap()
    }

    #[test]
    fn base_name_strips_backlog_prefix() {
        assert_eq!(base_name(&Ident::new("b-P-Personal")), Ident::new("P-Personal"));
        assert_eq!(base_name(&Ident::new("P-Personal")), Ident::new("P-Personal"));
        assert_eq!(base_name(&Ident::new("B-X")), Ident::new("x"));
    }

    #[test]
    fn backlog_names_resolve_to_base_schema() {
        let s = scope(&["b-P-Personal"]);
        assert_eq!(s.entries()[0].base, Ident::new("P-Personal"));
        assert_eq!(s.entries()[0].relation, Ident::new("b-P-Personal"));
        assert!(s.entries()[0].schema.position(&Ident::new("name")).is_some());
    }

    #[test]
    fn unqualified_unique_column_resolves() {
        let s = scope(&["P-Personal", "P-Health"]);
        let rc = s.resolve(&ColumnRef::bare("disease")).unwrap();
        assert_eq!(rc.table, Ident::new("P-Health"));
    }

    #[test]
    fn ambiguous_column_rejected() {
        let s = scope(&["P-Personal", "P-Health"]);
        assert!(matches!(
            s.resolve(&ColumnRef::bare("pid")),
            Err(AuditError::AmbiguousAuditColumn(_))
        ));
    }

    #[test]
    fn qualified_resolution_uses_binding() {
        let s = scope(&["P-Personal", "P-Health"]);
        let rc = s.resolve(&ColumnRef::qualified("P-Health", "pid")).unwrap();
        assert_eq!(rc.table, Ident::new("P-Health"));
        assert!(s.resolve(&ColumnRef::qualified("P-Health", "name")).is_err());
        assert!(s.resolve(&ColumnRef::qualified("NoTable", "pid")).is_err());
    }

    #[test]
    fn unknown_from_table_errors() {
        let refs = vec![TableRef::named("Nope")];
        assert!(matches!(AuditScope::resolve(&db(), &refs), Err(AuditError::UnknownTable(_))));
    }

    #[test]
    fn all_columns_in_from_order() {
        let s = scope(&["P-Personal", "P-Health"]);
        let cols = s.all_columns();
        assert_eq!(cols.len(), 4);
        assert_eq!(cols[0].column, Ident::new("pid"));
        assert_eq!(cols[3].column, Ident::new("disease"));
    }

    #[test]
    fn base_of_column_maps_backlog_binding() {
        let s = scope(&["b-P-Personal"]);
        let rc = s.resolve(&ColumnRef::bare("name")).unwrap();
        let (base, col) = s.base_of_column(&rc).unwrap();
        assert_eq!(base, Ident::new("P-Personal"));
        assert_eq!(col, Ident::new("name"));
    }
}
