//! Dispatch index over standing audits — probe, don't scan.
//!
//! [`crate::rank::OnlineAuditor`] holds the registered audit expressions of
//! a long-running service. Scoring every arriving query against every
//! prepared audit collapses linearly with the number of standing audits;
//! this module is the Rete-style discrimination network over the paper's
//! Fig. 7 grammar that makes ingest sublinear: each logged query *probes*
//! the index and only the audits that could possibly produce a non-empty
//! [`crate::suspicion::QueryContribution`] are evaluated.
//!
//! Every layer is a **sound** prune: an audit is dropped only when its
//! contribution is provably empty (`touched_facts` and `exposed` both
//! empty), in which case the scan-all path skips it without mutating batch
//! state either. The layers, in probe order:
//!
//! 1. **Liveness** — a bitset of registered slots. Removed audits leave
//!    stale bits in the other structures; masking with the live set first
//!    makes those bits harmless until compaction rebuilds the index.
//! 2. **Base tables** — inverted index `base table → audits`. A query
//!    sharing no base table with an audit's `FROM` scope has no shared
//!    bindings, so its contribution carries only covered columns and is
//!    empty by definition.
//! 3. **DURING** — a centered interval tree over the audits' `DURING`
//!    windows, stabbed with the query's execution timestamp (audits without
//!    a window sit in a separate always-on set). Outside the window the
//!    access filter rejects the query outright.
//! 4. **Context pre-filters** — audits sharing the same
//!    role/purpose/user clauses are grouped, and each distinct group is
//!    evaluated **once per query** instead of once per audit; failing
//!    groups are subtracted wholesale.
//! 5. **Empty target view** — an audit whose `U` has no facts can never be
//!    touched or exposed. This is also the sound DATA-INTERVAL prune: a
//!    data interval that selects no versions yields an empty view.
//! 6. **Attributes (value mode)** — inverted index from the base identity
//!    of audited view columns to value-mode audits. Exposure requires the
//!    query's *projection* to resolve onto an audited column, so audits
//!    disjoint from the projected base columns are dropped.
//! 7. **Tuple ids (indispensable mode)** — inverted index `(base, Tid) →
//!    audits` over every fact's tuple ids. After the (shared) query
//!    execution, the lineage's `(base, Tid)` pairs select the candidates;
//!    an audit none of whose fact tuples appear in the lineage has empty
//!    `touched_facts`. Note this layer is deliberately *post-execution*:
//!    pre-execution predicate discrimination (audit pins `col = v1`, query
//!    pins `col = v2 ≠ v1`) is **unsound** under versioning, because a
//!    tuple updated between the audit's data versions and the query's
//!    execution instant can satisfy both predicates at different times.
//!
//! The index is maintained incrementally on register/unregister; the
//! interval tree is rebuilt lazily on the first probe after a change, and
//! the whole index is compacted once enough dead slots accumulate (both
//! counted in `index_rebuilds_total`).

use std::collections::{BTreeSet, HashMap};

use audex_log::{AccessFilter, LoggedQuery};
use audex_sql::{Ident, Timestamp};
use audex_storage::Tid;

use crate::candidate::BaseColumn;
use crate::engine::PreparedAudit;

/// Stable identity of a registered audit.
///
/// Ids are assigned monotonically by [`crate::rank::OnlineAuditor::push`]
/// and never reused, so holders (service registrations, checkpoints,
/// verdict events) keep addressing the same audit across removals — unlike
/// the dense indices they replace, which shifted on every `remove`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AuditId(pub u64);

impl std::fmt::Display for AuditId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Whether `observe` probes the dispatch index or scans every audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Probe the index and evaluate only the shortlist (the default).
    #[default]
    Indexed,
    /// Evaluate every registered audit — the differential oracle.
    ScanAll,
}

/// Monotonic counters describing the index's pruning work, exported in
/// service `stats` and mirrored to `audex_dispatch_*` metric series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Queries probed against the index.
    pub probes: u64,
    /// Audits skipped without evaluation, summed over probes.
    pub pruned: u64,
    /// Audits shortlisted for evaluation, summed over probes.
    pub shortlisted: u64,
    /// Interval-tree rebuilds plus full compactions.
    pub rebuilds: u64,
    /// Fact-probe maps built by the per-audit contribution cache (one per
    /// new base-table signature per audit).
    pub fact_probe_builds: u64,
    /// Contribution probes answered from an already-built fact-probe map —
    /// observations that skipped the per-fact target-view scan entirely.
    pub fact_probe_hits: u64,
}

/// A set of dense audit slots, stored as a bitset.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct SlotSet {
    words: Vec<u64>,
}

impl SlotSet {
    pub(crate) fn insert(&mut self, slot: usize) {
        let w = slot / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1 << (slot % 64);
    }

    pub(crate) fn remove(&mut self, slot: usize) {
        if let Some(w) = self.words.get_mut(slot / 64) {
            *w &= !(1 << (slot % 64));
        }
    }

    #[cfg(test)]
    pub(crate) fn contains(&self, slot: usize) -> bool {
        self.words.get(slot / 64).is_some_and(|w| w & (1 << (slot % 64)) != 0)
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    pub(crate) fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `self &= other`.
    pub(crate) fn intersect(&mut self, other: &SlotSet) {
        for (i, w) in self.words.iter_mut().enumerate() {
            *w &= other.words.get(i).copied().unwrap_or(0);
        }
    }

    /// `self &= !other`.
    pub(crate) fn subtract(&mut self, other: &SlotSet) {
        for (i, w) in self.words.iter_mut().enumerate() {
            *w &= !other.words.get(i).copied().unwrap_or(0);
        }
    }

    /// `self |= other`.
    pub(crate) fn union(&mut self, other: &SlotSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (i, w) in other.words.iter().enumerate() {
            self.words[i] |= w;
        }
    }

    pub(crate) fn clear(&mut self) {
        self.words.clear();
    }

    /// Slots in ascending order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(i, w)| {
            let mut bits = *w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(i * 64 + b)
                }
            })
        })
    }
}

/// A centered interval tree over `(start, end, slot)` with inclusive
/// endpoints, answering stabbing queries in `O(log n + k)`.
#[derive(Debug, Clone)]
struct IntervalNode {
    center: Timestamp,
    /// Intervals containing `center`, ascending by start.
    by_start: Vec<(Timestamp, Timestamp, usize)>,
    /// The same intervals, descending by end.
    by_end: Vec<(Timestamp, Timestamp, usize)>,
    left: Option<Box<IntervalNode>>,
    right: Option<Box<IntervalNode>>,
}

impl IntervalNode {
    fn build(mut intervals: Vec<(Timestamp, Timestamp, usize)>) -> Option<Box<IntervalNode>> {
        if intervals.is_empty() {
            return None;
        }
        // Median start keeps the tree balanced enough for our sizes.
        intervals.sort_by_key(|iv| iv.0);
        let center = intervals[intervals.len() / 2].0;
        let mut here = Vec::new();
        let mut left = Vec::new();
        let mut right = Vec::new();
        for iv in intervals {
            if iv.1 < center {
                left.push(iv);
            } else if iv.0 > center {
                right.push(iv);
            } else {
                here.push(iv);
            }
        }
        let mut by_start = here;
        by_start.sort_by_key(|iv| iv.0);
        let mut by_end = by_start.clone();
        by_end.sort_by_key(|iv| std::cmp::Reverse(iv.1));
        Some(Box::new(IntervalNode {
            center,
            by_start,
            by_end,
            left: IntervalNode::build(left),
            right: IntervalNode::build(right),
        }))
    }

    /// Adds the slot of every interval containing `t` to `out`.
    fn stab(&self, t: Timestamp, out: &mut SlotSet) {
        if t < self.center {
            for (s, _, slot) in &self.by_start {
                if *s > t {
                    break;
                }
                out.insert(*slot);
            }
            if let Some(l) = &self.left {
                l.stab(t, out);
            }
        } else if t > self.center {
            for (_, e, slot) in &self.by_end {
                if *e < t {
                    break;
                }
                out.insert(*slot);
            }
            if let Some(r) = &self.right {
                r.stab(t, out);
            }
        } else {
            for (_, _, slot) in &self.by_start {
                out.insert(*slot);
            }
        }
    }
}

/// Histogram buckets for shortlist lengths (a count, not a duration).
const SHORTLIST_BUCKETS: &[f64] =
    &[0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0];

/// Metric handles for the `audex_dispatch_*` series.
struct DispatchObs {
    probes: audex_obs::Counter,
    pruned: audex_obs::Counter,
    rebuilds: audex_obs::Counter,
    shortlist: audex_obs::Histogram,
}

/// Pre-execution probe outcome: candidate slots split by granule mode.
///
/// `value` has already passed the attribute layer; `indisp` still awaits
/// the post-execution tuple-id narrowing via
/// [`DispatchIndex::narrow_by_tids`].
#[derive(Debug, Clone, Default)]
pub(crate) struct Probe {
    pub(crate) value: SlotSet,
    pub(crate) indisp: SlotSet,
}

/// The discrimination network over registered audits.
#[derive(Default)]
pub struct DispatchIndex {
    /// Slot → audit id, including dead slots (masked by `live`).
    slots: Vec<AuditId>,
    slot_of: HashMap<AuditId, usize>,
    live: SlotSet,
    dead: usize,
    by_table: HashMap<Ident, SlotSet>,
    with_during: Vec<(Timestamp, Timestamp, usize)>,
    no_during: SlotSet,
    tree: Option<Box<IntervalNode>>,
    tree_dirty: bool,
    /// Distinct context-filter shapes (`during` stripped) and their audits.
    groups: Vec<(AccessFilter, SlotSet)>,
    empty_view: SlotSet,
    value_mode: SlotSet,
    indisp: SlotSet,
    by_attr: HashMap<BaseColumn, SlotSet>,
    by_tid: HashMap<(Ident, Tid), SlotSet>,
    stats: DispatchStats,
    obs: Option<DispatchObs>,
}

impl DispatchIndex {
    /// Wires the `audex_dispatch_*` series into `registry`.
    pub fn set_obs(&mut self, registry: &audex_obs::Registry) {
        self.obs = Some(DispatchObs {
            probes: registry.counter(
                "audex_dispatch_probes_total",
                "Logged queries probed against the standing-audit dispatch index.",
                &[],
            ),
            pruned: registry.counter(
                "audex_dispatch_pruned_total",
                "Standing audits skipped without evaluation, summed over probes.",
                &[],
            ),
            rebuilds: registry.counter(
                "audex_dispatch_index_rebuilds_total",
                "Dispatch interval-tree rebuilds plus full index compactions.",
                &[],
            ),
            shortlist: registry.histogram(
                "audex_dispatch_shortlist_len",
                "Standing audits shortlisted for evaluation per probed query.",
                SHORTLIST_BUCKETS,
                &[],
            ),
        });
    }

    /// A copy of the pruning counters.
    pub fn stats(&self) -> DispatchStats {
        self.stats
    }

    /// Registers `id` under a fresh slot and indexes the audit's shape.
    pub(crate) fn insert(&mut self, id: AuditId, prepared: &PreparedAudit) {
        let slot = self.slots.len();
        self.slots.push(id);
        self.slot_of.insert(id, slot);
        self.live.insert(slot);
        self.index_audit(slot, prepared);
    }

    fn index_audit(&mut self, slot: usize, prepared: &PreparedAudit) {
        let bases: BTreeSet<&Ident> = prepared.scope.entries().iter().map(|e| &e.base).collect();
        for b in bases {
            self.by_table.entry(b.clone()).or_default().insert(slot);
        }
        match prepared.filter.during {
            Some((s, e)) => {
                self.with_during.push((s, e, slot));
                self.tree_dirty = true;
            }
            None => self.no_during.insert(slot),
        }
        let shape = AccessFilter { during: None, ..prepared.filter.clone() };
        match self.groups.iter_mut().find(|(f, _)| *f == shape) {
            Some((_, set)) => set.insert(slot),
            None => {
                let mut set = SlotSet::default();
                set.insert(slot);
                self.groups.push((shape, set));
            }
        }
        if prepared.view.is_empty() {
            self.empty_view.insert(slot);
        }
        if prepared.model.indispensable {
            self.indisp.insert(slot);
            for fact in &prepared.view.facts {
                for (binding, tid) in &fact.tids {
                    if let Some(e) = prepared.scope.entry(binding) {
                        self.by_tid.entry((e.base.clone(), *tid)).or_default().insert(slot);
                    }
                }
            }
        } else {
            self.value_mode.insert(slot);
            for c in &prepared.view.columns {
                if let Some(bc) = prepared.scope.base_of_column(c) {
                    self.by_attr.entry(bc).or_default().insert(slot);
                }
            }
        }
    }

    /// Unregisters `id`. Stale bits stay in the layer structures (masked by
    /// the live set) until [`DispatchIndex::rebuild`] compacts them away.
    pub(crate) fn remove(&mut self, id: AuditId) {
        if let Some(slot) = self.slot_of.remove(&id) {
            self.live.remove(slot);
            self.dead += 1;
        }
    }

    /// True once enough dead slots accumulated that a compaction pays off.
    pub(crate) fn needs_compaction(&self) -> bool {
        self.dead > 32 && self.dead * 2 > self.slots.len()
    }

    /// Rebuilds the index from scratch over the surviving audits (ascending
    /// id, so slot order stays id order). Counters and obs handles survive.
    pub(crate) fn rebuild<'a>(
        &mut self,
        audits: impl Iterator<Item = (AuditId, &'a PreparedAudit)>,
    ) {
        let stats = self.stats;
        let obs = self.obs.take();
        *self = DispatchIndex { stats, obs, ..DispatchIndex::default() };
        for (id, prepared) in audits {
            self.insert(id, prepared);
        }
        self.count_rebuild();
    }

    fn count_rebuild(&mut self) {
        self.stats.rebuilds += 1;
        if let Some(o) = &self.obs {
            o.rebuilds.inc();
        }
    }

    fn ensure_tree(&mut self) {
        if self.tree_dirty {
            self.tree = IntervalNode::build(self.with_during.clone());
            self.tree_dirty = false;
            self.count_rebuild();
        }
    }

    /// Counts one probe that ended before [`DispatchIndex::probe`] could run
    /// (e.g. the query's own scope does not resolve, so nothing can match).
    pub(crate) fn note_probe(&mut self) {
        self.stats.probes += 1;
        if let Some(o) = &self.obs {
            o.probes.inc();
        }
    }

    /// Runs the pre-execution layers for one logged query. `q_bases` are the
    /// base tables of the query's resolved scope and `projected` its
    /// projected columns in base identity.
    pub(crate) fn probe(
        &mut self,
        q: &LoggedQuery,
        q_bases: &BTreeSet<Ident>,
        projected: &BTreeSet<BaseColumn>,
    ) -> Probe {
        self.note_probe();
        self.ensure_tree();

        let mut cand = self.live.clone();

        // Layer 2: shared base tables.
        let mut tables = SlotSet::default();
        for b in q_bases {
            if let Some(s) = self.by_table.get(b) {
                tables.union(s);
            }
        }
        cand.intersect(&tables);
        if cand.is_empty() {
            return Probe::default();
        }

        // Layer 3: DURING windows containing the execution instant.
        let mut admitted = self.no_during.clone();
        if let Some(tree) = &self.tree {
            tree.stab(q.executed_at, &mut admitted);
        }
        cand.intersect(&admitted);

        // Layer 4: each distinct context-filter shape evaluated once.
        for (filter, set) in &self.groups {
            if !filter.admits_parts(
                &q.context.user,
                &q.context.role,
                &q.context.purpose,
                q.executed_at,
            ) {
                cand.subtract(set);
            }
        }

        // Layer 5: empty target views can never be touched or exposed.
        cand.subtract(&self.empty_view);

        // Layer 6: value-mode audits need a projected audited column.
        let mut value = cand.clone();
        value.intersect(&self.value_mode);
        if !value.is_empty() {
            let mut attrs = SlotSet::default();
            for bc in projected {
                if let Some(s) = self.by_attr.get(bc) {
                    attrs.union(s);
                }
            }
            value.intersect(&attrs);
        }

        let mut indisp = cand;
        indisp.intersect(&self.indisp);
        Probe { value, indisp }
    }

    /// Layer 7: keeps only indispensable-mode candidates holding at least
    /// one of the lineage's `(base, Tid)` pairs among their fact tuples.
    pub(crate) fn narrow_by_tids(&self, indisp: &mut SlotSet, pairs: &BTreeSet<(Ident, Tid)>) {
        let mut hits = SlotSet::default();
        for p in pairs {
            if let Some(s) = self.by_tid.get(p) {
                hits.union(s);
            }
        }
        indisp.intersect(&hits);
    }

    /// Records the final shortlist size against `live` registered audits.
    pub(crate) fn record_shortlist(&mut self, shortlisted: usize, live: usize) {
        self.stats.shortlisted += shortlisted as u64;
        self.stats.pruned += live.saturating_sub(shortlisted) as u64;
        if let Some(o) = &self.obs {
            o.pruned.add(live.saturating_sub(shortlisted) as u64);
            o.shortlist.observe(shortlisted as f64);
        }
    }

    /// The audit id registered at `slot`.
    pub(crate) fn id_at(&self, slot: usize) -> Option<AuditId> {
        self.slots.get(slot).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slotset_ops() {
        let mut a = SlotSet::default();
        a.insert(1);
        a.insert(70);
        a.insert(200);
        assert!(a.contains(70));
        assert!(!a.contains(2));
        assert_eq!(a.count(), 3);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 70, 200]);

        let mut b = SlotSet::default();
        b.insert(70);
        b.insert(3);
        let mut i = a.clone();
        i.intersect(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![70]);

        let mut u = a.clone();
        u.union(&b);
        assert_eq!(u.count(), 4);

        let mut s = a.clone();
        s.subtract(&b);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 200]);

        a.remove(70);
        assert!(!a.contains(70));
        assert!(!a.is_empty());
        a.clear();
        assert!(a.is_empty());
    }

    #[test]
    fn interval_tree_matches_brute_force() {
        // Deterministic LCG; no wall-clock or RNG dependencies.
        let mut state: u64 = 0x2545_f491_4f6c_dd1d;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as i64
        };
        let intervals: Vec<(Timestamp, Timestamp, usize)> = (0..200)
            .map(|slot| {
                let s = next() % 1000;
                let len = next() % 120;
                (Timestamp(s), Timestamp(s + len), slot)
            })
            .collect();
        let tree = IntervalNode::build(intervals.clone()).unwrap();
        for probe in -5..1205 {
            let t = Timestamp(probe);
            let mut got = SlotSet::default();
            tree.stab(t, &mut got);
            let want: Vec<usize> = intervals
                .iter()
                .filter(|(s, e, _)| *s <= t && t <= *e)
                .map(|(_, _, slot)| *slot)
                .collect();
            let mut got: Vec<usize> = got.iter().collect();
            got.sort_unstable();
            let mut want = want;
            want.sort_unstable();
            assert_eq!(got, want, "stab at {probe}");
        }
    }

    #[test]
    fn empty_tree_builds_to_none() {
        assert!(IntervalNode::build(Vec::new()).is_none());
    }
}
