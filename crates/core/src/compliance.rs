//! Policy-aware assessment of audit findings.
//!
//! The paper's limiting parameters are "the authorization parameters given
//! in the privacy policy which allow access to the target data view"
//! (§3.3). This module closes that loop in both directions:
//!
//! * [`suggest_limits`] derives `Pos-Role-Purpose` patterns from the policy:
//!   the channels through which the audited data could legitimately flow —
//!   what an administrator would plug into the audit expression.
//! * [`assess`] classifies each suspicious query found by an audit as a
//!   **policy violation** (its annotations never authorized those column
//!   reads) or an **authorized disclosure** (policy-compliant, but it still
//!   reached the protected view — a policy-specification loophole, the
//!   paper's outcome (c): "locating and fixing the specification or
//!   implementation loopholes").

use audex_log::{LoggedQuery, QueryId, QueryLog};
use audex_policy::{Denial, PrivacyPolicy};
use audex_sql::ast::RolePurposePattern;
use audex_sql::Ident;

use crate::candidate::accessed_base_columns;
use crate::catalog::AuditScope;
use crate::engine::AuditReport;
use audex_storage::Database;

/// The classification of one suspicious query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessClass {
    /// The access broke the policy: these denials explain how.
    PolicyViolation(Vec<Denial>),
    /// The access was policy-compliant — the disclosure is a policy
    /// loophole, not a rogue user.
    AuthorizedDisclosure,
    /// The query could not be resolved against the catalog.
    Unresolvable,
}

/// One assessed finding.
#[derive(Debug, Clone)]
pub struct Assessment {
    /// The suspicious query.
    pub id: QueryId,
    /// Who ran it (user, role, purpose).
    pub context: (Ident, Ident, Ident),
    /// The classification.
    pub class: AccessClass,
}

/// Classifies every contributing query of a report against the policy.
pub fn assess(
    report: &AuditReport,
    db: &Database,
    log: &QueryLog,
    policy: &PrivacyPolicy,
) -> Vec<Assessment> {
    report
        .verdict
        .contributing
        .iter()
        .filter_map(|id| log.get(*id).map(|e| (*id, e)))
        .map(|(id, entry)| Assessment {
            id,
            context: (
                entry.context.user.clone(),
                entry.context.role.clone(),
                entry.context.purpose.clone(),
            ),
            class: classify(&entry, db, policy),
        })
        .collect()
}

fn classify(entry: &LoggedQuery, db: &Database, policy: &PrivacyPolicy) -> AccessClass {
    let Ok(scope) = AuditScope::resolve(db, &entry.query().from) else {
        return AccessClass::Unresolvable;
    };
    let reads: Vec<(Ident, Ident)> = accessed_base_columns(entry, &scope).into_iter().collect();
    let denials = policy.check_access(
        &entry.context.user,
        &entry.context.role,
        &entry.context.purpose,
        &reads,
    );
    if denials.is_empty() {
        AccessClass::AuthorizedDisclosure
    } else {
        AccessClass::PolicyViolation(denials)
    }
}

/// Derives positive limiting parameters from the policy: every
/// `(role, purpose)` pair authorized to read **all** of the given
/// `(table, column)` targets. An auditor investigating a leak of exactly
/// that data restricts the audit to these channels (plus, typically, a
/// `Neg-…` clause for channels already ruled out).
pub fn suggest_limits(
    policy: &PrivacyPolicy,
    targets: &[(Ident, Ident)],
) -> Vec<RolePurposePattern> {
    policy
        .channels_to(targets)
        .into_iter()
        .map(|(role, purpose)| RolePurposePattern { role: Some(role), purpose: Some(purpose) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AuditEngine;
    use audex_log::AccessContext;
    use audex_policy::ColumnScope;
    use audex_sql::ast::TypeName;
    use audex_sql::{parse_audit, Timestamp};
    use audex_storage::Schema;

    fn fixture() -> (Database, QueryLog, PrivacyPolicy) {
        let mut db = Database::new();
        db.create_table(
            Ident::new("Patients"),
            Schema::of(&[
                ("pid", TypeName::Text),
                ("zipcode", TypeName::Text),
                ("disease", TypeName::Text),
            ]),
            Timestamp(0),
        )
        .unwrap();
        db.insert(
            &Ident::new("Patients"),
            vec!["p1".into(), "120016".into(), "cancer".into()],
            Timestamp(1),
        )
        .unwrap();

        let log = QueryLog::new();
        // A doctor, fully authorized.
        log.record_text(
            "SELECT disease FROM Patients WHERE zipcode = '120016'",
            Timestamp(10),
            AccessContext::new("doc1", "doctor", "treatment"),
        )
        .unwrap();
        // A clerk with no business reading disease.
        log.record_text(
            "SELECT disease FROM Patients WHERE zipcode = '120016'",
            Timestamp(20),
            AccessContext::new("clerk1", "clerk", "billing"),
        )
        .unwrap();

        let mut policy = PrivacyPolicy::new();
        policy.purposes.declare("healthcare");
        policy.purposes.declare_under("treatment", "healthcare");
        policy.purposes.declare("billing");
        policy.users.register("doc1", vec![Ident::new("doctor")]);
        policy.users.register("clerk1", vec![Ident::new("clerk")]);
        policy.allow("doctor", "healthcare", "Patients", ColumnScope::All);
        policy.allow("clerk", "billing", "Patients", ColumnScope::only(["pid", "zipcode"]));
        (db, log, policy)
    }

    fn report(db: &Database, log: &QueryLog) -> AuditReport {
        let engine = AuditEngine::new(db, log);
        let expr = parse_audit(
            "DURING 1/1/1970 TO now() AUDIT disease FROM Patients WHERE zipcode='120016'",
        )
        .unwrap();
        engine.audit_at(&expr, Timestamp(1_000)).unwrap()
    }

    #[test]
    fn violations_and_authorized_disclosures_split() {
        let (db, log, policy) = fixture();
        let r = report(&db, &log);
        assert_eq!(r.verdict.contributing.len(), 2);
        let assessments = assess(&r, &db, &log, &policy);
        assert_eq!(assessments.len(), 2);
        assert_eq!(assessments[0].class, AccessClass::AuthorizedDisclosure);
        match &assessments[1].class {
            AccessClass::PolicyViolation(denials) => {
                assert!(denials
                    .iter()
                    .any(|d| matches!(d, Denial::ColumnNotAuthorized { column, .. } if column == &Ident::new("disease"))));
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn suggest_limits_matches_policy_channels() {
        let (_db, _log, policy) = fixture();
        let limits = suggest_limits(&policy, &[(Ident::new("Patients"), Ident::new("disease"))]);
        assert_eq!(limits.len(), 1);
        assert_eq!(limits[0].role, Some(Ident::new("doctor")));
        assert_eq!(limits[0].purpose, Some(Ident::new("healthcare")));
    }

    #[test]
    fn suggested_limits_restrict_the_audit() {
        // Plugging the suggested channels into Pos-Role-Purpose audits only
        // the legitimate channel — the paper's intended workflow when the
        // leak must have used an authorized path.
        let (db, log, policy) = fixture();
        let mut expr = parse_audit(
            "DURING 1/1/1970 TO now() AUDIT disease FROM Patients WHERE zipcode='120016'",
        )
        .unwrap();
        expr.pos_role_purpose =
            suggest_limits(&policy, &[(Ident::new("Patients"), Ident::new("disease"))])
                .into_iter()
                .map(|mut p| {
                    // Policy grants 'healthcare'; the log annotates the
                    // descendant 'treatment'. Pattern matching is exact, so
                    // widen to role-only here.
                    p.purpose = None;
                    p
                })
                .collect();
        let engine = AuditEngine::new(&db, &log);
        let r = engine.audit_at(&expr, Timestamp(1_000)).unwrap();
        assert_eq!(r.admitted.len(), 1);
        assert_eq!(r.verdict.contributing, vec![QueryId(1)]);
    }

    #[test]
    fn unresolvable_queries_classified() {
        let (db, log, policy) = fixture();
        log.record_text(
            "SELECT x FROM Ghost",
            Timestamp(30),
            AccessContext::new("doc1", "doctor", "treatment"),
        )
        .unwrap();
        let mut r = report(&db, &log);
        // Force the ghost query into the contributing list to exercise the
        // classifier directly.
        r.verdict.contributing.push(QueryId(3));
        let assessments = assess(&r, &db, &log, &policy);
        assert_eq!(assessments.last().unwrap().class, AccessClass::Unresolvable);
    }
}
