//! `audex-core` — the unified audit expression model of Goyal, Gupta &
//! Gupta (ICDE 2008): target data views over data versions, a granule-based
//! suspicion model expressing every prior notion, limiting parameters, and
//! an end-to-end audit engine.
//!
//! The model's three constituents (paper §3) map to modules:
//!
//! * **Target data view** (§3.1) — [`target`]: the sensitive data under
//!   disclosure review, computed over the `DATA-INTERVAL` data versions.
//! * **Suspicion notion** (§3.2) — [`attrspec`] (the Table 6 attribute
//!   algebra → granule *schemes*), [`granule`] (schemes × THRESHOLD ×
//!   INDISPENSABLE → the granule set `G`), [`suspicion`] (accessibility and
//!   batch evaluation), and [`notions`] (the prior-work notions, both as
//!   granule encodings and as direct baselines).
//! * **Limiting parameters** (§3.3) — [`limits`], building on
//!   `audex_log::AccessFilter` with negative precedence.
//!
//! [`engine::AuditEngine`] runs the full pipeline (filter → static
//! candidates → semantic evaluation); [`rank::OnlineAuditor`] implements the
//! §4 future-work online suspicion ranking.
//!
//! ```
//! use audex_core::AuditEngine;
//! use audex_log::{AccessContext, QueryLog};
//! use audex_sql::{parse_audit, parse_statement, Timestamp};
//! use audex_storage::Database;
//!
//! let mut db = Database::new();
//! db.execute(&parse_statement("CREATE TABLE Patients (pid TEXT, zipcode TEXT, disease TEXT)").unwrap(), Timestamp(0)).unwrap();
//! db.execute(&parse_statement("INSERT INTO Patients VALUES ('p1','120016','cancer')").unwrap(), Timestamp(1)).unwrap();
//!
//! let log = QueryLog::new();
//! log.record_text("SELECT zipcode FROM Patients WHERE disease='cancer'",
//!                 Timestamp(50), AccessContext::new("u1","nurse","treatment")).unwrap();
//!
//! let engine = AuditEngine::new(&db, &log);
//! let audit = parse_audit("DURING 1/1/1970 TO now() AUDIT disease FROM Patients WHERE zipcode='120016'").unwrap();
//! let report = engine.audit_at(&audit, Timestamp(1000)).unwrap();
//! assert!(report.verdict.suspicious);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Robustness policy: library code must surface failures as structured
// errors, never panic on them (tests are exempt via clippy.toml).
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod attrspec;
pub mod candidate;
pub mod catalog;
pub mod compliance;
pub mod dispatch;
pub mod engine;
pub mod error;
pub mod governor;
pub mod granule;
pub mod index;
pub mod limits;
pub mod notions;
pub mod parallel;
pub mod rank;
pub mod report;
pub mod static_batch;
pub mod suspicion;
pub mod target;

pub use attrspec::{normalize_with, NormalizedSpec, ResolvedColumn, Scheme};
pub use candidate::BaseColumn;
pub use candidate::CandidateChecker;
pub use catalog::{base_name, AuditScope};
pub use compliance::{assess, suggest_limits, AccessClass, Assessment};
pub use dispatch::{AuditId, DispatchIndex, DispatchMode, DispatchStats};
pub use engine::{AuditEngine, AuditMode, AuditReport, EngineObs, EngineOptions, PreparedAudit};
pub use error::AuditError;
pub use governor::{AuditPhase, Governor, ResourceLimits};
pub use granule::{binomial, Granule, GranuleModel};
pub use index::{QueryFootprint, TouchIndex};
pub use parallel::{default_parallelism, par_map};
pub use rank::{AuditBatchState, OnlineAuditor, QueryScore, ScoreEvidence};
pub use static_batch::{static_semantic_bound, static_weak_syntactic, StaticVerdict};
pub use suspicion::{BatchEvaluator, BatchVerdict, QueryContribution};
pub use target::{compute_target_view, TargetView, UFact};
