//! Online suspicion ranking — the paper's §4 future work, implemented.
//!
//! "In case of on line auditing, there is a need to determine the suspicion
//! rank, closeness value, of a queries batch for a given set of audit
//! expressions." The [`OnlineAuditor`] holds a set of prepared audit
//! expressions; every incoming query is scored against each of them without
//! re-deriving the target views, and running batch state is maintained so
//! the *batch* degree is always current.

use audex_storage::{Database, JoinStrategy};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use crate::attrspec::ResolvedColumn;
use crate::candidate::BaseColumn;
use crate::engine::PreparedAudit;
use crate::error::AuditError;
use crate::granule::binomial;
use crate::suspicion::BatchEvaluator;
use audex_log::{LoggedQuery, QueryId};

/// A per-query, per-audit score.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryScore {
    /// Which prepared audit this score is against.
    pub audit_idx: usize,
    /// Fraction of `U`'s facts the query shares a tuple with (0..=1).
    pub fact_coverage: f64,
    /// Fraction of the audit's relevant columns the query accessed (0..=1).
    pub column_coverage: f64,
    /// The combined closeness value: `fact_coverage · column_coverage`.
    pub closeness: f64,
}

/// Running batch state for one audit.
///
/// Public (with public fields) so a durability layer can checkpoint the
/// auditor's accumulated state and restore it without re-observing every
/// logged query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditBatchState {
    /// Fact indices of `U` touched so far (indispensable mode).
    pub touched: BTreeSet<usize>,
    /// Accessed columns seen so far, in base identity.
    pub covered: BTreeSet<BaseColumn>,
    /// Per-fact exposed audit columns (value mode).
    pub exposure: BTreeMap<usize, BTreeSet<ResolvedColumn>>,
    /// Ids that contributed, in arrival order.
    pub contributing: Vec<QueryId>,
}

/// Scores queries online against a set of prepared audits.
///
/// The auditor does not borrow the database: every observation takes it as
/// an argument, so a long-running owner (the streaming service) can
/// interleave DML with scoring. Each prepared audit stays pinned to the
/// target view computed when it was prepared — re-prepare and
/// [`OnlineAuditor::push`] again to pick up later data.
pub struct OnlineAuditor {
    audits: Vec<PreparedAudit>,
    states: Vec<AuditBatchState>,
    strategy: JoinStrategy,
}

impl OnlineAuditor {
    /// Builds an online auditor over prepared audits.
    pub fn new(audits: Vec<PreparedAudit>) -> Self {
        let mut oa =
            OnlineAuditor { audits: Vec::new(), states: Vec::new(), strategy: JoinStrategy::Auto };
        for a in audits {
            oa.push(a);
        }
        oa
    }

    /// Adds a prepared audit with fresh batch state; returns its index.
    pub fn push(&mut self, audit: PreparedAudit) -> usize {
        self.audits.push(audit);
        self.states.push(AuditBatchState::default());
        self.audits.len() - 1
    }

    /// A clone of audit `i`'s accumulated batch state, for checkpointing.
    pub fn export_state(&self, i: usize) -> AuditBatchState {
        self.states[i].clone()
    }

    /// Clones of all batch states, in audit order.
    pub fn export_states(&self) -> Vec<AuditBatchState> {
        self.states.clone()
    }

    /// Replaces every audit's batch state with checkpointed ones — the
    /// inverse of [`OnlineAuditor::export_states`]. Fails (leaving the
    /// auditor untouched) when the count does not match the audits held.
    pub fn restore_states(&mut self, states: Vec<AuditBatchState>) -> Result<(), AuditError> {
        if states.len() != self.audits.len() {
            return Err(AuditError::Internal(format!(
                "cannot restore {} batch states onto {} audits",
                states.len(),
                self.audits.len()
            )));
        }
        self.states = states;
        Ok(())
    }

    /// Removes audit `i` and its state; later indices shift down by one.
    pub fn remove(&mut self, i: usize) -> PreparedAudit {
        self.states.remove(i);
        self.audits.remove(i)
    }

    /// The prepared audit at index `i`.
    pub fn audit(&self, i: usize) -> &PreparedAudit {
        &self.audits[i]
    }

    /// Number of audits being watched.
    pub fn audit_count(&self) -> usize {
        self.audits.len()
    }

    /// Observes one query: updates batch state and returns its scores
    /// against every audit (only audits it contributed to are listed).
    pub fn observe(
        &mut self,
        db: &Database,
        q: &Arc<LoggedQuery>,
    ) -> Result<Vec<QueryScore>, AuditError> {
        let mut scores = Vec::new();
        for (i, prepared) in self.audits.iter().enumerate() {
            if !prepared.filter.admits(q) {
                continue;
            }
            let evaluator = BatchEvaluator::new(
                db,
                &prepared.scope,
                &prepared.model,
                &prepared.view,
                self.strategy,
            );
            let Some(contrib) = evaluator.contribution(q) else { continue };
            if contrib.is_empty() {
                continue;
            }

            let n = prepared.view.len().max(1);
            let relevant: BTreeSet<BaseColumn> = prepared
                .spec
                .all_columns()
                .iter()
                .filter_map(|c| prepared.scope.base_of_column(c))
                .collect();
            let covered_relevant = contrib.covered_columns.intersection(&relevant).count() as f64;
            let fact_coverage = if prepared.model.indispensable {
                contrib.touched_facts.len() as f64 / n as f64
            } else {
                contrib.exposed.len() as f64 / n as f64
            };
            let column_coverage =
                if relevant.is_empty() { 0.0 } else { covered_relevant / relevant.len() as f64 };

            let state = &mut self.states[i];
            state.touched.extend(contrib.touched_facts.iter().copied());
            state.covered.extend(contrib.covered_columns.iter().cloned());
            for (fi, cols) in &contrib.exposed {
                state.exposure.entry(*fi).or_default().extend(cols.iter().cloned());
            }
            // Pure tuple-witnesses (no audited column) still feed the batch
            // state above but are not listed as contributors.
            if covered_relevant > 0.0 || !contrib.exposed.is_empty() {
                state.contributing.push(q.id);
            }

            scores.push(QueryScore {
                audit_idx: i,
                fact_coverage,
                column_coverage,
                closeness: fact_coverage * column_coverage,
            });
        }
        Ok(scores)
    }

    /// The current batch degree for audit `i` (same counting rule as
    /// [`BatchEvaluator::evaluate`]).
    pub fn degree(&self, i: usize) -> f64 {
        let prepared = &self.audits[i];
        let state = &self.states[i];
        let n = prepared.view.len();
        let k = prepared.model.k_for(n);
        let mut accessed: u128 = 0;
        for scheme in prepared.model.spec.schemes() {
            let m = if prepared.model.indispensable {
                let covered = scheme.iter().all(|c| {
                    prepared.scope.base_of_column(c).is_some_and(|bc| state.covered.contains(&bc))
                });
                if covered {
                    state.touched.len() as u64
                } else {
                    0
                }
            } else {
                prepared
                    .view
                    .facts
                    .iter()
                    .enumerate()
                    .filter(|(fi, _)| {
                        state
                            .exposure
                            .get(fi)
                            .is_some_and(|cols| scheme.iter().all(|c| cols.contains(c)))
                    })
                    .count() as u64
            };
            accessed = accessed.saturating_add(binomial(m, k));
        }
        let total = prepared.model.count(n);
        if total == 0 {
            0.0
        } else {
            accessed as f64 / total as f64
        }
    }

    /// True when audit `i`'s batch has turned suspicious.
    pub fn is_suspicious(&self, i: usize) -> bool {
        self.degree(i) > 0.0
    }

    /// Ids that contributed to audit `i`, in arrival order.
    pub fn contributing(&self, i: usize) -> &[QueryId] {
        &self.states[i].contributing
    }

    /// Queries ranked by total closeness across all audits (descending):
    /// the paper's "degree of suspiciousness for user queries on line".
    pub fn ranking(
        &mut self,
        db: &Database,
        batch: &[Arc<LoggedQuery>],
    ) -> Result<Vec<(QueryId, f64)>, AuditError> {
        let mut totals: BTreeMap<QueryId, f64> = BTreeMap::new();
        for q in batch {
            let scores = self.observe(db, q)?;
            let sum: f64 = scores.iter().map(|s| s.closeness).sum();
            *totals.entry(q.id).or_insert(0.0) += sum;
        }
        let mut out: Vec<(QueryId, f64)> = totals.into_iter().collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AuditEngine;
    use audex_log::{AccessContext, QueryLog};
    use audex_sql::ast::TypeName;
    use audex_sql::{parse_audit, parse_query, Ident, Timestamp};
    use audex_storage::Schema;

    fn db() -> Database {
        let mut db = Database::new();
        let p = Ident::new("Patients");
        db.create_table(
            p.clone(),
            Schema::of(&[
                ("pid", TypeName::Text),
                ("name", TypeName::Text),
                ("zipcode", TypeName::Text),
                ("disease", TypeName::Text),
            ]),
            Timestamp(0),
        )
        .unwrap();
        for (pid, name, zip, dis) in [
            ("p1", "Jane", "120016", "cancer"),
            ("p2", "Reku", "145568", "diabetic"),
            ("p3", "Lucy", "120016", "flu"),
        ] {
            db.insert(&p, vec![pid.into(), name.into(), zip.into(), dis.into()], Timestamp(10))
                .unwrap();
        }
        db
    }

    fn q(id: u64, sql: &str) -> Arc<LoggedQuery> {
        Arc::new(LoggedQuery {
            id: QueryId(id),
            query: parse_query(sql).unwrap(),
            text: sql.into(),
            executed_at: Timestamp(100),
            context: AccessContext::new("u", "r", "p"),
        })
    }

    fn auditor(db: &Database, exprs: &[&str]) -> OnlineAuditor {
        let log = QueryLog::new();
        let engine = AuditEngine::new(db, &log);
        let prepared: Vec<PreparedAudit> = exprs
            .iter()
            .map(|t| {
                let mut e = parse_audit(t).unwrap();
                // Watch all times.
                e.during = Some(audex_sql::ast::TimeInterval {
                    start: audex_sql::ast::TsSpec::At(Timestamp(0)),
                    end: audex_sql::ast::TsSpec::At(Timestamp(10_000)),
                });
                engine.prepare(&e, Timestamp(1000)).unwrap()
            })
            .collect();
        OnlineAuditor::new(prepared)
    }

    #[test]
    fn observe_scores_contributing_query() {
        let db = db();
        let mut oa = auditor(&db, &["AUDIT disease FROM Patients WHERE zipcode='120016'"]);
        let scores =
            oa.observe(&db, &q(1, "SELECT disease FROM Patients WHERE zipcode='120016'")).unwrap();
        assert_eq!(scores.len(), 1);
        assert!((scores[0].fact_coverage - 1.0).abs() < 1e-9);
        assert!(scores[0].closeness > 0.9);
        assert!(oa.is_suspicious(0));
    }

    #[test]
    fn innocent_query_scores_nothing() {
        let db = db();
        let mut oa = auditor(&db, &["AUDIT disease FROM Patients WHERE zipcode='120016'"]);
        let scores =
            oa.observe(&db, &q(1, "SELECT name FROM Patients WHERE zipcode='145568'")).unwrap();
        assert!(scores.is_empty());
        assert!(!oa.is_suspicious(0));
    }

    #[test]
    fn batch_accumulates_across_observations() {
        let db = db();
        let mut oa = auditor(&db, &["AUDIT (name, disease) FROM Patients WHERE zipcode='120016'"]);
        oa.observe(&db, &q(1, "SELECT name FROM Patients WHERE zipcode='120016'")).unwrap();
        assert!(!oa.is_suspicious(0), "name alone is not enough");
        oa.observe(&db, &q(2, "SELECT disease FROM Patients WHERE zipcode='120016'")).unwrap();
        assert!(oa.is_suspicious(0), "together they cover the scheme");
        assert_eq!(oa.contributing(0), &[QueryId(1), QueryId(2)]);
    }

    #[test]
    fn ranking_orders_by_closeness() {
        let db = db();
        let mut oa = auditor(&db, &["AUDIT disease FROM Patients WHERE zipcode='120016'"]);
        let ranked = oa
            .ranking(
                &db,
                &[
                    q(1, "SELECT pid FROM Patients WHERE zipcode='145568'"), // innocent
                    q(2, "SELECT disease FROM Patients WHERE pid='p1'"),     // partial
                    q(3, "SELECT disease FROM Patients WHERE zipcode='120016'"), // full
                ],
            )
            .unwrap();
        assert_eq!(ranked[0].0, QueryId(3));
        assert_eq!(ranked[1].0, QueryId(2));
        assert!(ranked[0].1 > ranked[1].1);
        assert_eq!(ranked[2].1, 0.0);
    }

    #[test]
    fn multiple_audits_scored_independently() {
        let db = db();
        let mut oa = auditor(
            &db,
            &[
                "AUDIT disease FROM Patients WHERE zipcode='120016'",
                "AUDIT name FROM Patients WHERE zipcode='145568'",
            ],
        );
        assert_eq!(oa.audit_count(), 2);
        let s = oa.observe(&db, &q(1, "SELECT name FROM Patients WHERE zipcode='145568'")).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].audit_idx, 1);
        assert!(!oa.is_suspicious(0));
        assert!(oa.is_suspicious(1));
    }

    #[test]
    fn during_filter_applies_online() {
        let db = db();
        let log = QueryLog::new();
        let engine = AuditEngine::new(&db, &log);
        let e = parse_audit("DURING 1/1/1970 TO 1/1/1970 AUDIT disease FROM Patients").unwrap();
        let prepared = engine.prepare(&e, Timestamp(1000)).unwrap();
        let mut oa = OnlineAuditor::new(vec![prepared]);
        // Query executed outside DURING: ignored.
        let s = oa.observe(&db, &q(1, "SELECT disease FROM Patients")).unwrap();
        assert!(s.is_empty());
    }
}
