//! Online suspicion ranking — the paper's §4 future work, implemented.
//!
//! "In case of on line auditing, there is a need to determine the suspicion
//! rank, closeness value, of a queries batch for a given set of audit
//! expressions." The [`OnlineAuditor`] holds a set of prepared audit
//! expressions; every incoming query is scored against each of them without
//! re-deriving the target views, and running batch state is maintained so
//! the *batch* degree is always current.
//!
//! Audits are addressed by **stable ids** ([`AuditId`]): ids survive
//! [`OnlineAuditor::remove`], so holders (service registrations,
//! checkpoints, verdict events) never mis-address state when an earlier
//! audit is unregistered. Scoring runs in one of two modes
//! ([`DispatchMode`]): the default probes the [`crate::dispatch`] index and
//! evaluates only the shortlisted audits; `ScanAll` evaluates every audit
//! and serves as the differential oracle — both produce bit-identical
//! scores and batch state.

use audex_storage::{Database, JoinStrategy};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use crate::attrspec::ResolvedColumn;
use crate::candidate::BaseColumn;
use crate::dispatch::{AuditId, DispatchIndex, DispatchMode, DispatchStats};
use crate::engine::PreparedAudit;
use crate::error::AuditError;
use crate::granule::binomial;
use crate::index::QueryFootprint;
use crate::suspicion::{
    projected_base_columns, BatchEvaluator, FactProbeCache, QueryContribution, SharedQueryState,
};
use audex_log::{LoggedQuery, QueryId};

/// Fact indices and columns carried in [`ScoreEvidence`] are capped at this
/// many entries so evidence stays cheap to clone, journal, and render.
const EVIDENCE_SAMPLE: usize = 16;

/// Structured evidence behind one [`QueryScore`] — which target-view facts
/// the query touched or exposed and which audit-relevant columns it
/// accessed. Extracted from the same [`QueryContribution`] (and therefore
/// the same shared execution) that produced the score, so carrying it costs
/// no extra query run. Deterministic: identical across dispatch modes and
/// thread counts, because it is derived purely from the contribution's
/// ordered sets.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScoreEvidence {
    /// Facts of `U` the query shared an indispensable tuple with.
    pub touched: u64,
    /// Facts whose protected values the query's result set exposed.
    pub exposed: u64,
    /// The first [`EVIDENCE_SAMPLE`] touched fact indices, ascending.
    pub touched_sample: Vec<usize>,
    /// The first [`EVIDENCE_SAMPLE`] exposed fact indices, ascending.
    pub exposed_sample: Vec<usize>,
    /// Audit-relevant columns the query accessed, in base identity
    /// (ascending; the intersection of `C_Q` with the audit's scheme
    /// columns).
    pub covered_columns: Vec<BaseColumn>,
}

/// A per-query, per-audit score.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryScore {
    /// Which prepared audit this score is against.
    pub audit: AuditId,
    /// Fraction of `U`'s facts the query shares a tuple with (0..=1).
    pub fact_coverage: f64,
    /// Fraction of the audit's relevant columns the query accessed (0..=1).
    pub column_coverage: f64,
    /// The combined closeness value: `fact_coverage · column_coverage`.
    pub closeness: f64,
    /// Why: the facts and columns behind the numbers.
    pub evidence: ScoreEvidence,
}

/// Running batch state for one audit.
///
/// Public (with public fields) so a durability layer can checkpoint the
/// auditor's accumulated state and restore it without re-observing every
/// logged query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditBatchState {
    /// Fact indices of `U` touched so far (indispensable mode).
    pub touched: BTreeSet<usize>,
    /// Accessed columns seen so far, in base identity.
    pub covered: BTreeSet<BaseColumn>,
    /// Per-fact exposed audit columns (value mode).
    pub exposure: BTreeMap<usize, BTreeSet<ResolvedColumn>>,
    /// Ids that contributed, in arrival order.
    pub contributing: Vec<QueryId>,
}

struct AuditEntry {
    prepared: PreparedAudit,
    state: AuditBatchState,
    /// Per-audit fact-probe maps (see [`FactProbeCache`]): built on the
    /// first query sharing a base-table signature, reused by every later
    /// one, so full-scan queries that legitimately shortlist this audit
    /// stop paying a per-fact scan on every observation.
    probe: FactProbeCache,
}

/// Scores queries online against a set of prepared audits.
///
/// The auditor does not borrow the database: every observation takes it as
/// an argument, so a long-running owner (the streaming service) can
/// interleave DML with scoring. Each prepared audit stays pinned to the
/// target view computed when it was prepared — re-prepare and
/// [`OnlineAuditor::push`] again to pick up later data.
pub struct OnlineAuditor {
    /// Keyed by stable id; iteration order is registration order.
    entries: BTreeMap<AuditId, AuditEntry>,
    next_id: u64,
    strategy: JoinStrategy,
    dispatch: DispatchIndex,
    mode: DispatchMode,
}

impl OnlineAuditor {
    /// Builds an online auditor over prepared audits.
    pub fn new(audits: Vec<PreparedAudit>) -> Self {
        let mut oa = OnlineAuditor {
            entries: BTreeMap::new(),
            next_id: 0,
            strategy: JoinStrategy::Auto,
            dispatch: DispatchIndex::default(),
            mode: DispatchMode::default(),
        };
        for a in audits {
            oa.push(a);
        }
        oa
    }

    /// Adds a prepared audit with fresh batch state; returns its stable id.
    /// Ids are assigned monotonically and never reused.
    pub fn push(&mut self, audit: PreparedAudit) -> AuditId {
        let id = AuditId(self.next_id);
        self.next_id += 1;
        self.dispatch.insert(id, &audit);
        self.entries.insert(
            id,
            AuditEntry {
                prepared: audit,
                state: AuditBatchState::default(),
                probe: FactProbeCache::default(),
            },
        );
        id
    }

    /// Removes an audit and its state; every other id stays valid. Returns
    /// `None` for an unknown id.
    pub fn remove(&mut self, id: AuditId) -> Option<PreparedAudit> {
        let entry = self.entries.remove(&id)?;
        self.dispatch.remove(id);
        if self.dispatch.needs_compaction() {
            self.dispatch.rebuild(self.entries.iter().map(|(i, e)| (*i, &e.prepared)));
        }
        Some(entry.prepared)
    }

    /// A clone of an audit's accumulated batch state, for checkpointing.
    pub fn export_state(&self, id: AuditId) -> Option<AuditBatchState> {
        self.entries.get(&id).map(|e| e.state.clone())
    }

    /// Clones of all batch states, in ascending-id (registration) order.
    pub fn export_states(&self) -> Vec<AuditBatchState> {
        self.entries.values().map(|e| e.state.clone()).collect()
    }

    /// Replaces every audit's batch state with checkpointed ones, in
    /// ascending-id order — the inverse of [`OnlineAuditor::export_states`].
    /// Fails (leaving the auditor untouched) when the count does not match
    /// the audits held.
    pub fn restore_states(&mut self, states: Vec<AuditBatchState>) -> Result<(), AuditError> {
        if states.len() != self.entries.len() {
            return Err(AuditError::Internal(format!(
                "cannot restore {} batch states onto {} audits",
                states.len(),
                self.entries.len()
            )));
        }
        for (entry, state) in self.entries.values_mut().zip(states) {
            entry.state = state;
        }
        Ok(())
    }

    /// The prepared audit registered under `id`.
    pub fn audit(&self, id: AuditId) -> Option<&PreparedAudit> {
        self.entries.get(&id).map(|e| &e.prepared)
    }

    /// Registered ids in ascending (registration) order.
    pub fn ids(&self) -> Vec<AuditId> {
        self.entries.keys().copied().collect()
    }

    /// Number of audits being watched.
    pub fn audit_count(&self) -> usize {
        self.entries.len()
    }

    /// Selects how [`OnlineAuditor::observe`] finds candidate audits.
    pub fn set_mode(&mut self, mode: DispatchMode) {
        self.mode = mode;
    }

    /// Sets the join strategy used for query executions. An owner that
    /// also maintains a [`crate::TouchIndex`] must pass the same strategy
    /// it indexes with, so the shared execution behind
    /// [`OnlineAuditor::observe_with_footprint`] yields the footprint the
    /// index would have computed itself.
    pub fn set_strategy(&mut self, strategy: JoinStrategy) {
        self.strategy = strategy;
    }

    /// The active dispatch mode.
    pub fn mode(&self) -> DispatchMode {
        self.mode
    }

    /// A copy of the dispatch index's pruning counters, with the per-audit
    /// fact-probe cache counters summed in.
    pub fn dispatch_stats(&self) -> DispatchStats {
        let mut stats = self.dispatch.stats();
        for e in self.entries.values() {
            stats.fact_probe_builds += e.probe.builds;
            stats.fact_probe_hits += e.probe.hits;
        }
        stats
    }

    /// Wires the `audex_dispatch_*` metric series into `registry`.
    pub fn set_obs(&mut self, registry: &audex_obs::Registry) {
        self.dispatch.set_obs(registry);
    }

    /// Observes one query: updates batch state and returns its scores
    /// against every audit (only audits it contributed to are listed),
    /// ascending by audit id.
    pub fn observe(
        &mut self,
        db: &Database,
        q: &Arc<LoggedQuery>,
    ) -> Result<Vec<QueryScore>, AuditError> {
        match self.mode {
            DispatchMode::ScanAll => self.observe_scan_all(db, q),
            DispatchMode::Indexed => Ok(self.observe_indexed(db, q, false).0),
        }
    }

    /// [`OnlineAuditor::observe`] that additionally returns the query's
    /// [`QueryFootprint`] **from the same execution** the scoring used.
    /// This is the streaming-ingest fast path: the service needs both the
    /// scores and the touch-index footprint for every logged query, and
    /// executing the query once instead of twice roughly doubles sustained
    /// ingest throughput. In `ScanAll` mode (the differential oracle) the
    /// footprint is computed by a separate execution, exactly like the
    /// pre-dispatch service loop, so the oracle stays a faithful baseline.
    /// `None` marks a query the touch index would skip (unresolvable scope
    /// or failed execution).
    pub fn observe_with_footprint(
        &mut self,
        db: &Database,
        q: &Arc<LoggedQuery>,
    ) -> Result<(Vec<QueryScore>, Option<QueryFootprint>), AuditError> {
        match self.mode {
            DispatchMode::ScanAll => {
                let scores = self.observe_scan_all(db, q)?;
                let mut shared = SharedQueryState::new(db, q);
                let fp = shared.footprint(db, q, self.strategy);
                Ok((scores, fp))
            }
            DispatchMode::Indexed => Ok(self.observe_indexed(db, q, true)),
        }
    }

    /// The differential oracle: evaluates every registered audit.
    fn observe_scan_all(
        &mut self,
        db: &Database,
        q: &Arc<LoggedQuery>,
    ) -> Result<Vec<QueryScore>, AuditError> {
        let strategy = self.strategy;
        let mut scores = Vec::new();
        for (id, entry) in self.entries.iter_mut() {
            let AuditEntry { prepared, state, probe } = entry;
            if !prepared.filter.admits(q) {
                continue;
            }
            let evaluator =
                BatchEvaluator::new(db, &prepared.scope, &prepared.model, &prepared.view, strategy);
            // One fresh execution per audit (the oracle stays the faithful
            // slow baseline), but the fact-probe maps are per-audit and
            // query-independent, so both modes share the entry's cache.
            let mut shared = SharedQueryState::new(db, q);
            let contrib = match evaluator.try_contribution_with(q, &mut shared, probe) {
                Ok(Some(c)) => c,
                _ => continue,
            };
            if contrib.is_empty() {
                continue;
            }
            scores.push(score_and_update(*id, prepared, state, &contrib, q));
        }
        Ok(scores)
    }

    /// Probe → shortlist → evaluate-shortlist-only. Every prune is sound
    /// (the skipped audit's contribution is provably empty, so the scan-all
    /// path would skip it too without touching state), and shortlisted
    /// audits share one query execution via [`SharedQueryState`] — the
    /// scores and state mutations are bit-identical to the scan-all path.
    /// With `want_footprint` the same shared execution also yields the
    /// query's touch-index footprint (forcing the execution if no audit
    /// needed it — the index wants every query's footprint regardless).
    fn observe_indexed(
        &mut self,
        db: &Database,
        q: &Arc<LoggedQuery>,
        want_footprint: bool,
    ) -> (Vec<QueryScore>, Option<QueryFootprint>) {
        let live = self.entries.len();
        let strategy = self.strategy;
        let mut shared = SharedQueryState::new(db, q);

        let Some(q_scope) = shared.q_scope() else {
            // The query itself does not resolve: every contribution would
            // be `None`, so nothing can score or mutate state — and the
            // touch index would skip it for the same reason.
            self.dispatch.note_probe();
            self.dispatch.record_shortlist(0, live);
            return (Vec::new(), None);
        };
        let q_bases: BTreeSet<audex_sql::Ident> =
            q_scope.entries().iter().map(|e| e.base.clone()).collect();
        let projected = projected_base_columns(q, q_scope);

        let mut probe = self.dispatch.probe(q, &q_bases, &projected);
        if !probe.indisp.is_empty() {
            match shared.lineage_pairs(db, q, strategy) {
                Some(pairs) => self.dispatch.narrow_by_tids(&mut probe.indisp, &pairs),
                None => {
                    // Execution failed: every shortlisted audit would skip.
                    probe.indisp.clear();
                    probe.value.clear();
                }
            }
        }

        let mut shortlist = probe.value;
        shortlist.union(&probe.indisp);
        self.dispatch.record_shortlist(shortlist.count(), live);

        let mut scores = Vec::new();
        for slot in shortlist.iter() {
            let Some(id) = self.dispatch.id_at(slot) else { continue };
            let Some(entry) = self.entries.get_mut(&id) else { continue };
            let AuditEntry { prepared, state, probe } = entry;
            if !prepared.filter.admits(q) {
                continue;
            }
            let evaluator =
                BatchEvaluator::new(db, &prepared.scope, &prepared.model, &prepared.view, strategy);
            let contrib = match evaluator.try_contribution_with(q, &mut shared, probe) {
                Ok(Some(c)) => c,
                _ => continue,
            };
            if contrib.is_empty() {
                continue;
            }
            scores.push(score_and_update(id, prepared, state, &contrib, q));
        }
        let fp = if want_footprint { shared.footprint(db, q, strategy) } else { None };
        (scores, fp)
    }

    /// The current batch degree for an audit (same counting rule as
    /// [`BatchEvaluator::evaluate`]); `0.0` for an unknown id.
    pub fn degree(&self, id: AuditId) -> f64 {
        let Some(entry) = self.entries.get(&id) else { return 0.0 };
        let prepared = &entry.prepared;
        let state = &entry.state;
        let n = prepared.view.len();
        let k = prepared.model.k_for(n);
        let mut accessed: u128 = 0;
        for scheme in prepared.model.spec.schemes() {
            let m = if prepared.model.indispensable {
                let covered = scheme.iter().all(|c| {
                    prepared.scope.base_of_column(c).is_some_and(|bc| state.covered.contains(&bc))
                });
                if covered {
                    state.touched.len() as u64
                } else {
                    0
                }
            } else {
                prepared
                    .view
                    .facts
                    .iter()
                    .enumerate()
                    .filter(|(fi, _)| {
                        state
                            .exposure
                            .get(fi)
                            .is_some_and(|cols| scheme.iter().all(|c| cols.contains(c)))
                    })
                    .count() as u64
            };
            accessed = accessed.saturating_add(binomial(m, k));
        }
        let total = prepared.model.count(n);
        if total == 0 {
            0.0
        } else {
            accessed as f64 / total as f64
        }
    }

    /// True when an audit's batch has turned suspicious.
    pub fn is_suspicious(&self, id: AuditId) -> bool {
        self.degree(id) > 0.0
    }

    /// Ids that contributed to an audit, in arrival order.
    pub fn contributing(&self, id: AuditId) -> &[QueryId] {
        self.entries.get(&id).map(|e| e.state.contributing.as_slice()).unwrap_or(&[])
    }

    /// Queries ranked by total closeness across all audits (descending):
    /// the paper's "degree of suspiciousness for user queries on line".
    pub fn ranking(
        &mut self,
        db: &Database,
        batch: &[Arc<LoggedQuery>],
    ) -> Result<Vec<(QueryId, f64)>, AuditError> {
        let mut totals: BTreeMap<QueryId, f64> = BTreeMap::new();
        for q in batch {
            let scores = self.observe(db, q)?;
            let sum: f64 = scores.iter().map(|s| s.closeness).sum();
            *totals.entry(q.id).or_insert(0.0) += sum;
        }
        let mut out: Vec<(QueryId, f64)> = totals.into_iter().collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        Ok(out)
    }
}

/// Scores one non-empty contribution and folds it into the batch state —
/// the single scoring rule both dispatch modes share.
fn score_and_update(
    id: AuditId,
    prepared: &PreparedAudit,
    state: &mut AuditBatchState,
    contrib: &QueryContribution,
    q: &LoggedQuery,
) -> QueryScore {
    let n = prepared.view.len().max(1);
    let relevant: BTreeSet<BaseColumn> = prepared
        .spec
        .all_columns()
        .iter()
        .filter_map(|c| prepared.scope.base_of_column(c))
        .collect();
    let covered_relevant_cols: Vec<BaseColumn> =
        contrib.covered_columns.intersection(&relevant).cloned().collect();
    let covered_relevant = covered_relevant_cols.len() as f64;
    let fact_coverage = if prepared.model.indispensable {
        contrib.touched_facts.len() as f64 / n as f64
    } else {
        contrib.exposed.len() as f64 / n as f64
    };
    let column_coverage =
        if relevant.is_empty() { 0.0 } else { covered_relevant / relevant.len() as f64 };

    state.touched.extend(contrib.touched_facts.iter().copied());
    state.covered.extend(contrib.covered_columns.iter().cloned());
    for (fi, cols) in &contrib.exposed {
        state.exposure.entry(*fi).or_default().extend(cols.iter().cloned());
    }
    // Pure tuple-witnesses (no audited column) still feed the batch state
    // above but are not listed as contributors.
    if covered_relevant > 0.0 || !contrib.exposed.is_empty() {
        state.contributing.push(q.id);
    }

    QueryScore {
        audit: id,
        fact_coverage,
        column_coverage,
        closeness: fact_coverage * column_coverage,
        evidence: ScoreEvidence {
            touched: contrib.touched_facts.len() as u64,
            exposed: contrib.exposed.len() as u64,
            touched_sample: contrib.touched_facts.iter().copied().take(EVIDENCE_SAMPLE).collect(),
            exposed_sample: contrib.exposed.keys().copied().take(EVIDENCE_SAMPLE).collect(),
            covered_columns: covered_relevant_cols,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AuditEngine;
    use audex_log::{AccessContext, QueryLog};
    use audex_sql::ast::TypeName;
    use audex_sql::{parse_audit, parse_query, Ident, Timestamp};
    use audex_storage::Schema;

    fn db() -> Database {
        let mut db = Database::new();
        let p = Ident::new("Patients");
        db.create_table(
            p.clone(),
            Schema::of(&[
                ("pid", TypeName::Text),
                ("name", TypeName::Text),
                ("zipcode", TypeName::Text),
                ("disease", TypeName::Text),
            ]),
            Timestamp(0),
        )
        .unwrap();
        for (pid, name, zip, dis) in [
            ("p1", "Jane", "120016", "cancer"),
            ("p2", "Reku", "145568", "diabetic"),
            ("p3", "Lucy", "120016", "flu"),
        ] {
            db.insert(&p, vec![pid.into(), name.into(), zip.into(), dis.into()], Timestamp(10))
                .unwrap();
        }
        db
    }

    fn q(id: u64, sql: &str) -> Arc<LoggedQuery> {
        Arc::new(LoggedQuery::new(
            QueryId(id),
            parse_query(sql).unwrap(),
            sql.into(),
            Timestamp(100),
            AccessContext::new("u", "r", "p"),
        ))
    }

    fn prepare(db: &Database, text: &str) -> PreparedAudit {
        let log = QueryLog::new();
        let engine = AuditEngine::new(db, &log);
        let mut e = parse_audit(text).unwrap();
        // Watch all times.
        e.during = Some(audex_sql::ast::TimeInterval {
            start: audex_sql::ast::TsSpec::At(Timestamp(0)),
            end: audex_sql::ast::TsSpec::At(Timestamp(10_000)),
        });
        engine.prepare(&e, Timestamp(1000)).unwrap()
    }

    fn auditor(db: &Database, exprs: &[&str]) -> OnlineAuditor {
        OnlineAuditor::new(exprs.iter().map(|t| prepare(db, t)).collect())
    }

    #[test]
    fn observe_scores_contributing_query() {
        let db = db();
        let mut oa = auditor(&db, &["AUDIT disease FROM Patients WHERE zipcode='120016'"]);
        let scores =
            oa.observe(&db, &q(1, "SELECT disease FROM Patients WHERE zipcode='120016'")).unwrap();
        assert_eq!(scores.len(), 1);
        assert!((scores[0].fact_coverage - 1.0).abs() < 1e-9);
        assert!(scores[0].closeness > 0.9);
        assert!(oa.is_suspicious(AuditId(0)));
    }

    #[test]
    fn innocent_query_scores_nothing() {
        let db = db();
        let mut oa = auditor(&db, &["AUDIT disease FROM Patients WHERE zipcode='120016'"]);
        let scores =
            oa.observe(&db, &q(1, "SELECT name FROM Patients WHERE zipcode='145568'")).unwrap();
        assert!(scores.is_empty());
        assert!(!oa.is_suspicious(AuditId(0)));
    }

    #[test]
    fn batch_accumulates_across_observations() {
        let db = db();
        let mut oa = auditor(&db, &["AUDIT (name, disease) FROM Patients WHERE zipcode='120016'"]);
        oa.observe(&db, &q(1, "SELECT name FROM Patients WHERE zipcode='120016'")).unwrap();
        assert!(!oa.is_suspicious(AuditId(0)), "name alone is not enough");
        oa.observe(&db, &q(2, "SELECT disease FROM Patients WHERE zipcode='120016'")).unwrap();
        assert!(oa.is_suspicious(AuditId(0)), "together they cover the scheme");
        assert_eq!(oa.contributing(AuditId(0)), &[QueryId(1), QueryId(2)]);
    }

    #[test]
    fn ranking_orders_by_closeness() {
        let db = db();
        let mut oa = auditor(&db, &["AUDIT disease FROM Patients WHERE zipcode='120016'"]);
        let ranked = oa
            .ranking(
                &db,
                &[
                    q(1, "SELECT pid FROM Patients WHERE zipcode='145568'"), // innocent
                    q(2, "SELECT disease FROM Patients WHERE pid='p1'"),     // partial
                    q(3, "SELECT disease FROM Patients WHERE zipcode='120016'"), // full
                ],
            )
            .unwrap();
        assert_eq!(ranked[0].0, QueryId(3));
        assert_eq!(ranked[1].0, QueryId(2));
        assert!(ranked[0].1 > ranked[1].1);
        assert_eq!(ranked[2].1, 0.0);
    }

    #[test]
    fn multiple_audits_scored_independently() {
        let db = db();
        let mut oa = auditor(
            &db,
            &[
                "AUDIT disease FROM Patients WHERE zipcode='120016'",
                "AUDIT name FROM Patients WHERE zipcode='145568'",
            ],
        );
        assert_eq!(oa.audit_count(), 2);
        let s = oa.observe(&db, &q(1, "SELECT name FROM Patients WHERE zipcode='145568'")).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].audit, AuditId(1));
        assert!(!oa.is_suspicious(AuditId(0)));
        assert!(oa.is_suspicious(AuditId(1)));
    }

    #[test]
    fn during_filter_applies_online() {
        let db = db();
        let log = QueryLog::new();
        let engine = AuditEngine::new(&db, &log);
        let e = parse_audit("DURING 1/1/1970 TO 1/1/1970 AUDIT disease FROM Patients").unwrap();
        let prepared = engine.prepare(&e, Timestamp(1000)).unwrap();
        let mut oa = OnlineAuditor::new(vec![prepared]);
        // Query executed outside DURING: ignored.
        let s = oa.observe(&db, &q(1, "SELECT disease FROM Patients")).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn ids_stay_stable_across_remove() {
        let db = db();
        let mut oa = auditor(
            &db,
            &[
                "AUDIT disease FROM Patients WHERE zipcode='120016'",
                "AUDIT name FROM Patients WHERE zipcode='145568'",
                "AUDIT name FROM Patients WHERE zipcode='120016'",
            ],
        );
        assert_eq!(oa.ids(), vec![AuditId(0), AuditId(1), AuditId(2)]);
        let removed = oa.remove(AuditId(0)).unwrap();
        assert_eq!(removed.scope.bases(), vec![Ident::new("Patients")]);
        assert_eq!(oa.ids(), vec![AuditId(1), AuditId(2)]);
        assert!(oa.remove(AuditId(0)).is_none(), "ids are never reused");

        // AuditId(1) still addresses the 145568 audit after the removal.
        let s = oa.observe(&db, &q(1, "SELECT name FROM Patients WHERE zipcode='145568'")).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].audit, AuditId(1));
        assert!(oa.is_suspicious(AuditId(1)));
        assert!(!oa.is_suspicious(AuditId(2)));

        // A new registration gets a fresh id, not a recycled one.
        let id = oa.push(prepare(&db, "AUDIT zipcode FROM Patients"));
        assert_eq!(id, AuditId(3));
    }

    #[test]
    fn dispatch_matches_scan_all() {
        let db = db();
        let exprs = [
            "AUDIT disease FROM Patients WHERE zipcode='120016'",
            "AUDIT (name, disease) FROM Patients WHERE zipcode='120016'",
            "INDISPENSABLE false AUDIT name FROM Patients WHERE zipcode='120016'",
            "AUDIT name FROM Patients WHERE zipcode='999999'", // empty view
        ];
        let queries = [
            q(1, "SELECT zipcode FROM Patients WHERE disease='cancer'"),
            q(2, "SELECT name FROM Patients WHERE disease='cancer'"),
            q(3, "SELECT pid FROM Patients WHERE zipcode='120016'"),
            q(4, "SELECT name FROM Patients"),
            q(5, "SELECT nope FROM NoTable"),
        ];
        let mut indexed = auditor(&db, &exprs);
        let mut scan = auditor(&db, &exprs);
        scan.set_mode(DispatchMode::ScanAll);
        for lq in &queries {
            let a = indexed.observe(&db, lq).unwrap();
            let b = scan.observe(&db, lq).unwrap();
            assert_eq!(a, b, "scores diverge on {}", lq.text);
        }
        assert_eq!(indexed.export_states(), scan.export_states());
        let stats = indexed.dispatch_stats();
        assert_eq!(stats.probes, queries.len() as u64);
        assert!(stats.pruned > 0, "the empty-view audit at least must be pruned");
    }
}
