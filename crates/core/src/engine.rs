//! The end-to-end audit engine.
//!
//! Mirrors the Agrawal et al. pipeline the paper builds on, extended with
//! the unified model's clauses:
//!
//! 1. **Limiting parameters** (§3.3) filter the query log — `DURING`,
//!    role/purpose/user clauses with negative precedence.
//! 2. **Static candidate analysis** (Definition 1) prunes queries that
//!    provably cannot be suspicious, without touching data.
//! 3. **Target view** `U` is computed over the `DATA-INTERVAL` versions
//!    (§3.1) and the **granule model** (§3.2) is instantiated from the
//!    AUDIT/INDISPENSABLE/THRESHOLD clauses.
//! 4. **Semantic evaluation** runs the candidates against the backlog and
//!    decides which granules were accessed.

use audex_sql::ast::AuditExpr;
use audex_sql::Timestamp;
use audex_storage::{Database, JoinStrategy};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use crate::attrspec::{normalize_with, NormalizedSpec};
use crate::candidate::CandidateChecker;
use crate::catalog::AuditScope;
use crate::error::AuditError;
use crate::governor::{AuditPhase, Governor, ResourceLimits};
use crate::granule::GranuleModel;
use crate::limits::{build_filter, resolve_interval};
use crate::suspicion::{BatchEvaluator, BatchVerdict};
use crate::target::{compute_target_view_governed, TargetView};
use audex_log::{AccessFilter, LoggedQuery, QueryId, QueryLog};

/// How verdicts are produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AuditMode {
    /// The whole admitted log is one batch (Motwani et al. style).
    #[default]
    Batch,
    /// Each query is audited in isolation (Agrawal et al. style), plus the
    /// batch verdict.
    PerQuery,
}

/// Engine knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Run the static candidate filter before semantic evaluation
    /// (disable to measure its benefit — bench B2).
    pub static_filter: bool,
    /// Join strategy for every internal query (bench B6).
    pub strategy: JoinStrategy,
    /// Verdict granularity.
    pub mode: AuditMode,
    /// Resource limits armed into a fresh [`Governor`] at the start of every
    /// top-level audit call. Unlimited by default.
    pub limits: ResourceLimits,
    /// Worker threads for batch suspicion evaluation, per-query refinement,
    /// touch-index construction, and [`AuditEngine::audit_many`] fan-out.
    /// Defaults to the machine's available cores; `1` runs the exact
    /// sequential path (no threads are spawned). Reports are byte-identical
    /// at every setting.
    pub parallelism: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            static_filter: true,
            strategy: JoinStrategy::Auto,
            mode: AuditMode::Batch,
            limits: ResourceLimits::unlimited(),
            parallelism: crate::parallel::default_parallelism(),
        }
    }
}

/// An audit expression resolved and bound to a database: scope, schemes,
/// target view, and granule model, reusable across batches.
#[derive(Clone)]
pub struct PreparedAudit {
    /// The parsed expression.
    pub expr: AuditExpr,
    /// Resolved `FROM` scope.
    pub scope: AuditScope,
    /// Normalized scheme antichain.
    pub spec: NormalizedSpec,
    /// The granule-generating notion.
    pub model: GranuleModel,
    /// The computed target view `U`.
    pub view: TargetView,
    /// The log filter from the limiting parameters.
    pub filter: AccessFilter,
    /// The reference "current time" used for `now()` and defaults.
    pub now: Timestamp,
}

impl PreparedAudit {
    /// Renders the granule set `G` (paper Figs. 4–6); refuses above `limit`.
    pub fn render_granules(&self, limit: u64) -> Result<String, AuditError> {
        self.model.render_set(&self.view, limit)
    }
}

/// The full outcome of one audit run.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// Printable form of the audited expression.
    pub expr_text: String,
    /// Log entries admitted by the limiting parameters.
    pub admitted: Vec<QueryId>,
    /// Admitted entries surviving static candidate analysis.
    pub candidates: Vec<QueryId>,
    /// Admitted entries pruned statically.
    pub pruned: Vec<QueryId>,
    /// The data versions `U` was computed over.
    pub versions: Vec<Timestamp>,
    /// `|U|`.
    pub target_size: usize,
    /// The batch verdict.
    pub verdict: BatchVerdict,
    /// Per-query verdicts (only in [`AuditMode::PerQuery`]): the queries
    /// that are suspicious *in isolation* (Definition 3).
    pub per_query_suspicious: Vec<QueryId>,
    /// Pipeline phases that ran to completion, in execution order. A
    /// truncated audit is thereby distinguishable from a clean one.
    pub phases: Vec<AuditPhase>,
    /// When the optional per-query refinement was cut short by the governor,
    /// the error that stopped it. The batch verdict above is still complete;
    /// only `per_query_suspicious` is partial.
    pub truncation: Option<AuditError>,
}

impl AuditReport {
    /// The headline answer: ids of queries the auditor should review —
    /// contributing queries of the batch verdict.
    pub fn suspicious_queries(&self) -> &[QueryId] {
        &self.verdict.contributing
    }

    /// True when every phase the run attempted finished untruncated.
    pub fn is_complete(&self) -> bool {
        self.truncation.is_none()
    }
}

/// True for errors raised by the [`Governor`] (as opposed to errors in the
/// audit expression or the data it touches).
fn is_governor_error(e: &AuditError) -> bool {
    matches!(
        e,
        AuditError::DeadlineExceeded { .. }
            | AuditError::BudgetExhausted { .. }
            | AuditError::Cancelled { .. }
    )
}

/// Telemetry handles for the audit pipeline: a metrics registry (per-phase
/// duration histograms, governor step counter) and a phase tracer.
///
/// The default is fully disconnected — every span and histogram is a no-op
/// — so [`EngineOptions`] stays `Copy` and un-instrumented callers pay
/// nothing. Attach with [`AuditEngine::with_obs`].
#[derive(Debug, Clone, Default)]
pub struct EngineObs {
    registry: Option<Arc<audex_obs::Registry>>,
    tracer: Option<Arc<audex_obs::Tracer>>,
}

impl EngineObs {
    /// Telemetry wired to `registry` and `tracer`.
    pub fn new(registry: Arc<audex_obs::Registry>, tracer: Arc<audex_obs::Tracer>) -> EngineObs {
        EngineObs { registry: Some(registry), tracer: Some(tracer) }
    }

    /// Opens a guard for one pipeline phase: a trace span plus a sample in
    /// the `audex_audit_phase_seconds{phase=...}` histogram, both recorded
    /// when the guard drops — on success *and* on error paths.
    pub fn phase(&self, name: &str) -> audex_obs::TimedSpan {
        let span = match &self.tracer {
            Some(t) => t.span(name),
            None => audex_obs::Span::noop(),
        };
        let hist = match &self.registry {
            Some(r) => r.latency_histogram(
                "audex_audit_phase_seconds",
                "Wall-clock per audit pipeline phase.",
                &[("phase", name)],
            ),
            None => audex_obs::Histogram::noop(),
        };
        audex_obs::TimedSpan::new(span, hist)
    }

    /// Adds one audit's governor step count to `audex_governor_steps_total`.
    fn record_governor_steps(&self, steps: u64) {
        if let Some(r) = &self.registry {
            r.counter(
                "audex_governor_steps_total",
                "Governor-metered work steps across all audits.",
                &[],
            )
            .add(steps);
        }
    }
}

/// The audit engine: a database (with backlog), a query log, and options.
pub struct AuditEngine<'a> {
    db: &'a Database,
    log: &'a QueryLog,
    options: EngineOptions,
    obs: EngineObs,
    /// Shared cancellation flag, armed into every governor this engine
    /// creates — so one handle cancels whatever audit the engine is running.
    cancel: Arc<AtomicBool>,
}

impl<'a> AuditEngine<'a> {
    /// Creates an engine with default options.
    pub fn new(db: &'a Database, log: &'a QueryLog) -> Self {
        Self::with_options(db, log, EngineOptions::default())
    }

    /// Creates an engine with explicit options.
    pub fn with_options(db: &'a Database, log: &'a QueryLog, options: EngineOptions) -> Self {
        AuditEngine {
            db,
            log,
            options,
            obs: EngineObs::default(),
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Attaches telemetry: per-phase duration histograms and trace spans
    /// for every subsequent audit. (A builder rather than an
    /// [`EngineOptions`] field so the options stay `Copy`.)
    pub fn with_obs(mut self, obs: EngineObs) -> Self {
        self.obs = obs;
        self
    }

    /// The options in effect.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// The engine's cancellation flag. Store `true` (from any thread) to
    /// stop the audits this engine is running with
    /// [`AuditError::Cancelled`].
    pub fn cancel_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel)
    }

    /// Arms a fresh governor for one top-level audit call.
    fn governor(&self) -> Governor {
        Governor::arm(&self.options.limits).with_cancel_flag(Arc::clone(&self.cancel))
    }

    /// Parses and audits an expression, taking "now" from the wall clock.
    pub fn audit_text(&self, expr_text: &str) -> Result<AuditReport, AuditError> {
        let expr = audex_sql::parse_audit(expr_text)?;
        self.audit_at(&expr, Timestamp::now())
    }

    /// Audits with an explicit "current time" (deterministic; `now()` in the
    /// expression and all clause defaults resolve against it). One governor
    /// covers preparation and evaluation: the deadline and step budget span
    /// the whole call.
    pub fn audit_at(&self, expr: &AuditExpr, now: Timestamp) -> Result<AuditReport, AuditError> {
        let governor = self.governor();
        let span = self.obs.phase("audit");
        let result = self
            .prepare_governed(expr, now, &governor)
            .and_then(|prepared| self.run_governed(&prepared, &governor));
        if result.is_err() {
            span.mark_truncated();
        }
        drop(span);
        self.obs.record_governor_steps(governor.steps());
        result
    }

    /// Resolves an expression against the database: scope, schemes, target
    /// view, granule model, and log filter.
    pub fn prepare(&self, expr: &AuditExpr, now: Timestamp) -> Result<PreparedAudit, AuditError> {
        self.prepare_governed(expr, now, &self.governor())
    }

    /// [`AuditEngine::prepare`] under a caller-supplied [`Governor`].
    pub fn prepare_governed(
        &self,
        expr: &AuditExpr,
        now: Timestamp,
        governor: &Governor,
    ) -> Result<PreparedAudit, AuditError> {
        let scope = AuditScope::resolve(self.db, &expr.from)?;
        let spec = normalize_with(&expr.audit, &scope)?;
        if spec.is_empty() {
            return Err(AuditError::EmptyAuditList);
        }
        let filter = build_filter(expr, now)?;

        let (ds, de) = resolve_interval(expr.data_interval.as_ref(), now)?;
        let versions = self.db.versions_in(&scope.bases(), ds, de);
        let span = self.obs.phase("target-view");
        let view = match compute_target_view_governed(
            self.db,
            expr,
            &scope,
            &spec,
            &versions,
            self.options.strategy,
            governor,
        ) {
            Ok(view) => view,
            Err(e) => {
                span.mark_truncated();
                return Err(e);
            }
        };
        drop(span);
        let model = GranuleModel {
            spec: spec.clone(),
            threshold: expr.threshold,
            indispensable: expr.indispensable,
        };
        governor.check_granules(model.count(view.len()))?;
        Ok(PreparedAudit { expr: expr.clone(), scope, spec, model, view, filter, now })
    }

    /// Audits many expressions over the same log, executing each logged
    /// query **once** via a [`crate::index::TouchIndex`] (the §4 "efficient
    /// algorithms" path). Verdicts are identical to running
    /// [`AuditEngine::audit_at`] per expression; limiting parameters apply
    /// per expression. Static pruning is irrelevant here — the index already
    /// paid the execution cost — so reports carry empty `pruned` lists.
    ///
    /// **Failure isolation.** Each expression yields its own
    /// `Result<AuditReport, AuditError>` entry: one poisoned expression (bad
    /// table, storage fault, tripped budget) does not take down the rest of
    /// the batch. Only a failure to build the shared index fails the whole
    /// call. One governor spans the call, so a deadline or step budget
    /// covers index construction plus every expression together.
    #[allow(clippy::type_complexity)]
    pub fn audit_many(
        &self,
        exprs: &[AuditExpr],
        now: Timestamp,
    ) -> Result<Vec<Result<AuditReport, AuditError>>, AuditError> {
        let governor = self.governor();
        let entries = self.log.snapshot();
        let span = self.obs.phase("index-build");
        let index = match crate::index::TouchIndex::build_governed_with(
            self.db,
            &entries,
            self.options.strategy,
            &governor,
            self.options.parallelism,
        ) {
            Ok(index) => index,
            Err(e) => {
                span.mark_truncated();
                return Err(e);
            }
        };
        drop(span);
        // Fan the expressions out across workers; results come back in
        // expression order either way, and each entry keeps its own Result
        // (failure isolation is unchanged by the parallel path).
        let out = if self.options.parallelism <= 1 || exprs.len() <= 1 {
            let mut out = Vec::with_capacity(exprs.len());
            for expr in exprs {
                out.push(self.audit_one_indexed(&index, &entries, expr, now, &governor));
            }
            out
        } else {
            crate::parallel::par_map(self.options.parallelism, exprs, |_, expr| {
                self.audit_one_indexed(&index, &entries, expr, now, &governor)
            })
        };
        self.obs.record_governor_steps(governor.steps());
        Ok(out)
    }

    /// One expression of [`AuditEngine::audit_many`]: prepare, filter, and
    /// evaluate against the shared touch index.
    fn audit_one_indexed(
        &self,
        index: &crate::index::TouchIndex,
        entries: &[Arc<LoggedQuery>],
        expr: &AuditExpr,
        now: Timestamp,
        governor: &Governor,
    ) -> Result<AuditReport, AuditError> {
        let prepared = self.prepare_governed(expr, now, governor)?;
        let admitted: Vec<QueryId> =
            entries.iter().filter(|e| prepared.filter.admits(e)).map(|e| e.id).collect();
        let admitted_set: std::collections::BTreeSet<QueryId> = admitted.iter().copied().collect();
        let span = self.obs.phase("index-audit");
        let verdict = match index.evaluate_governed(&prepared, &admitted_set, governor) {
            Ok(verdict) => verdict,
            Err(e) => {
                span.mark_truncated();
                return Err(e);
            }
        };
        drop(span);
        Ok(AuditReport {
            expr_text: prepared.expr.to_string(),
            candidates: admitted.clone(),
            admitted,
            pruned: Vec::new(),
            versions: prepared.view.versions.clone(),
            target_size: prepared.view.len(),
            verdict,
            per_query_suspicious: Vec::new(),
            phases: vec![AuditPhase::TargetView, AuditPhase::Indexing],
            truncation: None,
        })
    }

    /// Runs a prepared audit against the current log contents.
    pub fn run(&self, prepared: &PreparedAudit) -> Result<AuditReport, AuditError> {
        self.run_governed(prepared, &self.governor())
    }

    /// [`AuditEngine::run`] under a caller-supplied [`Governor`].
    ///
    /// **Graceful degradation.** The optional per-query refinement
    /// ([`AuditMode::PerQuery`]) runs after the batch verdict is complete;
    /// if the governor trips there, the report is returned anyway with the
    /// partial refinement and the stopping error recorded in
    /// [`AuditReport::truncation`], rather than discarding finished work.
    pub fn run_governed(
        &self,
        prepared: &PreparedAudit,
        governor: &Governor,
    ) -> Result<AuditReport, AuditError> {
        governor.check_granules(prepared.model.count(prepared.view.len()))?;
        let admitted: Vec<Arc<LoggedQuery>> =
            self.log.snapshot().into_iter().filter(|e| prepared.filter.admits(e)).collect();
        let admitted_ids: Vec<QueryId> = admitted.iter().map(|e| e.id).collect();
        let mut phases = vec![AuditPhase::TargetView];

        // Static pruning (Definition 1).
        let checker = CandidateChecker::new(
            &prepared.scope,
            &prepared.spec,
            prepared.expr.selection.as_ref(),
        )?;
        let span = self.obs.phase("candidate-filter");
        let (candidates, pruned) =
            match checker.partition(self.db, admitted, self.options.static_filter, governor) {
                Ok(parts) => parts,
                Err(e) => {
                    span.mark_truncated();
                    return Err(e);
                }
            };
        drop(span);
        let candidate_ids: Vec<QueryId> = candidates.iter().map(|e| e.id).collect();
        phases.push(AuditPhase::CandidateFilter);

        let evaluator = BatchEvaluator::new(
            self.db,
            &prepared.scope,
            &prepared.model,
            &prepared.view,
            self.options.strategy,
        )
        .with_governor(governor.clone())
        .with_parallelism(self.options.parallelism);
        let span = self.obs.phase("batch-suspicion");
        let verdict = match evaluator.evaluate(&candidates) {
            Ok(verdict) => verdict,
            Err(e) => {
                span.mark_truncated();
                return Err(e);
            }
        };
        drop(span);
        phases.push(AuditPhase::Suspicion);

        let refine_span = match self.options.mode {
            AuditMode::PerQuery => Some(self.obs.phase("refinement")),
            AuditMode::Batch => None,
        };
        let mut truncation = None;
        let per_query_suspicious = match self.options.mode {
            AuditMode::PerQuery if self.options.parallelism > 1 && candidates.len() > 1 => {
                // Parallel refinement: each candidate is a one-element batch
                // (so the evaluator's inner path stays sequential — no nested
                // fan-out), folded in candidate order. The first governor
                // error *in that order* truncates, matching where the
                // sequential loop would have stopped.
                let verdicts =
                    crate::parallel::par_map(self.options.parallelism, &candidates, |_, e| {
                        evaluator.evaluate(std::slice::from_ref(e))
                    });
                let mut out = Vec::new();
                for (e, v) in candidates.iter().zip(verdicts) {
                    match v {
                        Ok(v) => {
                            if v.suspicious {
                                out.push(e.id);
                            }
                        }
                        Err(err) if is_governor_error(&err) => {
                            truncation = Some(err);
                            break;
                        }
                        Err(err) => {
                            if let Some(s) = &refine_span {
                                s.mark_truncated();
                            }
                            return Err(err);
                        }
                    }
                }
                if truncation.is_none() {
                    phases.push(AuditPhase::PerQuery);
                }
                out
            }
            AuditMode::PerQuery => {
                let mut out = Vec::new();
                for e in &candidates {
                    match evaluator.evaluate(std::slice::from_ref(e)) {
                        Ok(v) => {
                            if v.suspicious {
                                out.push(e.id);
                            }
                        }
                        Err(e) if is_governor_error(&e) => {
                            truncation = Some(e);
                            break;
                        }
                        Err(e) => {
                            if let Some(s) = &refine_span {
                                s.mark_truncated();
                            }
                            return Err(e);
                        }
                    }
                }
                if truncation.is_none() {
                    phases.push(AuditPhase::PerQuery);
                }
                out
            }
            AuditMode::Batch => Vec::new(),
        };
        if let Some(s) = &refine_span {
            // A governor trip mid-refinement leaves a partial result; the
            // span closes either way, flagged so traces show the cut.
            if truncation.is_some() {
                s.mark_truncated();
            }
        }
        drop(refine_span);

        Ok(AuditReport {
            expr_text: prepared.expr.to_string(),
            admitted: admitted_ids,
            candidates: candidate_ids,
            pruned,
            versions: prepared.view.versions.clone(),
            target_size: prepared.view.len(),
            verdict,
            per_query_suspicious,
            phases,
            truncation,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use audex_log::AccessContext;
    use audex_sql::ast::TypeName;
    use audex_sql::{parse_audit, Ident};
    use audex_storage::Schema;

    fn fixture() -> (Database, QueryLog) {
        let mut db = Database::new();
        let p = Ident::new("Patients");
        db.create_table(
            p.clone(),
            Schema::of(&[
                ("pid", TypeName::Text),
                ("name", TypeName::Text),
                ("zipcode", TypeName::Text),
                ("disease", TypeName::Text),
            ]),
            Timestamp(0),
        )
        .unwrap();
        for (pid, name, zip, dis) in [
            ("p1", "Jane", "120016", "cancer"),
            ("p2", "Reku", "145568", "diabetic"),
            ("p3", "Lucy", "120016", "flu"),
        ] {
            db.insert(&p, vec![pid.into(), name.into(), zip.into(), dis.into()], Timestamp(10))
                .unwrap();
        }
        let log = QueryLog::new();
        log.record_text(
            "SELECT zipcode FROM Patients WHERE disease='cancer'",
            Timestamp(100),
            AccessContext::new("u1", "nurse", "treatment"),
        )
        .unwrap();
        log.record_text(
            "SELECT name FROM Patients WHERE zipcode='145568'",
            Timestamp(200),
            AccessContext::new("u2", "clerk", "marketing"),
        )
        .unwrap();
        log.record_text(
            "SELECT pid FROM Patients WHERE pid='p9'",
            Timestamp(300),
            AccessContext::new("u3", "nurse", "treatment"),
        )
        .unwrap();
        (db, log)
    }

    fn audit(db: &Database, log: &QueryLog, text: &str) -> AuditReport {
        let engine = AuditEngine::new(db, log);
        let expr = parse_audit(text).unwrap();
        engine.audit_at(&expr, Timestamp(1000)).unwrap()
    }

    #[test]
    fn end_to_end_suspicious_query_found() {
        let (db, log) = fixture();
        let r = audit(
            &db,
            &log,
            "DURING 1/1/1970 TO now() AUDIT disease FROM Patients WHERE zipcode='120016'",
        );
        assert!(r.verdict.suspicious);
        assert_eq!(r.suspicious_queries(), &[QueryId(1)]);
        assert_eq!(r.target_size, 2); // Jane, Lucy
    }

    #[test]
    fn during_filters_out_everything_by_default() {
        // Default DURING = "current day" of `now`; our log entries are at
        // the epoch, so nothing is admitted.
        let (db, log) = fixture();
        let engine = AuditEngine::new(&db, &log);
        let expr = parse_audit("AUDIT disease FROM Patients").unwrap();
        let r = engine.audit_at(&expr, Timestamp::from_ymd(2008, 4, 7).unwrap()).unwrap();
        assert!(r.admitted.is_empty());
        assert!(!r.verdict.suspicious);
    }

    #[test]
    fn limiting_parameters_exclude_roles() {
        let (db, log) = fixture();
        let r = audit(
            &db,
            &log,
            "Neg-Role-Purpose (nurse, -) DURING 1/1/1970 TO now() \
             AUDIT disease FROM Patients WHERE zipcode='120016'",
        );
        // q1 (the suspicious one) was run by a nurse — excluded.
        assert!(!r.verdict.suspicious);
        assert_eq!(r.admitted, vec![QueryId(2)]);
    }

    #[test]
    fn static_filter_prunes_irrelevant_queries() {
        let (db, log) = fixture();
        let r = audit(
            &db,
            &log,
            "DURING 1/1/1970 TO now() AUDIT disease FROM Patients WHERE zipcode='120016'",
        );
        // q2's predicate (zipcode='145568') contradicts the audit's
        // (zipcode='120016') — statically pruned. q3 survives: it covers no
        // audited column but could still witness an indispensable tuple.
        assert!(r.pruned.contains(&QueryId(2)));
        assert!(r.candidates.contains(&QueryId(1)));
        assert!(r.candidates.contains(&QueryId(3)));
    }

    #[test]
    fn disabling_static_filter_gives_same_verdict() {
        let (db, log) = fixture();
        let expr = parse_audit(
            "DURING 1/1/1970 TO now() AUDIT disease FROM Patients WHERE zipcode='120016'",
        )
        .unwrap();
        let with = AuditEngine::new(&db, &log).audit_at(&expr, Timestamp(1000)).unwrap();
        let without = AuditEngine::with_options(
            &db,
            &log,
            EngineOptions { static_filter: false, ..Default::default() },
        )
        .audit_at(&expr, Timestamp(1000))
        .unwrap();
        assert_eq!(with.verdict.suspicious, without.verdict.suspicious);
        assert_eq!(with.verdict.accessed_granules, without.verdict.accessed_granules);
        assert!(without.pruned.is_empty());
    }

    #[test]
    fn per_query_mode_reports_individuals() {
        let (db, log) = fixture();
        let engine = AuditEngine::with_options(
            &db,
            &log,
            EngineOptions { mode: AuditMode::PerQuery, ..Default::default() },
        );
        let expr = parse_audit(
            "DURING 1/1/1970 TO now() AUDIT disease FROM Patients WHERE zipcode='120016'",
        )
        .unwrap();
        let r = engine.audit_at(&expr, Timestamp(1000)).unwrap();
        assert_eq!(r.per_query_suspicious, vec![QueryId(1)]);
    }

    #[test]
    fn audit_text_parses_and_runs() {
        let (db, log) = fixture();
        let engine = AuditEngine::new(&db, &log);
        // `now()` is the wall clock here; entries are at the epoch, so the
        // default DURING admits nothing, but the call itself must succeed.
        let r = engine.audit_text("AUDIT disease FROM Patients").unwrap();
        assert!(r.admitted.is_empty());
        assert!(engine.audit_text("AUDIT FROM nope").is_err());
    }

    #[test]
    fn unknown_audit_table_is_error() {
        let (db, log) = fixture();
        let engine = AuditEngine::new(&db, &log);
        let expr = parse_audit("AUDIT x FROM NoSuch").unwrap();
        assert!(matches!(engine.audit_at(&expr, Timestamp(0)), Err(AuditError::UnknownTable(_))));
    }

    #[test]
    fn data_interval_controls_versions() {
        let (mut db, log) = fixture();
        db.execute(
            &audex_sql::parse_statement("UPDATE Patients SET zipcode='120016' WHERE pid='p2'")
                .unwrap(),
            Timestamp(500),
        )
        .unwrap();
        // Data interval covering both versions sees three matching patients.
        let engine = AuditEngine::new(&db, &log);
        let expr = parse_audit(
            "DURING 1/1/1970 TO now() DATA-INTERVAL 1/1/1970 TO now() \
             AUDIT disease FROM Patients WHERE zipcode='120016'",
        )
        .unwrap();
        let r = engine.audit_at(&expr, Timestamp(1000)).unwrap();
        assert_eq!(r.target_size, 3);
        assert!(r.versions.len() >= 2);
    }
}
