//! Resolution of the audit expression's limiting parameters (paper §3.3)
//! into a concrete [`AccessFilter`], and of its time clauses into intervals.

use audex_log::AccessFilter;
use audex_sql::ast::{AuditExpr, RolePurposePattern, TimeInterval};
use audex_sql::Timestamp;

use crate::error::AuditError;

/// Resolves a clause interval (or the paper's default, "the current day":
/// `current date:00-00-00` to the current timestamp) against `now`.
pub fn resolve_interval(
    interval: Option<&TimeInterval>,
    now: Timestamp,
) -> Result<(Timestamp, Timestamp), AuditError> {
    let (start, end) = match interval {
        Some(iv) => iv.resolve(now),
        None => (now.start_of_day(), now),
    };
    if start > end {
        return Err(AuditError::EmptyInterval { start, end });
    }
    Ok((start, end))
}

/// Builds the access filter: the four role/purpose/user clauses, the
/// `DURING` interval, and the Fig. 1 `OTHERTHAN PURPOSE` clause folded in as
/// negative `(-, purpose)` patterns (identical semantics: accesses with
/// those purposes are exempt from auditing).
pub fn build_filter(audit: &AuditExpr, now: Timestamp) -> Result<AccessFilter, AuditError> {
    let during = resolve_interval(audit.during.as_ref(), now)?;
    let mut neg = audit.neg_role_purpose.clone();
    for p in &audit.otherthan_purposes {
        neg.push(RolePurposePattern { role: None, purpose: Some(p.clone()) });
    }
    Ok(AccessFilter {
        neg_role_purpose: neg,
        pos_role_purpose: audit.pos_role_purpose.clone(),
        neg_users: audit.neg_users.clone(),
        pos_users: audit.pos_users.clone(),
        during: Some(during),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use audex_sql::{parse_audit, Ident};

    fn now() -> Timestamp {
        Timestamp::from_ymd_hms(2008, 4, 7, 15, 30, 0).unwrap()
    }

    #[test]
    fn default_during_is_current_day() {
        let a = parse_audit("AUDIT a FROM t").unwrap();
        let f = build_filter(&a, now()).unwrap();
        let (s, e) = f.during.unwrap();
        assert_eq!(s, Timestamp::from_ymd(2008, 4, 7).unwrap());
        assert_eq!(e, now());
    }

    #[test]
    fn explicit_during_resolves_now() {
        let a = parse_audit("DURING 1/1/2008 TO now() AUDIT a FROM t").unwrap();
        let f = build_filter(&a, now()).unwrap();
        let (s, e) = f.during.unwrap();
        assert_eq!(s, Timestamp::from_ymd(2008, 1, 1).unwrap());
        assert_eq!(e, now());
    }

    #[test]
    fn inverted_interval_rejected() {
        let a = parse_audit("DURING 2/1/2008 TO 1/1/2008 AUDIT a FROM t").unwrap();
        assert!(matches!(build_filter(&a, now()), Err(AuditError::EmptyInterval { .. })));
    }

    #[test]
    fn otherthan_purpose_folds_to_negative_patterns() {
        let a = parse_audit("OTHERTHAN PURPOSE marketing, billing AUDIT a FROM t").unwrap();
        let f = build_filter(&a, now()).unwrap();
        assert_eq!(f.neg_role_purpose.len(), 2);
        assert_eq!(f.neg_role_purpose[0].purpose, Some(Ident::new("marketing")));
        assert!(f.neg_role_purpose[0].role.is_none());
        // An access for 'marketing' is exempt; others are audited.
        assert!(!f.admits_parts(
            &Ident::new("u"),
            &Ident::new("r"),
            &Ident::new("marketing"),
            now()
        ));
        assert!(f.admits_parts(
            &Ident::new("u"),
            &Ident::new("r"),
            &Ident::new("treatment"),
            now()
        ));
    }

    #[test]
    fn clauses_carried_verbatim() {
        let a = parse_audit(
            "Neg-User-Identity u-9 Pos-Role-Purpose (doctor, treatment) AUDIT a FROM t",
        )
        .unwrap();
        let f = build_filter(&a, now()).unwrap();
        assert_eq!(f.neg_users, vec![Ident::new("u-9")]);
        assert_eq!(f.pos_role_purpose.len(), 1);
    }

    #[test]
    fn resolve_interval_data_interval_default() {
        let (s, e) = resolve_interval(None, now()).unwrap();
        assert_eq!(s, now().start_of_day());
        assert_eq!(e, now());
    }
}
