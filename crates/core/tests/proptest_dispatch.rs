//! Differential property tests on the standing-audit dispatch index: the
//! indexed `observe` path must be byte-identical to the scan-all oracle —
//! same `QueryScore`s in the same order, same batch states — under random
//! register/unregister interleavings, and the batch engine's reports over
//! the same scenarios are identical at 1 and 4 threads.

use audex_core::{
    AuditEngine, DispatchMode, EngineOptions, OnlineAuditor, PreparedAudit, QueryScore,
};
use audex_log::{AccessContext, LoggedQuery, QueryId, QueryLog};
use audex_sql::ast::{TimeInterval, TsSpec, TypeName};
use audex_sql::{parse_audit, parse_query, Ident, Timestamp};
use audex_storage::{Database, Schema};
use proptest::prelude::*;
use std::sync::Arc;

const ZIPS: [&str; 3] = ["120016", "145568", "300001"];
const DISEASES: [&str; 3] = ["cancer", "flu", "acne"];

/// Audit templates chosen to light up every dispatch layer: indispensable
/// (tid index), value mode (attribute index), empty view, a second base
/// table, a context filter, and a narrow DURING window.
const AUDITS: [&str; 7] = [
    "AUDIT disease FROM Patients WHERE zipcode = '120016'",
    "INDISPENSABLE false AUDIT (zipcode, disease) FROM Patients",
    "AUDIT disease FROM Patients WHERE zipcode = '999999'",
    "INDISPENSABLE false AUDIT ward FROM Visits",
    "OTHERTHAN PURPOSE treatment AUDIT disease FROM Patients",
    "AUDIT pid FROM Patients WHERE disease = 'cancer'",
    "INDISPENSABLE false AUDIT zipcode FROM Patients WHERE disease = 'flu'",
];

/// Query templates: audited-table hits, a Visits-only query, a cross-table
/// join, and one whose table does not resolve at all.
fn query_text(t: u8, i: usize) -> String {
    match t % 6 {
        0 => "SELECT zipcode FROM Patients WHERE disease = 'cancer'".to_string(),
        1 => format!("SELECT disease FROM Patients WHERE zipcode = '{}'", ZIPS[i % 3]),
        2 => "SELECT pid FROM Patients".to_string(),
        3 => "SELECT ward FROM Visits".to_string(),
        4 => "SELECT p.disease FROM Patients AS p, Visits AS v \
              WHERE p.pid = v.pid AND v.ward = 'oncology'"
            .to_string(),
        _ => "SELECT x FROM Ghost".to_string(),
    }
}

#[derive(Debug, Clone)]
enum Op {
    Register(u8),
    Unregister(u8),
    Query(u8),
}

#[derive(Debug, Clone)]
struct Scenario {
    rows: Vec<(u8, u8)>,
    ops: Vec<Op>,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    let op = (0u8..4, any::<u8>()).prop_map(|(kind, t)| match kind {
        0 => Op::Register(t % AUDITS.len() as u8),
        1 => Op::Unregister(t),
        _ => Op::Query(t),
    });
    (proptest::collection::vec((0u8..3, 0u8..3), 1..12), proptest::collection::vec(op, 4..28))
        .prop_map(|(rows, ops)| Scenario { rows, ops })
}

fn build_db(rows: &[(u8, u8)]) -> Database {
    let mut db = Database::new();
    let patients = Ident::new("Patients");
    db.create_table(
        patients.clone(),
        Schema::of(&[
            ("pid", TypeName::Text),
            ("zipcode", TypeName::Text),
            ("disease", TypeName::Text),
        ]),
        Timestamp(0),
    )
    .unwrap();
    let visits = Ident::new("Visits");
    db.create_table(
        visits.clone(),
        Schema::of(&[("pid", TypeName::Text), ("ward", TypeName::Text)]),
        Timestamp(0),
    )
    .unwrap();
    for (i, (z, d)) in rows.iter().enumerate() {
        db.insert(
            &patients,
            vec![format!("p{i}").into(), ZIPS[*z as usize].into(), DISEASES[*d as usize].into()],
            Timestamp(10),
        )
        .unwrap();
        if i % 2 == 0 {
            let ward = if *d == 0 { "oncology" } else { "general" };
            db.insert(&visits, vec![format!("p{i}").into(), ward.into()], Timestamp(10)).unwrap();
        }
    }
    db
}

fn prepare(db: &Database, template: u8) -> PreparedAudit {
    let log = QueryLog::new();
    let engine = AuditEngine::new(db, &log);
    let mut e = parse_audit(AUDITS[template as usize]).unwrap();
    // Template 5 watches a narrow window (only the first few queries), so
    // the interval tree genuinely prunes; everything else watches all time.
    let end = if template == 5 { 1004 } else { 100_000 };
    let iv = TimeInterval { start: TsSpec::At(Timestamp(0)), end: TsSpec::At(Timestamp(end)) };
    e.during = Some(iv);
    e.data_interval =
        Some(TimeInterval { start: TsSpec::At(Timestamp(0)), end: TsSpec::At(Timestamp(100_000)) });
    engine.prepare(&e, Timestamp(500)).unwrap()
}

fn logged(i: usize, text: &str) -> Arc<LoggedQuery> {
    let purpose = if i.is_multiple_of(2) { "treatment" } else { "marketing" };
    Arc::new(LoggedQuery::new(
        QueryId(i as u64),
        parse_query(text).unwrap(),
        text.into(),
        Timestamp(1_000 + i as i64),
        AccessContext::new(format!("u{i}"), "nurse", purpose),
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Differential: the dispatch-indexed observe path is byte-identical to
    /// the scan-all oracle under random register/unregister interleavings —
    /// per-query scores, final batch states, rankings, and ids all agree,
    /// while the index demonstrably prunes work.
    #[test]
    fn indexed_observe_matches_scan_all(s in scenario_strategy()) {
        let db = build_db(&s.rows);
        let mut indexed = OnlineAuditor::new(Vec::new());
        let mut oracle = OnlineAuditor::new(Vec::new());
        oracle.set_mode(DispatchMode::ScanAll);
        prop_assert_eq!(indexed.mode(), DispatchMode::Indexed);

        let mut registered = Vec::new();
        let mut evaluated_any = false;
        for (i, op) in s.ops.iter().enumerate() {
            match op {
                Op::Register(t) => {
                    let a = indexed.push(prepare(&db, *t));
                    let b = oracle.push(prepare(&db, *t));
                    prop_assert_eq!(a, b, "push must assign the same stable id");
                    registered.push(a);
                }
                Op::Unregister(t) => {
                    if registered.is_empty() {
                        continue;
                    }
                    let id = registered.remove(*t as usize % registered.len());
                    prop_assert!(indexed.remove(id).is_some());
                    prop_assert!(oracle.remove(id).is_some());
                }
                Op::Query(t) => {
                    let q = logged(i, &query_text(*t, i));
                    let a: Vec<QueryScore> = indexed.observe(&db, &q).unwrap();
                    let b: Vec<QueryScore> = oracle.observe(&db, &q).unwrap();
                    prop_assert_eq!(&a, &b, "scores diverge at op {} ({:?})", i, op);
                    evaluated_any = evaluated_any || !a.is_empty();
                }
            }
        }

        prop_assert_eq!(indexed.ids(), oracle.ids());
        prop_assert_eq!(indexed.export_states(), oracle.export_states());
        for id in indexed.ids() {
            prop_assert_eq!(indexed.is_suspicious(id), oracle.is_suspicious(id));
            prop_assert!((indexed.degree(id) - oracle.degree(id)).abs() == 0.0);
            prop_assert_eq!(indexed.contributing(id), oracle.contributing(id));
        }
        // The oracle never probes; the index probes once per observed query.
        let queries = s.ops.iter().filter(|o| matches!(o, Op::Query(_))).count() as u64;
        prop_assert_eq!(indexed.dispatch_stats().probes, queries);
        prop_assert_eq!(oracle.dispatch_stats().probes, 0);
        if evaluated_any {
            prop_assert!(indexed.dispatch_stats().shortlisted > 0);
        }

        // The online ranking (which re-observes a fresh batch) agrees too.
        let batch: Vec<_> = (0..3)
            .map(|k| logged(s.ops.len() + k, &query_text(k as u8, s.ops.len() + k)))
            .collect();
        prop_assert_eq!(
            indexed.ranking(&db, &batch).unwrap(),
            oracle.ranking(&db, &batch).unwrap()
        );
    }

    /// The batch engine over the same scenarios reports byte-identically at
    /// 1 and 4 threads — the dispatch refactor shares query execution state
    /// and must not have perturbed the engine's parallel fan-out.
    #[test]
    fn batch_reports_identical_at_1_and_4_threads(s in scenario_strategy()) {
        let db = build_db(&s.rows);
        let log = QueryLog::new();
        for (i, op) in s.ops.iter().enumerate() {
            if let Op::Query(t) = op {
                let purpose = if i.is_multiple_of(2) { "treatment" } else { "marketing" };
                log.record_text(
                    &query_text(*t, i),
                    Timestamp(1_000 + i as i64),
                    AccessContext::new(format!("u{i}"), "nurse", purpose),
                )
                .unwrap();
            }
        }
        let iv = TimeInterval {
            start: TsSpec::At(Timestamp(0)),
            end: TsSpec::At(Timestamp(100_000)),
        };
        let exprs: Vec<_> = AUDITS
            .iter()
            .map(|t| {
                let mut e = parse_audit(t).unwrap();
                e.during = Some(iv);
                e.data_interval = Some(iv);
                e
            })
            .collect();
        let seq = AuditEngine::with_options(
            &db,
            &log,
            EngineOptions { parallelism: 1, ..Default::default() },
        );
        let par = AuditEngine::with_options(
            &db,
            &log,
            EngineOptions { parallelism: 4, ..Default::default() },
        );
        let a = seq.audit_many(&exprs, Timestamp(100_000)).unwrap();
        let b = par.audit_many(&exprs, Timestamp(100_000)).unwrap();
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"), "byte-identical reports");
    }
}
