//! Property tests on the audit model: Table 6 normalization laws, granule
//! counting, and scheme-satisfaction monotonicity.

use audex_core::{normalize_with, GranuleModel, ResolvedColumn};
use audex_sql::ast::{AttrGroup, AttrItem, AttrNode, AttrSpec, Threshold};
use audex_sql::{ColumnRef, Ident, Timestamp};
use audex_storage::{Tid, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

const COLS: [&str; 5] = ["a", "b", "c", "d", "e"];

struct FiveCols;

impl audex_core::attrspec::ColumnResolver for FiveCols {
    fn resolve(&self, col: &ColumnRef) -> Result<ResolvedColumn, audex_core::AuditError> {
        if COLS.iter().any(|c| Ident::new(*c) == col.column) {
            Ok(ResolvedColumn::new("t", col.column.clone()))
        } else {
            Err(audex_core::AuditError::UnknownAuditColumn(col.column.value.clone()))
        }
    }
    fn all_columns(&self) -> Vec<ResolvedColumn> {
        COLS.iter().map(|c| ResolvedColumn::new("t", *c)).collect()
    }
}

fn attr_node_strategy() -> impl Strategy<Value = AttrNode> {
    let item = prop_oneof![
        (0usize..COLS.len())
            .prop_map(|i| AttrNode::Item(AttrItem::Column(ColumnRef::bare(COLS[i])))),
        Just(AttrNode::Item(AttrItem::Star)),
    ];
    item.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4)
                .prop_map(|m| AttrNode::Group(AttrGroup::Mandatory(m))),
            proptest::collection::vec(inner, 1..4)
                .prop_map(|m| AttrNode::Group(AttrGroup::Optional(m))),
        ]
    })
}

fn spec_strategy() -> impl Strategy<Value = AttrSpec> {
    proptest::collection::vec(attr_node_strategy(), 1..4).prop_map(|nodes| AttrSpec { nodes })
}

/// Brute-force semantics: does an accessed-column set satisfy the spec
/// formula (mandatory = AND, optional = OR, star = context-dependent)?
fn satisfies(nodes: &[AttrNode], accessed: &BTreeSet<&str>) -> bool {
    nodes.iter().all(|n| node_satisfied(n, accessed))
}

fn node_satisfied(n: &AttrNode, accessed: &BTreeSet<&str>) -> bool {
    match n {
        AttrNode::Item(AttrItem::Column(c)) => {
            accessed.iter().any(|a| Ident::new(*a) == c.column)
        }
        // A bare star in mandatory context: all columns.
        AttrNode::Item(AttrItem::Star) => COLS.iter().all(|c| accessed.contains(c)),
        AttrNode::Group(AttrGroup::Mandatory(m)) => m.iter().all(|x| node_satisfied(x, accessed)),
        AttrNode::Group(AttrGroup::Optional(m)) => m.iter().any(|x| match x {
            // A star inside an optional group: any one column suffices.
            AttrNode::Item(AttrItem::Star) => COLS.iter().any(|c| accessed.contains(c)),
            other => node_satisfied(other, accessed),
        }),
    }
}

fn all_subsets() -> Vec<BTreeSet<&'static str>> {
    (0u32..32)
        .map(|mask| {
            COLS.iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, c)| *c)
                .collect()
        })
        .collect()
}

fn tiny_view(n: usize) -> audex_core::TargetView {
    let col = ResolvedColumn::new("t", "a");
    audex_core::TargetView {
        columns: vec![col.clone()],
        facts: (0..n)
            .map(|i| audex_core::UFact {
                tids: vec![(Ident::new("t"), Tid(i as u64 + 1))],
                values: BTreeMap::from([(col.clone(), Value::Int(i as i64))]),
                first_seen: Timestamp(0),
            })
            .collect(),
        versions: vec![Timestamp(0)],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Normalization is semantics-preserving: for every subset of columns,
    /// the antichain is satisfied iff the original formula is.
    #[test]
    fn normalization_preserves_semantics(spec in spec_strategy()) {
        let norm = normalize_with(&spec, &FiveCols).unwrap();
        for subset in all_subsets() {
            let resolved: BTreeSet<ResolvedColumn> =
                subset.iter().map(|c| ResolvedColumn::new("t", *c)).collect();
            prop_assert_eq!(
                norm.satisfied_by(&resolved),
                satisfies(&spec.nodes, &subset),
                "spec {:?} subset {:?}", &spec, &subset
            );
        }
    }

    /// The antichain is minimal: no scheme is a subset of another, and
    /// dropping any column from any scheme breaks satisfaction via that
    /// scheme alone.
    #[test]
    fn normalization_is_minimal_antichain(spec in spec_strategy()) {
        let norm = normalize_with(&spec, &FiveCols).unwrap();
        let schemes = norm.schemes();
        for (i, s) in schemes.iter().enumerate() {
            for (j, t) in schemes.iter().enumerate() {
                if i != j {
                    prop_assert!(!s.is_subset(t), "scheme {i} ⊆ scheme {j}");
                }
            }
        }
    }

    /// Normalization is idempotent under re-encoding: turning the antichain
    /// back into a spec (one optional group of mandatory groups) and
    /// normalizing again yields the same antichain.
    #[test]
    fn normalization_round_trips(spec in spec_strategy()) {
        let norm = normalize_with(&spec, &FiveCols).unwrap();
        let reencoded = AttrSpec {
            nodes: vec![AttrNode::Group(AttrGroup::Optional(
                norm.schemes()
                    .iter()
                    .map(|s| AttrNode::Group(AttrGroup::Mandatory(
                        s.iter()
                            .map(|c| AttrNode::Item(AttrItem::Column(ColumnRef::bare(
                                c.column.value.clone(),
                            ))))
                            .collect(),
                    )))
                    .collect(),
            ))],
        };
        let renorm = normalize_with(&reencoded, &FiveCols).unwrap();
        prop_assert_eq!(norm, renorm);
    }

    /// Satisfaction is monotone in the accessed set.
    #[test]
    fn satisfaction_is_monotone(spec in spec_strategy(), mask in 0u32..32, extra in 0usize..5) {
        let norm = normalize_with(&spec, &FiveCols).unwrap();
        let small: BTreeSet<ResolvedColumn> = COLS.iter().enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, c)| ResolvedColumn::new("t", *c))
            .collect();
        let mut big = small.clone();
        big.insert(ResolvedColumn::new("t", COLS[extra]));
        if norm.satisfied_by(&small) {
            prop_assert!(norm.satisfied_by(&big));
        }
    }

    /// |G| = |schemes| · C(n, k), and lazy enumeration agrees with the
    /// closed form.
    #[test]
    fn granule_count_formula(spec in spec_strategy(), n in 0usize..8, k in 1u64..5) {
        let norm = normalize_with(&spec, &FiveCols).unwrap();
        let model = GranuleModel { spec: norm, threshold: Threshold::Count(k), indispensable: true };
        let view = tiny_view(n);
        let count = model.count(n);
        prop_assert_eq!(count, model.spec.len() as u128 * audex_core::binomial(n as u64, k));
        prop_assert_eq!(model.enumerate(&view).count() as u128, count);
    }

    /// THRESHOLD ALL always yields exactly one granule per scheme (for a
    /// non-empty view).
    #[test]
    fn threshold_all_one_granule_per_scheme(spec in spec_strategy(), n in 1usize..6) {
        let norm = normalize_with(&spec, &FiveCols).unwrap();
        let model = GranuleModel { spec: norm, threshold: Threshold::All, indispensable: true };
        prop_assert_eq!(model.count(n), model.spec.len() as u128);
    }
}
