//! Property tests on the audit model: Table 6 normalization laws, granule
//! counting, scheme-satisfaction monotonicity, and the governor's
//! zero-interference guarantee.

use audex_core::{normalize_with, GranuleModel, ResolvedColumn};
use audex_sql::ast::{AttrGroup, AttrItem, AttrNode, AttrSpec, Threshold};
use audex_sql::{ColumnRef, Ident, Timestamp};
use audex_storage::{Tid, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

const COLS: [&str; 5] = ["a", "b", "c", "d", "e"];

struct FiveCols;

impl audex_core::attrspec::ColumnResolver for FiveCols {
    fn resolve(&self, col: &ColumnRef) -> Result<ResolvedColumn, audex_core::AuditError> {
        if COLS.iter().any(|c| Ident::new(*c) == col.column) {
            Ok(ResolvedColumn::new("t", col.column.clone()))
        } else {
            Err(audex_core::AuditError::UnknownAuditColumn(col.column.value.clone()))
        }
    }
    fn all_columns(&self) -> Vec<ResolvedColumn> {
        COLS.iter().map(|c| ResolvedColumn::new("t", *c)).collect()
    }
}

fn attr_node_strategy() -> impl Strategy<Value = AttrNode> {
    let item = prop_oneof![
        (0usize..COLS.len())
            .prop_map(|i| AttrNode::Item(AttrItem::Column(ColumnRef::bare(COLS[i])))),
        Just(AttrNode::Item(AttrItem::Star)),
    ];
    item.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4)
                .prop_map(|m| AttrNode::Group(AttrGroup::Mandatory(m))),
            proptest::collection::vec(inner, 1..4)
                .prop_map(|m| AttrNode::Group(AttrGroup::Optional(m))),
        ]
    })
}

fn spec_strategy() -> impl Strategy<Value = AttrSpec> {
    proptest::collection::vec(attr_node_strategy(), 1..4).prop_map(|nodes| AttrSpec { nodes })
}

/// Brute-force semantics: does an accessed-column set satisfy the spec
/// formula (mandatory = AND, optional = OR, star = context-dependent)?
fn satisfies(nodes: &[AttrNode], accessed: &BTreeSet<&str>) -> bool {
    nodes.iter().all(|n| node_satisfied(n, accessed))
}

fn node_satisfied(n: &AttrNode, accessed: &BTreeSet<&str>) -> bool {
    match n {
        AttrNode::Item(AttrItem::Column(c)) => accessed.iter().any(|a| Ident::new(*a) == c.column),
        // A bare star in mandatory context: all columns.
        AttrNode::Item(AttrItem::Star) => COLS.iter().all(|c| accessed.contains(c)),
        AttrNode::Group(AttrGroup::Mandatory(m)) => m.iter().all(|x| node_satisfied(x, accessed)),
        AttrNode::Group(AttrGroup::Optional(m)) => m.iter().any(|x| match x {
            // A star inside an optional group: any one column suffices.
            AttrNode::Item(AttrItem::Star) => COLS.iter().any(|c| accessed.contains(c)),
            other => node_satisfied(other, accessed),
        }),
    }
}

fn all_subsets() -> Vec<BTreeSet<&'static str>> {
    (0u32..32)
        .map(|mask| {
            COLS.iter().enumerate().filter(|(i, _)| mask & (1 << i) != 0).map(|(_, c)| *c).collect()
        })
        .collect()
}

fn tiny_view(n: usize) -> audex_core::TargetView {
    let col = ResolvedColumn::new("t", "a");
    audex_core::TargetView {
        columns: vec![col.clone()],
        facts: (0..n)
            .map(|i| audex_core::UFact {
                tids: vec![(Ident::new("t"), Tid(i as u64 + 1))],
                values: BTreeMap::from([(col.clone(), Value::Int(i as i64))]),
                first_seen: Timestamp(0),
            })
            .collect(),
        versions: vec![Timestamp(0)],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Normalization is semantics-preserving: for every subset of columns,
    /// the antichain is satisfied iff the original formula is.
    #[test]
    fn normalization_preserves_semantics(spec in spec_strategy()) {
        let norm = normalize_with(&spec, &FiveCols).unwrap();
        for subset in all_subsets() {
            let resolved: BTreeSet<ResolvedColumn> =
                subset.iter().map(|c| ResolvedColumn::new("t", *c)).collect();
            prop_assert_eq!(
                norm.satisfied_by(&resolved),
                satisfies(&spec.nodes, &subset),
                "spec {:?} subset {:?}", &spec, &subset
            );
        }
    }

    /// The antichain is minimal: no scheme is a subset of another, and
    /// dropping any column from any scheme breaks satisfaction via that
    /// scheme alone.
    #[test]
    fn normalization_is_minimal_antichain(spec in spec_strategy()) {
        let norm = normalize_with(&spec, &FiveCols).unwrap();
        let schemes = norm.schemes();
        for (i, s) in schemes.iter().enumerate() {
            for (j, t) in schemes.iter().enumerate() {
                if i != j {
                    prop_assert!(!s.is_subset(t), "scheme {i} ⊆ scheme {j}");
                }
            }
        }
    }

    /// Normalization is idempotent under re-encoding: turning the antichain
    /// back into a spec (one optional group of mandatory groups) and
    /// normalizing again yields the same antichain.
    #[test]
    fn normalization_round_trips(spec in spec_strategy()) {
        let norm = normalize_with(&spec, &FiveCols).unwrap();
        let reencoded = AttrSpec {
            nodes: vec![AttrNode::Group(AttrGroup::Optional(
                norm.schemes()
                    .iter()
                    .map(|s| AttrNode::Group(AttrGroup::Mandatory(
                        s.iter()
                            .map(|c| AttrNode::Item(AttrItem::Column(ColumnRef::bare(
                                c.column.value.clone(),
                            ))))
                            .collect(),
                    )))
                    .collect(),
            ))],
        };
        let renorm = normalize_with(&reencoded, &FiveCols).unwrap();
        prop_assert_eq!(norm, renorm);
    }

    /// Satisfaction is monotone in the accessed set.
    #[test]
    fn satisfaction_is_monotone(spec in spec_strategy(), mask in 0u32..32, extra in 0usize..5) {
        let norm = normalize_with(&spec, &FiveCols).unwrap();
        let small: BTreeSet<ResolvedColumn> = COLS.iter().enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, c)| ResolvedColumn::new("t", *c))
            .collect();
        let mut big = small.clone();
        big.insert(ResolvedColumn::new("t", COLS[extra]));
        if norm.satisfied_by(&small) {
            prop_assert!(norm.satisfied_by(&big));
        }
    }

    /// |G| = |schemes| · C(n, k), and lazy enumeration agrees with the
    /// closed form.
    #[test]
    fn granule_count_formula(spec in spec_strategy(), n in 0usize..8, k in 1u64..5) {
        let norm = normalize_with(&spec, &FiveCols).unwrap();
        let model = GranuleModel { spec: norm, threshold: Threshold::Count(k), indispensable: true };
        let view = tiny_view(n);
        let count = model.count(n);
        prop_assert_eq!(count, model.spec.len() as u128 * audex_core::binomial(n as u64, k));
        prop_assert_eq!(model.enumerate(&view).count() as u128, count);
    }

    /// THRESHOLD ALL always yields exactly one granule per scheme (for a
    /// non-empty view).
    #[test]
    fn threshold_all_one_granule_per_scheme(spec in spec_strategy(), n in 1usize..6) {
        let norm = normalize_with(&spec, &FiveCols).unwrap();
        let model = GranuleModel { spec: norm, threshold: Threshold::All, indispensable: true };
        prop_assert_eq!(model.count(n), model.spec.len() as u128);
    }
}

// ---------------------------------------------------------------------------
// Differential: governing an audit must not change what it computes.
// ---------------------------------------------------------------------------

/// One randomly built scenario: a small versioned Patients table plus a
/// random query log, and a random audit expression over it.
#[derive(Debug, Clone)]
struct Scenario {
    rows: Vec<(u8, u8)>, // (zip index, disease index)
    batches: usize,      // rows are spread over this many insert instants
    queries: Vec<u8>,    // template indices
    audit: u8,           // audit-expression template index
    per_query: bool,
}

const ZIPS: [&str; 3] = ["120016", "145568", "300001"];
const DISEASES: [&str; 3] = ["cancer", "flu", "acne"];

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        proptest::collection::vec((0u8..3, 0u8..3), 1..16),
        1usize..4,
        proptest::collection::vec(0u8..5, 1..12),
        0u8..3,
        any::<bool>(),
    )
        .prop_map(|(rows, batches, queries, audit, per_query)| Scenario {
            rows,
            batches,
            queries,
            audit,
            per_query,
        })
}

fn build_scenario(
    s: &Scenario,
) -> (audex_storage::Database, audex_log::QueryLog, audex_sql::ast::AuditExpr) {
    use audex_sql::ast::{TimeInterval, TsSpec, TypeName};

    let mut db = audex_storage::Database::new();
    let patients = Ident::new("Patients");
    db.create_table(
        patients.clone(),
        audex_storage::Schema::of(&[
            ("pid", TypeName::Text),
            ("zipcode", TypeName::Text),
            ("disease", TypeName::Text),
        ]),
        Timestamp(0),
    )
    .unwrap();
    for (i, (z, d)) in s.rows.iter().enumerate() {
        // Spread inserts over `batches` distinct instants → several versions.
        let ts = Timestamp(10 + (i % s.batches) as i64 * 10);
        let ts = if ts < db.last_ts() { db.last_ts() } else { ts };
        db.insert(
            &patients,
            vec![format!("p{i}").into(), ZIPS[*z as usize].into(), DISEASES[*d as usize].into()],
            ts,
        )
        .unwrap();
    }

    let log = audex_log::QueryLog::new();
    for (i, t) in s.queries.iter().enumerate() {
        let text = match t {
            0 => "SELECT zipcode FROM Patients WHERE disease = 'cancer'".to_string(),
            1 => format!("SELECT disease FROM Patients WHERE zipcode = '{}'", ZIPS[i % 3]),
            2 => "SELECT pid FROM Patients".to_string(),
            3 => "SELECT pid, disease FROM Patients WHERE zipcode = '120016'".to_string(),
            // A self-join with an equi-predicate: exercises the hash-join
            // path (and its nested-loop fallback under JoinStrategy).
            _ => "SELECT a.pid FROM Patients AS a, Patients AS b \
                  WHERE a.zipcode = b.zipcode AND b.disease = 'cancer'"
                .to_string(),
        };
        log.record_text(
            &text,
            Timestamp(1_000 + i as i64),
            audex_log::AccessContext::new(format!("u{i}"), "nurse", "treatment"),
        )
        .unwrap();
    }

    let mut expr = audex_sql::parse_audit(match s.audit {
        0 => "AUDIT disease FROM Patients WHERE zipcode = '120016'",
        1 => "AUDIT (zipcode, disease) FROM Patients",
        _ => "AUDIT [pid, disease] FROM Patients WHERE disease = 'cancer'",
    })
    .unwrap();
    let iv = TimeInterval { start: TsSpec::At(Timestamp(0)), end: TsSpec::Now };
    expr.during = Some(iv);
    expr.data_interval = Some(iv);
    (db, log, expr)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Differential: an audit run under a governor with room to spare is
    /// byte-identical to the ungoverned run — threading resource checks
    /// through the pipeline must never perturb what it computes.
    #[test]
    fn generous_governor_changes_nothing(s in scenario_strategy()) {
        use audex_core::{AuditEngine, AuditMode, EngineOptions, ResourceLimits};

        let (db, log, expr) = build_scenario(&s);
        let mode = if s.per_query { AuditMode::PerQuery } else { AuditMode::Batch };
        let now = Timestamp(1_000_000);

        let plain = AuditEngine::with_options(
            &db,
            &log,
            EngineOptions { mode, ..Default::default() },
        );
        let governed = AuditEngine::with_options(
            &db,
            &log,
            EngineOptions {
                mode,
                limits: ResourceLimits {
                    deadline: Some(std::time::Duration::from_secs(3600)),
                    max_steps: Some(u64::MAX / 2),
                    granule_limit: Some(u64::MAX / 2),
                },
                ..Default::default()
            },
        );

        let a = plain.audit_at(&expr, now).unwrap();
        let b = governed.audit_at(&expr, now).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"), "byte-identical debug output");
        prop_assert!(a.is_complete() && b.is_complete());

        // The multi-audit path agrees with itself under a generous governor
        // too, and both match the direct path's verdict.
        let exprs = vec![expr.clone()];
        let many_plain = plain.audit_many(&exprs, now).unwrap();
        let many_gov = governed.audit_many(&exprs, now).unwrap();
        let mp = many_plain[0].as_ref().unwrap();
        let mg = many_gov[0].as_ref().unwrap();
        prop_assert_eq!(mp, mg);
        prop_assert_eq!(&mp.verdict.contributing, &a.verdict.contributing);
        prop_assert_eq!(mp.verdict.suspicious, a.verdict.suspicious);
    }

    /// Differential: `--threads N` ≡ `--threads 1`. The parallel fan-out
    /// (batch suspicion, per-query refinement, index build, audit_many)
    /// must produce byte-identical reports to the exact sequential path.
    #[test]
    fn parallel_threads_change_nothing(s in scenario_strategy()) {
        use audex_core::{AuditEngine, AuditMode, EngineOptions};
        use audex_sql::ast::{TimeInterval, TsSpec};

        let (db, log, expr) = build_scenario(&s);
        let mode = if s.per_query { AuditMode::PerQuery } else { AuditMode::Batch };
        let now = Timestamp(1_000_000);

        let seq = AuditEngine::with_options(
            &db,
            &log,
            EngineOptions { mode, parallelism: 1, ..Default::default() },
        );
        let par = AuditEngine::with_options(
            &db,
            &log,
            EngineOptions { mode, parallelism: 4, ..Default::default() },
        );

        let a = seq.audit_at(&expr, now).unwrap();
        let b = par.audit_at(&expr, now).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"), "byte-identical debug output");

        // audit_many fans expressions across workers: all three audit
        // templates at once, reports compared entry by entry in order.
        let iv = TimeInterval { start: TsSpec::At(Timestamp(0)), end: TsSpec::Now };
        let exprs: Vec<_> = [
            "AUDIT disease FROM Patients WHERE zipcode = '120016'",
            "AUDIT (zipcode, disease) FROM Patients",
            "AUDIT [pid, disease] FROM Patients WHERE disease = 'cancer'",
        ]
        .iter()
        .map(|t| {
            let mut e = audex_sql::parse_audit(t).unwrap();
            e.during = Some(iv);
            e.data_interval = Some(iv);
            e
        })
        .collect();
        let many_seq = seq.audit_many(&exprs, now).unwrap();
        let many_par = par.audit_many(&exprs, now).unwrap();
        prop_assert_eq!(format!("{many_seq:?}"), format!("{many_par:?}"));
    }

    /// Differential: hash joins ≡ nested loops at the report level. The
    /// equi-join acceleration must never change which queries are judged
    /// suspicious or how granules are counted.
    #[test]
    fn join_strategy_changes_nothing(s in scenario_strategy()) {
        use audex_core::{AuditEngine, AuditMode, EngineOptions};
        use audex_storage::JoinStrategy;

        let (db, log, expr) = build_scenario(&s);
        let mode = if s.per_query { AuditMode::PerQuery } else { AuditMode::Batch };
        let now = Timestamp(1_000_000);

        let hash = AuditEngine::with_options(
            &db,
            &log,
            EngineOptions { mode, strategy: JoinStrategy::Auto, parallelism: 1, ..Default::default() },
        );
        let nested = AuditEngine::with_options(
            &db,
            &log,
            EngineOptions {
                mode,
                strategy: JoinStrategy::NestedLoop,
                parallelism: 1,
                ..Default::default()
            },
        );

        let a = hash.audit_at(&expr, now).unwrap();
        let b = nested.audit_at(&expr, now).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"), "byte-identical debug output");
    }
}
