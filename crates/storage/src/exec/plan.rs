//! Conjunct splitting and classification (the planner).

use audex_sql::ast::{BinOp, Expr};

use crate::error::StorageError;
use crate::eval::{compile, CompiledExpr, Scope};

/// How a conjunct participates in the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConjunctClass {
    /// References columns of exactly one binding: pushed below the join.
    SingleBinding,
    /// `colA = colB` across two bindings: a join edge.
    EquiJoin,
    /// Anything else: evaluated once all its bindings are joined.
    Residual,
}

/// A compiled, classified conjunct.
pub struct PlannedConjunct {
    /// Compiled form.
    pub compiled: CompiledExpr,
    /// Sorted, deduplicated binding indices it references.
    pub bindings: Vec<usize>,
    /// Classification.
    pub class: ConjunctClass,
    /// For equi-joins: the two column slots.
    pub equi_slots: Option<(usize, usize)>,
}

/// Splits a predicate into top-level AND conjuncts (left-deep flattening).
pub fn split_conjuncts(pred: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        match e {
            Expr::Binary { left, op: BinOp::And, right } => {
                walk(left, out);
                walk(right, out);
            }
            other => out.push(other),
        }
    }
    walk(pred, &mut out);
    out
}

/// Compiles and classifies every top-level conjunct of `pred`.
pub fn classify_conjuncts(
    pred: &Expr,
    scope: &Scope,
) -> Result<Vec<PlannedConjunct>, StorageError> {
    split_conjuncts(pred)
        .into_iter()
        .map(|c| {
            let compiled = compile(c, scope)?;
            let mut slots = Vec::new();
            compiled.slots(&mut slots);
            let mut bindings: Vec<usize> = slots.iter().map(|s| binding_of(scope, *s)).collect();
            bindings.sort_unstable();
            bindings.dedup();

            let class = if bindings.len() <= 1 {
                ConjunctClass::SingleBinding
            } else if let CompiledExpr::Cmp(BinOp::Eq, l, r) = &compiled {
                match (l.as_ref(), r.as_ref()) {
                    (CompiledExpr::Slot(a), CompiledExpr::Slot(b))
                        if binding_of(scope, *a) != binding_of(scope, *b) =>
                    {
                        ConjunctClass::EquiJoin
                    }
                    _ => ConjunctClass::Residual,
                }
            } else {
                ConjunctClass::Residual
            };

            let equi_slots = if class == ConjunctClass::EquiJoin {
                if let CompiledExpr::Cmp(_, l, r) = &compiled {
                    match (l.as_ref(), r.as_ref()) {
                        (CompiledExpr::Slot(a), CompiledExpr::Slot(b)) => Some((*a, *b)),
                        _ => None,
                    }
                } else {
                    None
                }
            } else {
                None
            };

            Ok(PlannedConjunct { compiled, bindings, class, equi_slots })
        })
        .collect()
}

fn binding_of(scope: &Scope, slot: usize) -> usize {
    let mut bi = 0;
    for i in 0..scope.binding_count() {
        if slot >= scope.offset(i) {
            bi = i;
        }
    }
    bi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use audex_sql::ast::TypeName;
    use audex_sql::parse_query;
    use audex_sql::Ident;

    fn scope() -> Scope {
        Scope::new(vec![
            (Ident::new("a"), Schema::of(&[("x", TypeName::Int), ("k", TypeName::Text)])),
            (Ident::new("b"), Schema::of(&[("y", TypeName::Int), ("k2", TypeName::Text)])),
        ])
        .unwrap()
    }

    fn pred(sql_where: &str) -> Expr {
        parse_query(&format!("SELECT x FROM t WHERE {sql_where}")).unwrap().selection.unwrap()
    }

    use audex_sql::ast::Expr;

    #[test]
    fn split_flattens_nested_ands() {
        let p = pred("x = 1 AND (y = 2 AND k = 'a') AND k2 = 'b'");
        assert_eq!(split_conjuncts(&p).len(), 4);
    }

    #[test]
    fn or_is_one_conjunct() {
        let p = pred("x = 1 OR y = 2");
        assert_eq!(split_conjuncts(&p).len(), 1);
    }

    #[test]
    fn classification() {
        let s = scope();
        let planned = classify_conjuncts(&pred("x < 5 AND a.k = b.k2 AND x + y = 3"), &s).unwrap();
        assert_eq!(planned[0].class, ConjunctClass::SingleBinding);
        assert_eq!(planned[0].bindings, vec![0]);
        assert_eq!(planned[1].class, ConjunctClass::EquiJoin);
        assert!(planned[1].equi_slots.is_some());
        assert_eq!(planned[2].class, ConjunctClass::Residual);
        assert_eq!(planned[2].bindings, vec![0, 1]);
    }

    #[test]
    fn same_table_equality_is_single_binding() {
        let s = scope();
        let planned = classify_conjuncts(&pred("a.x = 3"), &s).unwrap();
        assert_eq!(planned[0].class, ConjunctClass::SingleBinding);
    }

    #[test]
    fn constant_conjunct_is_single_binding_class() {
        let s = scope();
        let planned = classify_conjuncts(&pred("1 = 1"), &s).unwrap();
        assert_eq!(planned[0].class, ConjunctClass::SingleBinding);
        assert!(planned[0].bindings.is_empty());
    }
}
