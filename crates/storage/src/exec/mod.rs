//! SPJ query execution with tuple-level lineage.
//!
//! The executor evaluates `Q = π_C(σ_P(T₁ × … × Tₙ))` over a
//! [`RelationProvider`] and — crucially for auditing — reports, for every
//! satisfying combination of base tuples, which `(table, tid)` pairs
//! produced it. The paper's *indispensable tuple* test (Definition 2:
//! `σ_{P_Q}(t × R) ≠ ∅`) reads directly off this lineage: a base tuple is
//! indispensable to `Q` iff it appears in the lineage of at least one
//! satisfying combination.
//!
//! Planning is deliberately simple: top-level conjuncts are classified into
//! per-table filters (pushed below the join), equi-join edges (hash join
//! when types allow), and residual predicates (evaluated as soon as their
//! bindings are all joined). The [`JoinStrategy`] knob exists for the B6
//! ablation benchmark.

mod plan;

pub use plan::{classify_conjuncts, split_conjuncts, ConjunctClass, PlannedConjunct};

use audex_sql::ast::{Query, SelectItem, TypeName};
use audex_sql::Ident;
use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::Arc;

use crate::error::StorageError;
use crate::eval::{compile, CompiledExpr, Scope};
use crate::table::{Relation, Row, Tid};
use crate::value::Value;

/// Supplies named relations (base tables at some instant, or backlog
/// relations `b-T`). Relations are handed out as `Arc`s so providers can
/// serve many readers from one snapshot without copying rows.
pub trait RelationProvider {
    /// Resolves `name` to a relation; errors for unknown names.
    fn relation(&self, name: &Ident) -> Result<Arc<Relation>, StorageError>;
}

/// Join algorithm selection — [`JoinStrategy::Auto`] uses hash joins where
/// legal and falls back to nested loops; the others force one algorithm
/// (for the join ablation bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinStrategy {
    /// Hash join when applicable, nested loop otherwise.
    #[default]
    Auto,
    /// Always nested-loop (filtered cross product).
    NestedLoop,
}

/// One `(binding, base relation, tid)` unit of provenance.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LineageEntry {
    /// The binding name in the query's scope (alias if aliased).
    pub binding: Ident,
    /// The resolved relation name (`P-Personal`, `b-P-Personal`, …).
    pub table: Ident,
    /// The base tuple id.
    pub tid: Tid,
}

/// Lineage of one satisfying combination: one entry per `FROM` binding, in
/// `FROM` order.
pub type LineageRow = Vec<LineageEntry>;

/// The result of executing a query.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Projected rows (deduplicated when the query is `DISTINCT`).
    pub rows: Vec<Row>,
    /// One lineage row per *satisfying combination* (pre-projection,
    /// pre-DISTINCT), so `lineage.len() >= rows.len()` for DISTINCT queries.
    pub lineage: Vec<LineageRow>,
}

impl ResultSet {
    /// True when no combination satisfied the predicate.
    pub fn is_empty(&self) -> bool {
        self.lineage.is_empty()
    }

    /// Iterates all `(table, tid)` pairs appearing anywhere in the lineage.
    pub fn touched_tuples(&self) -> impl Iterator<Item = (&Ident, Tid)> {
        self.lineage.iter().flatten().map(|e| (&e.table, e.tid))
    }
}

/// Executes `query` over `provider` with the given join strategy.
pub fn execute_query(
    provider: &dyn RelationProvider,
    query: &Query,
    strategy: JoinStrategy,
) -> Result<ResultSet, StorageError> {
    let exec = PreparedQuery::prepare(provider, query)?;
    exec.run(strategy)
}

/// A query compiled against concrete relations, reusable across runs.
pub struct PreparedQuery {
    scope: Scope,
    relations: Vec<Arc<Relation>>,
    bindings: Vec<Ident>,
    conjuncts: Vec<PlannedConjunct>,
    projection: Projection,
    distinct: bool,
    order_by: Vec<(CompiledExpr, bool)>,
    limit: Option<u64>,
}

enum ProjItem {
    AllOf(usize),
    All,
    Expr { compiled: CompiledExpr, name: String },
}

struct Projection {
    items: Vec<ProjItem>,
}

impl PreparedQuery {
    /// Resolves relations, compiles predicates, and plans conjuncts.
    pub fn prepare(provider: &dyn RelationProvider, query: &Query) -> Result<Self, StorageError> {
        let mut relations = Vec::with_capacity(query.from.len());
        let mut bindings = Vec::with_capacity(query.from.len());
        let mut scope_entries = Vec::with_capacity(query.from.len());
        for tref in &query.from {
            let rel = provider.relation(&tref.name)?;
            let binding = tref.binding().clone();
            scope_entries.push((binding.clone(), rel.schema.clone()));
            bindings.push(binding);
            relations.push(rel);
        }
        let scope = Scope::new(scope_entries)?;

        let conjuncts = match &query.selection {
            Some(pred) => classify_conjuncts(pred, &scope)?,
            None => Vec::new(),
        };

        let mut items = Vec::new();
        for item in &query.projection {
            match item {
                SelectItem::Wildcard => items.push(ProjItem::All),
                SelectItem::QualifiedWildcard(t) => {
                    let bi = scope
                        .binding_index(t)
                        .ok_or_else(|| StorageError::UnknownTable(t.clone()))?;
                    items.push(ProjItem::AllOf(bi));
                }
                SelectItem::Expr { expr, alias } => {
                    let name =
                        alias.as_ref().map(|a| a.value.clone()).unwrap_or_else(|| expr.to_string());
                    items.push(ProjItem::Expr { compiled: compile(expr, &scope)?, name });
                }
            }
        }

        let order_by = query
            .order_by
            .iter()
            .map(|o| Ok((compile(&o.expr, &scope)?, o.asc)))
            .collect::<Result<Vec<_>, StorageError>>()?;

        Ok(PreparedQuery {
            scope,
            relations,
            bindings,
            conjuncts,
            projection: Projection { items },
            distinct: query.distinct,
            order_by,
            limit: query.limit,
        })
    }

    /// Output column names in order.
    fn column_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        for item in &self.projection.items {
            match item {
                ProjItem::All => {
                    for (bi, (_, schema)) in self.scope.bindings().iter().enumerate() {
                        let _ = bi;
                        for (name, _) in schema.iter() {
                            out.push(name.value.clone());
                        }
                    }
                }
                ProjItem::AllOf(bi) => {
                    for (name, _) in self.scope.bindings()[*bi].1.iter() {
                        out.push(name.value.clone());
                    }
                }
                ProjItem::Expr { name, .. } => out.push(name.clone()),
            }
        }
        out
    }

    /// Runs the prepared query.
    pub fn run(&self, strategy: JoinStrategy) -> Result<ResultSet, StorageError> {
        let width = self.scope.width();
        let n = self.relations.len();

        // Working set: flat rows (width slots, unfilled = Null) + lineage.
        let mut acc: Vec<(Row, LineageRow)> = vec![(vec![Value::Null; width], Vec::new())];
        let mut applied = vec![false; self.conjuncts.len()];

        for bi in 0..n {
            // Single-binding filters push below the join.
            let filter_idx: Vec<usize> = self
                .conjuncts
                .iter()
                .enumerate()
                .filter(|(ci, c)| {
                    !applied[*ci]
                        && c.class == ConjunctClass::SingleBinding
                        && c.bindings == vec![bi]
                })
                .map(|(ci, _)| ci)
                .collect();
            for ci in &filter_idx {
                applied[*ci] = true;
            }
            let filtered = self.filtered_relation(bi, &filter_idx)?;
            let bound: Vec<bool> = (0..n).map(|i| i < bi).collect();

            // Hash-joinable edges between binding bi and the bound prefix.
            let edges: Vec<(usize, usize, usize)> = if strategy == JoinStrategy::Auto {
                self.hash_edges(bi, &bound, &applied)
            } else {
                Vec::new()
            };

            acc = if !edges.is_empty() && !acc.is_empty() {
                for (ci, _, _) in &edges {
                    applied[*ci] = true;
                }
                self.hash_join(acc, &filtered, bi, &edges)?
            } else {
                self.nested_loop(acc, &filtered, bi)
            };

            // Residuals whose bindings are now all available.
            for (ci, c) in self.conjuncts.iter().enumerate() {
                if applied[ci] || !c.bindings.iter().all(|b| *b <= bi) {
                    continue;
                }
                applied[ci] = true;
                let mut kept = Vec::with_capacity(acc.len());
                for (row, lin) in acc {
                    if c.compiled.truth(&row)?.is_true() {
                        kept.push((row, lin));
                    }
                }
                acc = kept;
            }
        }

        // Zero-conjunct queries with zero tables are impossible (FROM is
        // mandatory), so every conjunct has been applied by now.
        debug_assert!(applied.iter().all(|a| *a));

        // Project (keeping sort keys from the flat rows), then apply
        // DISTINCT → ORDER BY → LIMIT in SQL order. Lineage is NOT truncated
        // by LIMIT: indispensability (Definition 2) is about the predicate's
        // satisfying combinations, which a row-count cutoff on the *output*
        // does not un-access; this errs on the conservative side for
        // auditing. Value-mode exposure uses `rows`, which IS truncated.
        let mut projected: Vec<(Row, Vec<Value>)> = Vec::with_capacity(acc.len());
        let mut lineage = Vec::with_capacity(acc.len());
        for (flat, lin) in &acc {
            let keys =
                self.order_by.iter().map(|(e, _)| e.eval(flat)).collect::<Result<Vec<_>, _>>()?;
            projected.push((self.project(flat)?, keys));
            lineage.push(lin.clone());
        }

        if self.distinct {
            let mut seen: Vec<Row> = Vec::new();
            projected.retain(|(r, _)| {
                if seen.iter().any(|s| rows_grouping_eq(s, r)) {
                    false
                } else {
                    seen.push(r.clone());
                    true
                }
            });
        }

        if !self.order_by.is_empty() {
            projected.sort_by(|(_, ka), (_, kb)| {
                for ((a, b), (_, asc)) in ka.iter().zip(kb).zip(&self.order_by) {
                    let ord = a.total_cmp(b);
                    let ord = if *asc { ord } else { ord.reverse() };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }

        let mut rows: Vec<Row> = projected.into_iter().map(|(r, _)| r).collect();
        if let Some(n) = self.limit {
            rows.truncate(n as usize);
        }

        Ok(ResultSet { columns: self.column_names(), rows, lineage })
    }

    /// Scans relation `bi` and applies the given single-binding filters.
    /// Borrows the snapshot's rows directly when there is nothing to
    /// filter, so the common case copies no row data.
    fn filtered_relation(
        &self,
        bi: usize,
        filter_idx: &[usize],
    ) -> Result<Cow<'_, [(Tid, Row)]>, StorageError> {
        let rel = &self.relations[bi];
        let offset = self.scope.offset(bi);
        let filters: Vec<&PlannedConjunct> =
            filter_idx.iter().map(|ci| &self.conjuncts[*ci]).collect();
        if filters.is_empty() {
            return Ok(Cow::Borrowed(&rel.rows[..]));
        }
        let mut scratch = vec![Value::Null; self.scope.width()];
        let mut out = Vec::new();
        'rows: for (tid, row) in &rel.rows {
            scratch[offset..offset + row.len()].clone_from_slice(row);
            for f in &filters {
                if !f.compiled.truth(&scratch)?.is_true() {
                    continue 'rows;
                }
            }
            out.push((*tid, row.clone()));
        }
        Ok(Cow::Owned(out))
    }

    /// Equi-join edges `(conjunct idx, probe slot in prefix, build slot in
    /// bi)` that are hash-join-safe (plain columns, equal non-float types).
    fn hash_edges(
        &self,
        bi: usize,
        bound: &[bool],
        applied: &[bool],
    ) -> Vec<(usize, usize, usize)> {
        let mut edges = Vec::new();
        for (ci, c) in self.conjuncts.iter().enumerate() {
            if applied[ci] || c.class != ConjunctClass::EquiJoin {
                continue;
            }
            let Some((sa, sb)) = c.equi_slots else { continue };
            let (ba, bb) = (self.binding_of_slot(sa), self.binding_of_slot(sb));
            let (probe, build) = if bb == bi && bound[ba] {
                (sa, sb)
            } else if ba == bi && bound[bb] {
                (sb, sa)
            } else {
                continue;
            };
            if self.slot_type(probe) == self.slot_type(build)
                && self.slot_type(probe) != TypeName::Float
            {
                edges.push((ci, probe, build));
            }
        }
        edges
    }

    fn binding_of_slot(&self, slot: usize) -> usize {
        let mut bi = 0;
        for i in 0..self.scope.binding_count() {
            if slot >= self.scope.offset(i) {
                bi = i;
            }
        }
        bi
    }

    fn slot_type(&self, slot: usize) -> TypeName {
        let bi = self.binding_of_slot(slot);
        let ci = slot - self.scope.offset(bi);
        self.scope.bindings()[bi].1.type_at(ci)
    }

    fn nested_loop(
        &self,
        acc: Vec<(Row, LineageRow)>,
        rows: &[(Tid, Row)],
        bi: usize,
    ) -> Vec<(Row, LineageRow)> {
        let offset = self.scope.offset(bi);
        let mut out = Vec::with_capacity(acc.len() * rows.len());
        for (prefix, lin) in &acc {
            for (tid, row) in rows {
                let mut flat = prefix.clone();
                flat[offset..offset + row.len()].clone_from_slice(row);
                let mut lineage = lin.clone();
                lineage.push(LineageEntry {
                    binding: self.bindings[bi].clone(),
                    table: self.relations[bi].name.clone(),
                    tid: *tid,
                });
                out.push((flat, lineage));
            }
        }
        out
    }

    fn hash_join(
        &self,
        acc: Vec<(Row, LineageRow)>,
        rows: &[(Tid, Row)],
        bi: usize,
        edges: &[(usize, usize, usize)],
    ) -> Result<Vec<(Row, LineageRow)>, StorageError> {
        let offset = self.scope.offset(bi);
        // Build side: the new relation, keyed by its join columns.
        let mut table: HashMap<Vec<Value>, Vec<(Tid, &Row)>> = HashMap::new();
        let mut scratch = vec![Value::Null; self.scope.width()];
        'rows: for (tid, row) in rows {
            scratch[offset..offset + row.len()].clone_from_slice(row);
            let mut key = Vec::with_capacity(edges.len());
            for (_, _, build_slot) in edges {
                let v = scratch[*build_slot].clone();
                if v.is_null() {
                    continue 'rows; // NULL never joins
                }
                key.push(v);
            }
            table.entry(key).or_default().push((*tid, row));
        }

        let mut out = Vec::new();
        'probe: for (prefix, lin) in &acc {
            let mut key = Vec::with_capacity(edges.len());
            for (_, probe_slot, _) in edges {
                let v = prefix[*probe_slot].clone();
                if v.is_null() {
                    continue 'probe;
                }
                key.push(v);
            }
            if let Some(matches) = table.get(&key) {
                for (tid, row) in matches {
                    let mut flat = prefix.clone();
                    flat[offset..offset + row.len()].clone_from_slice(row);
                    let mut lineage = lin.clone();
                    lineage.push(LineageEntry {
                        binding: self.bindings[bi].clone(),
                        table: self.relations[bi].name.clone(),
                        tid: *tid,
                    });
                    out.push((flat, lineage));
                }
            }
        }
        Ok(out)
    }

    fn project(&self, flat: &[Value]) -> Result<Row, StorageError> {
        let mut out = Vec::new();
        for item in &self.projection.items {
            match item {
                ProjItem::All => out.extend_from_slice(flat),
                ProjItem::AllOf(bi) => {
                    let offset = self.scope.offset(*bi);
                    let len = self.scope.bindings()[*bi].1.len();
                    out.extend_from_slice(&flat[offset..offset + len]);
                }
                ProjItem::Expr { compiled, .. } => out.push(compiled.eval(flat)?),
            }
        }
        Ok(out)
    }
}

fn rows_grouping_eq(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.grouping_eq(y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use audex_sql::ast::TypeName;
    use audex_sql::parse_query;
    use std::collections::BTreeMap;

    struct Fixed(BTreeMap<Ident, Arc<Relation>>);

    impl RelationProvider for Fixed {
        fn relation(&self, name: &Ident) -> Result<Arc<Relation>, StorageError> {
            self.0.get(name).cloned().ok_or_else(|| StorageError::UnknownTable(name.clone()))
        }
    }

    fn fixture() -> Fixed {
        let personal = Relation {
            name: Ident::new("P-Personal"),
            schema: Schema::of(&[
                ("pid", TypeName::Text),
                ("name", TypeName::Text),
                ("age", TypeName::Int),
                ("zipcode", TypeName::Text),
            ]),
            rows: vec![
                (Tid(11), vec!["p1".into(), "Jane".into(), Value::Int(25), "177893".into()]),
                (Tid(12), vec!["p2".into(), "Reku".into(), Value::Int(35), "145568".into()]),
                (Tid(13), vec!["p13".into(), "Robert".into(), Value::Int(29), "188888".into()]),
                (Tid(14), vec!["p28".into(), "Lucy".into(), Value::Int(20), "145568".into()]),
            ],
        };
        let health = Relation {
            name: Ident::new("P-Health"),
            schema: Schema::of(&[("pid", TypeName::Text), ("disease", TypeName::Text)]),
            rows: vec![
                (Tid(21), vec!["p1".into(), "flu".into()]),
                (Tid(22), vec!["p2".into(), "diabetic".into()]),
                (Tid(23), vec!["p13".into(), "malaria".into()]),
                (Tid(24), vec!["p28".into(), "diabetic".into()]),
            ],
        };
        let mut m = BTreeMap::new();
        m.insert(Ident::new("P-Personal"), Arc::new(personal));
        m.insert(Ident::new("P-Health"), Arc::new(health));
        Fixed(m)
    }

    fn run(sql: &str) -> ResultSet {
        run_with(sql, JoinStrategy::Auto)
    }

    fn run_with(sql: &str, strategy: JoinStrategy) -> ResultSet {
        execute_query(&fixture(), &parse_query(sql).unwrap(), strategy).unwrap()
    }

    #[test]
    fn single_table_filter() {
        let rs = run("SELECT name FROM P-Personal WHERE age < 30");
        assert_eq!(rs.rows.len(), 3);
        assert_eq!(rs.columns, vec!["name"]);
        let tids: Vec<Tid> = rs.lineage.iter().map(|l| l[0].tid).collect();
        assert_eq!(tids, vec![Tid(11), Tid(13), Tid(14)]);
    }

    #[test]
    fn join_with_lineage() {
        let rs = run("SELECT name, disease FROM P-Personal, P-Health \
             WHERE P-Personal.pid = P-Health.pid AND disease = 'diabetic'");
        assert_eq!(rs.rows.len(), 2);
        for lin in &rs.lineage {
            assert_eq!(lin.len(), 2);
            assert_eq!(lin[0].table, Ident::new("P-Personal"));
            assert_eq!(lin[1].table, Ident::new("P-Health"));
        }
        let pairs: Vec<(Tid, Tid)> = rs.lineage.iter().map(|l| (l[0].tid, l[1].tid)).collect();
        assert!(pairs.contains(&(Tid(12), Tid(22))));
        assert!(pairs.contains(&(Tid(14), Tid(24))));
    }

    #[test]
    fn hash_and_nested_agree() {
        let sql = "SELECT name, disease FROM P-Personal, P-Health \
                   WHERE P-Personal.pid = P-Health.pid AND age < 30";
        let a = run_with(sql, JoinStrategy::Auto);
        let b = run_with(sql, JoinStrategy::NestedLoop);
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.lineage, b.lineage);
    }

    #[test]
    fn cross_product_without_predicate() {
        let rs = run("SELECT * FROM P-Personal, P-Health");
        assert_eq!(rs.rows.len(), 16);
        assert_eq!(rs.columns.len(), 6);
    }

    #[test]
    fn wildcard_and_qualified_wildcard() {
        let rs =
            run("SELECT P-Health.* FROM P-Personal, P-Health WHERE P-Personal.pid = P-Health.pid");
        assert_eq!(rs.columns, vec!["pid", "disease"]);
        assert_eq!(rs.rows.len(), 4);
    }

    #[test]
    fn distinct_dedupes_rows_but_keeps_lineage() {
        let rs = run("SELECT DISTINCT disease FROM P-Health");
        assert_eq!(rs.rows.len(), 3); // flu, diabetic, malaria
        assert_eq!(rs.lineage.len(), 4); // all four satisfying tuples
    }

    #[test]
    fn aliases_in_scope() {
        let rs = run("SELECT p.name FROM P-Personal AS p WHERE p.age > 30");
        assert_eq!(rs.rows, vec![vec![Value::Str("Reku".into())]]);
        assert_eq!(rs.lineage[0][0].binding, Ident::new("p"));
        assert_eq!(rs.lineage[0][0].table, Ident::new("P-Personal"));
    }

    #[test]
    fn self_join_with_aliases() {
        let rs = run("SELECT a.name, b.name FROM P-Personal a, P-Personal b \
             WHERE a.zipcode = b.zipcode AND a.age < b.age");
        // Lucy (20) and Reku (35) share 145568.
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Str("Lucy".into()));
    }

    #[test]
    fn projection_expression_and_alias() {
        let rs = run("SELECT age + 1 AS next FROM P-Personal WHERE name = 'Jane'");
        assert_eq!(rs.columns, vec!["next"]);
        assert_eq!(rs.rows, vec![vec![Value::Int(26)]]);
    }

    #[test]
    fn empty_result_has_no_lineage() {
        let rs = run("SELECT name FROM P-Personal WHERE age > 99");
        assert!(rs.is_empty());
        assert!(rs.rows.is_empty());
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let err = execute_query(
            &fixture(),
            &parse_query("SELECT x FROM NoTable").unwrap(),
            JoinStrategy::Auto,
        );
        assert!(matches!(err, Err(StorageError::UnknownTable(_))));
        let err = execute_query(
            &fixture(),
            &parse_query("SELECT nocol FROM P-Personal").unwrap(),
            JoinStrategy::Auto,
        );
        assert!(matches!(err, Err(StorageError::UnknownColumn(_))));
    }

    #[test]
    fn or_predicate_is_not_split() {
        let rs = run("SELECT name FROM P-Personal, P-Health \
             WHERE P-Personal.pid = P-Health.pid AND (age < 21 OR disease = 'malaria')");
        assert_eq!(rs.rows.len(), 2); // Lucy by age, Robert by disease
    }

    #[test]
    fn duplicate_binding_rejected() {
        let err = execute_query(
            &fixture(),
            &parse_query("SELECT 1 FROM P-Personal, P-Personal").unwrap(),
            JoinStrategy::Auto,
        );
        assert!(matches!(err, Err(StorageError::DuplicateBinding(_))));
    }

    #[test]
    fn touched_tuples_iterates_lineage() {
        let rs = run("SELECT name FROM P-Personal WHERE zipcode = '145568'");
        let touched: Vec<(String, Tid)> =
            rs.touched_tuples().map(|(t, tid)| (t.value.clone(), tid)).collect();
        assert_eq!(touched.len(), 2);
        assert!(touched.contains(&("P-Personal".into(), Tid(12))));
        assert!(touched.contains(&("P-Personal".into(), Tid(14))));
    }
}
