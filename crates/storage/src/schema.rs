//! Table schemas and column resolution.

use audex_sql::ast::TypeName;
use audex_sql::Ident;

use crate::error::StorageError;
use crate::value::Value;

/// Schema of one relation: an ordered list of typed columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<(Ident, TypeName)>,
}

impl Schema {
    /// Builds a schema; column names must be unique (case-insensitively).
    pub fn new(columns: Vec<(Ident, TypeName)>) -> Result<Self, StorageError> {
        for (i, (name, _)) in columns.iter().enumerate() {
            if columns[..i].iter().any(|(n, _)| n == name) {
                return Err(StorageError::UnknownColumn(format!("duplicate column {name}")));
            }
        }
        Ok(Schema { columns })
    }

    /// Convenience constructor from `(name, type)` string pairs. Panics on
    /// duplicate column names — it exists for statically written fixtures.
    pub fn of(cols: &[(&str, TypeName)]) -> Self {
        match Schema::new(cols.iter().map(|(n, t)| (Ident::new(*n), *t)).collect()) {
            Ok(s) => s,
            Err(e) => panic!("static schema must have unique columns: {e}"),
        }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Iterates `(name, type)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = &(Ident, TypeName)> {
        self.columns.iter()
    }

    /// The position of `name`, if present.
    pub fn position(&self, name: &Ident) -> Option<usize> {
        self.columns.iter().position(|(n, _)| n == name)
    }

    /// Column name at `idx`.
    pub fn name_at(&self, idx: usize) -> &Ident {
        &self.columns[idx].0
    }

    /// Column type at `idx`.
    pub fn type_at(&self, idx: usize) -> TypeName {
        self.columns[idx].1
    }

    /// Checks that `value` is storable in column `idx` (NULL always is;
    /// Int is accepted by Float and Timestamp columns).
    pub fn check_value(&self, idx: usize, value: &Value) -> Result<(), StorageError> {
        let (name, ty) = &self.columns[idx];
        let ok = matches!(
            (ty, value),
            (_, Value::Null)
                | (TypeName::Int, Value::Int(_))
                | (TypeName::Float, Value::Float(_) | Value::Int(_))
                | (TypeName::Text, Value::Str(_))
                | (TypeName::Bool, Value::Bool(_))
                | (TypeName::Timestamp, Value::Ts(_) | Value::Int(_))
        );
        if ok {
            Ok(())
        } else {
            Err(StorageError::ColumnTypeMismatch {
                column: name.clone(),
                expected: type_name_str(*ty),
                actual: value.type_name(),
            })
        }
    }

    /// Coerces an accepted value into the canonical representation of the
    /// column type (Int → Float for FLOAT columns, Int → Ts for TIMESTAMP).
    pub fn canonicalize(&self, idx: usize, value: Value) -> Value {
        match (self.columns[idx].1, value) {
            (TypeName::Float, Value::Int(v)) => Value::Float(v as f64),
            (TypeName::Timestamp, Value::Int(v)) => Value::Ts(audex_sql::Timestamp(v)),
            (_, v) => v,
        }
    }
}

/// Printable name of a column type.
pub fn type_name_str(ty: TypeName) -> &'static str {
    match ty {
        TypeName::Int => "INT",
        TypeName::Float => "FLOAT",
        TypeName::Text => "TEXT",
        TypeName::Bool => "BOOL",
        TypeName::Timestamp => "TIMESTAMP",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_columns_rejected() {
        let r =
            Schema::new(vec![(Ident::new("a"), TypeName::Int), (Ident::new("A"), TypeName::Text)]);
        assert!(r.is_err());
    }

    #[test]
    fn position_is_case_insensitive() {
        let s = Schema::of(&[("Name", TypeName::Text), ("Age", TypeName::Int)]);
        assert_eq!(s.position(&Ident::new("name")), Some(0));
        assert_eq!(s.position(&Ident::new("AGE")), Some(1));
        assert_eq!(s.position(&Ident::new("zip")), None);
    }

    #[test]
    fn value_checking() {
        let s =
            Schema::of(&[("a", TypeName::Int), ("b", TypeName::Float), ("c", TypeName::Timestamp)]);
        assert!(s.check_value(0, &Value::Int(1)).is_ok());
        assert!(s.check_value(0, &Value::Str("x".into())).is_err());
        assert!(s.check_value(0, &Value::Null).is_ok());
        assert!(s.check_value(1, &Value::Int(1)).is_ok());
        assert!(s.check_value(2, &Value::Int(100)).is_ok());
    }

    #[test]
    fn canonicalization() {
        let s = Schema::of(&[("b", TypeName::Float), ("t", TypeName::Timestamp)]);
        assert_eq!(s.canonicalize(0, Value::Int(2)), Value::Float(2.0));
        assert_eq!(s.canonicalize(1, Value::Int(7)), Value::Ts(audex_sql::Timestamp(7)));
    }
}
