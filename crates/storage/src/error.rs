//! Storage and execution errors.

use audex_sql::Ident;
use std::fmt;

/// Errors raised by the storage engine and query executor.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// A referenced table does not exist.
    UnknownTable(Ident),
    /// A table was created twice.
    DuplicateTable(Ident),
    /// The same binding name appears twice in one `FROM` list.
    DuplicateBinding(Ident),
    /// A referenced column does not exist in scope.
    UnknownColumn(String),
    /// An unqualified column matches more than one table in scope.
    AmbiguousColumn(Ident),
    /// An operation was applied to incompatible types.
    TypeMismatch {
        /// The operation attempted.
        operation: String,
        /// Left operand type.
        left: &'static str,
        /// Right operand type.
        right: &'static str,
    },
    /// Integer arithmetic overflowed.
    ArithmeticOverflow,
    /// Division (or modulo) by zero.
    DivisionByZero,
    /// An `INSERT` row has the wrong number of values.
    ArityMismatch {
        /// Expected column count.
        expected: usize,
        /// Provided value count.
        actual: usize,
    },
    /// A value does not fit the declared column type.
    ColumnTypeMismatch {
        /// The column involved.
        column: Ident,
        /// Its declared type.
        expected: &'static str,
        /// The offered value's type.
        actual: &'static str,
    },
    /// Backlog timestamps must be non-decreasing.
    NonMonotonicTimestamp {
        /// Timestamp of the last recorded change.
        last: audex_sql::Timestamp,
        /// The out-of-order timestamp offered.
        offered: audex_sql::Timestamp,
    },
    /// An explicit tuple id collides with an existing row.
    DuplicateTid(crate::table::Tid),
    /// Statement kind not supported in the current context.
    Unsupported(String),
    /// A deterministically injected fault tripped (see [`crate::fault`]).
    Injected {
        /// The faulted site, e.g. `scan #2 of table Patients`.
        site: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownTable(t) => write!(f, "unknown table {t}"),
            StorageError::DuplicateTable(t) => write!(f, "table {t} already exists"),
            StorageError::DuplicateBinding(t) => write!(f, "duplicate table binding {t} in FROM"),
            StorageError::UnknownColumn(c) => write!(f, "unknown column {c}"),
            StorageError::AmbiguousColumn(c) => {
                write!(f, "column {c} is ambiguous; qualify it with a table name")
            }
            StorageError::TypeMismatch { operation, left, right } => {
                write!(f, "cannot apply {operation} to {left} and {right}")
            }
            StorageError::ArithmeticOverflow => f.write_str("integer arithmetic overflow"),
            StorageError::DivisionByZero => f.write_str("division by zero"),
            StorageError::ArityMismatch { expected, actual } => {
                write!(f, "expected {expected} values, got {actual}")
            }
            StorageError::ColumnTypeMismatch { column, expected, actual } => {
                write!(f, "column {column} expects {expected}, got {actual}")
            }
            StorageError::NonMonotonicTimestamp { last, offered } => {
                write!(
                    f,
                    "backlog timestamps must be non-decreasing (last {last}, offered {offered})"
                )
            }
            StorageError::DuplicateTid(t) => write!(f, "tuple id {t} already exists"),
            StorageError::Unsupported(s) => write!(f, "unsupported: {s}"),
            StorageError::Injected { site } => write!(f, "injected storage fault: {site}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = StorageError::AmbiguousColumn(Ident::new("pid"));
        assert!(e.to_string().contains("ambiguous"));
        let e = StorageError::ArityMismatch { expected: 3, actual: 2 };
        assert!(e.to_string().contains('3'));
    }
}
