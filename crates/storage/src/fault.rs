//! Deterministic storage fault injection.
//!
//! Robustness claims ("every storage error surfaces as a structured audit
//! error, never a panic, never a half-applied statement") are only worth
//! anything if they are *tested*. A [`FaultPlan`] lets tests address the
//! exact read site they want to break:
//!
//! * **fail the Nth scan of table `T`** — trips inside
//!   [`crate::DatabaseAt::relation`] when the query executor asks for `T`'s
//!   rows the Nth time (live reads, replays, and `b-T` backlog reads all
//!   count), and inside DML planning, which scans the target table before
//!   mutating anything;
//! * **fail every scan of table `T`** — the hard-down table;
//! * **fail backlog replays past an instant** — trips when a versioned read
//!   (a replay of `T`'s history, or a `b-T` backlog relation) is requested
//!   for an instant after the cutoff, modelling a truncated or corrupt
//!   backlog tail.
//!
//! Faults are checked *before* any mutation is applied: DML plans first and
//! applies second, and the scan fault fires during planning, so a faulted
//! `UPDATE`/`DELETE`/`INSERT` leaves the database byte-identical. Injected
//! failures surface as [`StorageError::Injected`] carrying the site
//! description, and flow through the audit pipeline like any other storage
//! error.
//!
//! The plan is deterministic — no randomness, no time dependence — so a
//! failing test reproduces exactly. Scan ordinals are counted per table in a
//! shared counter ([`Database::clone`] shares the armed state, so a
//! [`crate::DatabaseAt`] view of a clone keeps counting where the original
//! left off).

use audex_sql::{Ident, Timestamp};
use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::error::StorageError;

/// One scan-site fault: the `nth` read of `table` fails (1-based);
/// `nth == 0` means every read fails.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ScanFault {
    table: Ident,
    nth: u64,
}

/// Backlog cutoff: versioned reads of `table` (all tables when `None`) for
/// instants strictly after `after` fail.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BacklogCutoff {
    table: Option<Ident>,
    after: Timestamp,
}

/// A deterministic, site-addressed plan of storage faults.
///
/// Build one with the `fail_*` constructors, then arm it with
/// [`Database::arm_faults`](crate::Database::arm_faults).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    scans: Vec<ScanFault>,
    cutoffs: Vec<BacklogCutoff>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// The `nth` (1-based) scan of `table` fails.
    pub fn fail_scan(mut self, table: &str, nth: u64) -> Self {
        assert!(nth > 0, "scan ordinals are 1-based; use fail_all_scans for every scan");
        self.scans.push(ScanFault { table: Ident::new(table), nth });
        self
    }

    /// Every scan of `table` fails.
    pub fn fail_all_scans(mut self, table: &str) -> Self {
        self.scans.push(ScanFault { table: Ident::new(table), nth: 0 });
        self
    }

    /// Versioned (backlog-replay) reads of `table` past `after` fail.
    pub fn fail_backlog_past(mut self, table: &str, after: Timestamp) -> Self {
        self.cutoffs.push(BacklogCutoff { table: Some(Ident::new(table)), after });
        self
    }

    /// Versioned reads of *any* table past `after` fail.
    pub fn fail_all_backlogs_past(mut self, after: Timestamp) -> Self {
        self.cutoffs.push(BacklogCutoff { table: None, after });
        self
    }

    /// True when the plan contains no faults at all.
    pub fn is_empty(&self) -> bool {
        self.scans.is_empty() && self.cutoffs.is_empty()
    }
}

/// An armed [`FaultPlan`] plus its per-table scan counters.
#[derive(Debug, Default)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    /// Scans observed so far, per table. Interior-mutable because reads go
    /// through shared `&Database` views.
    counts: Mutex<BTreeMap<Ident, u64>>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultState { plan, counts: Mutex::new(BTreeMap::new()) }
    }

    /// Records one scan of `table` and fails it if the plan says so.
    pub(crate) fn on_scan(&self, table: &Ident) -> Result<(), StorageError> {
        let ordinal = {
            let mut counts = self.counts.lock().unwrap_or_else(|e| e.into_inner());
            let c = counts.entry(table.clone()).or_insert(0);
            *c += 1;
            *c
        };
        for f in &self.plan.scans {
            if f.table == *table && (f.nth == 0 || f.nth == ordinal) {
                return Err(StorageError::Injected {
                    site: format!("scan #{ordinal} of table {table}"),
                });
            }
        }
        Ok(())
    }

    /// Fails a versioned read of `table` at `ts` if it lies past a cutoff.
    pub(crate) fn on_replay(&self, table: &Ident, ts: Timestamp) -> Result<(), StorageError> {
        for c in &self.plan.cutoffs {
            let table_matches = c.table.as_ref().is_none_or(|t| t == table);
            if table_matches && ts > c.after {
                return Err(StorageError::Injected {
                    site: format!(
                        "backlog replay of {table} at {ts} (history truncated after {})",
                        c.after
                    ),
                });
            }
        }
        Ok(())
    }
}

/// What an armed [`IoFaultPlan`] injects into one journal append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoAppendFault {
    /// Write the frame normally.
    None,
    /// Write only the first `keep` bytes of the frame, then fail the append
    /// — the on-disk result is a torn tail, exactly what a crash mid-write
    /// leaves behind.
    ShortWrite(usize),
    /// Write the whole frame but with a corrupted checksum, and report
    /// success — silent media corruption, caught only by recovery's CRC
    /// scan.
    CorruptCrc,
}

/// A deterministic plan of journal I/O faults (short write, fsync error,
/// corrupt CRC), the durability counterpart of [`FaultPlan`]'s scan faults.
///
/// Ordinals are 1-based and counted per armed state, so a test can address
/// "the 3rd record ever written" or "the 2nd fsync" exactly. The plan lives
/// here (not in the persistence crate) so the whole workspace shares one
/// fault-injection vocabulary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoFaultPlan {
    /// `(nth append, bytes kept)`.
    short_write: Option<(u64, usize)>,
    /// Which fsync call fails.
    fsync_fail: Option<u64>,
    /// Which append's checksum is silently corrupted.
    corrupt_crc: Option<u64>,
}

impl IoFaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// The `nth` (1-based) append writes only `keep` bytes and then fails.
    pub fn short_write(mut self, nth: u64, keep: usize) -> Self {
        assert!(nth > 0, "append ordinals are 1-based");
        self.short_write = Some((nth, keep));
        self
    }

    /// The `nth` (1-based) fsync fails.
    pub fn fail_fsync(mut self, nth: u64) -> Self {
        assert!(nth > 0, "fsync ordinals are 1-based");
        self.fsync_fail = Some(nth);
        self
    }

    /// The `nth` (1-based) append is written with a corrupted CRC but
    /// reported as successful.
    pub fn corrupt_crc(mut self, nth: u64) -> Self {
        assert!(nth > 0, "append ordinals are 1-based");
        self.corrupt_crc = Some(nth);
        self
    }

    /// True when the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.short_write.is_none() && self.fsync_fail.is_none() && self.corrupt_crc.is_none()
    }
}

/// An armed [`IoFaultPlan`] with its append/fsync counters. Shared via
/// `Arc` with the journal under test.
#[derive(Debug, Default)]
pub struct IoFaultState {
    plan: IoFaultPlan,
    appends: Mutex<u64>,
    fsyncs: Mutex<u64>,
}

impl IoFaultState {
    /// Arms a plan.
    pub fn new(plan: IoFaultPlan) -> Self {
        IoFaultState { plan, appends: Mutex::new(0), fsyncs: Mutex::new(0) }
    }

    /// Records one append and says what to inject into it.
    pub fn on_append(&self) -> IoAppendFault {
        let ordinal = {
            let mut n = self.appends.lock().unwrap_or_else(|e| e.into_inner());
            *n += 1;
            *n
        };
        if let Some((nth, keep)) = self.plan.short_write {
            if nth == ordinal {
                return IoAppendFault::ShortWrite(keep);
            }
        }
        if self.plan.corrupt_crc == Some(ordinal) {
            return IoAppendFault::CorruptCrc;
        }
        IoAppendFault::None
    }

    /// Records one fsync and fails it if the plan says so.
    pub fn on_fsync(&self) -> Result<(), std::io::Error> {
        let ordinal = {
            let mut n = self.fsyncs.lock().unwrap_or_else(|e| e.into_inner());
            *n += 1;
            *n
        };
        if self.plan.fsync_fail == Some(ordinal) {
            return Err(std::io::Error::other(format!("injected: fsync #{ordinal} failed")));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_scan_trips_once() {
        let state = FaultState::new(FaultPlan::new().fail_scan("t", 2));
        let t = Ident::new("t");
        assert!(state.on_scan(&t).is_ok());
        let err = state.on_scan(&t).unwrap_err();
        assert!(matches!(err, StorageError::Injected { ref site } if site.contains("scan #2")));
        assert!(state.on_scan(&t).is_ok(), "only the addressed ordinal fails");
    }

    #[test]
    fn all_scans_trip_every_time() {
        let state = FaultState::new(FaultPlan::new().fail_all_scans("t"));
        let t = Ident::new("t");
        for _ in 0..3 {
            assert!(state.on_scan(&t).is_err());
        }
        assert!(state.on_scan(&Ident::new("other")).is_ok());
    }

    #[test]
    fn counters_are_per_table() {
        let state = FaultState::new(FaultPlan::new().fail_scan("a", 1).fail_scan("b", 2));
        assert!(state.on_scan(&Ident::new("b")).is_ok());
        assert!(state.on_scan(&Ident::new("a")).is_err());
        assert!(state.on_scan(&Ident::new("b")).is_err());
    }

    #[test]
    fn backlog_cutoff_respects_table_and_instant() {
        let state = FaultState::new(FaultPlan::new().fail_backlog_past("t", Timestamp(100)));
        let t = Ident::new("t");
        assert!(state.on_replay(&t, Timestamp(100)).is_ok(), "cutoff itself is readable");
        assert!(state.on_replay(&t, Timestamp(101)).is_err());
        assert!(state.on_replay(&Ident::new("other"), Timestamp(500)).is_ok());

        let any = FaultState::new(FaultPlan::new().fail_all_backlogs_past(Timestamp(10)));
        assert!(any.on_replay(&Ident::new("x"), Timestamp(11)).is_err());
    }

    #[test]
    fn plan_is_composable_and_comparable() {
        let p = FaultPlan::new().fail_scan("t", 1).fail_all_backlogs_past(Timestamp(5));
        assert!(!p.is_empty());
        assert_eq!(p, p.clone());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_ordinal_is_rejected() {
        let _ = FaultPlan::new().fail_scan("t", 0);
    }
}
