//! `audex-storage` — the in-memory, versioned relational substrate.
//!
//! The paper assumes a Hippocratic database in the style of Agrawal et al.
//! (VLDB'04): base tables whose every change is captured in *backlog* tables,
//! so that "the state of the database at any past point in time" can be
//! reconstructed, plus an executor for the SPJ query fragment. This crate is
//! that substrate, built from scratch:
//!
//! * [`value`] — dynamically-typed values with SQL three-valued comparison
//!   semantics (including the string/number coercion the paper's own
//!   examples rely on),
//! * [`schema`] / [`table`] — typed relations whose rows carry stable tuple
//!   ids (`t11`, `t24`, … as in the paper's Tables 1–3),
//! * [`backlog`] — per-table change logs with time travel
//!   ([`backlog::TableHistory::replay_to`]) and backlog relations (`b-T`),
//! * [`mvcc`] — the default versioned-tuple store: every version carries a
//!   `[xmin, xmax)` validity interval, so time travel is a visibility
//!   filter instead of a replay (the backlog path remains available as the
//!   differential oracle via [`database::StorageMode::Replay`]),
//! * [`eval`] — compiled expression evaluation,
//! * [`exec`] — SPJ execution with **tuple-level lineage**, the primitive
//!   from which indispensable-tuple auditing (paper Definition 2) is built,
//! * [`database`] — the mutable database tying it all together, with
//!   timestamped DML and `DATA-INTERVAL` version enumeration.
//!
//! ```
//! use audex_sql::{parse_statement, parse_query, Timestamp};
//! use audex_storage::Database;
//!
//! let mut db = Database::new();
//! db.execute(&parse_statement("CREATE TABLE Patients (pid TEXT, zipcode TEXT)").unwrap(),
//!            Timestamp(0)).unwrap();
//! db.execute(&parse_statement("INSERT INTO Patients VALUES ('p1', '120016')").unwrap(),
//!            Timestamp(10)).unwrap();
//! db.execute(&parse_statement("UPDATE Patients SET zipcode = '145568'").unwrap(),
//!            Timestamp(20)).unwrap();
//!
//! // Time travel: the old zipcode is still visible at ts 10.
//! let q = parse_query("SELECT zipcode FROM Patients").unwrap();
//! let old = db.at(Timestamp(10)).query(&q).unwrap();
//! assert_eq!(old.rows[0][0].to_string(), "120016");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Robustness policy: library code must surface failures as structured
// errors, never panic on them (tests are exempt via clippy.toml).
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod backlog;
pub mod database;
pub mod error;
pub mod eval;
pub mod exec;
pub mod fault;
pub mod mvcc;
pub mod schema;
pub mod snapshot;
pub mod table;
pub mod value;

pub use backlog::{ChangeOp, ChangeRecord, TableHistory};
pub use database::{ChangeSink, Database, DatabaseAt, ExecOutcome, StorageMode};
pub use error::StorageError;
pub use exec::{
    execute_query, JoinStrategy, LineageEntry, LineageRow, RelationProvider, ResultSet,
};
pub use fault::{FaultPlan, IoAppendFault, IoFaultPlan, IoFaultState};
pub use mvcc::{StoreStats, VersionStore, VisibilityScan};
pub use schema::Schema;
pub use snapshot::{SnapshotKind, SnapshotStats};
pub use table::{Relation, Row, Table, Tid};
pub use value::{Truth, Value};
