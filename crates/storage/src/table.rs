//! Tables, rows, and tuple identifiers.

use audex_sql::Ident;
use std::collections::BTreeMap;
use std::fmt;

use crate::error::StorageError;
use crate::schema::Schema;
use crate::value::Value;

/// A stable tuple identifier, displayed `t<id>` to match the paper's
/// `t11`, `t24`, … naming. Tids survive updates (an update produces a new
/// version of the *same* tid) which is what makes backlog reconstruction and
/// indispensable-tuple bookkeeping possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tid(pub u64);

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One tuple: values in schema order.
pub type Row = Vec<Value>;

/// A stored table: schema plus rows keyed by tid.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: Ident,
    schema: Schema,
    rows: BTreeMap<Tid, Row>,
    next_tid: u64,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: Ident, schema: Schema) -> Self {
        Table { name, schema, rows: BTreeMap::new(), next_tid: 1 }
    }

    /// The table name.
    pub fn name(&self) -> &Ident {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts with an auto-assigned tid; validates arity and types.
    pub fn insert(&mut self, row: Row) -> Result<Tid, StorageError> {
        let tid = Tid(self.next_tid);
        self.insert_with_tid(tid, row)?;
        Ok(tid)
    }

    /// Inserts with an explicit tid (used by fixtures reproducing the
    /// paper's `t11`-style ids, and by backlog replay).
    pub fn insert_with_tid(&mut self, tid: Tid, row: Row) -> Result<(), StorageError> {
        if self.rows.contains_key(&tid) {
            return Err(StorageError::DuplicateTid(tid));
        }
        let row = self.validate(row)?;
        self.rows.insert(tid, row);
        self.next_tid = self.next_tid.max(tid.0 + 1);
        Ok(())
    }

    /// Replaces the row stored under an existing tid.
    pub fn update(&mut self, tid: Tid, row: Row) -> Result<(), StorageError> {
        if !self.rows.contains_key(&tid) {
            return Err(StorageError::DuplicateTid(tid)); // reused as "no such tid"
        }
        let row = self.validate(row)?;
        self.rows.insert(tid, row);
        Ok(())
    }

    /// Removes a row; returns it if present.
    pub fn delete(&mut self, tid: Tid) -> Option<Row> {
        self.rows.remove(&tid)
    }

    /// The row stored under `tid`.
    pub fn get(&self, tid: Tid) -> Option<&Row> {
        self.rows.get(&tid)
    }

    /// Iterates `(tid, row)` pairs in tid order.
    pub fn iter(&self) -> impl Iterator<Item = (Tid, &Row)> {
        self.rows.iter().map(|(t, r)| (*t, r))
    }

    /// Raises the auto-tid watermark to at least `next`: a reconstruction
    /// (e.g. from a version store) must not re-issue tids that belonged to
    /// since-deleted rows, or it would diverge from the original run.
    pub fn reserve_tids(&mut self, next: u64) {
        self.next_tid = self.next_tid.max(next);
    }

    fn validate(&self, row: Row) -> Result<Row, StorageError> {
        if row.len() != self.schema.len() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.len(),
                actual: row.len(),
            });
        }
        row.into_iter()
            .enumerate()
            .map(|(i, v)| {
                self.schema.check_value(i, &v)?;
                Ok(self.schema.canonicalize(i, v))
            })
            .collect()
    }

    /// A scan-ready view of this table.
    pub fn to_relation(&self) -> Relation {
        Relation {
            name: self.name.clone(),
            schema: self.schema.clone(),
            rows: self.iter().map(|(t, r)| (t, r.clone())).collect(),
        }
    }
}

/// A materialized relation fed to the executor. Unlike [`Table`], tids may
/// repeat (the backlog relation `b-T` contains several versions of the same
/// tuple, all carrying the original tid).
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    /// Relation name (for diagnostics).
    pub name: Ident,
    /// Column layout.
    pub schema: Schema,
    /// `(tid, row)` pairs.
    pub rows: Vec<(Tid, Row)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use audex_sql::ast::TypeName;

    fn table() -> Table {
        Table::new(
            Ident::new("P-Personal"),
            Schema::of(&[("pid", TypeName::Text), ("age", TypeName::Int)]),
        )
    }

    #[test]
    fn tid_displays_like_paper() {
        assert_eq!(Tid(11).to_string(), "t11");
    }

    #[test]
    fn auto_tids_are_sequential_and_skip_explicit() {
        let mut t = table();
        let t1 = t.insert(vec!["p1".into(), Value::Int(25)]).unwrap();
        assert_eq!(t1, Tid(1));
        t.insert_with_tid(Tid(10), vec!["p2".into(), Value::Int(30)]).unwrap();
        let t11 = t.insert(vec!["p3".into(), Value::Int(40)]).unwrap();
        assert_eq!(t11, Tid(11));
    }

    #[test]
    fn duplicate_tid_rejected() {
        let mut t = table();
        t.insert_with_tid(Tid(5), vec!["p".into(), Value::Int(1)]).unwrap();
        assert!(t.insert_with_tid(Tid(5), vec!["q".into(), Value::Int(2)]).is_err());
    }

    #[test]
    fn arity_and_type_validation() {
        let mut t = table();
        assert!(t.insert(vec!["p1".into()]).is_err());
        assert!(t.insert(vec![Value::Int(3), Value::Int(25)]).is_err());
        assert!(t.insert(vec!["p1".into(), Value::Null]).is_ok());
    }

    #[test]
    fn update_and_delete() {
        let mut t = table();
        let tid = t.insert(vec!["p1".into(), Value::Int(25)]).unwrap();
        t.update(tid, vec!["p1".into(), Value::Int(26)]).unwrap();
        assert_eq!(t.get(tid).unwrap()[1], Value::Int(26));
        assert!(t.update(Tid(99), vec!["x".into(), Value::Int(0)]).is_err());
        assert!(t.delete(tid).is_some());
        assert!(t.delete(tid).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn relation_snapshot_is_decoupled() {
        let mut t = table();
        t.insert(vec!["p1".into(), Value::Int(25)]).unwrap();
        let r = t.to_relation();
        t.insert(vec!["p2".into(), Value::Int(30)]).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(t.len(), 2);
    }
}
