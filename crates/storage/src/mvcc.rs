//! MVCC versioned-tuple storage — time travel as a visibility filter.
//!
//! The backlog methodology ([`crate::backlog`]) answers "the table as of
//! `ts`" by *replaying* a change prefix, which is linear in history length
//! and made bearable only by aggressive snapshot caching. This module keeps
//! the same logical content in the shape classic MVCC engines use: one flat
//! tuple store where every row version carries a `[xmin, xmax)` validity
//! interval of logical instants (the exemplar is `small-db`'s
//! `Tuple { xmin, xmax, cells }`). Reconstruction then becomes a pure
//! *visibility filter*:
//!
//! * `as_of(ts)` — a version is visible iff `xmin <= ts < xmax`. Per tuple
//!   the candidate is found by binary search over its (xmin-ordered) version
//!   chain, so the cost is O(live tuples · log versions-per-tuple) and —
//!   crucially — independent of how long the change history has grown.
//! * `versions_in(t_s, t_e)` — the distinct instants a `DATA-INTERVAL`
//!   selects are read straight off the recorded change boundaries.
//! * `b-T` — the backlog relation is the version vector itself, in original
//!   change order (every insert/update appended exactly one version).
//!
//! # Equivalence with replay
//!
//! [`VersionStore::record`] maps the same [`ChangeRecord`] stream the
//! replay path consumes onto interval operations: an insert opens
//! `[ts, ∞)`, an update closes the tuple's live version at `ts` and opens a
//! new one, a delete just closes. Equal-timestamp chains degenerate to
//! empty `[t, t)` intervals — invisible to `as_of`, exactly like replay's
//! last-image-wins — while the backlog relation deliberately ignores `xmax`
//! so superseded same-instant images still appear, as they do when replay
//! walks the raw change log. `Database` keeps both representations behind
//! one API and the differential tests hold them byte-identical.
//!
//! # Recovery forks
//!
//! Every version remembers which change opened it and which change closed
//! it ([`ChangeMeta::opened`] / [`Version::closed_by`]), so a *prefix* of
//! the store — the state after the first `n` changes — can be cut out in
//! one pass ([`VersionStore::truncated`]) by dropping later versions and
//! re-opening those whose close lies past the cut. Crash recovery uses this
//! to re-prepare mid-stream audit registrations against the exact database
//! they originally saw, without replaying changes one by one.

use std::collections::BTreeMap;

use audex_sql::{Ident, Timestamp};

use crate::backlog::{ChangeOp, ChangeRecord};
use crate::error::StorageError;
use crate::schema::Schema;
use crate::table::{Relation, Row, Table, Tid};

/// The open upper bound of a live version's validity interval.
pub const XMAX_OPEN: Timestamp = Timestamp(i64::MAX);

/// One tuple version: an after-image valid for `[xmin, xmax)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Version {
    /// The tuple this is a version of (stable across updates).
    pub tid: Tid,
    /// First instant at which this version is visible.
    pub xmin: Timestamp,
    /// First instant at which it no longer is ([`XMAX_OPEN`] while live).
    pub xmax: Timestamp,
    /// Index (into the change meta log) of the update/delete that closed
    /// this version; `None` while live. Lets [`VersionStore::truncated`]
    /// re-open versions whose close lies past the cut.
    pub closed_by: Option<u32>,
    /// The version's values, in schema order.
    pub row: Row,
}

impl Version {
    /// Visibility filter: `xmin <= ts < xmax`.
    pub fn visible_at(&self, ts: Timestamp) -> bool {
        self.xmin <= ts && ts < self.xmax
    }
}

/// One recorded change, reduced to the metadata the store needs alongside
/// the version it opened: the instant (for `DATA-INTERVAL` enumeration and
/// prefix keys), the op, the tuple, and the opened version's index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChangeMeta {
    /// When the change took effect.
    pub ts: Timestamp,
    /// What happened.
    pub op: ChangeOp,
    /// The affected tuple.
    pub tid: Tid,
    /// Index (into the version vector) of the version this change opened;
    /// `None` for deletes.
    pub opened: Option<u32>,
}

/// Read-path effort counters for one reconstruction: how many tuples were
/// probed and how many chain entries the binary searches examined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VisibilityScan {
    /// Tuples whose version chain was probed.
    pub probes: u64,
    /// Chain entries examined across all probes (log₂ per chain).
    pub versions_examined: u64,
}

/// Aggregate size/occupancy numbers for `stats`, `metrics`, and
/// `audex compact` reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Versions still open (`xmax` unbounded).
    pub live_versions: u64,
    /// Versions closed by a later update/delete — reclaimable by a GC that
    /// gave up time travel before its horizon.
    pub dead_versions: u64,
    /// Approximate heap footprint of the version vector and meta log.
    pub approx_bytes: u64,
}

impl StoreStats {
    /// Component-wise sum (for aggregating over tables).
    pub fn merge(&mut self, other: StoreStats) {
        self.live_versions += other.live_versions;
        self.dead_versions += other.dead_versions;
        self.approx_bytes += other.approx_bytes;
    }
}

/// The versioned-tuple store for one table: a flat, append-ordered version
/// vector plus a per-tuple index of version chains and the ordered change
/// meta log. Logically equivalent to a [`crate::backlog::TableHistory`];
/// see the module docs for the mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct VersionStore {
    name: Ident,
    schema: Schema,
    created_at: Timestamp,
    /// Every version ever created, in change order (the backlog relation).
    versions: Vec<Version>,
    /// Every change ever recorded, in order (prefix keys, instants).
    meta: Vec<ChangeMeta>,
    /// Per-tuple version chains: indices into `versions`, xmin-ascending
    /// (append order preserves this — timestamps are non-decreasing).
    by_tid: BTreeMap<Tid, Vec<u32>>,
    /// Count of versions with `xmax` still open, maintained incrementally.
    live: u64,
}

impl VersionStore {
    /// An empty store for a table created at `created_at`.
    pub fn new(name: Ident, schema: Schema, created_at: Timestamp) -> Self {
        VersionStore {
            name,
            schema,
            created_at,
            versions: Vec::new(),
            meta: Vec::new(),
            by_tid: BTreeMap::new(),
            live: 0,
        }
    }

    /// The table name.
    pub fn name(&self) -> &Ident {
        &self.name
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// When the table was created.
    pub fn created_at(&self) -> Timestamp {
        self.created_at
    }

    /// Every version ever created, in change order.
    pub fn versions(&self) -> &[Version] {
        &self.versions
    }

    /// The ordered change meta log.
    pub fn meta(&self) -> &[ChangeMeta] {
        &self.meta
    }

    /// Applies one change: insert opens a version, update closes the
    /// tuple's live version and opens a new one, delete closes. Timestamps
    /// must be non-decreasing, exactly like the replay path.
    pub fn record(&mut self, rec: ChangeRecord) -> Result<(), StorageError> {
        let last = self.meta.last().map_or(self.created_at, |m| m.ts);
        if rec.ts < last {
            return Err(StorageError::NonMonotonicTimestamp { last, offered: rec.ts });
        }
        let meta_idx = self.meta.len() as u32;
        let opened = match (rec.op, rec.after) {
            (ChangeOp::Insert, Some(row)) => Some(self.open_version(rec.tid, rec.ts, row)),
            (ChangeOp::Update, Some(row)) => {
                self.close_live(rec.tid, rec.ts, meta_idx);
                Some(self.open_version(rec.tid, rec.ts, row))
            }
            (ChangeOp::Delete, _) => {
                self.close_live(rec.tid, rec.ts, meta_idx);
                None
            }
            (op, None) => {
                return Err(StorageError::Unsupported(format!(
                    "malformed change record: {op:?} without after-image"
                )))
            }
        };
        self.meta.push(ChangeMeta { ts: rec.ts, op: rec.op, tid: rec.tid, opened });
        Ok(())
    }

    fn open_version(&mut self, tid: Tid, ts: Timestamp, row: Row) -> u32 {
        let idx = self.versions.len() as u32;
        self.versions.push(Version { tid, xmin: ts, xmax: XMAX_OPEN, closed_by: None, row });
        self.by_tid.entry(tid).or_default().push(idx);
        self.live += 1;
        idx
    }

    fn close_live(&mut self, tid: Tid, ts: Timestamp, meta_idx: u32) {
        // The live version, if any, is the newest entry of the chain (older
        // ones were closed when their successors opened).
        let newest = self.by_tid.get(&tid).and_then(|chain| chain.last().copied());
        if let Some(idx) = newest {
            if let Some(v) = self.versions.get_mut(idx as usize) {
                if v.xmax == XMAX_OPEN {
                    v.xmax = ts;
                    v.closed_by = Some(meta_idx);
                    self.live -= 1;
                }
            }
        }
    }

    /// The number of recorded changes visible at `ts` (inclusive) — the
    /// same self-validating snapshot-cache key the replay path uses.
    pub fn change_prefix_len(&self, ts: Timestamp) -> usize {
        self.meta.partition_point(|m| m.ts <= ts)
    }

    /// Distinct instants in `(start, end]` at which this table changed.
    pub fn change_instants(&self, start: Timestamp, end: Timestamp) -> Vec<Timestamp> {
        let lo = self.meta.partition_point(|m| m.ts <= start);
        let hi = self.meta.partition_point(|m| m.ts <= end);
        let mut out: Vec<Timestamp> = self.meta[lo..hi].iter().map(|m| m.ts).collect();
        out.dedup();
        out
    }

    /// The tuple's visible row at `ts`, if any (the replay path's
    /// `replay_to(ts).get(tid)`).
    pub fn row_as_of(&self, tid: Tid, ts: Timestamp) -> Option<&Row> {
        let chain = self.by_tid.get(&tid)?;
        let candidate = self.visible_in_chain(chain, ts)?;
        Some(&self.versions[candidate as usize].row)
    }

    /// The newest chain entry with `xmin <= ts`, if it is still visible at
    /// `ts`. Earlier entries are guaranteed closed at or before that
    /// entry's `xmin`, so only the candidate needs the `xmax` check.
    fn visible_in_chain(&self, chain: &[u32], ts: Timestamp) -> Option<u32> {
        let p = chain.partition_point(|&i| self.versions[i as usize].xmin <= ts);
        let candidate = *chain.get(p.checked_sub(1)?)?;
        self.versions[candidate as usize].visible_at(ts).then_some(candidate)
    }

    /// The table state as of `ts` as a scan-ready relation, with the
    /// visibility-scan effort it took. Rows come out tid-ordered, exactly
    /// like `replay_to(ts).to_relation()`.
    pub fn relation_as_of(&self, ts: Timestamp) -> (Relation, VisibilityScan) {
        let mut scan = VisibilityScan::default();
        let mut rows: Vec<(Tid, Row)> = Vec::new();
        for (tid, chain) in &self.by_tid {
            scan.probes += 1;
            scan.versions_examined += (chain.len().max(1)).ilog2() as u64 + 1;
            if let Some(idx) = self.visible_in_chain(chain, ts) {
                rows.push((*tid, self.versions[idx as usize].row.clone()));
            }
        }
        let rel = Relation { name: self.name.clone(), schema: self.schema.clone(), rows };
        (rel, scan)
    }

    /// The table state as of `ts` as a [`Table`], with the exact `next_tid`
    /// the mutation path would have: one past the highest tid ever opened
    /// (deletes do not give tids back).
    pub fn table_as_of(&self, ts: Timestamp) -> Table {
        let mut table = Table::new(self.name.clone(), self.schema.clone());
        for (tid, chain) in &self.by_tid {
            if let Some(idx) = self.visible_in_chain(chain, ts) {
                let inserted = table.insert_with_tid(*tid, self.versions[idx as usize].row.clone());
                debug_assert!(inserted.is_ok(), "stored versions re-validate");
            }
        }
        if let Some((max_tid, _)) = self.by_tid.iter().next_back() {
            table.reserve_tids(max_tid.0 + 1);
        }
        table
    }

    /// The backlog relation `b-T` at `ts`: every after-image in original
    /// change order, exact `(tid, row)` duplicates kept once — visibility
    /// (`xmax`) deliberately ignored, superseded images included.
    pub fn backlog_relation(&self, ts: Timestamp) -> Relation {
        let mut rows: Vec<(Tid, Row)> = Vec::new();
        let mut seen: std::collections::HashSet<(Tid, &Row)> = std::collections::HashSet::new();
        for v in &self.versions {
            if v.xmin > ts {
                break;
            }
            if seen.insert((v.tid, &v.row)) {
                rows.push((v.tid, v.row.clone()));
            }
        }
        Relation {
            name: Ident::new(format!("b-{}", self.name.value)),
            schema: self.schema.clone(),
            rows,
        }
    }

    /// Materializes the full ordered change log (the session-script export
    /// path wants [`ChangeRecord`]s back).
    pub fn changes(&self) -> Vec<ChangeRecord> {
        self.meta
            .iter()
            .map(|m| ChangeRecord {
                ts: m.ts,
                op: m.op,
                tid: m.tid,
                after: m.opened.map(|i| self.versions[i as usize].row.clone()),
            })
            .collect()
    }

    /// Live/dead/size numbers for observability surfaces.
    pub fn stats(&self) -> StoreStats {
        let row_bytes = |r: &Row| r.iter().map(|v| v.approx_bytes()).sum::<usize>();
        let bytes = self.versions.iter().map(|v| 48 + row_bytes(&v.row)).sum::<usize>()
            + self.meta.len() * std::mem::size_of::<ChangeMeta>()
            + self.by_tid.len() * 32;
        StoreStats {
            live_versions: self.live,
            dead_versions: self.versions.len() as u64 - self.live,
            approx_bytes: bytes as u64,
        }
    }

    /// The store as it was after its first `n` recorded changes: later
    /// versions dropped, versions closed by a dropped change re-opened.
    /// O(prefix) — no change-by-change replay.
    pub fn truncated(&self, n: usize) -> VersionStore {
        let n = n.min(self.meta.len());
        let kept_versions = self.meta[..n].iter().filter(|m| m.opened.is_some()).count();
        let mut versions: Vec<Version> = self.versions[..kept_versions].to_vec();
        let mut live = 0u64;
        for v in &mut versions {
            if let Some(closer) = v.closed_by {
                if closer as usize >= n {
                    v.xmax = XMAX_OPEN;
                    v.closed_by = None;
                }
            }
            if v.xmax == XMAX_OPEN {
                live += 1;
            }
        }
        let mut by_tid: BTreeMap<Tid, Vec<u32>> = BTreeMap::new();
        for (i, v) in versions.iter().enumerate() {
            by_tid.entry(v.tid).or_default().push(i as u32);
        }
        VersionStore {
            name: self.name.clone(),
            schema: self.schema.clone(),
            created_at: self.created_at,
            versions,
            meta: self.meta[..n].to_vec(),
            by_tid,
            live,
        }
    }

    /// Rebuilds a store from its exported parts (crash recovery decodes
    /// these from a checkpoint). The per-tuple index and live count are
    /// derived; callers supply only what the codec persisted.
    pub fn from_parts(
        name: Ident,
        schema: Schema,
        created_at: Timestamp,
        versions: Vec<Version>,
        meta: Vec<ChangeMeta>,
    ) -> VersionStore {
        let mut by_tid: BTreeMap<Tid, Vec<u32>> = BTreeMap::new();
        let mut live = 0u64;
        for (i, v) in versions.iter().enumerate() {
            by_tid.entry(v.tid).or_default().push(i as u32);
            if v.xmax == XMAX_OPEN {
                live += 1;
            }
        }
        VersionStore { name, schema, created_at, versions, meta, by_tid, live }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backlog::TableHistory;
    use crate::value::Value;
    use audex_sql::ast::TypeName;

    fn rec(ts: i64, op: ChangeOp, tid: u64, after: Option<Vec<Value>>) -> ChangeRecord {
        ChangeRecord { ts: Timestamp(ts), op, tid: Tid(tid), after }
    }

    fn store() -> VersionStore {
        let mut s = VersionStore::new(
            Ident::new("Patients"),
            Schema::of(&[("pid", TypeName::Text), ("zipcode", TypeName::Text)]),
            Timestamp(0),
        );
        s.record(rec(10, ChangeOp::Insert, 1, Some(vec!["p1".into(), "120016".into()]))).unwrap();
        s.record(rec(20, ChangeOp::Update, 1, Some(vec!["p1".into(), "145568".into()]))).unwrap();
        s.record(rec(30, ChangeOp::Delete, 1, None)).unwrap();
        s
    }

    #[test]
    fn visibility_reconstructs_each_version() {
        let s = store();
        assert!(s.row_as_of(Tid(1), Timestamp(5)).is_none());
        assert_eq!(s.row_as_of(Tid(1), Timestamp(10)).unwrap()[1], Value::Str("120016".into()));
        assert_eq!(s.row_as_of(Tid(1), Timestamp(25)).unwrap()[1], Value::Str("145568".into()));
        assert!(s.row_as_of(Tid(1), Timestamp(30)).is_none(), "delete closes at 30");
    }

    #[test]
    fn intervals_are_half_open() {
        let s = store();
        assert_eq!(s.versions()[0].xmin, Timestamp(10));
        assert_eq!(s.versions()[0].xmax, Timestamp(20));
        assert_eq!(s.versions()[1].xmax, Timestamp(30));
        assert_eq!(s.versions()[0].closed_by, Some(1));
        assert_eq!(s.versions()[1].closed_by, Some(2));
    }

    #[test]
    fn equal_timestamp_chain_is_invisible_like_replay() {
        let mut s =
            VersionStore::new(Ident::new("t"), Schema::of(&[("a", TypeName::Int)]), Timestamp(0));
        s.record(rec(5, ChangeOp::Insert, 1, Some(vec![Value::Int(1)]))).unwrap();
        s.record(rec(5, ChangeOp::Update, 1, Some(vec![Value::Int(2)]))).unwrap();
        s.record(rec(5, ChangeOp::Update, 1, Some(vec![Value::Int(3)]))).unwrap();
        // Last image wins at the shared instant; earlier images are empty
        // [5, 5) intervals.
        assert_eq!(s.row_as_of(Tid(1), Timestamp(5)).unwrap()[0], Value::Int(3));
        // ...but the backlog relation keeps all distinct images.
        assert_eq!(s.backlog_relation(Timestamp(100)).rows.len(), 3);
    }

    #[test]
    fn matches_replay_on_a_mixed_history() {
        let mut s = VersionStore::new(
            Ident::new("t"),
            Schema::of(&[("pid", TypeName::Text), ("zipcode", TypeName::Text)]),
            Timestamp(0),
        );
        let mut h = TableHistory::new(
            Ident::new("t"),
            Schema::of(&[("pid", TypeName::Text), ("zipcode", TypeName::Text)]),
            Timestamp(0),
        );
        // Deterministic mixed workload: inserts, updates, deletes,
        // re-inserts, equal-timestamp runs.
        let mut alive: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        let mut x = 0x9e3779b9u64;
        for i in 0..500u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let ts = (i / 3) as i64; // runs of equal timestamps
            let tid = x % 40 + 1;
            let r = if alive.contains(&tid) {
                if x.is_multiple_of(5) {
                    alive.remove(&tid);
                    rec(ts, ChangeOp::Delete, tid, None)
                } else {
                    rec(
                        ts,
                        ChangeOp::Update,
                        tid,
                        Some(vec![format!("p{tid}").into(), format!("z{i}").into()]),
                    )
                }
            } else {
                alive.insert(tid);
                rec(
                    ts,
                    ChangeOp::Insert,
                    tid,
                    Some(vec![format!("p{tid}").into(), format!("z{i}").into()]),
                )
            };
            s.record(r.clone()).unwrap();
            h.record(r).unwrap();
        }
        for probe in [-1i64, 0, 1, 2, 3, 50, 100, 165, 166, 167, 1000] {
            let ts = Timestamp(probe);
            let (rel, _) = s.relation_as_of(ts);
            assert_eq!(rel, h.replay_to(ts).to_relation(), "as_of divergence at {probe}");
            assert_eq!(
                s.backlog_relation(ts),
                h.backlog_relation(ts),
                "backlog divergence at {probe}"
            );
            assert_eq!(s.change_prefix_len(ts), h.change_prefix_len(ts));
        }
        assert_eq!(
            s.change_instants(Timestamp(3), Timestamp(120)),
            h.change_instants(Timestamp(3), Timestamp(120))
        );
        assert_eq!(s.changes(), h.changes().to_vec(), "materialized change log");
    }

    #[test]
    fn non_monotonic_timestamps_rejected() {
        let mut s = store();
        let r = s.record(rec(5, ChangeOp::Insert, 2, Some(vec!["p2".into(), "x".into()])));
        assert!(matches!(r, Err(StorageError::NonMonotonicTimestamp { .. })));
    }

    #[test]
    fn table_as_of_preserves_next_tid_past_deletes() {
        let mut s =
            VersionStore::new(Ident::new("t"), Schema::of(&[("a", TypeName::Int)]), Timestamp(0));
        s.record(rec(1, ChangeOp::Insert, 1, Some(vec![Value::Int(1)]))).unwrap();
        s.record(rec(2, ChangeOp::Insert, 7, Some(vec![Value::Int(7)]))).unwrap();
        s.record(rec(3, ChangeOp::Delete, 7, None)).unwrap();
        let t = s.table_as_of(Timestamp(10));
        assert_eq!(t.len(), 1);
        let mut t = t;
        assert_eq!(t.insert(vec![Value::Int(9)]).unwrap(), Tid(8), "tid 8 comes after deleted 7");
    }

    #[test]
    fn truncated_reopens_versions_closed_past_the_cut() {
        let s = store(); // insert@10, update@20, delete@30
        let cut = s.truncated(2); // state after insert + update
        assert_eq!(cut.meta().len(), 2);
        assert_eq!(cut.versions().len(), 2);
        assert_eq!(cut.row_as_of(Tid(1), Timestamp(25)).unwrap()[1], Value::Str("145568".into()));
        assert!(
            cut.row_as_of(Tid(1), Timestamp(40)).is_some(),
            "the delete was cut away, so the tuple is live again"
        );
        let cut1 = s.truncated(1);
        assert_eq!(cut1.versions()[0].xmax, XMAX_OPEN, "update's close also cut");
        assert_eq!(cut1.stats().live_versions, 1);
        // Full-length truncation is the identity.
        assert_eq!(s.truncated(99), s);
    }

    #[test]
    fn stats_track_live_and_dead() {
        let s = store();
        let st = s.stats();
        assert_eq!(st.live_versions, 0, "the only tuple was deleted");
        assert_eq!(st.dead_versions, 2);
        assert!(st.approx_bytes > 0);
    }

    #[test]
    fn from_parts_round_trips() {
        let s = store();
        let rebuilt = VersionStore::from_parts(
            s.name().clone(),
            s.schema().clone(),
            s.created_at(),
            s.versions().to_vec(),
            s.meta().to_vec(),
        );
        assert_eq!(rebuilt, s);
    }
}
