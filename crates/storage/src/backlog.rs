//! Backlog (change-log) versioning — the Hippocratic-database substrate.
//!
//! Agrawal et al. (VLDB'04), on which the paper builds, capture every update
//! to base tables into *backlog tables* via triggers, and reconstruct "the
//! state of the database at any past point in time" from them. This module
//! is that mechanism: every mutation of a table appends a timestamped
//! [`ChangeRecord`]; [`TableHistory::replay_to`] rebuilds the table as of any
//! instant, and [`TableHistory::change_instants`] enumerates the distinct
//! versions inside a `DATA-INTERVAL`.

use audex_sql::{Ident, Timestamp};

use crate::error::StorageError;
use crate::schema::Schema;
use crate::table::{Row, Table, Tid};

/// The kind of change recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangeOp {
    /// Row created.
    Insert,
    /// Row replaced.
    Update,
    /// Row removed.
    Delete,
}

/// One recorded change to one tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct ChangeRecord {
    /// When the change took effect.
    pub ts: Timestamp,
    /// What happened.
    pub op: ChangeOp,
    /// The affected tuple.
    pub tid: Tid,
    /// The after-image (`None` for deletes).
    pub after: Option<Row>,
}

/// How many changes between automatic replay checkpoints. Reconstruction
/// cost is O(interval) after the nearest checkpoint instead of O(history);
/// memory cost is one table snapshot per interval.
pub const CHECKPOINT_INTERVAL: usize = 1024;

/// The full history of one table: creation time, schema, ordered changes,
/// and periodic state checkpoints for fast reconstruction.
#[derive(Debug, Clone, PartialEq)]
pub struct TableHistory {
    name: Ident,
    schema: Schema,
    created_at: Timestamp,
    changes: Vec<ChangeRecord>,
    /// `(change index exclusive, state after applying that many changes)`.
    checkpoints: Vec<(usize, Table)>,
}

impl TableHistory {
    /// Starts a history at table creation.
    pub fn new(name: Ident, schema: Schema, created_at: Timestamp) -> Self {
        TableHistory { name, schema, created_at, changes: Vec::new(), checkpoints: Vec::new() }
    }

    /// The table name.
    pub fn name(&self) -> &Ident {
        &self.name
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// When the table was created.
    pub fn created_at(&self) -> Timestamp {
        self.created_at
    }

    /// All recorded changes, oldest first.
    pub fn changes(&self) -> &[ChangeRecord] {
        &self.changes
    }

    /// Appends a change; timestamps must be non-decreasing. Every
    /// [`CHECKPOINT_INTERVAL`] changes a state snapshot is taken so
    /// [`TableHistory::replay_to`] stays fast on long histories.
    pub fn record(&mut self, rec: ChangeRecord) -> Result<(), StorageError> {
        let last = self.changes.last().map_or(self.created_at, |c| c.ts);
        if rec.ts < last {
            return Err(StorageError::NonMonotonicTimestamp { last, offered: rec.ts });
        }
        self.changes.push(rec);
        if self.changes.len().is_multiple_of(CHECKPOINT_INTERVAL) {
            // Snapshot the state after all current changes. A checkpoint is
            // only usable for instants >= its last change's timestamp, which
            // replay_to checks (equal timestamps may span the boundary).
            let upto = self.changes.len();
            let state =
                self.replay_range(Table::new(self.name.clone(), self.schema.clone()), 0, upto);
            self.checkpoints.push((upto, state));
        }
        Ok(())
    }

    /// The number of recorded changes visible at `ts` (inclusive) — the
    /// boundary index of the prefix `replay_to(ts)` applies. Because the
    /// history is append-only, the content of `changes[..n]` is immutable
    /// for any given `n`, which makes this length a self-validating cache
    /// key for reconstructed snapshots (see [`crate::snapshot`]): distinct
    /// instants selecting the same version share one prefix length.
    pub fn change_prefix_len(&self, ts: Timestamp) -> usize {
        self.changes.partition_point(|c| c.ts <= ts)
    }

    /// Rebuilds the table state as of `ts` (inclusive): all changes with
    /// `change.ts <= ts` are applied. Uses the newest usable checkpoint.
    pub fn replay_to(&self, ts: Timestamp) -> Table {
        // The replay boundary: first index whose change is after `ts`.
        let end = self.change_prefix_len(ts);
        // Newest checkpoint fully inside the boundary.
        let base = self.checkpoints.iter().rev().find(|(upto, _)| *upto <= end);
        let (start, table) = match base {
            Some((upto, state)) => (*upto, state.clone()),
            None => (0, Table::new(self.name.clone(), self.schema.clone())),
        };
        self.replay_range(table, start, end)
    }

    fn replay_range(&self, mut table: Table, start: usize, end: usize) -> Table {
        // Records are internally consistent by construction (inserts and
        // updates always carry an after-image, and apply cleanly in order);
        // a corrupt record surfaces as a missing row, not a panic.
        for rec in &self.changes[start..end] {
            match (&rec.op, &rec.after) {
                (ChangeOp::Insert, Some(after)) => {
                    let applied = table.insert_with_tid(rec.tid, after.clone());
                    debug_assert!(applied.is_ok(), "backlog replay of insert");
                }
                (ChangeOp::Update, Some(after)) => {
                    let applied = table.update(rec.tid, after.clone());
                    debug_assert!(applied.is_ok(), "backlog replay of update");
                }
                (ChangeOp::Delete, _) => {
                    table.delete(rec.tid);
                }
                _ => debug_assert!(false, "insert/update record without after-image"),
            }
        }
        table
    }

    /// Distinct instants in `(start, end]` at which this table changed.
    /// The paper's DATA-INTERVAL semantics evaluate the target view at the
    /// interval start plus each of these instants.
    pub fn change_instants(&self, start: Timestamp, end: Timestamp) -> Vec<Timestamp> {
        let mut out: Vec<Timestamp> =
            self.changes.iter().map(|c| c.ts).filter(|t| *t > start && *t <= end).collect();
        out.dedup();
        out
    }

    /// The backlog relation `b-T`: every after-image every tuple ever had
    /// (up to and including `ts`), carrying the *original* tid. This is the
    /// interpretation of \[12\]: an audit over `b-T` considers all versions.
    /// Exact duplicate `(tid, row)` versions are kept once.
    pub fn backlog_relation(&self, ts: Timestamp) -> crate::table::Relation {
        let mut rows: Vec<(Tid, Row)> = Vec::new();
        let mut seen: std::collections::HashSet<(Tid, &Row)> = std::collections::HashSet::new();
        for rec in &self.changes {
            if rec.ts > ts {
                break;
            }
            if let Some(after) = &rec.after {
                if seen.insert((rec.tid, after)) {
                    rows.push((rec.tid, after.clone()));
                }
            }
        }
        crate::table::Relation {
            name: Ident::new(format!("b-{}", self.name.value)),
            schema: self.schema.clone(),
            rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use audex_sql::ast::TypeName;

    fn history() -> TableHistory {
        let mut h = TableHistory::new(
            Ident::new("Patients"),
            Schema::of(&[("pid", TypeName::Text), ("zipcode", TypeName::Text)]),
            Timestamp(0),
        );
        h.record(ChangeRecord {
            ts: Timestamp(10),
            op: ChangeOp::Insert,
            tid: Tid(1),
            after: Some(vec!["p1".into(), "120016".into()]),
        })
        .unwrap();
        h.record(ChangeRecord {
            ts: Timestamp(20),
            op: ChangeOp::Update,
            tid: Tid(1),
            after: Some(vec!["p1".into(), "145568".into()]),
        })
        .unwrap();
        h.record(ChangeRecord {
            ts: Timestamp(30),
            op: ChangeOp::Delete,
            tid: Tid(1),
            after: None,
        })
        .unwrap();
        h
    }

    #[test]
    fn replay_reconstructs_each_version() {
        let h = history();
        assert!(h.replay_to(Timestamp(5)).is_empty());
        assert_eq!(h.replay_to(Timestamp(10)).get(Tid(1)).unwrap()[1], Value::Str("120016".into()));
        assert_eq!(h.replay_to(Timestamp(25)).get(Tid(1)).unwrap()[1], Value::Str("145568".into()));
        assert!(h.replay_to(Timestamp(30)).is_empty());
    }

    #[test]
    fn replay_is_inclusive_of_ts() {
        let h = history();
        assert_eq!(h.replay_to(Timestamp(20)).get(Tid(1)).unwrap()[1], Value::Str("145568".into()));
    }

    #[test]
    fn non_monotonic_timestamps_rejected() {
        let mut h = history();
        let r = h.record(ChangeRecord {
            ts: Timestamp(5),
            op: ChangeOp::Insert,
            tid: Tid(2),
            after: Some(vec!["p2".into(), "x".into()]),
        });
        assert!(matches!(r, Err(StorageError::NonMonotonicTimestamp { .. })));
    }

    #[test]
    fn equal_timestamps_allowed() {
        let mut h = history();
        assert!(h
            .record(ChangeRecord {
                ts: Timestamp(30),
                op: ChangeOp::Insert,
                tid: Tid(2),
                after: Some(vec!["p2".into(), "y".into()]),
            })
            .is_ok());
    }

    #[test]
    fn change_instants_are_half_open() {
        let h = history();
        assert_eq!(
            h.change_instants(Timestamp(10), Timestamp(30)),
            vec![Timestamp(20), Timestamp(30)]
        );
        assert_eq!(h.change_instants(Timestamp(0), Timestamp(15)), vec![Timestamp(10)]);
        assert!(h.change_instants(Timestamp(30), Timestamp(100)).is_empty());
    }

    #[test]
    fn backlog_relation_keeps_all_versions_with_original_tid() {
        let h = history();
        let b = h.backlog_relation(Timestamp(100));
        assert_eq!(b.name, Ident::new("b-Patients"));
        assert_eq!(b.rows.len(), 2); // two after-images, delete contributes none
        assert!(b.rows.iter().all(|(t, _)| *t == Tid(1)));
    }

    #[test]
    fn backlog_relation_respects_cutoff() {
        let h = history();
        assert_eq!(h.backlog_relation(Timestamp(10)).rows.len(), 1);
        assert_eq!(h.backlog_relation(Timestamp(5)).rows.len(), 0);
    }

    #[test]
    fn checkpointed_replay_matches_full_replay() {
        // Cross several checkpoint boundaries and verify reconstruction at
        // instants before, on, and after each boundary.
        let mut h = TableHistory::new(
            Ident::new("t"),
            Schema::of(&[("pid", TypeName::Text), ("zipcode", TypeName::Text)]),
            Timestamp(0),
        );
        let n = 3 * CHECKPOINT_INTERVAL + 17;
        for i in 0..n {
            let tid = Tid((i % 97) as u64 + 1);
            let exists = h.replay_to(Timestamp(i as i64)).get(tid).is_some();
            let rec = if exists && i % 5 == 0 {
                ChangeRecord { ts: Timestamp(i as i64 + 1), op: ChangeOp::Delete, tid, after: None }
            } else if exists {
                ChangeRecord {
                    ts: Timestamp(i as i64 + 1),
                    op: ChangeOp::Update,
                    tid,
                    after: Some(vec![format!("p{}", i % 97).into(), format!("z{i}").into()]),
                }
            } else {
                ChangeRecord {
                    ts: Timestamp(i as i64 + 1),
                    op: ChangeOp::Insert,
                    tid,
                    after: Some(vec![format!("p{}", i % 97).into(), format!("z{i}").into()]),
                }
            };
            h.record(rec).unwrap();
        }
        assert!(h.checkpoints.len() >= 3, "boundaries crossed");
        for probe in [
            0i64,
            (CHECKPOINT_INTERVAL - 1) as i64,
            CHECKPOINT_INTERVAL as i64,
            (CHECKPOINT_INTERVAL + 1) as i64,
            (2 * CHECKPOINT_INTERVAL) as i64,
            n as i64,
            n as i64 + 100,
        ] {
            let fast = h.replay_to(Timestamp(probe));
            let slow = h.replay_range(
                Table::new(h.name.clone(), h.schema.clone()),
                0,
                h.changes.partition_point(|c| c.ts <= Timestamp(probe)),
            );
            assert_eq!(
                fast.iter().collect::<Vec<_>>(),
                slow.iter().collect::<Vec<_>>(),
                "divergence at ts {probe}"
            );
        }
    }

    #[test]
    fn change_prefix_len_partitions_on_ts() {
        let h = history(); // changes at 10, 20, 30
        assert_eq!(h.change_prefix_len(Timestamp(5)), 0);
        assert_eq!(h.change_prefix_len(Timestamp(10)), 1);
        assert_eq!(h.change_prefix_len(Timestamp(15)), 1);
        assert_eq!(h.change_prefix_len(Timestamp(30)), 3);
        assert_eq!(h.change_prefix_len(Timestamp(100)), 3);
    }

    #[test]
    fn identical_version_replays_hit_the_snapshot_cache() {
        // A DATA-INTERVAL can enumerate the same version instant more than
        // once (and distinct timestamps can select the same version). Both
        // cases must replay the backlog exactly once.
        use crate::database::Database;
        use audex_sql::parse_query;

        let mut db = Database::new();
        db.create_table(
            Ident::new("Patients"),
            Schema::of(&[("pid", TypeName::Text)]),
            Timestamp(0),
        )
        .unwrap();
        db.insert(&Ident::new("Patients"), vec!["p1".into()], Timestamp(10)).unwrap();
        db.insert(&Ident::new("Patients"), vec!["p2".into()], Timestamp(20)).unwrap();

        let q = parse_query("SELECT pid FROM Patients").unwrap();
        // ts 15 and ts 17 both see exactly the changes up to 10: one replay,
        // served from cache afterwards, including for the repeated instant.
        db.at(Timestamp(15)).query(&q).unwrap();
        db.at(Timestamp(17)).query(&q).unwrap();
        db.at(Timestamp(15)).query(&q).unwrap();
        let stats = db.snapshot_stats();
        assert_eq!(stats.misses, 1, "one reconstruction for one version");
        assert_eq!(stats.hits, 2, "repeat reads served from cache");
    }

    #[test]
    fn backlog_relation_dedupes_identical_versions() {
        let mut h = history();
        // Re-insert the same image the tuple had earlier.
        h.record(ChangeRecord {
            ts: Timestamp(40),
            op: ChangeOp::Insert,
            tid: Tid(1),
            after: Some(vec!["p1".into(), "120016".into()]),
        })
        .unwrap();
        let b = h.backlog_relation(Timestamp(100));
        assert_eq!(b.rows.len(), 2);
    }
}
