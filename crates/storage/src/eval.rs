//! Compilation and evaluation of expressions against row bindings.
//!
//! Expressions are compiled once per (expression, scope) pair: every column
//! reference is resolved to a flat slot index, so per-row evaluation does no
//! name lookups. A *scope* is an ordered list of table bindings; a *flat row*
//! is the concatenation of one row per binding.

use audex_sql::ast::{BinOp, ColumnRef, Expr, Literal, UnaryOp};
use audex_sql::Ident;

use crate::error::StorageError;
use crate::schema::Schema;
use crate::value::{ArithOp, Truth, Value};

/// An ordered set of table bindings forming the namespace of a query.
#[derive(Debug, Clone)]
pub struct Scope {
    bindings: Vec<(Ident, Schema)>,
    offsets: Vec<usize>,
    width: usize,
}

impl Scope {
    /// Builds a scope; binding names must be unique.
    pub fn new(bindings: Vec<(Ident, Schema)>) -> Result<Self, StorageError> {
        for (i, (name, _)) in bindings.iter().enumerate() {
            if bindings[..i].iter().any(|(n, _)| n == name) {
                return Err(StorageError::DuplicateBinding(name.clone()));
            }
        }
        let mut offsets = Vec::with_capacity(bindings.len());
        let mut width = 0;
        for (_, schema) in &bindings {
            offsets.push(width);
            width += schema.len();
        }
        Ok(Scope { bindings, offsets, width })
    }

    /// A scope over a single table (one binding cannot collide, so this
    /// bypasses the duplicate check rather than unwrap its result).
    pub fn single(name: Ident, schema: Schema) -> Self {
        let width = schema.len();
        Scope { bindings: vec![(name, schema)], offsets: vec![0], width }
    }

    /// Number of bindings.
    pub fn binding_count(&self) -> usize {
        self.bindings.len()
    }

    /// Total flat-row width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The bindings in order.
    pub fn bindings(&self) -> &[(Ident, Schema)] {
        &self.bindings
    }

    /// Flat-slot offset of binding `idx`.
    pub fn offset(&self, idx: usize) -> usize {
        self.offsets[idx]
    }

    /// Index of the binding named `name`.
    pub fn binding_index(&self, name: &Ident) -> Option<usize> {
        self.bindings.iter().position(|(n, _)| n == name)
    }

    /// Resolves a column reference to `(binding index, flat slot)`.
    ///
    /// Unqualified names must match exactly one binding's schema.
    pub fn resolve(&self, col: &ColumnRef) -> Result<(usize, usize), StorageError> {
        match &col.table {
            Some(t) => {
                let bi =
                    self.binding_index(t).ok_or_else(|| StorageError::UnknownTable(t.clone()))?;
                let ci = self.bindings[bi]
                    .1
                    .position(&col.column)
                    .ok_or_else(|| StorageError::UnknownColumn(format!("{t}.{}", col.column)))?;
                Ok((bi, self.offsets[bi] + ci))
            }
            None => {
                let mut found = None;
                for (bi, (_, schema)) in self.bindings.iter().enumerate() {
                    if let Some(ci) = schema.position(&col.column) {
                        if found.is_some() {
                            return Err(StorageError::AmbiguousColumn(col.column.clone()));
                        }
                        found = Some((bi, self.offsets[bi] + ci));
                    }
                }
                found.ok_or_else(|| StorageError::UnknownColumn(col.column.value.clone()))
            }
        }
    }
}

/// A compiled expression: column references are flat slot indices.
#[derive(Debug, Clone)]
pub enum CompiledExpr {
    /// Slot load.
    Slot(usize),
    /// Constant.
    Const(Value),
    /// `NOT e`.
    Not(Box<CompiledExpr>),
    /// `-e`.
    Neg(Box<CompiledExpr>),
    /// Logical AND (three-valued).
    And(Box<CompiledExpr>, Box<CompiledExpr>),
    /// Logical OR (three-valued).
    Or(Box<CompiledExpr>, Box<CompiledExpr>),
    /// Comparison.
    Cmp(BinOp, Box<CompiledExpr>, Box<CompiledExpr>),
    /// Arithmetic.
    Arith(ArithOp, Box<CompiledExpr>, Box<CompiledExpr>),
    /// `LIKE`.
    Like {
        /// Tested expression.
        expr: Box<CompiledExpr>,
        /// Pattern expression.
        pattern: Box<CompiledExpr>,
        /// `NOT LIKE`.
        negated: bool,
    },
    /// `IN` list.
    InList {
        /// Tested expression.
        expr: Box<CompiledExpr>,
        /// Candidates.
        list: Vec<CompiledExpr>,
        /// `NOT IN`.
        negated: bool,
    },
    /// `BETWEEN`.
    Between {
        /// Tested expression.
        expr: Box<CompiledExpr>,
        /// Lower bound.
        low: Box<CompiledExpr>,
        /// Upper bound.
        high: Box<CompiledExpr>,
        /// `NOT BETWEEN`.
        negated: bool,
    },
    /// `IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<CompiledExpr>,
        /// `IS NOT NULL`.
        negated: bool,
    },
}

/// Compiles `expr` against `scope`.
pub fn compile(expr: &Expr, scope: &Scope) -> Result<CompiledExpr, StorageError> {
    Ok(match expr {
        Expr::Column(c) => CompiledExpr::Slot(scope.resolve(c)?.1),
        Expr::Literal(l) => CompiledExpr::Const(literal_value(l)),
        Expr::Unary { op: UnaryOp::Not, expr } => {
            CompiledExpr::Not(Box::new(compile(expr, scope)?))
        }
        Expr::Unary { op: UnaryOp::Neg, expr } => {
            CompiledExpr::Neg(Box::new(compile(expr, scope)?))
        }
        Expr::Binary { left, op, right } => {
            let l = Box::new(compile(left, scope)?);
            let r = Box::new(compile(right, scope)?);
            match op {
                BinOp::And => CompiledExpr::And(l, r),
                BinOp::Or => CompiledExpr::Or(l, r),
                BinOp::Add => CompiledExpr::Arith(ArithOp::Add, l, r),
                BinOp::Sub => CompiledExpr::Arith(ArithOp::Sub, l, r),
                BinOp::Mul => CompiledExpr::Arith(ArithOp::Mul, l, r),
                BinOp::Div => CompiledExpr::Arith(ArithOp::Div, l, r),
                BinOp::Mod => CompiledExpr::Arith(ArithOp::Mod, l, r),
                cmp => CompiledExpr::Cmp(*cmp, l, r),
            }
        }
        Expr::Like { expr, pattern, negated } => CompiledExpr::Like {
            expr: Box::new(compile(expr, scope)?),
            pattern: Box::new(compile(pattern, scope)?),
            negated: *negated,
        },
        Expr::InList { expr, list, negated } => CompiledExpr::InList {
            expr: Box::new(compile(expr, scope)?),
            list: list.iter().map(|e| compile(e, scope)).collect::<Result<_, _>>()?,
            negated: *negated,
        },
        Expr::Between { expr, low, high, negated } => CompiledExpr::Between {
            expr: Box::new(compile(expr, scope)?),
            low: Box::new(compile(low, scope)?),
            high: Box::new(compile(high, scope)?),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => {
            CompiledExpr::IsNull { expr: Box::new(compile(expr, scope)?), negated: *negated }
        }
    })
}

/// Converts an AST literal to a runtime value.
pub fn literal_value(l: &Literal) -> Value {
    match l {
        Literal::Null => Value::Null,
        Literal::Bool(b) => Value::Bool(*b),
        Literal::Int(v) => Value::Int(*v),
        Literal::Float(v) => Value::Float(*v),
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::Ts(t) => Value::Ts(*t),
    }
}

impl CompiledExpr {
    /// Evaluates to a value over a flat row.
    pub fn eval(&self, row: &[Value]) -> Result<Value, StorageError> {
        Ok(match self {
            CompiledExpr::Slot(i) => row[*i].clone(),
            CompiledExpr::Const(v) => v.clone(),
            CompiledExpr::Not(e) => truth_to_value(e.truth(row)?.not()),
            CompiledExpr::Neg(e) => match e.eval(row)? {
                Value::Null => Value::Null,
                Value::Int(v) => {
                    Value::Int(v.checked_neg().ok_or(StorageError::ArithmeticOverflow)?)
                }
                Value::Float(v) => Value::Float(-v),
                other => {
                    return Err(StorageError::TypeMismatch {
                        operation: "-".into(),
                        left: "NUMBER",
                        right: other.type_name(),
                    })
                }
            },
            CompiledExpr::And(..)
            | CompiledExpr::Or(..)
            | CompiledExpr::Cmp(..)
            | CompiledExpr::Like { .. }
            | CompiledExpr::InList { .. }
            | CompiledExpr::Between { .. }
            | CompiledExpr::IsNull { .. } => truth_to_value(self.truth(row)?),
            CompiledExpr::Arith(op, l, r) => l.eval(row)?.arith(*op, &r.eval(row)?)?,
        })
    }

    /// Evaluates to three-valued truth over a flat row.
    pub fn truth(&self, row: &[Value]) -> Result<Truth, StorageError> {
        Ok(match self {
            CompiledExpr::And(l, r) => {
                // Short circuit: False AND _ = False without evaluating _.
                let lt = l.truth(row)?;
                if lt == Truth::False {
                    Truth::False
                } else {
                    lt.and(r.truth(row)?)
                }
            }
            CompiledExpr::Or(l, r) => {
                let lt = l.truth(row)?;
                if lt == Truth::True {
                    Truth::True
                } else {
                    lt.or(r.truth(row)?)
                }
            }
            CompiledExpr::Not(e) => e.truth(row)?.not(),
            CompiledExpr::Cmp(op, l, r) => {
                let lv = l.eval(row)?;
                let rv = r.eval(row)?;
                match lv.sql_cmp(&rv) {
                    None => Truth::Unknown,
                    Some(ord) => Truth::from_bool(match op {
                        BinOp::Eq => ord == std::cmp::Ordering::Equal,
                        BinOp::NotEq => ord != std::cmp::Ordering::Equal,
                        BinOp::Lt => ord == std::cmp::Ordering::Less,
                        BinOp::LtEq => ord != std::cmp::Ordering::Greater,
                        BinOp::Gt => ord == std::cmp::Ordering::Greater,
                        BinOp::GtEq => ord != std::cmp::Ordering::Less,
                        _ => unreachable!("non-comparison in Cmp"),
                    }),
                }
            }
            CompiledExpr::Like { expr, pattern, negated } => {
                let t = expr.eval(row)?.sql_like(&pattern.eval(row)?);
                if *negated {
                    t.not()
                } else {
                    t
                }
            }
            CompiledExpr::InList { expr, list, negated } => {
                let v = expr.eval(row)?;
                let mut acc = Truth::False;
                for cand in list {
                    acc = acc.or(v.sql_eq(&cand.eval(row)?));
                    if acc == Truth::True {
                        break;
                    }
                }
                if *negated {
                    acc.not()
                } else {
                    acc
                }
            }
            CompiledExpr::Between { expr, low, high, negated } => {
                let v = expr.eval(row)?;
                let ge = match v.sql_cmp(&low.eval(row)?) {
                    None => Truth::Unknown,
                    Some(o) => Truth::from_bool(o != std::cmp::Ordering::Less),
                };
                let le = match v.sql_cmp(&high.eval(row)?) {
                    None => Truth::Unknown,
                    Some(o) => Truth::from_bool(o != std::cmp::Ordering::Greater),
                };
                let t = ge.and(le);
                if *negated {
                    t.not()
                } else {
                    t
                }
            }
            CompiledExpr::IsNull { expr, negated } => {
                let t = Truth::from_bool(expr.eval(row)?.is_null());
                if *negated {
                    t.not()
                } else {
                    t
                }
            }
            other => match other.eval(row)? {
                Value::Null => Truth::Unknown,
                Value::Bool(b) => Truth::from_bool(b),
                v => {
                    return Err(StorageError::TypeMismatch {
                        operation: "WHERE".into(),
                        left: "BOOL",
                        right: v.type_name(),
                    })
                }
            },
        })
    }

    /// Collects all slots read by this expression.
    pub fn slots(&self, out: &mut Vec<usize>) {
        match self {
            CompiledExpr::Slot(i) => out.push(*i),
            CompiledExpr::Const(_) => {}
            CompiledExpr::Not(e) | CompiledExpr::Neg(e) => e.slots(out),
            CompiledExpr::And(l, r) | CompiledExpr::Or(l, r) => {
                l.slots(out);
                r.slots(out);
            }
            CompiledExpr::Cmp(_, l, r) | CompiledExpr::Arith(_, l, r) => {
                l.slots(out);
                r.slots(out);
            }
            CompiledExpr::Like { expr, pattern, .. } => {
                expr.slots(out);
                pattern.slots(out);
            }
            CompiledExpr::InList { expr, list, .. } => {
                expr.slots(out);
                for e in list {
                    e.slots(out);
                }
            }
            CompiledExpr::Between { expr, low, high, .. } => {
                expr.slots(out);
                low.slots(out);
                high.slots(out);
            }
            CompiledExpr::IsNull { expr, .. } => expr.slots(out),
        }
    }
}

fn truth_to_value(t: Truth) -> Value {
    match t {
        Truth::True => Value::Bool(true),
        Truth::False => Value::Bool(false),
        Truth::Unknown => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use audex_sql::ast::TypeName;
    use audex_sql::parse_query;

    fn scope2() -> Scope {
        Scope::new(vec![
            (
                Ident::new("P-Personal"),
                Schema::of(&[
                    ("pid", TypeName::Text),
                    ("age", TypeName::Int),
                    ("zipcode", TypeName::Text),
                ]),
            ),
            (
                Ident::new("P-Health"),
                Schema::of(&[("pid", TypeName::Text), ("disease", TypeName::Text)]),
            ),
        ])
        .unwrap()
    }

    fn where_expr(sql_where: &str) -> Expr {
        parse_query(&format!("SELECT pid FROM t WHERE {sql_where}")).unwrap().selection.unwrap()
    }

    use audex_sql::ast::Expr;

    #[test]
    fn qualified_resolution() {
        let s = scope2();
        let e = compile(&where_expr("P-Personal.pid = P-Health.pid"), &s).unwrap();
        let row =
            vec!["p2".into(), Value::Int(35), "145568".into(), "p2".into(), "diabetic".into()];
        assert_eq!(e.truth(&row).unwrap(), Truth::True);
    }

    #[test]
    fn unqualified_ambiguity_detected() {
        let s = scope2();
        let r = compile(&where_expr("pid = 'p2'"), &s);
        assert!(matches!(r, Err(StorageError::AmbiguousColumn(_))));
    }

    #[test]
    fn unqualified_unique_resolves() {
        let s = scope2();
        let e = compile(&where_expr("age < 30 AND disease = 'diabetic'"), &s).unwrap();
        let row = vec!["p1".into(), Value::Int(25), "x".into(), "p1".into(), "diabetic".into()];
        assert_eq!(e.truth(&row).unwrap(), Truth::True);
    }

    #[test]
    fn unknown_column_is_error() {
        let s = scope2();
        assert!(compile(&where_expr("height > 1"), &s).is_err());
        assert!(compile(&where_expr("P-Personal.disease = 'x'"), &s).is_err());
        assert!(compile(&where_expr("NoSuch.pid = 'x'"), &s).is_err());
    }

    #[test]
    fn null_propagation_in_where() {
        let s = Scope::single(Ident::new("t"), Schema::of(&[("a", TypeName::Int)]));
        let e = compile(&where_expr("a > 5"), &s).unwrap();
        assert_eq!(e.truth(&[Value::Null]).unwrap(), Truth::Unknown);
        let e = compile(&where_expr("NOT a > 5"), &s).unwrap();
        assert_eq!(e.truth(&[Value::Null]).unwrap(), Truth::Unknown);
        let e = compile(&where_expr("a IS NULL"), &s).unwrap();
        assert_eq!(e.truth(&[Value::Null]).unwrap(), Truth::True);
    }

    #[test]
    fn short_circuit_skips_errors() {
        // FALSE AND (1/0 = 1) must not raise.
        let s = Scope::single(Ident::new("t"), Schema::of(&[("a", TypeName::Int)]));
        let e = compile(&where_expr("a = 99 AND 1 / 0 = 1"), &s).unwrap();
        assert_eq!(e.truth(&[Value::Int(1)]).unwrap(), Truth::False);
        let e = compile(&where_expr("a = 1 OR 1 / 0 = 1"), &s).unwrap();
        assert_eq!(e.truth(&[Value::Int(1)]).unwrap(), Truth::True);
    }

    #[test]
    fn in_list_with_null_semantics() {
        let s = Scope::single(Ident::new("t"), Schema::of(&[("a", TypeName::Int)]));
        // 1 IN (2, NULL) is UNKNOWN, not FALSE.
        let e = compile(&where_expr("a IN (2, NULL)"), &s).unwrap();
        assert_eq!(e.truth(&[Value::Int(1)]).unwrap(), Truth::Unknown);
        let e = compile(&where_expr("a IN (1, NULL)"), &s).unwrap();
        assert_eq!(e.truth(&[Value::Int(1)]).unwrap(), Truth::True);
    }

    #[test]
    fn between_inclusive() {
        let s = Scope::single(Ident::new("t"), Schema::of(&[("a", TypeName::Int)]));
        let e = compile(&where_expr("a BETWEEN 1 AND 3"), &s).unwrap();
        assert_eq!(e.truth(&[Value::Int(1)]).unwrap(), Truth::True);
        assert_eq!(e.truth(&[Value::Int(3)]).unwrap(), Truth::True);
        assert_eq!(e.truth(&[Value::Int(4)]).unwrap(), Truth::False);
    }

    #[test]
    fn arithmetic_and_neg() {
        let s = Scope::single(Ident::new("t"), Schema::of(&[("a", TypeName::Int)]));
        let e = compile(&where_expr("-a + 10 > 5"), &s).unwrap();
        assert_eq!(e.truth(&[Value::Int(3)]).unwrap(), Truth::True);
        assert_eq!(e.truth(&[Value::Int(7)]).unwrap(), Truth::False);
    }

    #[test]
    fn slots_collection() {
        let s = scope2();
        let e = compile(&where_expr("age < 30 AND P-Health.disease = 'x'"), &s).unwrap();
        let mut slots = Vec::new();
        e.slots(&mut slots);
        slots.sort_unstable();
        assert_eq!(slots, vec![1, 4]);
    }

    #[test]
    fn scope_rejects_duplicate_bindings() {
        let schema = Schema::of(&[("a", TypeName::Int)]);
        let r = Scope::new(vec![(Ident::new("t"), schema.clone()), (Ident::new("T"), schema)]);
        assert!(matches!(r, Err(StorageError::DuplicateBinding(_))));
    }
}
