//! The database: current state + full backlog history + DML execution.

use audex_sql::ast::{CreateTable, Delete, Insert, Statement, Update};
use audex_sql::{Ident, Timestamp};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::backlog::{ChangeOp, ChangeRecord, TableHistory};
use crate::error::StorageError;
use crate::eval::{compile, literal_value, Scope};
use crate::exec::{execute_query, JoinStrategy, RelationProvider, ResultSet};
use crate::fault::{FaultPlan, FaultState};
use crate::mvcc::{StoreStats, VersionStore, VisibilityScan};
use crate::schema::Schema;
use crate::snapshot::{SnapshotCache, SnapshotKind, SnapshotStats};
use crate::table::{Relation, Row, Table, Tid};
use crate::value::Value;

/// How the database keeps its version history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageMode {
    /// MVCC versioned-tuple store ([`crate::mvcc`]): `as_of` is a
    /// visibility filter, flat in history length. The engine default.
    #[default]
    Mvcc,
    /// Backlog replay ([`crate::backlog`]): `as_of` replays the change
    /// prefix. Retained as the differential oracle (`--storage replay`).
    Replay,
}

/// Entries the snapshot cache holds in MVCC mode. Reconstruction is cheap
/// there, so the cache is a small reuse buffer (repeated probes of one
/// `DATA-INTERVAL`), not the primary defense against replay cost.
const MVCC_SNAPSHOT_CACHE_CAP: usize = 64;

/// A table's version history in whichever representation the database's
/// [`StorageMode`] selects. Both variants consume the same [`ChangeRecord`]
/// stream and answer the same questions; the differential tests hold them
/// byte-identical.
#[derive(Debug, Clone, PartialEq)]
enum TableVersions {
    Replay(TableHistory),
    Mvcc(VersionStore),
}

impl TableVersions {
    fn new(mode: StorageMode, name: Ident, schema: Schema, ts: Timestamp) -> Self {
        match mode {
            StorageMode::Replay => TableVersions::Replay(TableHistory::new(name, schema, ts)),
            StorageMode::Mvcc => TableVersions::Mvcc(VersionStore::new(name, schema, ts)),
        }
    }

    fn record(&mut self, rec: ChangeRecord) -> Result<(), StorageError> {
        match self {
            TableVersions::Replay(h) => h.record(rec),
            TableVersions::Mvcc(s) => s.record(rec),
        }
    }

    fn created_at(&self) -> Timestamp {
        match self {
            TableVersions::Replay(h) => h.created_at(),
            TableVersions::Mvcc(s) => s.created_at(),
        }
    }

    fn change_prefix_len(&self, ts: Timestamp) -> usize {
        match self {
            TableVersions::Replay(h) => h.change_prefix_len(ts),
            TableVersions::Mvcc(s) => s.change_prefix_len(ts),
        }
    }

    fn change_instants(&self, start: Timestamp, end: Timestamp) -> Vec<Timestamp> {
        match self {
            TableVersions::Replay(h) => h.change_instants(start, end),
            TableVersions::Mvcc(s) => s.change_instants(start, end),
        }
    }

    fn changes(&self) -> Vec<ChangeRecord> {
        match self {
            TableVersions::Replay(h) => h.changes().to_vec(),
            TableVersions::Mvcc(s) => s.changes(),
        }
    }

    fn backlog_relation(&self, ts: Timestamp) -> Relation {
        match self {
            TableVersions::Replay(h) => h.backlog_relation(ts),
            TableVersions::Mvcc(s) => s.backlog_relation(ts),
        }
    }
}

/// MVCC read-path telemetry: always-on atomic counters (cheap, queryable in
/// tests) plus registry mirrors that are no-ops until wired by
/// [`Database::set_obs`]. Occupancy gauges are refreshed lazily via
/// [`Database::refresh_mvcc_gauges`] rather than on every mutation.
#[derive(Debug, Default)]
struct MvccObs {
    probes: AtomicU64,
    examined: AtomicU64,
    obs_probes: audex_obs::Counter,
    obs_examined: audex_obs::Counter,
    live: audex_obs::Gauge,
    dead: audex_obs::Gauge,
    bytes: audex_obs::Gauge,
}

impl MvccObs {
    fn record_scan(&self, scan: VisibilityScan) {
        self.probes.fetch_add(scan.probes, Ordering::Relaxed);
        self.examined.fetch_add(scan.versions_examined, Ordering::Relaxed);
        self.obs_probes.add(scan.probes);
        self.obs_examined.add(scan.versions_examined);
    }
}

/// Observer of committed mutations, called synchronously from inside every
/// successful [`Database`] write — the choke point a write-ahead journal
/// hooks to see each change exactly once, in commit order.
///
/// Implementations must not call back into the database. They are infallible
/// by design: a sink that cannot persist a record stashes the error and
/// surfaces it through its own diagnostics (the database has already
/// committed and cannot un-apply).
pub trait ChangeSink: Send + Sync {
    /// A table was created at `ts`.
    fn on_create_table(&self, name: &Ident, schema: &Schema, ts: Timestamp);
    /// A row-level change was committed to `table`.
    fn on_change(&self, table: &Ident, rec: &ChangeRecord);
}

/// An in-memory, versioned relational database.
///
/// Every mutation is stamped with a (non-decreasing) [`Timestamp`] and
/// recorded in per-table version histories — an MVCC tuple store by default
/// ([`crate::mvcc`]), or [`TableHistory`] backlogs under
/// [`StorageMode::Replay`] — so any past instant can be reconstructed: the
/// substrate the paper's `DATA-INTERVAL` clause and the Agrawal et al.
/// backlog methodology require.
pub struct Database {
    mode: StorageMode,
    tables: BTreeMap<Ident, Table>,
    versions: BTreeMap<Ident, TableVersions>,
    last_ts: Timestamp,
    /// Armed fault-injection plan, if any (see [`crate::fault`]). Shared by
    /// clones so scan ordinals keep counting across `at()` views.
    faults: Option<Arc<FaultState>>,
    /// Memoized version snapshots (see [`crate::snapshot`]). Derived data:
    /// invisible to equality, and never shared with clones. Bounded in MVCC
    /// mode, where it is a reuse buffer rather than a replay shield.
    snapshots: SnapshotCache,
    /// MVCC read-path telemetry; derived state like the cache.
    mvcc_obs: MvccObs,
    /// Mutation observer (see [`ChangeSink`]); never cloned, never compared.
    sink: Option<Arc<dyn ChangeSink>>,
}

impl Default for Database {
    fn default() -> Self {
        Database::with_mode(StorageMode::default())
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("mode", &self.mode)
            .field("tables", &self.tables)
            .field("versions", &self.versions)
            .field("last_ts", &self.last_ts)
            .field("faults", &self.faults)
            .field("snapshots", &self.snapshots)
            .field("sink", &self.sink.as_ref().map(|_| "attached"))
            .finish()
    }
}

impl Clone for Database {
    /// Clones data and the armed fault plan (shared, so scan ordinals keep
    /// counting across clones — tests rely on that), but hands the clone a
    /// **fresh** snapshot cache: clones may diverge, and change-prefix keys
    /// are only self-validating within one mutation lineage. The change sink
    /// is likewise not inherited: a journal records one lineage, and a
    /// diverging clone writing the same journal would corrupt it. Telemetry
    /// wiring follows the instance too — the clone's counters start cold.
    fn clone(&self) -> Self {
        Database {
            mode: self.mode,
            tables: self.tables.clone(),
            versions: self.versions.clone(),
            last_ts: self.last_ts,
            faults: self.faults.clone(),
            snapshots: self.snapshots.fresh(),
            mvcc_obs: MvccObs::default(),
            sink: None,
        }
    }
}

impl PartialEq for Database {
    /// Fault-injection state, telemetry, and the snapshot cache are
    /// harness/derived state, not data: two databases are equal when their
    /// tables, version histories, and clock agree. Databases in different
    /// storage modes never compare equal — cross-mode equivalence is a
    /// *semantic* property the differential tests assert through reports,
    /// not a structural one.
    fn eq(&self, other: &Self) -> bool {
        self.tables == other.tables
            && self.versions == other.versions
            && self.last_ts == other.last_ts
    }
}

/// Result of executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// `SELECT` rows.
    Rows(ResultSet),
    /// Number of rows affected by DML.
    Affected(usize),
    /// A table was created.
    Created,
}

impl Database {
    /// An empty database in the default storage mode (MVCC).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty database keeping history in `mode`.
    pub fn with_mode(mode: StorageMode) -> Self {
        let snapshots = match mode {
            StorageMode::Mvcc => SnapshotCache::with_cap(MVCC_SNAPSHOT_CACHE_CAP),
            StorageMode::Replay => SnapshotCache::default(),
        };
        Database {
            mode,
            tables: BTreeMap::new(),
            versions: BTreeMap::new(),
            last_ts: Timestamp(0),
            faults: None,
            snapshots,
            mvcc_obs: MvccObs::default(),
            sink: None,
        }
    }

    /// How this database keeps its version history.
    pub fn storage_mode(&self) -> StorageMode {
        self.mode
    }

    /// The timestamp of the latest change (zero for an empty database).
    pub fn last_ts(&self) -> Timestamp {
        self.last_ts
    }

    /// Creates a table.
    pub fn create_table(
        &mut self,
        name: Ident,
        schema: Schema,
        ts: Timestamp,
    ) -> Result<(), StorageError> {
        self.check_ts(ts)?;
        if self.tables.contains_key(&name) {
            return Err(StorageError::DuplicateTable(name));
        }
        self.tables.insert(name.clone(), Table::new(name.clone(), schema.clone()));
        self.versions
            .insert(name.clone(), TableVersions::new(self.mode, name.clone(), schema.clone(), ts));
        self.last_ts = ts;
        if let Some(s) = &self.sink {
            s.on_create_table(&name, &schema, ts);
        }
        Ok(())
    }

    /// Attaches a [`ChangeSink`] observing every subsequent committed
    /// mutation. Replaces any previous sink. Clones do not inherit it.
    pub fn set_change_sink(&mut self, sink: Arc<dyn ChangeSink>) {
        self.sink = Some(sink);
    }

    /// Detaches the change sink, if any.
    pub fn clear_change_sink(&mut self) {
        self.sink = None;
    }

    /// The current state of a table.
    pub fn table(&self, name: &Ident) -> Option<&Table> {
        self.tables.get(name)
    }

    /// When `name` was created, if it exists.
    pub fn table_created_at(&self, name: &Ident) -> Option<Timestamp> {
        self.versions.get(name).map(|v| v.created_at())
    }

    /// The full ordered change log of a table, materialized — the
    /// mode-agnostic export path (session scripts, oracles, benches).
    pub fn table_changes(&self, name: &Ident) -> Option<Vec<ChangeRecord>> {
        self.versions.get(name).map(|v| v.changes())
    }

    /// The row `tid` held in `name` as of `ts`, if it was visible then
    /// (the replay path's `replay_to(ts).get(tid)`). `None` for unknown
    /// tables or invisible tuples. Bypasses fault gates and the cache — a
    /// point lookup for exporters, not the audited read path.
    pub fn row_as_of(&self, name: &Ident, tid: Tid, ts: Timestamp) -> Option<Row> {
        match self.versions.get(name)? {
            TableVersions::Replay(h) => h.replay_to(ts).get(tid).cloned(),
            TableVersions::Mvcc(s) => s.row_as_of(tid, ts).cloned(),
        }
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<Ident> {
        self.tables.keys().cloned().collect()
    }

    fn check_ts(&self, ts: Timestamp) -> Result<(), StorageError> {
        if ts < self.last_ts {
            return Err(StorageError::NonMonotonicTimestamp { last: self.last_ts, offered: ts });
        }
        Ok(())
    }

    fn table_mut(&mut self, name: &Ident) -> Result<&mut Table, StorageError> {
        self.tables.get_mut(name).ok_or_else(|| StorageError::UnknownTable(name.clone()))
    }

    /// Arms `plan`: subsequent reads and DML against faulted sites fail with
    /// [`StorageError::Injected`]. Replaces any previously armed plan (and
    /// resets its scan counters).
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(Arc::new(FaultState::new(plan)));
    }

    /// Disarms any armed fault plan.
    pub fn disarm_faults(&mut self) {
        self.faults = None;
    }

    /// True when a fault plan is armed.
    pub fn faults_armed(&self) -> bool {
        self.faults.is_some()
    }

    /// Mirrors storage telemetry into `registry`: snapshot-cache hit/miss
    /// counts (`audex_snapshot_cache_{hits,misses}_total`) and the MVCC
    /// read-path/occupancy series (`audex_mvcc_*`). Clones do not inherit
    /// the wiring — like the change sink, telemetry follows the instance.
    pub fn set_obs(&mut self, registry: &audex_obs::Registry) {
        self.snapshots.set_obs(registry);
        self.mvcc_obs.obs_probes = registry.counter(
            "audex_mvcc_visibility_probes_total",
            "Tuples whose version chain was probed by MVCC reconstructions.",
            &[],
        );
        self.mvcc_obs.obs_examined = registry.counter(
            "audex_mvcc_versions_examined_total",
            "Version-chain entries examined across all MVCC visibility probes.",
            &[],
        );
        self.mvcc_obs.live = registry.gauge(
            "audex_mvcc_live_versions",
            "Tuple versions still open (xmax unbounded) across all tables.",
            &[],
        );
        self.mvcc_obs.dead = registry.gauge(
            "audex_mvcc_dead_versions",
            "Tuple versions closed by a later update or delete.",
            &[],
        );
        self.mvcc_obs.bytes = registry.gauge(
            "audex_mvcc_store_bytes",
            "Approximate heap footprint of the MVCC version stores.",
            &[],
        );
    }

    /// Aggregate MVCC occupancy over all tables, `None` in replay mode.
    pub fn mvcc_stats(&self) -> Option<StoreStats> {
        if self.mode != StorageMode::Mvcc {
            return None;
        }
        let mut total = StoreStats::default();
        for v in self.versions.values() {
            if let TableVersions::Mvcc(s) = v {
                total.merge(s.stats());
            }
        }
        Some(total)
    }

    /// Per-table MVCC occupancy, sorted by table name; empty in replay
    /// mode. The per-tenant `audex compact` report walks this.
    pub fn mvcc_table_stats(&self) -> Vec<(Ident, StoreStats)> {
        self.versions
            .iter()
            .filter_map(|(name, v)| match v {
                TableVersions::Mvcc(s) => Some((name.clone(), s.stats())),
                TableVersions::Replay(_) => None,
            })
            .collect()
    }

    /// Cumulative visibility-scan effort of every MVCC reconstruction this
    /// instance has served (zeros in replay mode or before any read).
    pub fn mvcc_scan_stats(&self) -> VisibilityScan {
        VisibilityScan {
            probes: self.mvcc_obs.probes.load(Ordering::Relaxed),
            versions_examined: self.mvcc_obs.examined.load(Ordering::Relaxed),
        }
    }

    /// Folds visibility-scan effort performed on another database handle
    /// into this one's counters. Crash recovery re-prepares mid-stream
    /// audit registrations against [`Database::fork_prefix`] forks; the
    /// fork's reads are exactly the reads the live run charged to the
    /// primary database, so absorbing them keeps recovered counters
    /// faithful to the uninterrupted run.
    pub fn absorb_scan(&self, scan: VisibilityScan) {
        self.mvcc_obs.record_scan(scan);
    }

    /// Recomputes the `audex_mvcc_{live_versions,dead_versions,store_bytes}`
    /// gauges from current occupancy. Called at stats/metrics render time
    /// rather than on every mutation — occupancy moves with DML, but the
    /// gauges only need to be fresh when someone is looking.
    pub fn refresh_mvcc_gauges(&self) {
        if let Some(stats) = self.mvcc_stats() {
            self.mvcc_obs.live.set(stats.live_versions as i64);
            self.mvcc_obs.dead.set(stats.dead_versions as i64);
            self.mvcc_obs.bytes.set(stats.approx_bytes as i64);
        }
    }

    /// Hit/miss counters of the version-snapshot cache (diagnostics and
    /// regression tests for replay deduplication).
    pub fn snapshot_stats(&self) -> SnapshotStats {
        self.snapshots.stats()
    }

    /// Number of distinct reconstructed relations held by the snapshot
    /// cache — the memory side of the [`SnapshotStats`] counters, surfaced
    /// for long-running services.
    pub fn snapshot_cache_len(&self) -> usize {
        self.snapshots.len()
    }

    /// Consults the armed plan (if any) about one scan of `table`.
    fn fault_on_scan(&self, table: &Ident) -> Result<(), StorageError> {
        match &self.faults {
            Some(s) => s.on_scan(table),
            None => Ok(()),
        }
    }

    /// Consults the armed plan (if any) about a versioned read of `table`.
    fn fault_on_replay(&self, table: &Ident, ts: Timestamp) -> Result<(), StorageError> {
        match &self.faults {
            Some(s) => s.on_replay(table, ts),
            None => Ok(()),
        }
    }

    /// Inserts a row at `ts` with an auto-assigned tid.
    pub fn insert(&mut self, name: &Ident, row: Row, ts: Timestamp) -> Result<Tid, StorageError> {
        self.check_ts(ts)?;
        let table = self.table_mut(name)?;
        let tid = table.insert(row.clone())?;
        // `get` cannot miss a tid we just inserted; fall back to the input
        // row rather than panic if that invariant ever breaks.
        let canon = table.get(tid).cloned().unwrap_or(row);
        self.record(name, ChangeRecord { ts, op: ChangeOp::Insert, tid, after: Some(canon) });
        self.last_ts = ts;
        Ok(tid)
    }

    /// Inserts with an explicit tid (paper fixtures use `t11`-style ids).
    pub fn insert_with_tid(
        &mut self,
        name: &Ident,
        tid: Tid,
        row: Row,
        ts: Timestamp,
    ) -> Result<(), StorageError> {
        self.check_ts(ts)?;
        let table = self.table_mut(name)?;
        table.insert_with_tid(tid, row.clone())?;
        let canon = table.get(tid).cloned().unwrap_or(row);
        self.record(name, ChangeRecord { ts, op: ChangeOp::Insert, tid, after: Some(canon) });
        self.last_ts = ts;
        Ok(())
    }

    /// Replaces the row under `tid` at `ts`.
    pub fn update_row(
        &mut self,
        name: &Ident,
        tid: Tid,
        row: Row,
        ts: Timestamp,
    ) -> Result<(), StorageError> {
        self.check_ts(ts)?;
        let table = self.table_mut(name)?;
        table.update(tid, row.clone())?;
        let canon = table.get(tid).cloned().unwrap_or(row);
        self.record(name, ChangeRecord { ts, op: ChangeOp::Update, tid, after: Some(canon) });
        self.last_ts = ts;
        Ok(())
    }

    /// Deletes the row under `tid` at `ts`.
    pub fn delete_row(
        &mut self,
        name: &Ident,
        tid: Tid,
        ts: Timestamp,
    ) -> Result<(), StorageError> {
        self.check_ts(ts)?;
        if self.table_mut(name)?.delete(tid).is_none() {
            return Err(StorageError::DuplicateTid(tid));
        }
        self.record(name, ChangeRecord { ts, op: ChangeOp::Delete, tid, after: None });
        self.last_ts = ts;
        Ok(())
    }

    /// Re-applies a previously recorded change (crash-recovery replay).
    /// The record flows through the normal mutation paths, so histories,
    /// tid allocation, and any attached sink behave exactly as at original
    /// execution time.
    pub fn apply_change(&mut self, name: &Ident, rec: &ChangeRecord) -> Result<(), StorageError> {
        match (rec.op, &rec.after) {
            (ChangeOp::Insert, Some(row)) => {
                self.insert_with_tid(name, rec.tid, row.clone(), rec.ts)
            }
            (ChangeOp::Update, Some(row)) => self.update_row(name, rec.tid, row.clone(), rec.ts),
            (ChangeOp::Delete, None) => self.delete_row(name, rec.tid, rec.ts),
            (op, _) => Err(StorageError::Unsupported(format!(
                "malformed change record: {op:?} with{} after-image",
                if rec.after.is_some() { "" } else { "out" }
            ))),
        }
    }

    fn record(&mut self, name: &Ident, rec: ChangeRecord) {
        if let Some(s) = &self.sink {
            s.on_change(name, &rec);
        }
        // Every table has a version history (created together) and
        // `check_ts` ran before the mutation, so neither step can fail;
        // assert in debug builds rather than panic in release.
        debug_assert!(self.versions.contains_key(name), "version history exists for every table");
        if let Some(v) = self.versions.get_mut(name) {
            let recorded = v.record(rec);
            debug_assert!(recorded.is_ok(), "timestamp already checked");
        }
    }

    /// Executes any statement at `ts`. `SELECT` runs against the state as of
    /// `ts`; DML mutates and records backlog entries.
    pub fn execute(
        &mut self,
        stmt: &Statement,
        ts: Timestamp,
    ) -> Result<ExecOutcome, StorageError> {
        match stmt {
            Statement::Select(q) => {
                Ok(ExecOutcome::Rows(execute_query(&self.at(ts), q, JoinStrategy::Auto)?))
            }
            Statement::CreateTable(ct) => {
                self.execute_create(ct, ts)?;
                Ok(ExecOutcome::Created)
            }
            Statement::Insert(ins) => Ok(ExecOutcome::Affected(self.execute_insert(ins, ts)?)),
            Statement::Update(up) => Ok(ExecOutcome::Affected(self.execute_update(up, ts)?)),
            Statement::Delete(del) => Ok(ExecOutcome::Affected(self.execute_delete(del, ts)?)),
        }
    }

    fn execute_create(&mut self, ct: &CreateTable, ts: Timestamp) -> Result<(), StorageError> {
        let schema = Schema::new(ct.columns.iter().map(|c| (c.name.clone(), c.ty)).collect())?;
        self.create_table(ct.name.clone(), schema, ts)
    }

    fn execute_insert(&mut self, ins: &Insert, ts: Timestamp) -> Result<usize, StorageError> {
        let table =
            self.table(&ins.table).ok_or_else(|| StorageError::UnknownTable(ins.table.clone()))?;
        let schema = table.schema().clone();
        // Fault gate before any row lands, so a faulted multi-row INSERT is
        // all-or-nothing.
        self.fault_on_scan(&ins.table)?;

        // Map provided columns to schema positions (all columns if omitted).
        let positions: Vec<usize> = if ins.columns.is_empty() {
            (0..schema.len()).collect()
        } else {
            ins.columns
                .iter()
                .map(|c| {
                    schema.position(c).ok_or_else(|| StorageError::UnknownColumn(c.value.clone()))
                })
                .collect::<Result<_, _>>()?
        };

        let mut count = 0;
        for row_exprs in &ins.rows {
            if row_exprs.len() != positions.len() {
                return Err(StorageError::ArityMismatch {
                    expected: positions.len(),
                    actual: row_exprs.len(),
                });
            }
            let mut row = vec![Value::Null; schema.len()];
            for (pos, e) in positions.iter().zip(row_exprs) {
                row[*pos] = eval_standalone(e)?;
            }
            self.insert(&ins.table, row, ts)?;
            count += 1;
        }
        Ok(count)
    }

    fn execute_update(&mut self, up: &Update, ts: Timestamp) -> Result<usize, StorageError> {
        let table =
            self.table(&up.table).ok_or_else(|| StorageError::UnknownTable(up.table.clone()))?;
        let schema = table.schema().clone();
        // The planning pass below scans the target table; the fault gate sits
        // in front of it, so a faulted UPDATE mutates nothing.
        self.fault_on_scan(&up.table)?;
        let scope = Scope::single(up.table.clone(), schema.clone());

        let pred = up.selection.as_ref().map(|p| compile(p, &scope)).transpose()?;
        let assignments: Vec<(usize, crate::eval::CompiledExpr)> = up
            .assignments
            .iter()
            .map(|(col, e)| {
                let pos = schema
                    .position(col)
                    .ok_or_else(|| StorageError::UnknownColumn(col.value.clone()))?;
                Ok((pos, compile(e, &scope)?))
            })
            .collect::<Result<_, StorageError>>()?;

        // Plan the new images first, then apply, so assignment expressions
        // all see the pre-update state.
        let mut planned: Vec<(Tid, Row)> = Vec::new();
        for (tid, row) in table.iter() {
            let keep = match &pred {
                Some(p) => p.truth(row)?.is_true(),
                None => true,
            };
            if !keep {
                continue;
            }
            let mut new_row = row.clone();
            for (pos, e) in &assignments {
                new_row[*pos] = e.eval(row)?;
            }
            planned.push((tid, new_row));
        }
        let count = planned.len();
        for (tid, new_row) in planned {
            self.update_row(&up.table, tid, new_row, ts)?;
        }
        Ok(count)
    }

    fn execute_delete(&mut self, del: &Delete, ts: Timestamp) -> Result<usize, StorageError> {
        let table =
            self.table(&del.table).ok_or_else(|| StorageError::UnknownTable(del.table.clone()))?;
        self.fault_on_scan(&del.table)?;
        let scope = Scope::single(del.table.clone(), table.schema().clone());
        let pred = del.selection.as_ref().map(|p| compile(p, &scope)).transpose()?;

        let mut doomed: Vec<Tid> = Vec::new();
        for (tid, row) in table.iter() {
            let hit = match &pred {
                Some(p) => p.truth(row)?.is_true(),
                None => true,
            };
            if hit {
                doomed.push(tid);
            }
        }
        let count = doomed.len();
        for tid in doomed {
            self.delete_row(&del.table, tid, ts)?;
        }
        Ok(count)
    }

    /// A read-only view of the database as of `ts`, usable as a
    /// [`RelationProvider`]. Resolves `b-T` names to backlog relations.
    pub fn at(&self, ts: Timestamp) -> DatabaseAt<'_> {
        DatabaseAt { db: self, ts }
    }

    /// Distinct instants in `[start, end]` at which any of `tables` (all
    /// tables if empty) changed, **prepended with `start`** — i.e. the data
    /// versions a `DATA-INTERVAL start TO end` clause selects (paper §3.1).
    /// Returns an empty list when `start > end`.
    pub fn versions_in(
        &self,
        tables: &[Ident],
        start: Timestamp,
        end: Timestamp,
    ) -> Vec<Timestamp> {
        if start > end {
            return Vec::new();
        }
        let mut instants = vec![start];
        for (name, v) in &self.versions {
            if !tables.is_empty() && !tables.contains(name) {
                continue;
            }
            instants.extend(v.change_instants(start, end));
        }
        instants.sort_unstable();
        instants.dedup();
        instants
    }

    /// The same data held in `mode`: tables re-created at their original
    /// instants and every change re-applied in global timestamp order
    /// through the normal mutation paths. The identity when `mode` already
    /// matches would still rebuild, so callers should check
    /// [`Database::storage_mode`] first when conversion is conditional.
    pub fn converted(&self, mode: StorageMode) -> Result<Self, StorageError> {
        enum Event {
            Create(Ident, Schema),
            Change(Ident, ChangeRecord),
        }
        let mut events: Vec<(Timestamp, Event)> = Vec::new();
        for (name, v) in &self.versions {
            let schema = match self.tables.get(name) {
                Some(t) => t.schema().clone(),
                None => return Err(StorageError::UnknownTable(name.clone())),
            };
            events.push((v.created_at(), Event::Create(name.clone(), schema)));
            for rec in v.changes() {
                events.push((rec.ts, Event::Change(name.clone(), rec)));
            }
        }
        // Stable by timestamp: per-table order (creation first, then the
        // change sequence) is preserved, and any cross-table interleaving
        // at equal instants satisfies the monotonic-clock check.
        events.sort_by_key(|(ts, _)| *ts);
        let mut db = Database::with_mode(mode);
        for (ts, event) in events {
            match event {
                Event::Create(name, schema) => db.create_table(name, schema, ts)?,
                Event::Change(name, rec) => db.apply_change(&name, &rec)?,
            }
        }
        db.last_ts = self.last_ts;
        Ok(db)
    }

    /// The MVCC version stores, sorted by table name — what a checkpoint
    /// persists. `None` in replay mode (replay checkpoints fall back to
    /// record-by-record rebuild).
    pub fn mvcc_stores(&self) -> Option<Vec<&VersionStore>> {
        if self.mode != StorageMode::Mvcc {
            return None;
        }
        Some(
            self.versions
                .values()
                .filter_map(|v| match v {
                    TableVersions::Mvcc(s) => Some(s),
                    TableVersions::Replay(_) => None,
                })
                .collect(),
        )
    }

    /// Rebuilds an MVCC database from decoded version stores (crash
    /// recovery restoring a checkpoint). Live tables are reconstructed from
    /// each store's visibility at `last_ts`; tid watermarks are exact
    /// because every insert opened a version.
    pub fn from_mvcc_stores(
        stores: Vec<VersionStore>,
        last_ts: Timestamp,
    ) -> Result<Self, StorageError> {
        let mut db = Database::with_mode(StorageMode::Mvcc);
        for store in stores {
            let name = store.name().clone();
            if db.versions.contains_key(&name) {
                return Err(StorageError::DuplicateTable(name));
            }
            db.tables.insert(name.clone(), store.table_as_of(last_ts));
            db.versions.insert(name, TableVersions::Mvcc(store));
        }
        db.last_ts = last_ts;
        Ok(db)
    }

    /// The database as it was after each table's first `counts[name]`
    /// recorded changes, with the clock at `last_ts` — an O(prefix) fork
    /// (no change-by-change replay) used by crash recovery to re-prepare a
    /// mid-stream audit registration against the exact state it originally
    /// saw. Tables absent from `counts` (created past the cut) are omitted.
    /// MVCC mode only: replay-mode recovery rebuilds in record order and
    /// never forks.
    pub fn fork_prefix(
        &self,
        counts: &BTreeMap<Ident, usize>,
        last_ts: Timestamp,
    ) -> Result<Self, StorageError> {
        let mut db = Database::with_mode(StorageMode::Mvcc);
        for (name, n) in counts {
            let store = match self.versions.get(name) {
                Some(TableVersions::Mvcc(s)) => s.truncated(*n),
                Some(TableVersions::Replay(_)) => {
                    return Err(StorageError::Unsupported(
                        "fork_prefix requires MVCC storage".into(),
                    ))
                }
                None => return Err(StorageError::UnknownTable(name.clone())),
            };
            db.tables.insert(name.clone(), store.table_as_of(last_ts));
            db.versions.insert(name.clone(), TableVersions::Mvcc(store));
        }
        db.last_ts = last_ts;
        Ok(db)
    }
}

/// Evaluates a standalone expression (no column references), used for
/// `INSERT … VALUES` rows.
fn eval_standalone(e: &audex_sql::Expr) -> Result<Value, StorageError> {
    use audex_sql::ast::{Expr, UnaryOp};
    match e {
        Expr::Literal(l) => Ok(literal_value(l)),
        Expr::Unary { op: UnaryOp::Neg, expr } => match eval_standalone(expr)? {
            Value::Int(v) => {
                Ok(Value::Int(v.checked_neg().ok_or(StorageError::ArithmeticOverflow)?))
            }
            Value::Float(v) => Ok(Value::Float(-v)),
            other => Err(StorageError::TypeMismatch {
                operation: "-".into(),
                left: "NUMBER",
                right: other.type_name(),
            }),
        },
        Expr::Column(c) => Err(StorageError::UnknownColumn(c.column.value.clone())),
        other => {
            // Fall back to the compiled evaluator with an empty scope.
            let scope = Scope::new(Vec::new())?;
            let compiled = compile(other, &scope)?;
            compiled.eval(&[])
        }
    }
}

/// [`Database::at`] view: the database frozen at one instant.
#[derive(Clone, Copy)]
pub struct DatabaseAt<'a> {
    db: &'a Database,
    ts: Timestamp,
}

impl<'a> DatabaseAt<'a> {
    /// The frozen instant.
    pub fn ts(&self) -> Timestamp {
        self.ts
    }

    /// Runs a query against this instant.
    pub fn query(&self, q: &Query) -> Result<ResultSet, StorageError> {
        execute_query(self, q, JoinStrategy::Auto)
    }

    /// Runs a query with an explicit join strategy (B6 ablation).
    pub fn query_with(&self, q: &Query, strategy: JoinStrategy) -> Result<ResultSet, StorageError> {
        execute_query(self, q, strategy)
    }
}

use audex_sql::ast::Query;

impl<'a> RelationProvider for DatabaseAt<'a> {
    fn relation(&self, name: &Ident) -> Result<Arc<Relation>, StorageError> {
        // Fault gates run before any cache consultation, so a planned fault
        // fires even when the snapshot it addresses is already cached. The
        // gate order and cache keys are identical in both storage modes —
        // only the reconstruction behind the final closure differs.

        // Backlog relation `b-T`?
        let lower = name.normalized();
        if let Some(base) = lower.strip_prefix("b-") {
            let base_ident = Ident::new(base);
            if let Some(v) = self.db.versions.get(&base_ident) {
                self.db.fault_on_scan(&base_ident)?;
                self.db.fault_on_replay(&base_ident, self.ts)?;
                let key = (base_ident, SnapshotKind::Backlog, v.change_prefix_len(self.ts));
                return Ok(self.db.snapshots.get_or_build(key, || v.backlog_relation(self.ts)));
            }
        }
        let v =
            self.db.versions.get(name).ok_or_else(|| StorageError::UnknownTable(name.clone()))?;
        self.db.fault_on_scan(name)?;
        let key = (name.clone(), SnapshotKind::Replay, v.change_prefix_len(self.ts));
        // Fast path: asking for "now or later" returns the live table. Its
        // snapshot equals the reconstruction of the full change prefix, so
        // it shares a cache entry with historical reads at or past the
        // final change.
        if self.ts >= self.db.last_ts {
            if let Some(t) = self.db.tables.get(name) {
                return Ok(self.db.snapshots.get_or_build(key, || t.to_relation()));
            }
        }
        // Historical read: a visibility filter over the version store, or a
        // backlog replay under `StorageMode::Replay`.
        self.db.fault_on_replay(name, self.ts)?;
        match v {
            TableVersions::Mvcc(s) => Ok(self.db.snapshots.get_or_build(key, || {
                let (rel, scan) = s.relation_as_of(self.ts);
                self.db.mvcc_obs.record_scan(scan);
                rel
            })),
            TableVersions::Replay(h) => {
                Ok(self.db.snapshots.get_or_build(key, || h.replay_to(self.ts).to_relation()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use audex_sql::ast::TypeName;
    use audex_sql::{parse_query, parse_statement};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            Ident::new("Patients"),
            Schema::of(&[
                ("pid", TypeName::Text),
                ("zipcode", TypeName::Text),
                ("disease", TypeName::Text),
            ]),
            Timestamp(0),
        )
        .unwrap();
        db.insert(
            &Ident::new("Patients"),
            vec!["p1".into(), "120016".into(), "cancer".into()],
            Timestamp(10),
        )
        .unwrap();
        db.insert(
            &Ident::new("Patients"),
            vec!["p2".into(), "145568".into(), "flu".into()],
            Timestamp(20),
        )
        .unwrap();
        db
    }

    #[test]
    fn select_sees_state_as_of_ts() {
        let db = db();
        let q = parse_query("SELECT pid FROM Patients").unwrap();
        assert_eq!(db.at(Timestamp(10)).query(&q).unwrap().rows.len(), 1);
        assert_eq!(db.at(Timestamp(20)).query(&q).unwrap().rows.len(), 2);
        assert_eq!(db.at(Timestamp(5)).query(&q).unwrap().rows.len(), 0);
    }

    #[test]
    fn dml_statements_drive_backlog() {
        let mut db = db();
        let up =
            parse_statement("UPDATE Patients SET zipcode = '999999' WHERE pid = 'p1'").unwrap();
        assert_eq!(db.execute(&up, Timestamp(30)).unwrap(), ExecOutcome::Affected(1));
        let del = parse_statement("DELETE FROM Patients WHERE pid = 'p2'").unwrap();
        assert_eq!(db.execute(&del, Timestamp(40)).unwrap(), ExecOutcome::Affected(1));

        // Old version still visible in the past.
        let q = parse_query("SELECT zipcode FROM Patients WHERE pid = 'p1'").unwrap();
        assert_eq!(db.at(Timestamp(20)).query(&q).unwrap().rows[0][0], Value::Str("120016".into()));
        assert_eq!(db.at(Timestamp(30)).query(&q).unwrap().rows[0][0], Value::Str("999999".into()));

        // p2 gone at 40, present at 30.
        let q2 = parse_query("SELECT pid FROM Patients").unwrap();
        assert_eq!(db.at(Timestamp(30)).query(&q2).unwrap().rows.len(), 2);
        assert_eq!(db.at(Timestamp(40)).query(&q2).unwrap().rows.len(), 1);
    }

    #[test]
    fn insert_statement_with_column_subset() {
        let mut db = db();
        let ins = parse_statement("INSERT INTO Patients (pid) VALUES ('p3')").unwrap();
        db.execute(&ins, Timestamp(50)).unwrap();
        let q = parse_query("SELECT zipcode FROM Patients WHERE pid = 'p3'").unwrap();
        assert_eq!(db.at(Timestamp(50)).query(&q).unwrap().rows[0][0], Value::Null);
    }

    #[test]
    fn insert_arity_check() {
        let mut db = db();
        let ins = parse_statement("INSERT INTO Patients (pid, zipcode) VALUES ('p3')").unwrap();
        assert!(db.execute(&ins, Timestamp(50)).is_err());
    }

    #[test]
    fn update_expressions_see_pre_update_state() {
        let mut db = Database::new();
        db.create_table(Ident::new("t"), Schema::of(&[("a", TypeName::Int)]), Timestamp(0))
            .unwrap();
        db.insert(&Ident::new("t"), vec![Value::Int(1)], Timestamp(1)).unwrap();
        db.insert(&Ident::new("t"), vec![Value::Int(2)], Timestamp(1)).unwrap();
        let up = parse_statement("UPDATE t SET a = a + 10").unwrap();
        assert_eq!(db.execute(&up, Timestamp(2)).unwrap(), ExecOutcome::Affected(2));
        let q = parse_query("SELECT a FROM t WHERE a > 10").unwrap();
        assert_eq!(db.at(Timestamp(2)).query(&q).unwrap().rows.len(), 2);
    }

    #[test]
    fn backlog_table_visible_as_b_name() {
        let mut db = db();
        let up =
            parse_statement("UPDATE Patients SET zipcode = '000000' WHERE pid = 'p1'").unwrap();
        db.execute(&up, Timestamp(30)).unwrap();
        let q = parse_query("SELECT zipcode FROM b-Patients WHERE pid = 'p1'").unwrap();
        let rs = db.at(Timestamp(100)).query(&q).unwrap();
        assert_eq!(rs.rows.len(), 2); // both versions
    }

    #[test]
    fn versions_in_enumerates_instants() {
        let mut db = db();
        let up = parse_statement("UPDATE Patients SET zipcode = '1' WHERE pid = 'p1'").unwrap();
        db.execute(&up, Timestamp(30)).unwrap();
        let v = db.versions_in(&[], Timestamp(0), Timestamp(100));
        assert_eq!(v, vec![Timestamp(0), Timestamp(10), Timestamp(20), Timestamp(30)]);
        let v = db.versions_in(&[], Timestamp(15), Timestamp(25));
        assert_eq!(v, vec![Timestamp(15), Timestamp(20)]);
        assert!(db.versions_in(&[], Timestamp(50), Timestamp(40)).is_empty());
    }

    #[test]
    fn versions_in_filters_by_table() {
        let mut db = db();
        db.create_table(Ident::new("Other"), Schema::of(&[("x", TypeName::Int)]), Timestamp(20))
            .unwrap();
        db.insert(&Ident::new("Other"), vec![Value::Int(1)], Timestamp(33)).unwrap();
        let v = db.versions_in(&[Ident::new("Patients")], Timestamp(0), Timestamp(100));
        assert_eq!(v, vec![Timestamp(0), Timestamp(10), Timestamp(20)]);
    }

    #[test]
    fn non_monotonic_mutation_rejected() {
        let mut db = db();
        let r = db.insert(
            &Ident::new("Patients"),
            vec!["p9".into(), "x".into(), "y".into()],
            Timestamp(5),
        );
        assert!(matches!(r, Err(StorageError::NonMonotonicTimestamp { .. })));
    }

    #[test]
    fn create_table_statement() {
        let mut db = Database::new();
        let ct = parse_statement("CREATE TABLE t (a INT, b TEXT)").unwrap();
        assert_eq!(db.execute(&ct, Timestamp(1)).unwrap(), ExecOutcome::Created);
        assert!(db.execute(&ct, Timestamp(2)).is_err()); // duplicate
    }

    #[test]
    fn unknown_backlog_base_errors() {
        let db = db();
        let q = parse_query("SELECT x FROM b-NoSuch").unwrap();
        assert!(db.at(Timestamp(10)).query(&q).is_err());
    }

    #[test]
    fn delete_without_predicate_clears_table() {
        let mut db = db();
        let del = parse_statement("DELETE FROM Patients").unwrap();
        assert_eq!(db.execute(&del, Timestamp(30)).unwrap(), ExecOutcome::Affected(2));
        assert!(db.table(&Ident::new("Patients")).unwrap().is_empty());
    }

    #[test]
    fn injected_scan_fault_fails_exactly_the_addressed_read() {
        let mut db = db();
        db.arm_faults(FaultPlan::new().fail_scan("Patients", 2));
        let q = parse_query("SELECT pid FROM Patients").unwrap();
        assert!(db.at(Timestamp(100)).query(&q).is_ok(), "scan #1 survives");
        let err = db.at(Timestamp(100)).query(&q).unwrap_err();
        assert!(matches!(err, StorageError::Injected { .. }), "{err:?}");
        assert!(err.to_string().contains("scan #2 of table Patients"), "{err}");
        assert!(db.at(Timestamp(100)).query(&q).is_ok(), "scan #3 survives");
        db.disarm_faults();
        assert!(!db.faults_armed());
    }

    #[test]
    fn faulted_update_applies_nothing() {
        let mut db = db();
        let before = db.clone();
        db.arm_faults(FaultPlan::new().fail_all_scans("Patients"));
        let up = parse_statement("UPDATE Patients SET zipcode = '999999'").unwrap();
        let err = db.execute(&up, Timestamp(30)).unwrap_err();
        assert!(matches!(err, StorageError::Injected { .. }), "{err:?}");
        db.disarm_faults();
        assert_eq!(db, before, "no partially-applied UPDATE");
        assert_eq!(db.last_ts(), Timestamp(20), "clock untouched");
    }

    #[test]
    fn faulted_delete_applies_nothing() {
        let mut db = db();
        let before = db.clone();
        db.arm_faults(FaultPlan::new().fail_scan("Patients", 1));
        let del = parse_statement("DELETE FROM Patients").unwrap();
        assert!(db.execute(&del, Timestamp(30)).is_err());
        db.disarm_faults();
        assert_eq!(db, before, "no partially-applied DELETE");
    }

    #[test]
    fn faulted_multi_row_insert_is_atomic() {
        let mut db = db();
        let before = db.clone();
        db.arm_faults(FaultPlan::new().fail_scan("Patients", 1));
        let ins = parse_statement("INSERT INTO Patients VALUES ('p3', '1', 'a'), ('p4', '2', 'b')")
            .unwrap();
        assert!(db.execute(&ins, Timestamp(30)).is_err());
        db.disarm_faults();
        assert_eq!(db, before, "no partially-applied INSERT");
    }

    #[test]
    fn backlog_cutoff_fails_time_travel_but_not_live_reads() {
        let mut db = db(); // changes at 0, 10, 20 → last_ts 20
        db.arm_faults(FaultPlan::new().fail_backlog_past("Patients", Timestamp(10)));
        let q = parse_query("SELECT pid FROM Patients").unwrap();
        // Live reads (ts >= last_ts) never replay the backlog.
        assert!(db.at(Timestamp(20)).query(&q).is_ok());
        assert!(db.at(Timestamp(100)).query(&q).is_ok());
        // Replays up to the cutoff still work; past it they fail.
        assert!(db.at(Timestamp(10)).query(&q).is_ok());
        let err = db.at(Timestamp(15)).query(&q).unwrap_err();
        assert!(err.to_string().contains("backlog replay of Patients"), "{err}");
        // The explicit backlog relation obeys the cutoff too.
        let qb = parse_query("SELECT pid FROM b-Patients").unwrap();
        assert!(db.at(Timestamp(100)).query(&qb).is_err());
        assert!(db.at(Timestamp(10)).query(&qb).is_ok());
    }

    #[test]
    fn planned_fault_fires_even_when_snapshot_cached() {
        let mut db = db();
        let q = parse_query("SELECT pid FROM Patients").unwrap();
        // Warm the cache with an unfaulted read.
        assert!(db.at(Timestamp(100)).query(&q).is_ok());
        assert!(db.snapshot_stats().misses >= 1, "first read populates the cache");
        // The planned fault must not be satisfied from cache: the gate runs
        // before the lookup, so the very next scan still fails.
        db.arm_faults(FaultPlan::new().fail_scan("Patients", 1));
        let err = db.at(Timestamp(100)).query(&q).unwrap_err();
        assert!(matches!(err, StorageError::Injected { .. }), "{err:?}");
        db.disarm_faults();
        assert!(db.at(Timestamp(100)).query(&q).is_ok(), "disarmed reads hit the cache again");
    }

    #[test]
    fn snapshot_cache_is_invisible_to_equality_and_clones_start_cold() {
        let db = db();
        let q = parse_query("SELECT pid FROM Patients").unwrap();
        db.at(Timestamp(100)).query(&q).unwrap();
        db.at(Timestamp(100)).query(&q).unwrap();
        let stats = db.snapshot_stats();
        assert_eq!(stats, SnapshotStats { hits: 1, misses: 1 });
        // The cache is derived data: a warmed database still equals a cold
        // clone, and the clone gets its own empty cache (clones may diverge,
        // so sharing entries would alias different content).
        let cold = db.clone();
        assert_eq!(cold.snapshot_stats(), SnapshotStats::default());
        assert_eq!(db, cold);
    }

    /// Replays the same DML script into both storage modes and returns the
    /// pair (mvcc, replay).
    fn twin_dbs(script: &[(&str, i64)]) -> (Database, Database) {
        let mut mvcc = Database::with_mode(StorageMode::Mvcc);
        let mut replay = Database::with_mode(StorageMode::Replay);
        for (sql, ts) in script {
            let stmt = parse_statement(sql).unwrap();
            let a = mvcc.execute(&stmt, Timestamp(*ts)).unwrap();
            let b = replay.execute(&stmt, Timestamp(*ts)).unwrap();
            assert_eq!(a, b, "outcome divergence on {sql}");
        }
        (mvcc, replay)
    }

    const SCRIPT: &[(&str, i64)] = &[
        ("CREATE TABLE p (pid TEXT, zip TEXT)", 0),
        ("INSERT INTO p VALUES ('p1', 'z1'), ('p2', 'z2')", 10),
        ("UPDATE p SET zip = 'z9' WHERE pid = 'p1'", 20),
        ("DELETE FROM p WHERE pid = 'p2'", 20),
        ("INSERT INTO p VALUES ('p3', 'z3')", 30),
    ];

    #[test]
    fn storage_modes_answer_versioned_reads_identically() {
        let (mvcc, replay) = twin_dbs(SCRIPT);
        assert_eq!(mvcc.storage_mode(), StorageMode::Mvcc);
        assert_eq!(replay.storage_mode(), StorageMode::Replay);
        for probe in [-1i64, 0, 5, 10, 15, 20, 25, 30, 100] {
            let ts = Timestamp(probe);
            for q in ["SELECT pid, zip FROM p", "SELECT pid, zip FROM b-p"] {
                let q = parse_query(q).unwrap();
                assert_eq!(
                    mvcc.at(ts).query(&q).unwrap(),
                    replay.at(ts).query(&q).unwrap(),
                    "divergence at ts {probe}"
                );
            }
        }
        assert_eq!(
            mvcc.versions_in(&[], Timestamp(0), Timestamp(100)),
            replay.versions_in(&[], Timestamp(0), Timestamp(100))
        );
        let p = Ident::new("p");
        assert_eq!(mvcc.table_changes(&p), replay.table_changes(&p));
        assert_eq!(mvcc.table_created_at(&p), replay.table_created_at(&p));
        assert_eq!(
            mvcc.row_as_of(&p, Tid(1), Timestamp(15)),
            replay.row_as_of(&p, Tid(1), Timestamp(15))
        );
        assert_eq!(mvcc.row_as_of(&p, Tid(2), Timestamp(25)), None);
    }

    #[test]
    fn cross_mode_databases_never_compare_equal() {
        let (mvcc, replay) = twin_dbs(SCRIPT);
        assert_ne!(mvcc, replay, "equality is structural, not semantic");
        assert_eq!(mvcc, mvcc.clone());
        assert_eq!(replay, replay.clone());
    }

    #[test]
    fn mvcc_reads_count_visibility_probes() {
        let (mvcc, replay) = twin_dbs(SCRIPT);
        let q = parse_query("SELECT pid FROM p").unwrap();
        // A historical read reconstructs via the version store.
        mvcc.at(Timestamp(15)).query(&q).unwrap();
        let scan = mvcc.mvcc_scan_stats();
        assert!(scan.probes >= 2, "{scan:?}");
        assert!(scan.versions_examined >= scan.probes);
        // Live reads bypass reconstruction entirely.
        let before = mvcc.mvcc_scan_stats();
        mvcc.at(Timestamp(100)).query(&q).unwrap();
        assert_eq!(mvcc.mvcc_scan_stats(), before);
        // The replay oracle never probes chains.
        replay.at(Timestamp(15)).query(&q).unwrap();
        assert_eq!(replay.mvcc_scan_stats(), VisibilityScan::default());
        assert_eq!(replay.mvcc_stats(), None);
        let stats = mvcc.mvcc_stats().unwrap();
        assert_eq!(stats.live_versions, 2, "p1@z9 and p3");
        assert_eq!(stats.dead_versions, 2, "p1@z1 and deleted p2");
    }

    #[test]
    fn fork_prefix_reconstructs_midstream_states() {
        let (mvcc, _) = twin_dbs(SCRIPT);
        let p = Ident::new("p");
        // Cut after the first three changes (2 inserts + 1 update, the
        // DELETE and the later INSERT dropped) with the clock at 20.
        let mut counts = BTreeMap::new();
        counts.insert(p.clone(), 3usize);
        let fork = mvcc.fork_prefix(&counts, Timestamp(20)).unwrap();
        assert_eq!(fork.last_ts(), Timestamp(20));
        let q = parse_query("SELECT pid, zip FROM p").unwrap();
        assert_eq!(fork.at(Timestamp(20)).query(&q).unwrap().rows.len(), 2, "p2 still alive");
        // The fork's past matches the original's past.
        assert_eq!(
            fork.at(Timestamp(10)).query(&q).unwrap(),
            mvcc.at(Timestamp(10)).query(&q).unwrap()
        );
        // Tids continue past the cut exactly as the original did.
        let mut fork = fork;
        let tid = fork.insert(&p, vec!["p4".into(), "z4".into()], Timestamp(21)).unwrap();
        assert_eq!(tid, Tid(3), "watermark preserved across the fork");
        // Unknown tables and replay-mode sources are rejected.
        let mut bad = BTreeMap::new();
        bad.insert(Ident::new("nosuch"), 1usize);
        assert!(mvcc.fork_prefix(&bad, Timestamp(20)).is_err());
    }

    #[test]
    fn mvcc_stores_round_trip_through_from_mvcc_stores() {
        let (mvcc, _) = twin_dbs(SCRIPT);
        let stores: Vec<_> = mvcc.mvcc_stores().unwrap().into_iter().cloned().collect();
        let rebuilt = Database::from_mvcc_stores(stores, mvcc.last_ts()).unwrap();
        assert_eq!(rebuilt, mvcc, "tables, versions, and clock all restored");
        let replay = Database::with_mode(StorageMode::Replay);
        assert_eq!(replay.mvcc_stores(), None);
    }

    #[test]
    fn fault_state_is_invisible_to_equality_and_clone_shares_counters() {
        let mut a = db();
        let b = db();
        a.arm_faults(FaultPlan::new().fail_scan("Patients", 2));
        assert_eq!(a, b, "equality ignores the armed plan");
        assert!(a.faults_armed());
        // A clone shares the armed state: its first scan is ordinal #2.
        let c = a.clone();
        let q = parse_query("SELECT pid FROM Patients").unwrap();
        assert!(a.at(Timestamp(100)).query(&q).is_ok());
        assert!(c.at(Timestamp(100)).query(&q).is_err(), "clone continues the count");
    }
}
