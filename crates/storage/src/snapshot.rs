//! Version-snapshot caching for the [`crate::database::DatabaseAt`] read
//! path.
//!
//! Every versioned read — a historical `replay_to`, a live table scan, or a
//! backlog relation `b-T` — flows through the single
//! `DatabaseAt::relation` choke point. The audit engine hits that choke
//! point once per logged query per referenced table, and most of those
//! reads resolve to the *same* reconstructed state: a `DATA-INTERVAL`
//! enumerates a handful of versions, while a log holds thousands of
//! queries. The [`SnapshotCache`] memoizes the reconstructed relations so
//! the backlog is replayed once per distinct version instead of once per
//! read.
//!
//! # Keying: self-validating, no invalidation
//!
//! Entries are keyed by `(table, kind, change-prefix length)` where the
//! prefix length is `changes.partition_point(|c| c.ts <= ts)` — the number
//! of backlog records visible at the requested instant. Because histories
//! are append-only, the content of `changes[..n]` can never change for a
//! given `n`: a DML statement only ever *extends* the log, shifting the
//! partition point of subsequent reads to a longer prefix (and therefore a
//! fresh key). Stale entries are simply never looked up again, so the cache
//! needs no invalidation hooks in the write path. Two side effects fall out
//! for free:
//!
//! * distinct timestamps that select the same version (`ts = 15` and
//!   `ts = 17` with changes at 10 and 20) share one entry — the
//!   identical-timestamp replay dedup the audit loop needs, and
//! * a live read (`ts >= last_ts`) shares its entry with historical reads
//!   at or past the final change, since both see the full prefix.
//!
//! # Fault-plan interaction
//!
//! The cache sits *behind* the fault gates: `DatabaseAt::relation` consults
//! [`crate::fault::FaultState`] before ever touching the cache, so a
//! planned fault fires even when the snapshot it addresses is already
//! cached, and fault state stays invisible to [`Database`
//! equality](crate::database::Database) (the cache itself is equally
//! invisible — it is derived data).
//!
//! # Sharing
//!
//! The cache uses interior mutability (a [`Mutex`]-guarded map) so the
//! read-only `DatabaseAt` view can populate it, and it is `Sync` so
//! parallel audit workers share one cache. Cloning a
//! [`crate::database::Database`] hands the clone a **fresh, empty** cache:
//! clones may diverge, and a shared cache would let one clone's prefix keys
//! alias the other's different content.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use audex_sql::Ident;

use crate::table::Relation;

/// Which derived relation an entry memoizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SnapshotKind {
    /// A table state reconstructed by `replay_to` (or the live table, which
    /// equals the replay of the full change prefix).
    Replay,
    /// A backlog relation `b-T` (every after-image up to the instant).
    Backlog,
}

/// Cache key: `(table, kind, visible change-prefix length)`.
pub(crate) type SnapshotKey = (Ident, SnapshotKind, usize);

/// Hit/miss counters of a [`SnapshotCache`], for tests and diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotStats {
    /// Reads served from the cache.
    pub hits: u64,
    /// Reads that had to reconstruct the relation.
    pub misses: u64,
}

/// A memo table of reconstructed relations. See the module docs for the
/// keying discipline that makes entries self-validating.
#[derive(Debug, Default)]
pub struct SnapshotCache {
    entries: Mutex<HashMap<SnapshotKey, Arc<Relation>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Maximum number of entries to hold (`None` = unbounded). When a miss
    /// would exceed the cap the whole map is cleared — deterministic, and
    /// correct for any eviction order because keys are self-validating.
    cap: Option<usize>,
    /// Registry mirrors of `hits`/`misses` (no-op unless wired up via
    /// [`crate::database::Database::set_obs`]).
    obs_hits: audex_obs::Counter,
    obs_misses: audex_obs::Counter,
}

impl SnapshotCache {
    /// A cache bounded to at most `cap` entries. The MVCC engine answers
    /// versioned reads in sublinear time, so its cache is a small reuse
    /// buffer rather than the primary defense against replay cost; bounding
    /// it keeps long-running services from accumulating one entry per
    /// distinct version forever.
    pub(crate) fn with_cap(cap: usize) -> Self {
        SnapshotCache { cap: Some(cap), ..SnapshotCache::default() }
    }

    /// An empty cache with the same capacity policy as `self` (for clones,
    /// which must start cold but keep the owning database's bound).
    pub(crate) fn fresh(&self) -> Self {
        SnapshotCache { cap: self.cap, ..SnapshotCache::default() }
    }

    /// Mirrors hit/miss counts into `registry` as
    /// `audex_snapshot_cache_hits_total` / `audex_snapshot_cache_misses_total`.
    /// Takes `&mut self` so it can only happen while the owning database is
    /// exclusively held — readers never race the handle swap.
    pub(crate) fn set_obs(&mut self, registry: &audex_obs::Registry) {
        self.obs_hits = registry.counter(
            "audex_snapshot_cache_hits_total",
            "Versioned reads served from the snapshot cache.",
            &[],
        );
        self.obs_misses = registry.counter(
            "audex_snapshot_cache_misses_total",
            "Versioned reads that had to reconstruct the relation.",
            &[],
        );
    }
    /// Returns the cached relation for `key`, building and inserting it on
    /// a miss. The build runs outside the lock so concurrent readers of
    /// *different* versions reconstruct in parallel; two racing readers of
    /// the same key may both build, but the results are identical by
    /// construction (the key pins the change prefix) and the first insert
    /// wins.
    pub(crate) fn get_or_build(
        &self,
        key: SnapshotKey,
        build: impl FnOnce() -> Relation,
    ) -> Arc<Relation> {
        if let Some(hit) = self.lock().get(&key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.obs_hits.inc();
            return hit;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.obs_misses.inc();
        let built = Arc::new(build());
        let mut entries = self.lock();
        if let Some(cap) = self.cap {
            if !entries.contains_key(&key) && entries.len() >= cap {
                entries.clear();
            }
        }
        Arc::clone(entries.entry(key).or_insert(built))
    }

    /// Hit/miss counts so far.
    pub fn stats(&self) -> SnapshotStats {
        SnapshotStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of cached snapshots.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<SnapshotKey, Arc<Relation>>> {
        // A poisoned lock means a builder panicked mid-insert; the map holds
        // only fully-constructed Arcs, so it is safe to keep using.
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use audex_sql::ast::TypeName;

    fn rel(n: usize) -> Relation {
        Relation {
            name: Ident::new("t"),
            schema: Schema::of(&[("a", TypeName::Int)]),
            rows: (0..n)
                .map(|i| (crate::table::Tid(i as u64), vec![crate::value::Value::Int(i as i64)]))
                .collect(),
        }
    }

    #[test]
    fn second_lookup_hits_and_shares_the_arc() {
        let cache = SnapshotCache::default();
        let key = (Ident::new("t"), SnapshotKind::Replay, 3);
        let a = cache.get_or_build(key.clone(), || rel(2));
        let b = cache.get_or_build(key, || unreachable!("must be served from cache"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), SnapshotStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_are_distinct_entries() {
        let cache = SnapshotCache::default();
        cache.get_or_build((Ident::new("t"), SnapshotKind::Replay, 1), || rel(1));
        cache.get_or_build((Ident::new("t"), SnapshotKind::Replay, 2), || rel(2));
        cache.get_or_build((Ident::new("t"), SnapshotKind::Backlog, 2), || rel(3));
        assert_eq!(cache.stats(), SnapshotStats { hits: 0, misses: 3 });
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn capped_cache_clears_rather_than_grow_past_the_bound() {
        let cache = SnapshotCache::with_cap(2);
        cache.get_or_build((Ident::new("t"), SnapshotKind::Replay, 1), || rel(1));
        cache.get_or_build((Ident::new("t"), SnapshotKind::Replay, 2), || rel(2));
        assert_eq!(cache.len(), 2);
        // Re-building an existing key never evicts.
        cache.get_or_build((Ident::new("t"), SnapshotKind::Replay, 2), || rel(2));
        assert_eq!(cache.len(), 2);
        // A third distinct key clears the map and starts over.
        cache.get_or_build((Ident::new("t"), SnapshotKind::Replay, 3), || rel(3));
        assert_eq!(cache.len(), 1);
        // A clone's fresh cache keeps the bound.
        let fresh = cache.fresh();
        fresh.get_or_build((Ident::new("t"), SnapshotKind::Replay, 1), || rel(1));
        fresh.get_or_build((Ident::new("t"), SnapshotKind::Replay, 2), || rel(2));
        fresh.get_or_build((Ident::new("t"), SnapshotKind::Replay, 3), || rel(3));
        assert_eq!(fresh.len(), 1);
    }

    #[test]
    fn case_insensitive_table_names_share_entries() {
        let cache = SnapshotCache::default();
        cache.get_or_build((Ident::new("Patients"), SnapshotKind::Replay, 1), || rel(1));
        let again = cache.get_or_build((Ident::new("patients"), SnapshotKind::Replay, 1), || {
            unreachable!("idents hash case-insensitively")
        });
        assert_eq!(again.rows.len(), 1);
        assert_eq!(cache.stats().hits, 1);
    }
}
