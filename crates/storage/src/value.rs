//! Runtime values and their comparison / arithmetic semantics.

use audex_sql::Timestamp;
use std::cmp::Ordering;
use std::fmt;

use crate::error::StorageError;

/// A dynamically-typed SQL value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Timestamp.
    Ts(Timestamp),
}

/// Three-valued logic result of a SQL predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truth {
    /// Definitely true.
    True,
    /// Definitely false.
    False,
    /// NULL was involved.
    Unknown,
}

impl Truth {
    /// From a Rust bool.
    pub fn from_bool(b: bool) -> Truth {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }

    /// SQL three-valued AND.
    pub fn and(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::False, _) | (_, Truth::False) => Truth::False,
            (Truth::True, Truth::True) => Truth::True,
            _ => Truth::Unknown,
        }
    }

    /// SQL three-valued OR.
    pub fn or(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::True, _) | (_, Truth::True) => Truth::True,
            (Truth::False, Truth::False) => Truth::False,
            _ => Truth::Unknown,
        }
    }

    /// SQL three-valued NOT.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }

    /// A `WHERE` clause keeps a row only when the predicate is [`Truth::True`].
    pub fn is_true(self) -> bool {
        self == Truth::True
    }
}

impl Value {
    /// True when the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Approximate heap footprint in bytes (the enum itself plus any owned
    /// buffer), for storage occupancy gauges.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Value>()
            + match self {
                Value::Str(s) => s.capacity(),
                _ => 0,
            }
    }

    /// A short type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Bool(_) => "BOOL",
            Value::Int(_) => "INT",
            Value::Float(_) => "FLOAT",
            Value::Str(_) => "TEXT",
            Value::Ts(_) => "TIMESTAMP",
        }
    }

    /// SQL comparison with the coercions the paper's examples rely on.
    ///
    /// The paper is deliberately loose about literal types: Fig. 1 compares
    /// `zipcode = '120016'` while Fig. 3 writes `zipcode = 145568` against
    /// the same kind of column. We therefore coerce across the numeric/string
    /// boundary by parsing the string; a string that does not parse as a
    /// number compares as [`Truth::Unknown`] against numbers (conservative:
    /// it never satisfies a `WHERE` and never trips `NOT` into truth either).
    ///
    /// Returns `None` (→ Unknown) when either side is NULL or the types are
    /// incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Ts(a), Ts(b)) => Some(a.cmp(b)),
            // String ↔ number coercion (see doc comment).
            (Str(s), Int(_) | Float(_)) => parse_numeric(s)?.sql_cmp(other),
            (Int(_) | Float(_), Str(s)) => self.sql_cmp(&parse_numeric(s)?),
            // Timestamps compare with their integer encoding (epoch seconds)
            // so generated workloads can store them in INT columns.
            (Ts(a), Int(b)) => Some(a.0.cmp(b)),
            (Int(a), Ts(b)) => Some(a.cmp(&b.0)),
            (Ts(a), Str(s)) => Some(a.cmp(&Timestamp::parse(s)?)),
            (Str(s), Ts(b)) => Some(Timestamp::parse(s)?.cmp(b)),
            _ => None,
        }
    }

    /// SQL equality as three-valued truth.
    pub fn sql_eq(&self, other: &Value) -> Truth {
        match self.sql_cmp(other) {
            Some(Ordering::Equal) => Truth::True,
            Some(_) => Truth::False,
            None => Truth::Unknown,
        }
    }

    /// Equality for DISTINCT / grouping purposes: NULL equals NULL here, and
    /// the numeric coercions of [`Value::sql_cmp`] apply.
    pub fn grouping_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            _ => self.sql_cmp(other) == Some(Ordering::Equal),
        }
    }

    /// Total order for deterministic output (NULL first, then by type rank,
    /// then by value). This is *not* SQL comparison; it exists so reports and
    /// granule sets print in a stable order.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) => 2,
                Value::Float(_) => 3,
                Value::Str(_) => 4,
                Value::Ts(_) => 5,
            }
        }
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Ts(a), Ts(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Arithmetic. Integer overflow and division by zero are errors; NULL
    /// propagates.
    pub fn arith(&self, op: ArithOp, other: &Value) -> Result<Value, StorageError> {
        use Value::*;
        if self.is_null() || other.is_null() {
            return Ok(Null);
        }
        match (self, other) {
            (Int(a), Int(b)) => match op {
                ArithOp::Add => a.checked_add(*b).map(Int).ok_or(StorageError::ArithmeticOverflow),
                ArithOp::Sub => a.checked_sub(*b).map(Int).ok_or(StorageError::ArithmeticOverflow),
                ArithOp::Mul => a.checked_mul(*b).map(Int).ok_or(StorageError::ArithmeticOverflow),
                ArithOp::Div => {
                    if *b == 0 {
                        Err(StorageError::DivisionByZero)
                    } else {
                        Ok(Int(a / b))
                    }
                }
                ArithOp::Mod => {
                    if *b == 0 {
                        Err(StorageError::DivisionByZero)
                    } else {
                        Ok(Int(a % b))
                    }
                }
            },
            (Int(_) | Float(_), Int(_) | Float(_)) => {
                let (Some(a), Some(b)) = (self.as_f64(), other.as_f64()) else {
                    // Unreachable: the arm pattern guarantees both numeric.
                    return Err(StorageError::TypeMismatch {
                        operation: op.symbol().to_string(),
                        left: self.type_name(),
                        right: other.type_name(),
                    });
                };
                let r = match op {
                    ArithOp::Add => a + b,
                    ArithOp::Sub => a - b,
                    ArithOp::Mul => a * b,
                    ArithOp::Div => {
                        if b == 0.0 {
                            return Err(StorageError::DivisionByZero);
                        }
                        a / b
                    }
                    ArithOp::Mod => {
                        if b == 0.0 {
                            return Err(StorageError::DivisionByZero);
                        }
                        a % b
                    }
                };
                Ok(Float(r))
            }
            _ => Err(StorageError::TypeMismatch {
                operation: op.symbol().to_string(),
                left: self.type_name(),
                right: other.type_name(),
            }),
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// SQL `LIKE` with `%` (any run) and `_` (any single character).
    pub fn sql_like(&self, pattern: &Value) -> Truth {
        match (self, pattern) {
            (Value::Null, _) | (_, Value::Null) => Truth::Unknown,
            (Value::Str(s), Value::Str(p)) => {
                Truth::from_bool(like_match(s.as_bytes(), p.as_bytes()))
            }
            _ => Truth::Unknown,
        }
    }
}

/// Like-pattern matching (iterative with backtracking on `%`).
fn like_match(s: &[u8], p: &[u8]) -> bool {
    let (mut si, mut pi) = (0usize, 0usize);
    let (mut star_p, mut star_s) = (usize::MAX, 0usize);
    while si < s.len() {
        if pi < p.len() && (p[pi] == b'_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == b'%' {
            star_p = pi;
            star_s = si;
            pi += 1;
        } else if star_p != usize::MAX {
            star_s += 1;
            si = star_s;
            pi = star_p + 1;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'%' {
        pi += 1;
    }
    pi == p.len()
}

fn parse_numeric(s: &str) -> Option<Value> {
    let t = s.trim();
    if let Ok(v) = t.parse::<i64>() {
        return Some(Value::Int(v));
    }
    t.parse::<f64>().ok().map(Value::Float)
}

/// Arithmetic operators (a subset of `BinOp`, typed for values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

impl ArithOp {
    fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "%",
        }
    }
}

impl PartialEq for Value {
    /// Structural equality used by tests and hash keys: NULL == NULL, no
    /// cross-type coercion except Int/Float with equal value.
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            Value::Int(v) => {
                state.write_u8(2);
                v.hash(state);
            }
            Value::Float(v) => {
                state.write_u8(3);
                v.to_bits().hash(state);
            }
            Value::Str(s) => {
                state.write_u8(4);
                s.hash(state);
            }
            Value::Ts(t) => {
                state.write_u8(5);
                t.0.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{}", if *b { "true" } else { "false" }),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => f.write_str(s),
            Value::Ts(t) => write!(f, "{t}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<Timestamp> for Value {
    fn from(v: Timestamp) -> Self {
        Value::Ts(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_valued_logic_tables() {
        use Truth::*;
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(Unknown.not(), Unknown);
        assert!(!Unknown.is_true());
    }

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(Value::Int(3).sql_cmp(&Value::Float(3.5)), Some(Ordering::Less));
        assert_eq!(Value::Float(4.0).sql_cmp(&Value::Int(4)), Some(Ordering::Equal));
    }

    #[test]
    fn paper_zipcode_coercion() {
        // Fig. 3 compares a string zipcode column with integer 145568.
        assert_eq!(Value::Str("145568".into()).sql_eq(&Value::Int(145568)), Truth::True);
        assert_eq!(Value::Int(145568).sql_eq(&Value::Str("145568".into())), Truth::True);
        assert_eq!(Value::Str("A4".into()).sql_eq(&Value::Int(145568)), Truth::Unknown);
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), Truth::Unknown);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), Truth::Unknown);
    }

    #[test]
    fn grouping_eq_treats_nulls_equal() {
        assert!(Value::Null.grouping_eq(&Value::Null));
        assert!(!Value::Null.grouping_eq(&Value::Int(0)));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Value::Int(2).arith(ArithOp::Add, &Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(Value::Int(7).arith(ArithOp::Div, &Value::Int(2)).unwrap(), Value::Int(3));
        assert_eq!(Value::Int(7).arith(ArithOp::Mod, &Value::Int(2)).unwrap(), Value::Int(1));
        assert_eq!(
            Value::Int(1).arith(ArithOp::Add, &Value::Float(0.5)).unwrap(),
            Value::Float(1.5)
        );
        assert!(Value::Int(1).arith(ArithOp::Div, &Value::Int(0)).is_err());
        assert!(Value::Int(i64::MAX).arith(ArithOp::Add, &Value::Int(1)).is_err());
        assert_eq!(Value::Null.arith(ArithOp::Add, &Value::Int(1)).unwrap(), Value::Null);
        assert!(Value::Str("x".into()).arith(ArithOp::Add, &Value::Int(1)).is_err());
    }

    #[test]
    fn like_patterns() {
        let s = |x: &str| Value::Str(x.into());
        assert_eq!(s("Jane").sql_like(&s("J%")), Truth::True);
        assert_eq!(s("Jane").sql_like(&s("_ane")), Truth::True);
        assert_eq!(s("Jane").sql_like(&s("%n_")), Truth::True);
        assert_eq!(s("Jane").sql_like(&s("jane")), Truth::False);
        assert_eq!(s("Jane").sql_like(&s("%z%")), Truth::False);
        assert_eq!(s("").sql_like(&s("%")), Truth::True);
        assert_eq!(s("").sql_like(&s("_")), Truth::False);
        assert_eq!(s("abc").sql_like(&s("a%b%c")), Truth::True);
        assert_eq!(Value::Null.sql_like(&s("%")), Truth::Unknown);
        assert_eq!(Value::Int(5).sql_like(&s("%")), Truth::Unknown);
    }

    #[test]
    fn like_backtracking_stress() {
        let s = |x: &str| Value::Str(x.into());
        assert_eq!(s("aaaaaaaaab").sql_like(&s("%a%a%a%b")), Truth::True);
        assert_eq!(s("aaaaaaaaac").sql_like(&s("%a%a%a%b")), Truth::False);
    }

    #[test]
    fn total_order_is_deterministic() {
        let mut vals = [
            Value::Str("b".into()),
            Value::Int(2),
            Value::Null,
            Value::Float(1.5),
            Value::Str("a".into()),
            Value::Bool(true),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals.last().unwrap(), &Value::Str("b".into()));
    }

    #[test]
    fn timestamp_comparisons() {
        let t = Value::Ts(Timestamp(100));
        assert_eq!(t.sql_eq(&Value::Int(100)), Truth::True);
        assert_eq!(t.sql_cmp(&Value::Str("1/1/1970:00-02-00".into())), Some(Ordering::Less));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Str("x".into()).to_string(), "x");
        assert_eq!(Value::Int(-3).to_string(), "-3");
    }
}
