//! Property tests on the storage substrate: backlog reconstruction agrees
//! with naive replay, join strategies agree, and value semantics hold.

use audex_sql::ast::TypeName;
use audex_sql::{parse_query, Ident, Timestamp};
use audex_storage::{Database, JoinStrategy, RelationProvider, Schema, StorageMode, Tid, Value};
use proptest::prelude::*;

/// One scripted mutation against a single-table database.
#[derive(Debug, Clone)]
enum Op {
    Insert { key: u8, amount: i64 },
    Update { tid: u8, amount: i64 },
    Delete { tid: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), -100i64..100).prop_map(|(key, amount)| Op::Insert { key, amount }),
        (1u8..40, -100i64..100).prop_map(|(tid, amount)| Op::Update { tid, amount }),
        (1u8..40).prop_map(|tid| Op::Delete { tid }),
    ]
}

type Snapshot = Vec<(Tid, Vec<Value>)>;

fn schema() -> Schema {
    Schema::of(&[("k", TypeName::Text), ("amount", TypeName::Int)])
}

/// Applies ops at timestamps 1, 2, 3, …; also maintains a naive model:
/// the full table contents after each timestamp.
fn run_ops(ops: &[Op], mode: StorageMode) -> (Database, Vec<Snapshot>) {
    let t = Ident::new("t");
    let mut db = Database::with_mode(mode);
    db.create_table(t.clone(), schema(), Timestamp(0)).unwrap();
    let mut snapshots = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        let ts = Timestamp(i as i64 + 1);
        match op {
            Op::Insert { key, amount } => {
                db.insert(&t, vec![format!("k{key}").into(), Value::Int(*amount)], ts).unwrap();
            }
            Op::Update { tid, amount } => {
                let tid = Tid(*tid as u64);
                if let Some(row) = db.table(&t).unwrap().get(tid).cloned() {
                    let mut new_row = row;
                    new_row[1] = Value::Int(*amount);
                    db.update_row(&t, tid, new_row, ts).unwrap();
                }
            }
            Op::Delete { tid } => {
                let tid = Tid(*tid as u64);
                if db.table(&t).unwrap().get(tid).is_some() {
                    db.delete_row(&t, tid, ts).unwrap();
                }
            }
        }
        snapshots.push(db.table(&t).unwrap().iter().map(|(tid, r)| (tid, r.clone())).collect());
    }
    (db, snapshots)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Versioned reads reconstruct exactly the state the live table had at
    /// each timestamp — in both storage modes, for every instant in the run.
    #[test]
    fn versioned_reads_agree_with_live_history(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        for mode in [StorageMode::Mvcc, StorageMode::Replay] {
            let (db, snapshots) = run_ops(&ops, mode);
            for (i, expected) in snapshots.iter().enumerate() {
                let rel = db.at(Timestamp(i as i64 + 1)).relation(&Ident::new("t")).unwrap();
                prop_assert_eq!(&rel.rows, expected, "at ts {} in {:?}", i + 1, mode);
            }
        }
    }

    /// The MVCC store and the replay oracle answer every versioned read —
    /// state, backlog relation, and version enumeration — byte-identically.
    #[test]
    fn mvcc_equals_replay_oracle(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let (mvcc, _) = run_ops(&ops, StorageMode::Mvcc);
        let (replay, _) = run_ops(&ops, StorageMode::Replay);
        let t = Ident::new("t");
        let b = Ident::new("b-t");
        for i in 0..=ops.len() as i64 + 1 {
            let ts = Timestamp(i);
            prop_assert_eq!(
                mvcc.at(ts).relation(&t).unwrap().rows.clone(),
                replay.at(ts).relation(&t).unwrap().rows.clone(),
                "state divergence at ts {}", i
            );
            prop_assert_eq!(
                mvcc.at(ts).relation(&b).unwrap().rows.clone(),
                replay.at(ts).relation(&b).unwrap().rows.clone(),
                "backlog divergence at ts {}", i
            );
        }
        prop_assert_eq!(
            mvcc.versions_in(&[], Timestamp(0), Timestamp(1_000)),
            replay.versions_in(&[], Timestamp(0), Timestamp(1_000))
        );
        prop_assert_eq!(mvcc.table_changes(&t), replay.table_changes(&t));
    }

    /// The backlog relation contains every version every surviving or
    /// deleted tuple ever had.
    #[test]
    fn backlog_relation_superset_of_every_state(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        for mode in [StorageMode::Mvcc, StorageMode::Replay] {
            let (db, snapshots) = run_ops(&ops, mode);
            let b = db.at(Timestamp(1_000)).relation(&Ident::new("b-t")).unwrap();
            for snap in &snapshots {
                for (tid, row) in snap {
                    prop_assert!(
                        b.rows.iter().any(|(bt, br)| bt == tid && br == row),
                        "state row {tid:?} missing from backlog relation in {mode:?}"
                    );
                }
            }
        }
    }

    /// versions_in() returns exactly the distinct change instants (plus the
    /// interval start), sorted.
    #[test]
    fn versions_in_is_sorted_dedup(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let (db, _) = run_ops(&ops, StorageMode::Mvcc);
        let v = db.versions_in(&[], Timestamp(0), Timestamp(1_000));
        prop_assert!(v.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(v[0], Timestamp(0));
    }

    /// Hash join and nested loop agree on random data for an equi-join with
    /// extra filters.
    #[test]
    fn join_strategies_agree(
        left in proptest::collection::vec((0u8..20, -50i64..50), 0..30),
        right in proptest::collection::vec((0u8..20, -50i64..50), 0..30),
        threshold in -50i64..50,
    ) {
        let mut db = Database::new();
        let a = Ident::new("a");
        let b = Ident::new("b");
        db.create_table(a.clone(), Schema::of(&[("k", TypeName::Text), ("x", TypeName::Int)]), Timestamp(0)).unwrap();
        db.create_table(b.clone(), Schema::of(&[("k", TypeName::Text), ("y", TypeName::Int)]), Timestamp(0)).unwrap();
        for (k, x) in &left {
            db.insert(&a, vec![format!("k{k}").into(), Value::Int(*x)], Timestamp(1)).unwrap();
        }
        for (k, y) in &right {
            db.insert(&b, vec![format!("k{k}").into(), Value::Int(*y)], Timestamp(1)).unwrap();
        }
        let q = parse_query(&format!(
            "SELECT a.k, x, y FROM a, b WHERE a.k = b.k AND x + y > {threshold}"
        )).unwrap();
        let hash = db.at(Timestamp(1)).query_with(&q, JoinStrategy::Auto).unwrap();
        let nested = db.at(Timestamp(1)).query_with(&q, JoinStrategy::NestedLoop).unwrap();
        prop_assert_eq!(hash.rows, nested.rows);
        prop_assert_eq!(hash.lineage, nested.lineage);
    }

    /// Value total order is a total order (antisymmetric, transitive on
    /// sampled triples) and grouping_eq is reflexive/symmetric.
    #[test]
    fn value_order_laws(xs in proptest::collection::vec(value_strategy(), 3)) {
        let (a, b, c) = (&xs[0], &xs[1], &xs[2]);
        use std::cmp::Ordering;
        prop_assert_eq!(a.total_cmp(a), Ordering::Equal);
        prop_assert_eq!(a.total_cmp(b), b.total_cmp(a).reverse());
        if a.total_cmp(b) != Ordering::Greater && b.total_cmp(c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(c), Ordering::Greater);
        }
        prop_assert!(a.grouping_eq(a));
        prop_assert_eq!(a.grouping_eq(b), b.grouping_eq(a));
    }

    /// SQL comparison is consistent with its flip.
    #[test]
    fn sql_cmp_antisymmetry(a in value_strategy(), b in value_strategy()) {
        if let (Some(x), Some(y)) = (a.sql_cmp(&b), b.sql_cmp(&a)) {
            prop_assert_eq!(x, y.reverse());
        }
    }
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        (-1000i64..1000).prop_map(|v| Value::Float(v as f64 / 4.0)),
        "[a-z0-9]{0,6}".prop_map(Value::Str),
        (0i64..10_000).prop_map(|s| Value::Ts(Timestamp(s))),
    ]
}
