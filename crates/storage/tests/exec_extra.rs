//! Executor coverage beyond the unit tests: three-table joins, backlog
//! relations inside joins, LIKE/IN in plans, expression projections, and
//! lineage precision under self-joins.

use audex_sql::ast::TypeName;
use audex_sql::{parse_query, parse_statement, Ident, Timestamp};
use audex_storage::{Database, JoinStrategy, Schema, Tid, Value};

fn hospital() -> Database {
    let mut db = Database::new();
    let script = [
        "CREATE TABLE P-Personal (pid TEXT, name TEXT, age INT, zipcode TEXT)",
        "CREATE TABLE P-Health (pid TEXT, disease TEXT)",
        "CREATE TABLE P-Employ (pid TEXT, salary INT)",
        "INSERT INTO P-Personal VALUES \
         ('p1','Jane',25,'177893'), ('p2','Reku',35,'145568'), \
         ('p13','Robert',29,'188888'), ('p28','Lucy',20,'145568')",
        "INSERT INTO P-Health VALUES \
         ('p1','flu'), ('p2','diabetic'), ('p13','malaria'), ('p28','diabetic')",
        "INSERT INTO P-Employ VALUES ('p1',12000), ('p2',20000), ('p13',9000), ('p28',19000)",
    ];
    for (i, sql) in script.iter().enumerate() {
        db.execute(&parse_statement(sql).unwrap(), Timestamp(i as i64)).unwrap();
    }
    db
}

fn rows(db: &Database, sql: &str) -> Vec<Vec<Value>> {
    db.at(db.last_ts()).query(&parse_query(sql).unwrap()).unwrap().rows
}

#[test]
fn three_table_join_matches_paper_fig3() {
    let db = hospital();
    let got = rows(
        &db,
        "SELECT name, disease, salary FROM P-Personal, P-Health, P-Employ \
         WHERE P-Personal.pid = P-Health.pid AND P-Health.pid = P-Employ.pid \
           AND zipcode = '145568' AND salary > 10000 AND disease = 'diabetic'",
    );
    assert_eq!(got.len(), 2);
    assert_eq!(got[0][0].to_string(), "Reku");
    assert_eq!(got[1][0].to_string(), "Lucy");
}

#[test]
fn join_strategies_agree_on_three_tables() {
    let db = hospital();
    let q = parse_query(
        "SELECT name FROM P-Personal, P-Health, P-Employ \
         WHERE P-Personal.pid = P-Health.pid AND P-Health.pid = P-Employ.pid AND salary > 10000",
    )
    .unwrap();
    let a = db.at(db.last_ts()).query_with(&q, JoinStrategy::Auto).unwrap();
    let b = db.at(db.last_ts()).query_with(&q, JoinStrategy::NestedLoop).unwrap();
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.lineage, b.lineage);
    assert_eq!(a.rows.len(), 3); // Jane, Reku, Lucy (Robert earns 9000)
}

#[test]
fn backlog_relation_joins_with_live_table() {
    let mut db = hospital();
    db.execute(
        &parse_statement("UPDATE P-Personal SET zipcode = '000000' WHERE pid = 'p2'").unwrap(),
        Timestamp(100),
    )
    .unwrap();
    // Join historic personal versions against current health data.
    let got = rows(
        &db,
        "SELECT zipcode, disease FROM b-P-Personal, P-Health \
         WHERE b-P-Personal.pid = P-Health.pid AND b-P-Personal.pid = 'p2'",
    );
    // Two versions of Reku's row × one health row.
    assert_eq!(got.len(), 2);
    let zips: Vec<String> = got.iter().map(|r| r[0].to_string()).collect();
    assert!(zips.contains(&"145568".to_string()));
    assert!(zips.contains(&"000000".to_string()));
}

#[test]
fn like_and_in_filters_execute() {
    let db = hospital();
    assert_eq!(rows(&db, "SELECT name FROM P-Personal WHERE name LIKE 'R%'").len(), 2);
    assert_eq!(rows(&db, "SELECT name FROM P-Personal WHERE name NOT LIKE '%u%'").len(), 2); // Jane, Robert
    assert_eq!(
        rows(&db, "SELECT name FROM P-Personal WHERE zipcode IN ('145568', '177893')").len(),
        3
    );
}

#[test]
fn expression_projection_with_arithmetic() {
    let db = hospital();
    let got = rows(
        &db,
        "SELECT name, salary / 1000 AS k FROM P-Personal, P-Employ \
         WHERE P-Personal.pid = P-Employ.pid AND salary / 1000 >= 19",
    );
    assert_eq!(got.len(), 2);
    assert_eq!(got[0][1], Value::Int(20));
    assert_eq!(got[1][1], Value::Int(19));
}

#[test]
fn self_join_lineage_distinguishes_bindings() {
    let db = hospital();
    let rs = db
        .at(db.last_ts())
        .query(
            &parse_query(
                "SELECT a.name FROM P-Personal a, P-Personal b \
                 WHERE a.zipcode = b.zipcode AND a.pid <> b.pid",
            )
            .unwrap(),
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 2); // (Reku,Lucy) and (Lucy,Reku)
    for lin in &rs.lineage {
        assert_eq!(lin.len(), 2);
        assert_eq!(lin[0].table, lin[1].table);
        assert_ne!(lin[0].tid, lin[1].tid);
        assert_ne!(lin[0].binding, lin[1].binding);
    }
}

#[test]
fn distinct_three_way_values() {
    let db = hospital();
    let rs = db
        .at(db.last_ts())
        .query(&parse_query("SELECT DISTINCT disease FROM P-Health").unwrap())
        .unwrap();
    assert_eq!(rs.rows.len(), 3);
    assert_eq!(rs.lineage.len(), 4);
}

#[test]
fn cross_type_join_keys_fall_back_correctly() {
    // Joining TEXT zipcode against an INT-typed key must not use the hash
    // path blindly; results must match nested loop.
    let mut db = hospital();
    db.execute(
        &parse_statement("CREATE TABLE Zones (code INT, label TEXT)").unwrap(),
        Timestamp(50),
    )
    .unwrap();
    db.execute(
        &parse_statement("INSERT INTO Zones VALUES (145568, 'midtown'), (177893, 'north')")
            .unwrap(),
        Timestamp(51),
    )
    .unwrap();
    let q = parse_query("SELECT name, label FROM P-Personal, Zones WHERE zipcode = code").unwrap();
    let auto = db.at(db.last_ts()).query_with(&q, JoinStrategy::Auto).unwrap();
    let nested = db.at(db.last_ts()).query_with(&q, JoinStrategy::NestedLoop).unwrap();
    assert_eq!(auto.rows, nested.rows);
    assert_eq!(auto.rows.len(), 3); // Jane/north, Reku/midtown, Lucy/midtown
}

#[test]
fn empty_tables_join_to_empty() {
    let mut db = Database::new();
    db.create_table(Ident::new("a"), Schema::of(&[("x", TypeName::Int)]), Timestamp(0)).unwrap();
    db.create_table(Ident::new("b"), Schema::of(&[("y", TypeName::Int)]), Timestamp(0)).unwrap();
    db.insert(&Ident::new("a"), vec![Value::Int(1)], Timestamp(1)).unwrap();
    let rs = db
        .at(Timestamp(1))
        .query(&parse_query("SELECT x, y FROM a, b WHERE x = y").unwrap())
        .unwrap();
    assert!(rs.is_empty());
}

#[test]
fn null_join_keys_never_match() {
    let mut db = Database::new();
    db.create_table(Ident::new("a"), Schema::of(&[("k", TypeName::Text)]), Timestamp(0)).unwrap();
    db.create_table(Ident::new("b"), Schema::of(&[("k", TypeName::Text)]), Timestamp(0)).unwrap();
    db.insert(&Ident::new("a"), vec![Value::Null], Timestamp(1)).unwrap();
    db.insert(&Ident::new("b"), vec![Value::Null], Timestamp(1)).unwrap();
    db.insert(&Ident::new("a"), vec!["x".into()], Timestamp(1)).unwrap();
    db.insert(&Ident::new("b"), vec!["x".into()], Timestamp(1)).unwrap();
    let q = parse_query("SELECT a.k FROM a, b WHERE a.k = b.k").unwrap();
    for strategy in [JoinStrategy::Auto, JoinStrategy::NestedLoop] {
        let rs = db.at(Timestamp(1)).query_with(&q, strategy).unwrap();
        assert_eq!(rs.rows.len(), 1, "only the non-null keys join ({strategy:?})");
    }
}

#[test]
fn lineage_tid_values_are_exact() {
    let db = hospital();
    let rs = db
        .at(db.last_ts())
        .query(&parse_query("SELECT name FROM P-Personal WHERE zipcode = '145568'").unwrap())
        .unwrap();
    let tids: Vec<Tid> = rs.lineage.iter().map(|l| l[0].tid).collect();
    assert_eq!(tids, vec![Tid(2), Tid(4)]); // insertion order p2, p28
}

#[test]
fn order_by_sorts_and_limit_truncates() {
    let db = hospital();
    let got = rows(&db, "SELECT name, age FROM P-Personal ORDER BY age");
    let ages: Vec<String> = got.iter().map(|r| r[1].to_string()).collect();
    assert_eq!(ages, vec!["20", "25", "29", "35"]);

    let got = rows(&db, "SELECT name FROM P-Personal ORDER BY age DESC LIMIT 2");
    let names: Vec<String> = got.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(names, vec!["Reku", "Robert"]);
}

#[test]
fn order_by_multiple_keys() {
    let db = hospital();
    let got = rows(&db, "SELECT name FROM P-Personal ORDER BY zipcode, age DESC");
    let names: Vec<String> = got.iter().map(|r| r[0].to_string()).collect();
    // zipcodes: 145568 (Reku 35, Lucy 20), 177893 (Jane), 188888 (Robert).
    assert_eq!(names, vec!["Reku", "Lucy", "Jane", "Robert"]);
}

#[test]
fn limit_zero_returns_nothing_but_keeps_lineage() {
    let db = hospital();
    let rs = db
        .at(db.last_ts())
        .query(&parse_query("SELECT name FROM P-Personal WHERE age < 30 LIMIT 0").unwrap())
        .unwrap();
    assert!(rs.rows.is_empty());
    // Lineage records all satisfying combinations regardless of LIMIT
    // (conservative for auditing; see the executor docs).
    assert_eq!(rs.lineage.len(), 3);
}

#[test]
fn distinct_then_order_then_limit() {
    let db = hospital();
    let got = rows(&db, "SELECT DISTINCT disease FROM P-Health ORDER BY disease LIMIT 2");
    let ds: Vec<String> = got.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(ds, vec!["diabetic", "flu"]);
}

#[test]
fn order_by_unknown_column_errors() {
    let db = hospital();
    let q = parse_query("SELECT name FROM P-Personal ORDER BY nosuch").unwrap();
    assert!(db.at(db.last_ts()).query(&q).is_err());
}

#[test]
fn division_error_surfaces_not_panics() {
    let db = hospital();
    let q = parse_query(
        "SELECT salary / (age - age) FROM P-Personal, P-Employ \
                         WHERE P-Personal.pid = P-Employ.pid",
    )
    .unwrap();
    let err = db.at(db.last_ts()).query(&q);
    assert!(err.is_err());
}
