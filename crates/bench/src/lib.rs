//! `audex-bench` — shared fixtures for the Criterion benchmark suite.
//!
//! One bench target exists per experiment row of DESIGN.md §3:
//! `paper_artifacts` (E3–E8 as microbenches), `granules` (B1),
//! `audit_scaling` (B2), `versioning` (B3), `notions` (B4), `batch` (B5),
//! `join_ablation` (B6), `ranking` (B7), `multi_audit` (B8),
//! `selectivity` (B9), `bench2` (B10, → `BENCH_2.json`), `ingest`
//! (B11, → `BENCH_3.json`), `durability` (B12, → `BENCH_4.json`), and
//! `obs` (B13, telemetry overhead, → `BENCH_5.json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use audex_core::PreparedAudit;
use audex_core::{AuditEngine, EngineOptions};
use audex_log::QueryLog;
use audex_sql::ast::{AuditExpr, TimeInterval, TsSpec};
use audex_sql::{parse_audit, Timestamp};
use audex_storage::Database;
use audex_workload::{
    generate_hospital, generate_queries, load_log, standard_audit_text, HospitalConfig,
    QueryMixConfig,
};

/// A ready-to-audit scenario: hospital, log with planted violations, audit.
pub struct Scenario {
    /// The database.
    pub db: Database,
    /// The query log.
    pub log: QueryLog,
    /// The standard audit expression (disease of zone-0 patients).
    pub audit: AuditExpr,
    /// Reference "now" (after every logged query).
    pub now: Timestamp,
}

/// Pins an expression's `DURING`/`DATA-INTERVAL` to all time.
pub fn all_time(mut expr: AuditExpr) -> AuditExpr {
    let iv = TimeInterval { start: TsSpec::At(Timestamp(0)), end: TsSpec::Now };
    expr.during = Some(iv);
    expr.data_interval = Some(iv);
    expr
}

/// Builds a scenario of the given size, deterministic in its parameters.
pub fn scenario(patients: usize, queries: usize, suspicious_rate: f64, seed: u64) -> Scenario {
    scenario_with_zones(patients, queries, suspicious_rate, seed, 20)
}

/// [`scenario`] with an explicit zip-zone count — the dispatch-scaling
/// benches register one standing audit per zone, so they need as many
/// distinct (and populated) zones as audits for the workload to be honest.
pub fn scenario_with_zones(
    patients: usize,
    queries: usize,
    suspicious_rate: f64,
    seed: u64,
    zip_zones: usize,
) -> Scenario {
    let hospital = HospitalConfig { patients, zip_zones, diseases: 12, seed };
    let db = generate_hospital(&hospital, Timestamp(0));
    let mix =
        QueryMixConfig { queries, suspicious_rate, start: Timestamp(1_000), seed: seed ^ 0x5eed };
    let generated = generate_queries(&hospital, &mix);
    let (log, _planted) = load_log(&generated);
    let audit = parse_audit(&standard_audit_text()).expect("standard audit parses");
    let now = Timestamp(1_000 + queries as i64 + 10);
    Scenario { db, log, audit, now }
}

impl Scenario {
    /// An engine over this scenario with the given options.
    pub fn engine(&self, options: EngineOptions) -> AuditEngine<'_> {
        AuditEngine::with_options(&self.db, &self.log, options)
    }

    /// Prepares the standard audit (target view + granule model).
    pub fn prepared(&self, options: EngineOptions) -> PreparedAudit {
        self.engine(options).prepare(&self.audit, self.now).expect("audit prepares")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_builds_and_audits() {
        let s = scenario(100, 50, 0.2, 3);
        let engine = s.engine(EngineOptions::default());
        let r = engine.audit_at(&s.audit, s.now).unwrap();
        assert!(r.verdict.suspicious);
        assert!(!r.pruned.is_empty());
    }
}
