//! E3–E8: the cost of regenerating each paper artifact (Tables 4–6,
//! Figures 4–6 granule sets) on the paper's own dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use audex_core::{normalize_with, AuditEngine, AuditScope};
use audex_log::QueryLog;
use audex_sql::ast::{TableRef, TimeInterval, TsSpec};
use audex_sql::parse_audit;
use audex_workload::paper::*;

fn prepared(text: &str) -> (audex_storage::Database, audex_core::PreparedAudit) {
    let db = paper_database();
    let log = QueryLog::new();
    let engine = AuditEngine::new(&db, &log);
    let mut expr = parse_audit(text).unwrap();
    expr.data_interval =
        Some(TimeInterval { start: TsSpec::At(paper_epoch()), end: TsSpec::At(paper_now()) });
    let p = engine.prepare(&expr, paper_now()).unwrap();
    (db, p)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper_artifacts");
    g.sample_size(20)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));

    // E3 / Table 4: target view of Audit Expression-1.
    let db = paper_database();
    let log = QueryLog::new();
    let engine = AuditEngine::new(&db, &log);
    let fig2 = {
        let mut e = parse_audit(FIG2_AUDIT_EXPRESSION_1).unwrap();
        e.data_interval =
            Some(TimeInterval { start: TsSpec::At(paper_epoch()), end: TsSpec::At(paper_now()) });
        e
    };
    g.bench_function("table4_target_view", |b| {
        b.iter(|| {
            let p = engine.prepare(&fig2, paper_now()).unwrap();
            assert_eq!(p.view.len(), 3);
        })
    });

    // E4 / Table 5.
    let fig3 = {
        let mut e = parse_audit(FIG3_AUDIT_EXPRESSION_2).unwrap();
        e.data_interval =
            Some(TimeInterval { start: TsSpec::At(paper_epoch()), end: TsSpec::At(paper_now()) });
        e
    };
    g.bench_function("table5_target_view", |b| {
        b.iter(|| {
            let p = engine.prepare(&fig3, paper_now()).unwrap();
            assert_eq!(p.view.len(), 2);
        })
    });

    // E5 / Table 6: normalization of every rule's left-hand side.
    let scope = AuditScope::resolve(&db, &[TableRef::named("P-Personal")]).unwrap();
    let rule_specs: Vec<audex_sql::ast::AttrSpec> = [
        "[name]",
        "(name)(age)",
        "(name, age)",
        "[name][age]",
        "[name, age][sex, address]",
        "[(name, age)]",
        "([name, age])",
        "(name, age)[sex]",
    ]
    .iter()
    .map(|l| parse_audit(&format!("AUDIT {l} FROM P-Personal")).unwrap().audit)
    .collect();
    g.bench_function("table6_normalization", |b| {
        b.iter(|| {
            for spec in &rule_specs {
                normalize_with(spec, &scope).unwrap();
            }
        })
    });

    // E6–E8: granule-set materialization + paper rendering.
    for (name, text, expected_len) in [
        ("fig4_perfect_privacy", FIG4_PERFECT_PRIVACY, 14usize),
        ("fig5_weak_syntactic", FIG5_WEAK_SYNTACTIC, 16),
        ("fig6_semantic", FIG6_SEMANTIC, 2),
    ] {
        let (_db, p) = prepared(text);
        g.bench_function(name, |b| {
            b.iter(|| {
                let gs = p.model.materialize(&p.view, 10_000).unwrap();
                assert_eq!(gs.len(), expected_len);
                gs.iter().map(|gr| p.model.render(gr, &p.view).len()).sum::<usize>()
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
