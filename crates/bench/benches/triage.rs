//! B17: the cost of explanations and the review queue.
//!
//! Writes `BENCH_9.json` at the workspace root with three experiments:
//!
//! * `explanation_overhead` — the tentpole claim: evidence-backed
//!   explanations and the review-queue fold ride on the single execution
//!   the online scorer already performs, so triage adds <5% to scoring a
//!   stream. Measured A/B over identical streams through identical
//!   auditors: arm A scores only, arm B scores **and** folds every flagged
//!   query into a [`ReviewQueue`]. The delta is the entire explanation +
//!   prioritization cost.
//! * `queue_build` — latency to build and first-rank a queue of 10,000
//!   flagged queries (the paper-scale review backlog), plus one `page`
//!   call, in milliseconds.
//! * `template_compression` — how far Fabbri–LeFevre-style template
//!   mining compresses that backlog: distinct (role, purpose, columns,
//!   audits) groups vs open items.
//!
//! Run `cargo bench -p audex-bench --bench triage` for real measurements
//! or `-- --test` for the CI smoke variant (smaller stream, same asserts).

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use audex_bench::{all_time, scenario_with_zones};
use audex_core::{AuditEngine, OnlineAuditor, PreparedAudit};
use audex_log::{LoggedQuery, QueryId, QueryLog};
use audex_sql::{parse_audit, Ident, Timestamp};
use audex_storage::Database;
use audex_triage::{RedactedScore, ReviewQueue};
use audex_workload::datagen::zip_of_zone;

struct Config {
    zones: usize,
    queries: usize,
    audits: usize,
    queue_items: usize,
    /// Repeat the A/B passes and keep the fastest, to de-noise CI boxes.
    passes: usize,
}

fn config(quick: bool) -> Config {
    if quick {
        Config { zones: 64, queries: 300, audits: 32, queue_items: 10_000, passes: 3 }
    } else {
        Config { zones: 256, queries: 1_500, audits: 128, queue_items: 10_000, passes: 5 }
    }
}

fn prepared_audits(db: &Database, count: usize, now: Timestamp) -> Vec<PreparedAudit> {
    let log = QueryLog::new();
    let engine = AuditEngine::new(db, &log);
    (0..count)
        .map(|k| {
            let expr = parse_audit(&format!(
                "AUDIT disease FROM Patients, Health \
                 WHERE Patients.pid = Health.pid AND Patients.zipcode = '{}'",
                zip_of_zone(k)
            ))
            .expect("standing audit parses");
            engine.prepare(&all_time(expr), now).expect("standing audit prepares")
        })
        .collect()
}

/// One timed pass over the stream. With `queue` set, every flagged query
/// is folded into the review queue — the triage arm of the A/B.
fn score_pass(
    db: &Database,
    audits: &[PreparedAudit],
    entries: &[Arc<LoggedQuery>],
    mut queue: Option<&mut ReviewQueue>,
) -> (f64, usize) {
    let mut auditor = OnlineAuditor::new(audits.to_vec());
    let mut flagged = 0usize;
    let t = Instant::now();
    for e in entries {
        let scores = auditor.observe(db, e).expect("observe succeeds");
        if !scores.is_empty() {
            flagged += 1;
            if let Some(q) = queue.as_deref_mut() {
                q.observe(
                    e.id,
                    e.executed_at,
                    e.context.user.clone(),
                    e.context.role.clone(),
                    e.context.purpose.clone(),
                    &scores,
                );
            }
        }
        std::hint::black_box(&scores);
    }
    (t.elapsed().as_secs_f64(), flagged)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let cfg = config(quick);
    let mut rows = String::new();

    // --- Experiment 1: explanation + queue overhead on live scoring. ----
    let s = scenario_with_zones(cfg.zones, cfg.queries, 0.25, 42, cfg.zones);
    let entries = s.log.snapshot();
    let audits = prepared_audits(&s.db, cfg.audits, s.now);
    let (mut best_score, mut best_triage) = (f64::MAX, f64::MAX);
    let mut flagged = 0usize;
    for _ in 0..cfg.passes {
        let (secs, _) = score_pass(&s.db, &audits, &entries, None);
        best_score = best_score.min(secs);
        let mut queue = ReviewQueue::new(None);
        let (secs, f) = score_pass(&s.db, &audits, &entries, Some(&mut queue));
        best_triage = best_triage.min(secs);
        flagged = f;
        assert_eq!(queue.len(), flagged, "every flagged query must enter the queue");
    }
    let overhead_pct = (best_triage - best_score) / best_score * 100.0;
    println!(
        "explanation_overhead queries={} flagged={flagged} score_secs={best_score:.4} \
         triage_secs={best_triage:.4} overhead_pct={overhead_pct:.2}",
        entries.len()
    );
    let _ = writeln!(
        rows,
        "    {{\"experiment\": \"explanation_overhead\", \"queries\": {}, \
         \"flagged\": {flagged}, \"score_secs\": {best_score:.6}, \
         \"triage_secs\": {best_triage:.6}, \"overhead_pct\": {overhead_pct:.3}}},",
        entries.len()
    );
    assert!(flagged > 0, "the workload must flag something for the A/B to mean anything");
    assert!(
        overhead_pct < 5.0,
        "explanations + queue must cost <5% of scoring, measured {overhead_pct:.2}%"
    );

    // --- Experiment 2: queue build + first rank at 10k flagged. ---------
    // Synthetic redacted rows with the realistic shape: a few hundred
    // (role, purpose, columns, audits) combinations across 10k items.
    let table = Ident::new("Patients");
    let columns = ["disease", "pid", "zipcode", "name"];
    let mk_rows = |i: usize| -> Vec<RedactedScore> {
        let audit = audex_core::AuditId((i % cfg.audits.max(1)) as u64);
        vec![RedactedScore {
            audit,
            fact_coverage: 1.0,
            column_coverage: 1.0,
            closeness: ((i % 97) + 1) as f64 / 97.0,
            touched: (i % 13 + 1) as u64,
            exposed: 0,
            covered: vec![(table.clone(), Ident::new(columns[i % columns.len()]))],
        }]
    };
    let mut queue = ReviewQueue::new(Some(25));
    let t = Instant::now();
    for i in 0..cfg.queue_items {
        queue.observe_redacted(
            QueryId(i as u64 + 1),
            Timestamp(1_000 + i as i64),
            Ident::new(format!("u{}", i % 40)),
            Ident::new(format!("role{}", i % 5)),
            Ident::new(format!("purpose{}", i % 3)),
            &mk_rows(i),
        );
    }
    let fill_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let ranked = queue.ranked();
    let rank_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(ranked.len(), cfg.queue_items, "every item ranks");
    let page = queue.page(None, 0);
    assert_eq!(page.len(), 25, "page honors the review budget");
    drop(ranked);
    println!("queue_build items={} fill_ms={fill_ms:.2} rank_ms={rank_ms:.2}", cfg.queue_items);
    let _ = writeln!(
        rows,
        "    {{\"experiment\": \"queue_build\", \"items\": {}, \
         \"fill_ms\": {fill_ms:.3}, \"rank_ms\": {rank_ms:.3}}},",
        cfg.queue_items
    );

    // --- Experiment 3: template compression over the same backlog. ------
    let t = Instant::now();
    let templates = queue.templates();
    let mine_ms = t.elapsed().as_secs_f64() * 1e3;
    let compression = queue.compression();
    let distinct: BTreeSet<_> = templates
        .iter()
        .map(|t| (t.role.clone(), t.purpose.clone(), t.covered.clone(), t.audits.clone()))
        .collect();
    assert_eq!(distinct.len(), templates.len(), "templates must be distinct groups");
    let total: u64 = templates.iter().map(|t| t.count).sum();
    assert_eq!(total as usize, cfg.queue_items, "template counts partition the backlog");
    println!(
        "template_compression items={} templates={} compression={compression:.1} \
         mine_ms={mine_ms:.2}",
        cfg.queue_items,
        templates.len()
    );
    let _ = writeln!(
        rows,
        "    {{\"experiment\": \"template_compression\", \"items\": {}, \
         \"templates\": {}, \"compression\": {compression:.2}, \"mine_ms\": {mine_ms:.3}}},",
        cfg.queue_items,
        templates.len()
    );
    assert!(compression > 2.0, "template mining must compress the backlog, got {compression:.2}");

    let rows = rows.trim_end().trim_end_matches(',');
    let json = format!(
        "{{\n  \"bench\": \"triage\",\n  \"mode\": \"{}\",\n  \"rows\": [\n{rows}\n  ]\n}}\n",
        if quick { "quick" } else { "full" }
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_9.json");
    std::fs::write(path, &json).expect("write BENCH_9.json");
    println!("wrote {path}");
}
