//! B9: audit cost and target-view size versus audit selectivity — the
//! audited zone covers ≈ 1/zones of the patients, so more zones = more
//! selective audit.
//!
//! Expected shape: |U| shrinks ∝ 1/zones; end-to-end cost falls with
//! selectivity but is floored by the per-query semantic evaluation of the
//! candidates that survive pruning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use audex_core::{AuditEngine, EngineOptions};
use audex_sql::{parse_audit, Timestamp};
use audex_workload::{
    generate_hospital, generate_queries, load_log, standard_audit_text, HospitalConfig,
    QueryMixConfig,
};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("selectivity");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    for zones in [5usize, 20, 80] {
        let hospital = HospitalConfig { patients: 800, zip_zones: zones, diseases: 10, seed: 61 };
        let db = generate_hospital(&hospital, Timestamp(0));
        let mix = QueryMixConfig {
            queries: 200,
            suspicious_rate: 0.05,
            start: Timestamp(1_000),
            seed: 62,
        };
        let (log, _) = load_log(&generate_queries(&hospital, &mix));
        let engine = AuditEngine::with_options(&db, &log, EngineOptions::default());
        let expr = audex_bench::all_time(parse_audit(&standard_audit_text()).unwrap());
        let now = Timestamp(1_000_000);

        // One-line shape report per configuration.
        let r = engine.audit_at(&expr, now).unwrap();
        println!(
            "B9 zones={zones}: |U|={} accessed={} candidates={} pruned={}",
            r.target_size,
            r.verdict.accessed_granules,
            r.candidates.len(),
            r.pruned.len()
        );

        g.bench_with_input(BenchmarkId::from_parameter(zones), &zones, |b, _| {
            b.iter(|| engine.audit_at(&expr, now).unwrap().verdict.accessed_granules)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
