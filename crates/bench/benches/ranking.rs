//! B7: online suspicion-ranking throughput (paper §4 future work): queries
//! per second scored against 1, 4, and 16 standing audit expressions.
//!
//! Expected shape: per-query cost linear in the number of standing audits
//! whose limiting parameters admit the query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use audex_bench::{all_time, scenario};
use audex_core::{EngineOptions, OnlineAuditor};
use audex_sql::parse_audit;
use audex_workload::datagen::zip_of_zone;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ranking");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    let s = scenario(400, 200, 0.1, 37);
    let engine = s.engine(EngineOptions::default());
    let batch = s.log.snapshot();
    g.throughput(Throughput::Elements(batch.len() as u64));

    for audits in [1usize, 4, 16] {
        let prepared: Vec<_> = (0..audits)
            .map(|i| {
                let text = format!(
                    "AUDIT disease FROM Patients, Health \
                     WHERE Patients.pid = Health.pid AND Patients.zipcode = '{}'",
                    zip_of_zone(i % 20)
                );
                let expr = all_time(parse_audit(&text).unwrap());
                engine.prepare(&expr, s.now).unwrap()
            })
            .collect();

        g.bench_with_input(BenchmarkId::from_parameter(audits), &audits, |b, _| {
            b.iter_batched(
                || OnlineAuditor::new(prepared.clone()),
                |mut oa| {
                    let mut hits = 0usize;
                    for q in &batch {
                        hits += oa.observe(&s.db, q).unwrap().len();
                    }
                    hits
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
