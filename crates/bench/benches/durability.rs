//! B12: durability cost — the PR-4 WAL/checkpoint/recovery tentpole.
//!
//! Two experiments, results written to `BENCH_4.json` at the workspace root:
//!
//! * `append_throughput` — raw WAL append rate under each fsync policy
//!   (`always` pays one fsync per record, `batch` one per
//!   [`BATCH_FSYNC_INTERVAL`] records, `never` none). The record mix is
//!   the service's own: annotated query-log appends.
//! * `recovery_time` — wall-clock to reopen a data directory and rebuild
//!   the full service state ([`Journal::open`] + [`ServiceCore::recovered`])
//!   as the WAL grows, with and without a checkpoint covering the log.
//!   Both grow with the log (the checkpoint stores the logical record
//!   prefix, which recovery still replays), but the checkpointed store
//!   restores the derived state — touch-index footprints, audit batch
//!   states — from the snapshot instead of re-running query planning and
//!   online scoring per record, a severalfold constant-factor win that
//!   widens with audit count.
//!
//! Run `cargo bench -p audex-bench --bench durability` for real
//! measurements or `-- --test` for the CI smoke variant.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use audex_persist::{FsyncPolicy, Journal, WalOptions, WalRecord};
use audex_service::{Json, Request, ServiceConfig, ServiceCore};
use audex_sql::Timestamp;

struct Config {
    appends: usize,
    log_lens: Vec<usize>,
}

fn config(quick: bool) -> Config {
    if quick {
        Config { appends: 200, log_lens: vec![50, 100] }
    } else {
        Config { appends: 5_000, log_lens: vec![250, 500, 1_000, 2_000] }
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("audex-bench-durability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn log_record(i: usize) -> WalRecord {
    WalRecord::LogAppend {
        ts: Timestamp(1_000 + i as i64),
        user: format!("u-{}", i % 17).into(),
        role: "doctor".into(),
        purpose: "treatment".into(),
        sql: format!("SELECT disease FROM p WHERE zipcode = 'z{}'", i % 5),
    }
}

/// Builds a durable store with a standing audit and `log_len` ingested
/// queries, every one flowing through the journal.
fn build_store(dir: &Path, log_len: usize) -> ServiceCore {
    let (journal, mut recovered) =
        Journal::open(dir, WalOptions { fsync: FsyncPolicy::Never, ..Default::default() })
            .expect("open journal");
    let mut core = ServiceCore::recovered(&mut recovered, ServiceConfig::default())
        .expect("fresh store recovers");
    core.attach_journal(journal);
    let ok = |resp: &Json| assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");
    ok(&core
        .handle(Request::Dml {
            ts: Timestamp(100),
            sql: "CREATE TABLE p (name CHAR, zipcode CHAR, disease CHAR); \
                  INSERT INTO p VALUES ('jane','z1','flu'), ('reku','z2','diabetic'), \
                  ('lucy','z3','malaria'), ('rob','z4','flu'), ('mira','z0','diabetic');"
                .into(),
        })
        .response);
    ok(&core
        .handle(Request::Register {
            name: "snoop".into(),
            expr: "AUDIT disease FROM p WHERE zipcode='z1'".into(),
            now: Some(Timestamp(1_000_000)),
        })
        .response);
    for i in 0..log_len {
        ok(&core
            .handle(Request::Log {
                ts: Timestamp(1_000 + i as i64),
                user: format!("u-{}", i % 17),
                role: "doctor".into(),
                purpose: "treatment".into(),
                sql: format!("SELECT disease FROM p WHERE zipcode = 'z{}'", i % 5),
            })
            .response);
    }
    core
}

fn time_recovery(dir: &Path) -> (f64, u64) {
    let t = Instant::now();
    let (journal, mut recovered) =
        Journal::open(dir, WalOptions::default()).expect("reopen journal");
    let core = ServiceCore::recovered(&mut recovered, ServiceConfig::default()).expect("recover");
    let secs = t.elapsed().as_secs_f64();
    std::hint::black_box(core.counters().queries_ingested);
    (secs, journal.next_seq())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let cfg = config(quick);
    let mut rows = String::new();

    // --- Experiment 1: append throughput vs fsync policy. ---------------
    for policy in [FsyncPolicy::Always, FsyncPolicy::Batch, FsyncPolicy::Never] {
        // `always` pays a real fsync per record; keep its sample small
        // enough to finish while still amortizing.
        let n = if policy == FsyncPolicy::Always { cfg.appends / 10 + 1 } else { cfg.appends };
        let dir = temp_dir(&format!("append-{policy}"));
        let (journal, _) = Journal::open(&dir, WalOptions { fsync: policy, ..Default::default() })
            .expect("open journal");
        let t = Instant::now();
        for i in 0..n {
            journal.append(log_record(i));
        }
        journal.sync().expect("final sync");
        let secs = t.elapsed().as_secs_f64();
        assert!(journal.wedged().is_none(), "journal wedged during bench");
        let jc = journal.counters();
        let rps = if secs > 0.0 { n as f64 / secs } else { 0.0 };
        println!(
            "append_throughput fsync={policy} records={n} secs={secs:.4} rps={rps:.0} \
             fsyncs={} bytes={}",
            jc.fsyncs, jc.bytes_written
        );
        let _ = writeln!(
            rows,
            "    {{\"experiment\": \"append_throughput\", \"fsync\": \"{policy}\", \
             \"records\": {n}, \"secs\": {secs:.6}, \"records_per_sec\": {rps:.1}, \
             \"fsyncs\": {}, \"bytes_written\": {}}},",
            jc.fsyncs, jc.bytes_written
        );
        drop(journal);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // --- Experiment 2: recovery time vs log length, ± checkpoint. -------
    let mut bare_secs = Vec::new();
    let mut ckpt_secs = Vec::new();
    for &log_len in &cfg.log_lens {
        // Bare WAL: every record replays through full ingest on recovery.
        let dir = temp_dir(&format!("recover-bare-{log_len}"));
        let core = build_store(&dir, log_len);
        drop(core);
        let (bare, records) = time_recovery(&dir);
        let _ = std::fs::remove_dir_all(&dir);

        // Checkpointed: the same store, snapshot taken after ingest.
        let dir = temp_dir(&format!("recover-ckpt-{log_len}"));
        let core = build_store(&dir, log_len);
        core.checkpoint().expect("checkpoint");
        drop(core);
        let (ckpt, _) = time_recovery(&dir);
        let _ = std::fs::remove_dir_all(&dir);

        println!(
            "recovery_time log_len={log_len} wal_records={records} bare_ms={:.2} \
             checkpoint_ms={:.2}",
            bare * 1e3,
            ckpt * 1e3
        );
        let _ = writeln!(
            rows,
            "    {{\"experiment\": \"recovery_time\", \"log_len\": {log_len}, \
             \"wal_records\": {records}, \"bare_wal_ms\": {:.3}, \"checkpoint_ms\": {:.3}}},",
            bare * 1e3,
            ckpt * 1e3
        );
        bare_secs.push(bare);
        ckpt_secs.push(ckpt);
    }

    // Growth across the measured range (the bare-WAL replay should grow
    // with the log; the checkpointed recovery should grow much slower).
    let growth = |v: &[f64]| match (v.first(), v.last()) {
        (Some(&a), Some(&b)) if a > 0.0 => b / a,
        _ => 0.0,
    };
    let bare_growth = growth(&bare_secs);
    let ckpt_growth = growth(&ckpt_secs);

    let rows = rows.trim_end().trim_end_matches(',');
    let json = format!(
        "{{\n  \"bench\": \"durability\",\n  \"mode\": \"{}\",\n  \
         \"bare_wal_recovery_growth\": {bare_growth:.3},\n  \
         \"checkpoint_recovery_growth\": {ckpt_growth:.3},\n  \"rows\": [\n{rows}\n  ]\n}}\n",
        if quick { "quick" } else { "full" }
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_4.json");
    std::fs::write(path, &json).expect("write BENCH_4.json");
    println!("wrote {path}");
    println!(
        "recovery growth over a {}x log range: bare WAL {bare_growth:.2}x, \
         with checkpoint {ckpt_growth:.2}x",
        cfg.log_lens.last().unwrap_or(&1) / cfg.log_lens.first().unwrap_or(&1)
    );
}
