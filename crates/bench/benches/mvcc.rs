//! B18: MVCC versioned storage — the PR-10 tentpole.
//!
//! Two experiments, results written to `BENCH_10.json` at the workspace root:
//!
//! * `as_of_reconstruction` — historical reads (`as_of`) against growing
//!   change histories over a fixed tuple population. The replay engine
//!   re-applies the change prefix per instant, so its cost grows with the
//!   log until its interval checkpoints (one full-table clone every
//!   `CHECKPOINT_INTERVAL` = 1024 changes) cap a read at ~1024 applies —
//!   the measured range stays inside one era, where the growth is the
//!   per-read cost; past it replay plateaus at the era bound while paying
//!   a table clone per 1024 changes in memory. The MVCC version store
//!   answers the same read with a per-tuple visibility probe (binary
//!   search down each tuple's version chain), so its cost tracks the live
//!   population, not the history, at any depth. Every sampled instant is
//!   gated in-bench: the two modes must return **byte-identical** result
//!   sets.
//! * `recovery` — wall-clock to reopen a checkpointed 2000-query store
//!   ([`Journal::open`] + [`ServiceCore::recovered`]) when the checkpoint
//!   carries an MVCC version-store snapshot (`--storage mvcc`, the default)
//!   versus the replay engine's record-by-record prefix reconstruction
//!   (`--storage replay`). The recovered stores must answer the standing
//!   audit byte-identically to their uninterrupted selves and to each
//!   other, and the mvcc path must beat the 8.184 ms BENCH_4 (PR 4)
//!   checkpointed-recovery baseline for the same 2000-query store by ≥ 2x.
//!   (Both modes now recover the checkpointed log prefix with lazy-parsed
//!   entries, so the in-bench replay column is itself far below PR 4's
//!   number; the snapshot additionally skips DML re-execution.)
//!
//! Run `cargo bench -p audex-bench --bench mvcc` for real measurements or
//! `-- --test` for the CI smoke variant (smaller sizes, same identity
//! gates).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use audex_persist::{FsyncPolicy, Journal, WalOptions};
use audex_service::{Json, Request, ServiceConfig, ServiceCore};
use audex_sql::{parse_query, parse_statement, Timestamp};
use audex_storage::{Database, StorageMode};

struct Config {
    history_lens: Vec<usize>,
    sample_reads: usize,
    log_lens: Vec<usize>,
    /// Repeat timed sections and keep the fastest, to de-noise CI boxes.
    passes: usize,
}

fn config(quick: bool) -> Config {
    if quick {
        Config { history_lens: vec![50, 100], sample_reads: 16, log_lens: vec![50, 100], passes: 2 }
    } else {
        Config {
            // An 8x range inside one replay checkpoint era (< 1024
            // changes): here every replay miss pays the full change
            // prefix, which is the regime the growth claim measures.
            history_lens: vec![96, 192, 384, 768],
            sample_reads: 64,
            log_lens: vec![250, 500, 1_000, 2_000],
            passes: 5,
        }
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("audex-bench-mvcc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A fixed 64-tuple population under `history_len` cycling UPDATEs: the
/// live set never grows, only the version history does.
fn build_history(mode: StorageMode, history_len: usize) -> Database {
    let mut db = Database::with_mode(mode);
    db.execute(
        &parse_statement("CREATE TABLE p (pid CHAR, zipcode CHAR, disease CHAR)").unwrap(),
        Timestamp(0),
    )
    .unwrap();
    for i in 0..64 {
        db.execute(
            &parse_statement(&format!("INSERT INTO p VALUES ('p{i}', 'z{}', 'flu')", i % 8))
                .unwrap(),
            Timestamp(1 + i),
        )
        .unwrap();
    }
    for i in 0..history_len {
        db.execute(
            &parse_statement(&format!(
                "UPDATE p SET zipcode = 'z{}' WHERE pid = 'p{}'",
                i % 8,
                i % 64
            ))
            .unwrap(),
            Timestamp(100 + i as i64),
        )
        .unwrap();
    }
    db
}

/// Times `reads` historical reconstructions at distinct mid-history
/// instants (distinct instants, so the snapshot cache cannot answer; every
/// read pays reconstruction). Returns `(secs, result digests)`.
fn time_as_of(db: &Database, history_len: usize, reads: usize) -> (f64, Vec<String>) {
    let query = parse_query("SELECT pid, zipcode FROM p WHERE zipcode = 'z3'").unwrap();
    let mut results = Vec::with_capacity(reads);
    let t = Instant::now();
    for k in 0..reads {
        // Spread over the back half of the history: deep enough that the
        // replay engine must re-apply a long prefix.
        let ts = Timestamp(100 + (history_len / 2 + k * (history_len / 2) / reads) as i64);
        results.push(db.at(ts).query(&query).expect("historical read"));
    }
    let secs = t.elapsed().as_secs_f64();
    // Digesting (Debug-formatting result sets with lineage) costs more than
    // the reads themselves — keep it out of the timed section.
    (secs, results.iter().map(|rs| format!("{rs:?}")).collect())
}

/// Builds a durable store in `mode` with a standing audit and `log_len`
/// ingested queries over a 200-change table history, checkpoints it, and
/// returns the live audit response (the identity baseline).
fn build_store(dir: &Path, mode: StorageMode, log_len: usize) -> String {
    let (journal, mut recovered) =
        Journal::open(dir, WalOptions { fsync: FsyncPolicy::Never, ..Default::default() })
            .expect("open journal");
    let config = ServiceConfig { storage: mode, ..Default::default() };
    let mut core = ServiceCore::recovered(&mut recovered, config).expect("fresh store recovers");
    core.attach_journal(journal);
    let ok = |resp: &Json| assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");
    ok(&core
        .handle(Request::Dml {
            ts: Timestamp(100),
            sql: "CREATE TABLE p (name CHAR, zipcode CHAR, disease CHAR); \
                  INSERT INTO p VALUES ('jane','z1','flu'), ('reku','z2','diabetic'), \
                  ('lucy','z3','malaria'), ('rob','z4','flu'), ('mira','z0','diabetic');"
                .into(),
        })
        .response);
    // A real change history, so the snapshot restores more than seed rows.
    for i in 0..200 {
        ok(&core
            .handle(Request::Dml {
                ts: Timestamp(200 + i),
                sql: format!("UPDATE p SET disease = 'd{}' WHERE zipcode = 'z{}'", i % 7, i % 5),
            })
            .response);
    }
    ok(&core
        .handle(Request::Register {
            name: "snoop".into(),
            expr: "AUDIT disease FROM p WHERE zipcode='z1'".into(),
            now: Some(Timestamp(1_000_000)),
        })
        .response);
    for i in 0..log_len {
        ok(&core
            .handle(Request::Log {
                ts: Timestamp(1_000 + i as i64),
                user: format!("u-{}", i % 17),
                role: "doctor".into(),
                purpose: "treatment".into(),
                sql: format!("SELECT disease FROM p WHERE zipcode = 'z{}'", i % 5),
            })
            .response);
    }
    core.checkpoint().expect("checkpoint");
    core.handle(Request::Audit { name: "snoop".into() }).response.to_string()
}

/// Reopens `dir` in `mode` and returns `(recovery secs, audit response)`.
fn time_recovery(dir: &Path, mode: StorageMode) -> (f64, String) {
    let config = ServiceConfig { storage: mode, ..Default::default() };
    let t = Instant::now();
    let (journal, mut recovered) =
        Journal::open(dir, WalOptions::default()).expect("reopen journal");
    let mut core = ServiceCore::recovered(&mut recovered, config).expect("recover");
    let secs = t.elapsed().as_secs_f64();
    drop(journal);
    (secs, core.handle(Request::Audit { name: "snoop".into() }).response.to_string())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let cfg = config(quick);
    let mut rows = String::new();

    // --- Experiment 1: as_of reconstruction vs history length. ----------
    let mut mvcc_secs = Vec::new();
    let mut replay_secs = Vec::new();
    for &n in &cfg.history_lens {
        // Short histories support fewer distinct mid-history instants; the
        // metric is per-read, so the counts stay comparable across sizes.
        let reads = cfg.sample_reads.min(n / 2);
        let (mut mvcc, mut replay) = (f64::MAX, f64::MAX);
        for _ in 0..cfg.passes {
            // Fresh stores every pass: the shared snapshot cache would
            // otherwise answer a repeated pass for free and flatten both
            // curves into cache-hit time.
            let mvcc_db = build_history(StorageMode::Mvcc, n);
            let replay_db = build_history(StorageMode::Replay, n);
            let (m_secs, m_digests) = time_as_of(&mvcc_db, n, reads);
            let (r_secs, r_digests) = time_as_of(&replay_db, n, reads);
            // Byte-identity gate: every sampled instant, both modes.
            assert_eq!(m_digests, r_digests, "as_of diverged at history {n}");
            mvcc = mvcc.min(m_secs / reads as f64);
            replay = replay.min(r_secs / reads as f64);
        }
        mvcc_secs.push(mvcc);
        replay_secs.push(replay);
        println!(
            "as_of_reconstruction history={n} reads={reads} \
             mvcc_us_per_read={:.2} replay_us_per_read={:.2}",
            mvcc * 1e6,
            replay * 1e6
        );
        let _ = writeln!(
            rows,
            "    {{\"experiment\": \"as_of_reconstruction\", \"history\": {n}, \
             \"reads\": {reads}, \"mvcc_us_per_read\": {:.3}, \"replay_us_per_read\": {:.3}}},",
            mvcc * 1e6,
            replay * 1e6
        );
    }
    let growth = |v: &[f64]| match (v.first(), v.last()) {
        (Some(&a), Some(&b)) if a > 0.0 => b / a,
        _ => 0.0,
    };
    let mvcc_growth = growth(&mvcc_secs);
    let replay_growth = growth(&replay_secs);
    // Both modes pay the same query-evaluation cost on the same data; the
    // mvcc column doubles as that fixed-cost control, so the growth claim
    // is judged on the *reconstruction overhead* (replay minus mvcc),
    // which is the term the paper's argument concerns. The raw replay
    // ratio dilutes it at small histories, where fixed cost dominates.
    let overhead: Vec<f64> =
        replay_secs.iter().zip(&mvcc_secs).map(|(r, m)| (r - m).max(0.0)).collect();
    let overhead_growth = growth(&overhead);
    println!(
        "as_of growth over a {}x history range: mvcc {mvcc_growth:.2}x, \
         replay {replay_growth:.2}x (reconstruction overhead {overhead_growth:.2}x)",
        cfg.history_lens.last().unwrap_or(&1) / cfg.history_lens.first().unwrap_or(&1)
    );
    if !quick {
        // The headline claim: the version store's as_of stays flat while
        // replay's reconstruction grows with the log. Thresholds are loose
        // enough for noisy CI boxes and still unambiguous (8x history
        // range).
        assert!(
            overhead_growth > 2.0,
            "replay's reconstruction overhead should grow with history, \
             measured {overhead_growth:.2}x (raw replay {replay_growth:.2}x)"
        );
        assert!(
            mvcc_growth < 1.5,
            "mvcc as_of should stay flat over an 8x history range, \
             measured {mvcc_growth:.2}x (replay grew {replay_growth:.2}x)"
        );
    }

    // --- Experiment 2: checkpointed recovery, snapshot vs replay. -------
    let mut mvcc_rec = Vec::new();
    let mut replay_rec = Vec::new();
    for &log_len in &cfg.log_lens {
        let dir_m = temp_dir(&format!("recover-mvcc-{log_len}"));
        let live_m = build_store(&dir_m, StorageMode::Mvcc, log_len);
        let dir_r = temp_dir(&format!("recover-replay-{log_len}"));
        let live_r = build_store(&dir_r, StorageMode::Replay, log_len);
        assert_eq!(live_m, live_r, "live audit diverged across modes at {log_len}");

        let (mut m_best, mut r_best) = (f64::MAX, f64::MAX);
        for _ in 0..cfg.passes {
            let (m_secs, m_audit) = time_recovery(&dir_m, StorageMode::Mvcc);
            let (r_secs, r_audit) = time_recovery(&dir_r, StorageMode::Replay);
            assert_eq!(m_audit, live_m, "mvcc recovery drifted at {log_len}");
            assert_eq!(r_audit, live_r, "replay recovery drifted at {log_len}");
            m_best = m_best.min(m_secs);
            r_best = r_best.min(r_secs);
        }
        let _ = std::fs::remove_dir_all(&dir_m);
        let _ = std::fs::remove_dir_all(&dir_r);
        mvcc_rec.push(m_best);
        replay_rec.push(r_best);
        println!(
            "recovery log_len={log_len} mvcc_ms={:.3} replay_ms={:.3}",
            m_best * 1e3,
            r_best * 1e3
        );
        let _ = writeln!(
            rows,
            "    {{\"experiment\": \"recovery\", \"log_len\": {log_len}, \
             \"mvcc_ms\": {:.4}, \"replay_ms\": {:.4}}},",
            m_best * 1e3,
            r_best * 1e3
        );
    }
    // BENCH_4 (PR 4) measured checkpointed replay recovery of the same
    // 2000-query store at 8.184 ms on this class of box — the baseline the
    // acceptance criterion is stated against.
    const PR4_CHECKPOINTED_MS: f64 = 8.184;
    let mvcc_at_max = mvcc_rec.last().copied().unwrap_or(0.0) * 1e3;
    let replay_at_max = replay_rec.last().copied().unwrap_or(0.0) * 1e3;
    let speedup = if mvcc_at_max > 0.0 { PR4_CHECKPOINTED_MS / mvcc_at_max } else { 0.0 };
    println!(
        "recovery at {} queries: mvcc {mvcc_at_max:.3} ms, replay {replay_at_max:.3} ms, \
         {speedup:.2}x vs the {PR4_CHECKPOINTED_MS} ms PR-4 checkpointed baseline",
        cfg.log_lens.last().unwrap_or(&0),
    );
    if !quick {
        assert!(
            speedup >= 2.0,
            "recovery at the largest store must beat the {PR4_CHECKPOINTED_MS} ms \
             checkpointed-replay baseline by >=2x, measured {mvcc_at_max:.3} ms \
             ({speedup:.2}x)"
        );
        assert!(
            mvcc_at_max <= replay_at_max * 1.25,
            "snapshot recovery must not run behind record-by-record prefix \
             reconstruction: mvcc {mvcc_at_max:.3} ms vs replay {replay_at_max:.3} ms"
        );
    }

    let rows = rows.trim_end().trim_end_matches(',');
    let json = format!(
        "{{\n  \"bench\": \"mvcc\",\n  \"mode\": \"{}\",\n  \
         \"as_of_growth_mvcc\": {mvcc_growth:.3},\n  \
         \"as_of_growth_replay\": {replay_growth:.3},\n  \
         \"as_of_overhead_growth\": {overhead_growth:.3},\n  \
         \"recovery_speedup_at_max\": {speedup:.3},\n  \"rows\": [\n{rows}\n  ]\n}}\n",
        if quick { "quick" } else { "full" }
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_10.json");
    std::fs::write(path, &json).expect("write BENCH_10.json");
    println!("wrote {path}");
}
