//! B14: front-door overload behaviour — the PR-6 robustness tentpole.
//!
//! Three experiments against a live in-process TCP [`Server`], results
//! written to `BENCH_6.json` at the workspace root:
//!
//! * `broadcast_throughput` — sustained `log`-request throughput through
//!   the TCP front door as standing subscribers grow ({0, 4, 16}), in two
//!   client regimes: `healthy` (every subscriber drains its socket) and
//!   `stalled` (a deterministic stall fault makes every subscriber stop
//!   reading). The claim under test: stalled subscribers are evicted from
//!   their bounded queues and ingest throughput never collapses.
//! * `shed_latency` — with `max_conns = 1` and the slot held, how long an
//!   over-cap client waits for its structured `overloaded` refusal plus
//!   close. Shedding is the overload policy; it must be fast and explicit.
//! * `fault_audit_identity` — the same logical workload audited on a clean
//!   server and on one injecting torn frames and a mid-request disconnect;
//!   the audit reports must be byte-identical.
//!
//! Run `cargo bench -p audex-bench --bench frontdoor` for real
//! measurements or `-- --test` for the CI smoke variant (tiny sizes).

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use audex_bench::scenario;
use audex_service::state::{ServiceConfig, ServiceCore};
use audex_service::{FrontDoorConfig, Json, NetFaultPlan, Server};

struct Config {
    patients: usize,
    queries: usize,
    sub_counts: Vec<usize>,
    sheds: usize,
}

fn config(quick: bool) -> Config {
    if quick {
        Config { patients: 100, queries: 80, sub_counts: vec![0, 4], sheds: 12 }
    } else {
        Config { patients: 200, queries: 400, sub_counts: vec![0, 4, 16], sheds: 100 }
    }
}

/// Binds an in-process front door and runs it on a background thread.
fn spawn_server(core: ServiceCore, cfg: FrontDoorConfig) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind_with(core, "127.0.0.1:0", cfg).expect("bind front door");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || {
        let _ = server.run();
    });
    (addr, handle)
}

/// One protocol connection: write a request line, read one response line.
struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn open(addr: &str) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Conn { writer: stream, reader }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send request");
        self.writer.flush().expect("flush request");
    }

    fn read_line(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line),
            Err(e) => panic!("read response: {e}"),
        }
    }

    fn request(&mut self, line: &str) -> Json {
        self.send(line);
        let resp = self.read_line().unwrap_or_else(|| panic!("no response to {line}"));
        Json::parse(&resp).unwrap_or_else(|e| panic!("bad JSON {resp:?}: {e}"))
    }
}

fn json_escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

fn stat(stats: &Json, field: &str) -> i64 {
    stats.get(field).and_then(Json::as_int).unwrap_or_else(|| panic!("no {field} in {stats}"))
}

fn assert_ok(resp: &Json, what: &str) {
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{what}: {resp}");
}

// --- Experiment 1: ingest throughput vs subscriber count and health. ----

struct BroadcastRow {
    subs: usize,
    stalled: bool,
    queries: usize,
    secs: f64,
    qps: f64,
    evicted: i64,
}

fn broadcast_throughput(cfg: &Config, subs: usize, stalled: bool) -> BroadcastRow {
    let s = scenario(cfg.patients, cfg.queries, 0.08, 42);
    let entries = s.log.snapshot();
    let core = ServiceCore::new(
        s.db,
        ServiceConfig { metrics_every: Some(1), ..ServiceConfig::default() },
    );
    // Stalled mode: every subscriber connection's writes absorb 64 bytes
    // and then time out — the deterministic model of a peer that stops
    // draining its socket. Subscribers connect first, so they own accept
    // ordinals 1..=subs; the driver is ordinal subs+1 and stays clean.
    let mut faults = NetFaultPlan::new();
    if stalled {
        for ordinal in 1..=subs as u64 {
            faults = faults.stall_writes(ordinal, 64);
        }
    }
    let front = FrontDoorConfig { sub_queue: 32, faults, ..FrontDoorConfig::default() };
    let (addr, server) = spawn_server(core, front);

    let mut readers = Vec::new();
    let mut parked = Vec::new();
    for _ in 0..subs {
        let mut sub = Conn::open(&addr);
        sub.send(r#"{"cmd":"subscribe"}"#);
        if stalled {
            parked.push(sub); // keeps the socket open, never reads
        } else {
            readers.push(std::thread::spawn(move || {
                let mut events = 0usize;
                while sub.read_line().is_some() {
                    events += 1;
                }
                events
            }));
        }
    }

    let mut driver = Conn::open(&addr);
    let deadline = Instant::now() + Duration::from_secs(5);
    while subs > 0 && Instant::now() < deadline {
        let stats = driver.request(r#"{"cmd":"stats"}"#);
        if stat(&stats, "subscribers") >= subs as i64 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    let t = Instant::now();
    for e in &entries {
        let req = format!(
            r#"{{"cmd":"log","ts":{},"user":"{}","role":"{}","purpose":"{}","sql":"{}"}}"#,
            e.executed_at.0,
            json_escape(&e.context.user.to_string()),
            json_escape(&e.context.role.to_string()),
            json_escape(&e.context.purpose.to_string()),
            json_escape(&e.text),
        );
        let resp = driver.request(&req);
        assert_ok(&resp, "log request");
    }
    let secs = t.elapsed().as_secs_f64();
    let qps = if secs > 0.0 { entries.len() as f64 / secs } else { 0.0 };

    let stats = driver.request(r#"{"cmd":"stats"}"#);
    let evicted = stat(&stats, "subscribers_evicted");
    if stalled && subs > 0 {
        assert!(
            evicted >= subs as i64,
            "only {evicted} of {subs} stalled subscribers evicted: {stats}"
        );
    }
    let resp = driver.request(r#"{"cmd":"shutdown"}"#);
    assert_ok(&resp, "shutdown");
    server.join().expect("server thread");
    for reader in readers {
        let _ = reader.join().expect("subscriber reader thread");
    }
    BroadcastRow { subs, stalled, queries: entries.len(), secs, qps, evicted }
}

// --- Experiment 2: connection-cap shedding latency. ---------------------

fn shed_latency(cfg: &Config) -> (f64, f64, f64) {
    let core = ServiceCore::new(audex_storage::Database::new(), ServiceConfig::default());
    let front = FrontDoorConfig { max_conns: 1, ..FrontDoorConfig::default() };
    let (addr, server) = spawn_server(core, front);

    // The holder occupies the single slot; its round trip proves the
    // accept happened, so every later connect is over cap.
    let mut holder = Conn::open(&addr);
    assert_ok(&holder.request(r#"{"cmd":"stats"}"#), "holder stats");

    let mut lat_us: Vec<f64> = Vec::with_capacity(cfg.sheds);
    for _ in 0..cfg.sheds {
        let t = Instant::now();
        let stream = TcpStream::connect(&addr).expect("connect over cap");
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).expect("read shed notice");
        let us = t.elapsed().as_secs_f64() * 1e6;
        let v = Json::parse(line.trim()).unwrap_or_else(|e| panic!("bad JSON {line:?}: {e}"));
        assert_eq!(v.get("error").and_then(Json::as_str), Some("overloaded"), "{v}");
        let mut rest = String::new();
        assert_eq!(reader.read_line(&mut rest).expect("read close"), 0, "not closed");
        lat_us.push(us);
    }
    assert_ok(&holder.request(r#"{"cmd":"shutdown"}"#), "shutdown");
    server.join().expect("server thread");

    lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let mean = lat_us.iter().sum::<f64>() / lat_us.len() as f64;
    let p50 = lat_us[lat_us.len() / 2];
    let max = *lat_us.last().expect("at least one shed");
    (p50, mean, max)
}

// --- Experiment 3: byte-identical audit under network faults. -----------

/// The paper's Tables 1–3 as a DML script (same data as
/// `tests/service_stream.rs`).
const PAPER_TABLES_DML: &str = "\
    CREATE TABLE P-Personal (pid TEXT, name TEXT, age INT, sex TEXT, zipcode TEXT, address TEXT); \
    CREATE TABLE P-Health (pid TEXT, ward TEXT, doc-name TEXT, disease TEXT, pres-drugs TEXT); \
    INSERT INTO P-Personal VALUES \
      ('p1', 'Jane', 25, 'F', '177893', 'A1'), \
      ('p2', 'Reku', 35, 'M', '145568', 'A2'), \
      ('p13', 'Robert', 29, 'M', '188888', 'A3'), \
      ('p28', 'Lucy', 20, 'F', '145568', 'A4'); \
    INSERT INTO P-Health VALUES \
      ('p1', 'W11', 'Hassan', 'flu', 'drug2'), \
      ('p2', 'W12', 'Nicholas', 'diabetic', 'drug1'), \
      ('p13', 'W14', 'Ramesh', 'Malaria', 'drug3'), \
      ('p28', 'W14', 'King U', 'diabetic', 'drug1');";

fn audit_report(faults: NetFaultPlan) -> String {
    let faulty = !faults.is_empty();
    let core = ServiceCore::new(audex_storage::Database::new(), ServiceConfig::default());
    let front = FrontDoorConfig { faults, ..FrontDoorConfig::default() };
    let (addr, server) = spawn_server(core, front);

    // Conn 1 — the driver — reads everything torn into 3-byte fragments
    // in the faulty run; the workload must still land identically.
    let mut driver = Conn::open(&addr);
    let dml =
        format!(r#"{{"cmd":"dml","ts":"1/1/2008","sql":"{}"}}"#, json_escape(PAPER_TABLES_DML));
    assert_ok(&driver.request(&dml), "dml");
    let expr = "DATA-INTERVAL 1/1/2008 TO 7/4/2008 INDISPENSABLE true \
                AUDIT disease FROM P-Personal, P-Health \
                WHERE P-Personal.pid=P-Health.pid and P-Personal.zipcode='145568'";
    let register = format!(
        r#"{{"cmd":"register","name":"snoop","expr":"{}","now":1207267200}}"#,
        json_escape(expr)
    );
    assert_ok(&driver.request(&register), "register");
    let base = 1_199_145_600 + 3_600;
    for (i, sql) in [
        "SELECT name, disease FROM P-Personal, P-Health \
         WHERE P-Personal.pid = P-Health.pid AND ward = 'W14'",
        "SELECT disease FROM P-Personal, P-Health \
         WHERE P-Personal.pid = P-Health.pid AND zipcode = '145568'",
        "SELECT zipcode FROM P-Personal WHERE age > 30",
        "SELECT address FROM P-Personal WHERE name = 'Lucy'",
    ]
    .iter()
    .enumerate()
    {
        let req = format!(
            r#"{{"cmd":"log","ts":{},"user":"u-7","role":"doctor","purpose":"treatment","sql":"{}"}}"#,
            base + i as i64 * 600,
            json_escape(sql)
        );
        assert_ok(&driver.request(&req), "log");
    }
    if faulty {
        // Conn 2 dies 40 bytes into a request line: the server must count
        // the truncated frame and nothing else.
        let mut dying = Conn::open(&addr);
        dying.send(&format!(
            r#"{{"cmd":"log","ts":9,"user":"u-9","role":"doctor","purpose":"treatment","sql":"{}"}}"#,
            "SELECT name FROM P-Personal ".repeat(4)
        ));
    }
    let report = driver.request(r#"{"cmd":"audit","name":"snoop"}"#);
    assert_ok(&report, "audit");
    assert_ok(&driver.request(r#"{"cmd":"shutdown"}"#), "shutdown");
    server.join().expect("server thread");
    report.to_string()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let cfg = config(quick);
    let mut rows = String::new();

    let mut baseline_qps = 0.0f64;
    let mut worst_qps = f64::INFINITY;
    for &subs in &cfg.sub_counts {
        for stalled in [false, true] {
            if subs == 0 && stalled {
                continue;
            }
            let row = broadcast_throughput(&cfg, subs, stalled);
            let mode = if row.stalled { "stalled" } else { "healthy" };
            if row.subs == 0 {
                baseline_qps = row.qps;
            }
            worst_qps = worst_qps.min(row.qps);
            println!(
                "broadcast_throughput subs={} mode={mode} queries={} secs={:.4} qps={:.0} \
                 evicted={}",
                row.subs, row.queries, row.secs, row.qps, row.evicted
            );
            let _ = writeln!(
                rows,
                "    {{\"experiment\": \"broadcast_throughput\", \"subscribers\": {}, \
                 \"mode\": \"{mode}\", \"queries\": {}, \"secs\": {:.6}, \"qps\": {:.1}, \
                 \"evicted\": {}}},",
                row.subs, row.queries, row.secs, row.qps, row.evicted
            );
        }
    }

    let (p50, mean, max) = shed_latency(&cfg);
    println!("shed_latency sheds={} p50_us={p50:.0} mean_us={mean:.0} max_us={max:.0}", cfg.sheds);
    let _ = writeln!(
        rows,
        "    {{\"experiment\": \"shed_latency\", \"sheds\": {}, \"p50_us\": {p50:.1}, \
         \"mean_us\": {mean:.1}, \"max_us\": {max:.1}}},",
        cfg.sheds
    );

    let clean = audit_report(NetFaultPlan::new());
    let torn = audit_report(NetFaultPlan::new().torn_frames(1, 3).disconnect_after(2, 40));
    let identical = clean == torn;
    assert!(identical, "audit diverged under faults:\n  clean: {clean}\n  torn:  {torn}");
    println!("fault_audit_identity identical={identical}");
    let _ = writeln!(
        rows,
        "    {{\"experiment\": \"fault_audit_identity\", \"identical\": {identical}}},"
    );

    let retained = if baseline_qps > 0.0 { worst_qps / baseline_qps } else { 0.0 };
    let rows = rows.trim_end().trim_end_matches(',');
    let json = format!(
        "{{\n  \"bench\": \"frontdoor\",\n  \"mode\": \"{}\",\n  \
         \"worst_case_qps_retained_vs_no_subscribers\": {retained:.3},\n  \
         \"audit_identical_under_faults\": {identical},\n  \"rows\": [\n{rows}\n  ]\n}}\n",
        if quick { "quick" } else { "full" }
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_6.json");
    std::fs::write(path, &json).expect("write BENCH_6.json");
    println!("wrote {path}");
    println!(
        "worst-case ingest qps (any subscriber mix) retains {:.0}% of the \
         no-subscriber baseline; audit byte-identical under faults: {identical}",
        retained * 100.0
    );
}
